"""Chunk-fused kernel tests: ESC and the fused MSA passes.

The contract is strict — the fused kernels must be **bit-identical** to the
reference tier (same pattern, same float bits): fusion reorganises the
computation across rows but accumulates every output entry's products in
the same Gustavson order. Covered here:

* property test: ``esc`` ≡ reference tier on random CSR grids, including
  complemented masks and empty rows;
* fused MSA ≡ the retained per-row loop (incl. the ``np.bincount`` fast
  path) on every semiring;
* the ``plan=`` fast path and the parallel runner's chunked execution;
* the int64 composite-key guard (``key_safe_blocks``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_masked_product_correct, make_triple
from repro.core import build_plan, masked_spgemm
from repro.core import msa_kernel
from repro.core.esc_kernel import numeric_rows as esc_numeric
from repro.core.esc_kernel import symbolic_rows as esc_symbolic
from repro.core.expand import key_safe_blocks
from repro.core.reference import reference_masked_spgemm
from repro.core.registry import auto_select
from repro.mask import Mask
from repro.parallel.executor import ThreadExecutor
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import COOMatrix, CSRMatrix, csr_random
from repro.validation import INDEX_DTYPE

SEMIRINGS = [PLUS_TIMES, PLUS_PAIR, MIN_PLUS]


@st.composite
def esc_problem(draw, max_dim=12, max_nnz=40):
    """Random (A, B, M, complemented) with empty rows likely (nnz may be 0)."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def mat(nr, nc):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, nr - 1), min_size=nnz, max_size=nnz))
        cols = draw(st.lists(st.integers(0, nc - 1), min_size=nnz, max_size=nnz))
        vals = [float(v) for v in draw(
            st.lists(st.integers(-4, 4), min_size=nnz, max_size=nnz))]
        return COOMatrix(np.array(rows, dtype=np.int64),
                         np.array(cols, dtype=np.int64),
                         np.array(vals), (nr, nc)).to_csr()

    return mat(m, k), mat(k, n), mat(m, n), draw(st.booleans())


@given(esc_problem())
@settings(max_examples=60, deadline=None)
def test_esc_equals_reference_property(problem):
    """esc ≡ reference tier, bit for bit, plain and complemented."""
    A, B, M, complemented = problem
    mask = Mask.from_matrix(M, complemented=complemented)
    ref = reference_masked_spgemm(A, B, mask, "msa")
    got = masked_spgemm(A, B, mask, algorithm="esc")
    assert got.same_pattern(ref)
    assert np.array_equal(got.data, ref.data)


@given(esc_problem())
@settings(max_examples=40, deadline=None)
def test_esc_plan_fast_path_property(problem):
    """Two-phase esc through a prebuilt plan: symbolic sizes are reused and
    cross-checked, result identical to the planless call."""
    A, B, M, complemented = problem
    mask = Mask.from_matrix(M, complemented=complemented)
    plan = build_plan(A, B, mask, algorithm="esc", phases=2)
    direct = masked_spgemm(A, B, mask, algorithm="esc", phases=2)
    planned = masked_spgemm(A, B, mask, plan=plan, phases=2)
    assert plan.nnz == direct.nnz
    assert planned.equals(direct)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("complemented", [False, True])
def test_esc_all_semirings_vs_oracle(rng, semiring, complemented):
    A, B, M = make_triple(rng, dm=0.1)
    C = masked_spgemm(A, B, Mask.from_matrix(M, complemented=complemented),
                      algorithm="esc", semiring=semiring)
    assert_masked_product_correct(C, A, B, M, semiring,
                                  complemented=complemented)


def test_esc_empty_rows_and_matrices(rng):
    """Rows with no mask entries, no A entries, and fully empty operands."""
    A = CSRMatrix.empty((6, 5))
    B = CSRMatrix.empty((5, 7))
    M = csr_random(6, 7, density=0.3, rng=rng)
    for complemented in (False, True):
        C = masked_spgemm(A, B, Mask.from_matrix(M, complemented=complemented),
                          algorithm="esc", phases=2)
        assert C.nnz == 0
    # a matrix whose middle rows are empty
    A = CSRMatrix(np.array([0, 2, 2, 2, 4]), np.array([0, 1, 0, 2]),
                  np.array([1.0, 2.0, 3.0, 4.0]), (4, 3))
    B = csr_random(3, 6, density=0.5, rng=rng, values="randint")
    M = csr_random(4, 6, density=0.4, rng=rng)
    mask = Mask.from_matrix(M)
    ref = reference_masked_spgemm(A, B, mask, "msa")
    got = masked_spgemm(A, B, mask, algorithm="esc")
    assert got.same_pattern(ref) and np.array_equal(got.data, ref.data)


def test_esc_full_mask_is_plain_spgemm(rng):
    """Mask.full (complement of empty) through esc == unmasked product."""
    from repro.core import spgemm

    A = csr_random(20, 15, density=0.2, rng=rng, values="randint")
    B = csr_random(15, 18, density=0.2, rng=rng, values="randint")
    full = Mask.full((20, 18))
    got = masked_spgemm(A, B, full, algorithm="esc", phases=2)
    want = spgemm(A, B)
    assert got.same_pattern(want) and np.array_equal(got.data, want.data)


def test_esc_row_subsets_and_symbolic(rng):
    """Chunk contract: arbitrary row subsets slice the full result, and the
    symbolic pass predicts exact sizes."""
    A, B, M = make_triple(rng, m=24)
    mask = Mask.from_matrix(M)
    full = masked_spgemm(A, B, mask, algorithm="esc")
    rows = np.array([1, 5, 6, 17, 23], dtype=INDEX_DTYPE)
    block = esc_numeric(A, B, mask, PLUS_TIMES, rows)
    sym = esc_symbolic(A, B, mask, rows)
    assert np.array_equal(block.sizes, sym)
    pos = 0
    for t, i in enumerate(rows):
        k = int(block.sizes[t])
        lo, hi = full.indptr[i], full.indptr[i + 1]
        assert k == hi - lo
        assert np.array_equal(block.cols[pos:pos + k], full.indices[lo:hi])
        assert np.array_equal(block.vals[pos:pos + k], full.data[lo:hi])
        pos += k


def test_esc_parallel_runner_chunks(rng):
    """esc through the row-parallel driver == serial esc."""
    A, B, M = make_triple(rng, m=60, k=40, n=50)
    mask = Mask.from_matrix(M)
    serial = masked_spgemm(A, B, mask, algorithm="esc", phases=2)
    with ThreadExecutor(4) as ex:
        par = masked_spgemm(A, B, mask, algorithm="esc", phases=2, executor=ex)
    assert par.equals(serial)


def test_esc_through_service_engine(rng):
    """Warm engine requests hit the cached esc plan and skip the symbolic."""
    from repro.service import Engine, Request

    A, B, M = make_triple(rng, m=40, k=30, n=35)
    eng = Engine()
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    req = Request(a="A", b="B", mask="M", algorithm="esc", phases=2)
    cold = eng.submit(req)
    warm = eng.submit(req)
    assert warm.stats.plan_cache_hit and warm.stats.symbolic_skipped
    assert warm.result.equals(cold.result)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("complemented", [False, True])
def test_msa_fused_equals_loop(rng, semiring, complemented):
    """The fused MSA passes must replicate the retained per-row loop
    (incl. its np.bincount fast path) bit for bit."""
    A, B, M = make_triple(rng, dm=0.12)
    mask = Mask.from_matrix(M, complemented=complemented)
    rows = np.arange(A.nrows, dtype=INDEX_DTYPE)
    fused = msa_kernel.numeric_rows(A, B, mask, semiring, rows)
    loop = msa_kernel.numeric_rows_loop(A, B, mask, semiring, rows)
    assert np.array_equal(fused.sizes, loop.sizes)
    assert np.array_equal(fused.cols, loop.cols)
    assert np.array_equal(fused.vals, loop.vals)
    assert np.array_equal(msa_kernel.symbolic_rows(A, B, mask, rows),
                          msa_kernel.symbolic_rows_loop(A, B, mask, rows))


def test_fused_blocks_bounds_stream(rng):
    """fused_blocks caps each block's partial-product stream at max_flops
    (single rows may exceed it) and covers the chunk exactly once."""
    from repro.core.expand import fused_blocks, per_row_flops

    A = csr_random(40, 30, density=0.3, rng=rng)
    B = csr_random(30, 35, density=0.3, rng=rng)
    rows = np.arange(40, dtype=INDEX_DTYPE)
    flops = per_row_flops(A, B)
    blocks = fused_blocks(A, B, rows, max_flops=50)
    assert np.array_equal(np.concatenate(blocks), rows)
    for b in blocks:
        assert b.size >= 1
        if b.size > 1:
            assert int(flops[b].sum()) <= 50
    # a generous budget leaves the chunk whole
    assert len(fused_blocks(A, B, rows, max_flops=int(flops.sum()))) == 1


@pytest.mark.parametrize("complemented", [False, True])
def test_fused_kernels_correct_under_tiny_flops_budget(rng, monkeypatch,
                                                       complemented):
    """Results are invariant to the memory-bounding block splits."""
    import functools

    from repro.core import esc_kernel
    from repro.core.expand import fused_blocks

    A, B, M = make_triple(rng, m=40, k=30, n=35)
    mask = Mask.from_matrix(M, complemented=complemented)
    rows = np.arange(40, dtype=INDEX_DTYPE)
    want_msa = msa_kernel.numeric_rows(A, B, mask, PLUS_TIMES, rows)
    want_esc = esc_kernel.numeric_rows(A, B, mask, PLUS_TIMES, rows)
    tiny = functools.partial(fused_blocks, max_flops=7)
    monkeypatch.setattr(msa_kernel, "fused_blocks", tiny)
    monkeypatch.setattr(esc_kernel, "fused_blocks", tiny)
    for mod, want in ((msa_kernel, want_msa), (esc_kernel, want_esc)):
        got = mod.numeric_rows(A, B, mask, PLUS_TIMES, rows)
        assert np.array_equal(got.sizes, want.sizes)
        assert np.array_equal(got.cols, want.cols)
        assert np.array_equal(got.vals, want.vals)
        assert np.array_equal(mod.symbolic_rows(A, B, mask, rows), want.sizes)


def test_key_safe_blocks_guard():
    """The int64 composite-key guard splits chunks only when keys could
    overflow, and the split covers every row exactly once."""
    rows = np.arange(10, dtype=INDEX_DTYPE)
    assert [b.tolist() for b in key_safe_blocks(rows, 1 << 20)] == [rows.tolist()]
    # absurd ncols forces blocking: limit = 2^63-1 // ncols = 3
    huge = (np.iinfo(np.int64).max // 3)
    blocks = key_safe_blocks(rows, huge)
    assert len(blocks) == 4
    assert np.array_equal(np.concatenate(blocks), rows)
    assert max(b.size for b in blocks) <= 3


def test_auto_select_routes_short_rows_to_esc(rng):
    """Low-degree (graph-like) inputs with comparable mask density hit the
    chunk-fused regime."""
    n = 512
    A = csr_random(n, n, density=4 / n, rng=rng)   # ~4 nnz/row
    M = csr_random(n, n, density=4 / n, rng=rng)
    assert auto_select(A, A, Mask.from_matrix(M)) == "esc"
    assert auto_select(A, A, Mask.from_matrix(M, complemented=True)) == "esc"
    # dense rows must keep the classic accumulators (routed to their
    # compiled variants when the native probe passes)
    from repro.native import native_available

    D = csr_random(64, 64, density=0.5, rng=rng)   # ~32 nnz/row → 1024 flops
    DM = csr_random(64, 64, density=0.5, rng=rng)
    expected = (("msa-native", "hash-native") if native_available()
                else ("msa", "hash"))
    assert auto_select(D, D, Mask.from_matrix(DM)) in expected
