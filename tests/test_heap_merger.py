"""Tests for the heap-based masked merger (paper Algorithms 4 and 5)."""

import numpy as np
import pytest

from repro.accumulators import HeapMerger, RowIterator
from repro.accumulators.heap_acc import INSPECT_ALL
from repro.semiring import MIN_PLUS, PLUS_TIMES


def iters_from(rows):
    """rows: list of (cols, vals, scale) triples."""
    return [RowIterator(np.array(c, dtype=np.int64), np.array(v, dtype=float),
                        s, i)
            for i, (c, v, s) in enumerate(rows)]


def test_row_iterator_walk():
    it = RowIterator(np.array([1, 4]), np.array([2.0, 3.0]), 10.0, 0)
    assert it.is_valid() and it.col_id == 1
    assert it.value(PLUS_TIMES) == 20.0
    it.advance()
    assert it.col_id == 4 and it.value(PLUS_TIMES) == 30.0
    it.advance()
    assert not it.is_valid()


@pytest.mark.parametrize("ninspect", [0, 1, 3, INSPECT_ALL])
def test_merge_matches_brute_force(ninspect, rng):
    for _ in range(20):
        nrows = rng.integers(0, 5)
        rows = []
        for _ in range(nrows):
            ncols = rng.integers(0, 6)
            cols = np.sort(rng.choice(20, size=ncols, replace=False))
            vals = rng.integers(1, 5, size=ncols).astype(float)
            rows.append((cols, vals, float(rng.integers(1, 4))))
        m_cols = np.sort(rng.choice(20, size=rng.integers(0, 8), replace=False))
        merger = HeapMerger(PLUS_TIMES, ninspect=ninspect)
        got_c, got_v = merger.merge(m_cols, iters_from(rows))
        # brute force
        acc = {}
        for c, v, s in rows:
            for j, x in zip(c, v):
                if j in set(m_cols.tolist()):
                    acc[j] = acc.get(j, 0.0) + s * x
        want = sorted(acc.items())
        assert got_c == [k for k, _ in want]
        assert np.allclose(got_v, [v for _, v in want])


def test_merge_complement_matches_brute_force(rng):
    for _ in range(20):
        rows = []
        for _ in range(int(rng.integers(0, 5))):
            ncols = rng.integers(0, 6)
            cols = np.sort(rng.choice(15, size=ncols, replace=False))
            vals = rng.integers(1, 5, size=ncols).astype(float)
            rows.append((cols, vals, float(rng.integers(1, 4))))
        m_cols = np.sort(rng.choice(15, size=rng.integers(0, 6), replace=False))
        got_c, got_v = HeapMerger(PLUS_TIMES, ninspect=0).merge_complement(
            m_cols, iters_from(rows))
        acc = {}
        banned = set(m_cols.tolist())
        for c, v, s in rows:
            for j, x in zip(c, v):
                if j not in banned:
                    acc[j] = acc.get(j, 0.0) + s * x
        want = sorted(acc.items())
        assert got_c == [k for k, _ in want]
        assert np.allclose(got_v, [v for _, v in want])


def test_min_plus_merge():
    rows = [([2], [5.0], 1.0), ([2], [1.0], 2.0)]
    got_c, got_v = HeapMerger(MIN_PLUS).merge(np.array([2]), iters_from(rows))
    assert got_c == [2]
    assert got_v == [min(1 + 5, 2 + 1)]


def test_ninspect_validation():
    with pytest.raises(ValueError):
        HeapMerger(PLUS_TIMES, ninspect=-1)
    with pytest.raises(ValueError):
        HeapMerger(PLUS_TIMES, ninspect=1.5)


def test_empty_inputs():
    merger = HeapMerger(PLUS_TIMES)
    assert merger.merge(np.array([1, 2]), []) == ([], [])
    assert merger.merge(np.array([], dtype=np.int64),
                        iters_from([([1], [1.0], 1.0)])) == ([], [])
    assert merger.merge_complement(np.array([], dtype=np.int64),
                                   iters_from([([1], [2.0], 3.0)])) == ([1], [6.0])
