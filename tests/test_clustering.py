"""Clustering-coefficient application tests (vs networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    average_clustering,
    clustering_coefficients,
    triangles_per_vertex,
)
from repro.graphs import erdos_renyi, watts_strogatz
from repro.graphs.prep import to_undirected_simple
from repro.sparse import csr_from_dense
from repro.sparse.convert import to_scipy


def to_nx(g):
    return nx.from_scipy_sparse_array(to_scipy(g))


@pytest.mark.parametrize("alg", ["msa", "hash", "inner"])
def test_matches_networkx(alg):
    g = to_undirected_simple(erdos_renyi(120, 6, rng=61, symmetrize=True))
    want = nx.clustering(to_nx(g))
    got = clustering_coefficients(g, algorithm=alg)
    assert np.allclose(got, [want[i] for i in range(120)])


def test_triangles_per_vertex_matches_networkx():
    g = to_undirected_simple(watts_strogatz(150, 4, 0.1, rng=62))
    want = nx.triangles(to_nx(g))
    got = triangles_per_vertex(g)
    assert np.allclose(got, [want[i] for i in range(150)])


def test_average_clustering():
    g = to_undirected_simple(watts_strogatz(100, 4, 0.0, rng=63))
    assert np.isclose(average_clustering(g), nx.average_clustering(to_nx(g)))


def test_complete_graph_is_fully_clustered():
    k5 = csr_from_dense(1.0 - np.eye(5))
    assert np.allclose(clustering_coefficients(k5), 1.0)
    assert average_clustering(k5) == 1.0


def test_triangle_free_graph_is_zero():
    c6 = np.zeros((6, 6))
    for i in range(6):
        c6[i, (i + 1) % 6] = c6[(i + 1) % 6, i] = 1
    assert np.allclose(clustering_coefficients(csr_from_dense(c6)), 0.0)


def test_low_degree_vertices_get_zero():
    # path graph: endpoints have degree 1 -> cc 0 by convention
    p = np.zeros((3, 3))
    p[0, 1] = p[1, 0] = p[1, 2] = p[2, 1] = 1
    cc = clustering_coefficients(csr_from_dense(p))
    assert np.allclose(cc, 0.0)


def test_empty_graph():
    from repro.sparse import CSRMatrix

    assert average_clustering(CSRMatrix.empty((4, 4))) == 0.0
