"""Tests for the async serving front end, the result-cache tier, and plan
persistence (repro.service.server / result_cache / PlanStore)."""

import asyncio
import json

import numpy as np
import pytest

from conftest import assert_masked_product_correct, make_triple
from repro.core.plan import SymbolicPlan, build_plan
from repro.errors import ShapeError
from repro.mask import Mask
from repro.service import (
    AsyncServer,
    Engine,
    PlanStore,
    PlanStoreError,
    Request,
    ResultCache,
    ServerClosed,
    ServerError,
    serve_all,
)
from repro.service.result_cache import result_key
from repro.service.store import matrix_nbytes
from repro.sparse import csr_random, value_fingerprint
from repro.sparse.csr import CSRMatrix


# ---------------------------------------------------------------------- #
# value fingerprints
# ---------------------------------------------------------------------- #
def test_value_fingerprint_tracks_values_only(rng):
    a = csr_random(20, 20, density=0.2, rng=rng)
    same = value_fingerprint(a.data.copy())
    assert value_fingerprint(a.data) == same
    bumped = a.data.copy()
    bumped[0] += 1.0
    assert value_fingerprint(bumped) != same


def test_store_entry_value_fingerprint_memoized_and_reset(rng):
    eng = Engine()
    a = csr_random(12, 12, density=0.3, rng=rng)
    eng.register("a", a)
    vfp = eng.store.entry("a").value_fingerprint
    assert eng.store.entry("a").value_fingerprint is vfp  # memoized
    eng.register("a", a.pattern(3.0))  # same pattern, new values
    assert eng.store.entry("a").fingerprint  # pattern fp unchanged semantics
    assert eng.store.entry("a").value_fingerprint != vfp


# ---------------------------------------------------------------------- #
# ResultCache unit behavior
# ---------------------------------------------------------------------- #
def _result_for(nnz_seed, n=16):
    return csr_random(n, n, density=0.3, rng=np.random.default_rng(nnz_seed))


def test_result_cache_byte_lru_eviction():
    mats = [_result_for(i) for i in range(3)]
    budget = sum(matrix_nbytes(m) for m in mats[:2])
    cache = ResultCache(budget_bytes=budget)
    cache.put(("k0",), mats[0], "msa")
    cache.put(("k1",), mats[1], "msa")
    assert cache.get(("k0",)).matrix is mats[0]  # k0 now MRU
    cache.put(("k2",), mats[2], "msa")           # evicts k1 (LRU)
    assert ("k1",) not in cache and ("k0",) in cache and ("k2",) in cache
    assert cache.evictions >= 1
    assert cache.total_bytes <= budget


def test_result_cache_oversize_not_admitted():
    small, big = _result_for(0, n=6), _result_for(1, n=64)
    cache = ResultCache(budget_bytes=matrix_nbytes(small) + 8)
    assert cache.put(("s",), small, "msa")
    assert not cache.put(("b",), big, "msa")
    assert ("b",) not in cache and ("s",) in cache  # innocents survive
    assert cache.oversize_rejects == 1


def test_result_cache_replace_same_key_reaccounts():
    cache = ResultCache(budget_bytes=1 << 20)
    a, b = _result_for(0), _result_for(1)
    cache.put(("k",), a, "msa")
    cache.put(("k",), b, "msa")
    assert len(cache) == 1
    assert cache.total_bytes == matrix_nbytes(b)


def test_result_cache_rejects_bad_budget():
    with pytest.raises(ValueError, match="positive"):
        ResultCache(budget_bytes=0)
    with pytest.raises(ValueError, match="min_flops_per_byte"):
        ResultCache(min_flops_per_byte=-1.0)


def test_result_cache_admission_policy_accounting():
    """Cost-aware admission: results saving fewer flops per byte than the
    threshold are rejected (counted separately from oversize rejects) so
    huge low-reuse results cannot evict hot small ones."""
    cache = ResultCache(budget_bytes=1 << 20, min_flops_per_byte=10.0)
    hot = _result_for(0, n=8)
    cold = _result_for(1, n=8)
    nbytes = matrix_nbytes(cold)
    assert cache.put(("hot",), hot, "msa", flops=100 * nbytes)   # 100 f/B
    assert not cache.put(("cold",), cold, "msa", flops=nbytes)   # 1 f/B
    assert cache.policy_rejects == 1 and cache.oversize_rejects == 0
    assert ("hot",) in cache and ("cold",) not in cache
    # exactly at the threshold admits (the rule is "fewer than")
    assert cache.put(("edge",), cold, "msa", flops=10 * nbytes)
    # no flops estimate -> policy bypassed, budget-only admission
    assert cache.put(("unknown",), _result_for(2, n=8), "msa")
    assert cache.policy_rejects == 1


def test_result_cache_policy_off_by_default():
    cache = ResultCache(budget_bytes=1 << 20)
    assert cache.put(("k",), _result_for(0), "msa", flops=0)
    assert cache.policy_rejects == 0


def test_engine_admission_threshold_knob(rng):
    """Engine(result_admit_flops_per_byte=...) rejects cheap-to-recompute
    results but keeps serving correct responses (a reject is not an error,
    just a future miss)."""
    A = csr_random(40, 40, density=0.1, rng=rng)
    M = csr_random(40, 40, density=0.2, rng=rng)
    # absurdly high threshold: nothing is worth caching
    engine = Engine(result_cache_bytes=64 << 20,
                    result_admit_flops_per_byte=1e9)
    engine.register("A", A)
    engine.register("M", M)
    req = Request(a="A", b="A", mask="M", phases=2)
    r1 = engine.submit(req)
    r2 = engine.submit(req)
    assert engine.results.policy_rejects == 2
    assert not r2.stats.result_cache_hit        # nothing was admitted
    assert r2.stats.plan_cache_hit              # plan tier still warm
    assert r2.result.equals(r1.result)
    # threshold 0 (default): same request stream serves from the cache
    engine0 = Engine(result_cache_bytes=64 << 20)
    engine0.register("A", A)
    engine0.register("M", M)
    engine0.submit(req)
    assert engine0.submit(req).stats.result_cache_hit


# ---------------------------------------------------------------------- #
# Engine × result cache
# ---------------------------------------------------------------------- #
@pytest.fixture
def cached_engine(rng):
    A, B, M = make_triple(rng)
    eng = Engine(result_cache_bytes=32 << 20)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng, (A, B, M)


def test_engine_result_cache_hit_is_bit_identical(cached_engine):
    eng, (A, B, M) = cached_engine
    req = Request(a="A", b="B", mask="M", phases=2)
    cold = eng.submit(req)
    hit = eng.submit(req)
    assert not cold.stats.result_cache_hit
    assert hit.stats.result_cache_hit and not hit.stats.plan_cache_hit
    # bit-identical: the very same CSR object comes back
    assert hit.result is cold.result
    assert hit.stats.algorithm == cold.stats.algorithm != "auto"
    assert eng.stats.result_hits == 1
    # result hits stay out of the plan hit/miss accounting
    assert eng.stats.plan_hits == 0 and eng.stats.plan_misses == 1
    assert len(eng.stats.result_latencies) == 1


def test_engine_value_change_invalidates_result_not_plan(cached_engine):
    """New values under the same pattern: the result tier must miss (values
    key it) while the plan tier keeps hitting (patterns key it)."""
    eng, (A, B, M) = cached_engine
    req = Request(a="A", b="B", mask="M", phases=2)
    eng.submit(req)
    A2 = A.pattern(0.5)  # same pattern, different values
    eng.register("A", A2)
    resp = eng.submit(req)
    assert not resp.stats.result_cache_hit
    assert resp.stats.plan_cache_hit
    assert_masked_product_correct(resp.result, A2, B, M)
    # and the old entry is still there: re-registering the original values
    # brings back result hits without recomputation
    eng.register("A", A)
    assert eng.submit(req).stats.result_cache_hit


def test_engine_distinct_configs_distinct_result_entries(cached_engine):
    eng, _ = cached_engine
    base = dict(a="A", b="B", mask="M")
    eng.submit(Request(**base, phases=2))
    for variant in (Request(**base, phases=1),
                    Request(**base, phases=2, algorithm="hash"),
                    Request(**base, phases=2, semiring="plus_pair")):
        assert not eng.submit(variant).stats.result_cache_hit, variant


def test_engine_without_result_cache_never_reports_hits(rng):
    A, B, M = make_triple(rng)
    eng = Engine()  # default: no result tier
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    req = Request(a="A", b="B", mask="M", phases=2)
    eng.submit(req)
    warm = eng.submit(req)
    assert eng.results is None
    assert not warm.stats.result_cache_hit and warm.stats.plan_cache_hit


def test_engine_multiply_bypasses_result_cache(cached_engine):
    """Ad-hoc operands are not value-hashed (iterative traffic changes
    values every call); only store-keyed requests use the result tier."""
    eng, (A, B, M) = cached_engine
    eng.multiply(A, B, M, phases=2)
    resp = eng.multiply(A, B, M, phases=2)
    assert not resp.stats.result_cache_hit and resp.stats.plan_cache_hit
    assert len(eng.results) == 0


# ---------------------------------------------------------------------- #
# plan persistence
# ---------------------------------------------------------------------- #
def test_symbolic_plan_record_roundtrip(rng):
    A, B, M = make_triple(rng)
    plan = build_plan(A, B, Mask.from_matrix(M), algorithm="auto", phases=2)
    meta, rows = plan.to_record()
    back = SymbolicPlan.from_record(json.loads(json.dumps(meta)), rows)
    assert back.algorithm == plan.algorithm and back.phases == 2
    assert back.shape == plan.shape
    assert np.array_equal(back.row_sizes, plan.row_sizes)


def test_symbolic_plan_record_rejects_missing_rows():
    from repro.errors import AlgorithmError

    meta = {"algorithm": "msa", "phases": 2, "shape": [4, 4]}
    with pytest.raises(AlgorithmError, match="row"):
        SymbolicPlan.from_record(meta, None)


def test_plan_store_roundtrip_preserves_keys_and_sizes(tmp_path, rng):
    A, B, M = make_triple(rng)
    eng = Engine()
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    eng.submit(Request(a="A", b="B", mask="M", phases=2))
    eng.submit(Request(a="A", b="B", mask="M", phases=1, algorithm="hash"))
    path = tmp_path / "plans.npz"
    assert eng.save_plans(path) == 2
    loaded = dict(PlanStore(path).load())
    assert set(loaded) == set(k for k, _ in eng.plans.items())
    for key, plan in eng.plans.items():
        got = loaded[key]
        assert got.algorithm == plan.algorithm
        assert got.phases == plan.phases and got.shape == plan.shape
        if plan.row_sizes is None:
            assert got.row_sizes is None
        else:
            assert np.array_equal(got.row_sizes, plan.row_sizes)


def test_plan_store_missing_and_corrupt(tmp_path):
    with pytest.raises(PlanStoreError, match="no plan store"):
        PlanStore(tmp_path / "absent.npz").load()
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"not a zipfile")
    with pytest.raises(PlanStoreError, match="corrupt"):
        PlanStore(bad).load()


def test_plan_store_truncated_file_is_cold_start_not_crash(tmp_path, rng):
    """A save killed mid-write (valid zip prefix, truncated tail) must
    surface as PlanStoreError — the CLI's cold-start path — not BadZipFile.
    And a failed re-save must not destroy an existing good store."""
    A, B, M = make_triple(rng)
    eng = Engine()
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    eng.submit(Request(a="A", b="B", mask="M", phases=2))
    path = tmp_path / "plans.npz"
    eng.save_plans(path)
    intact = path.read_bytes()
    path.write_bytes(intact[: len(intact) // 2])  # simulate the kill
    with pytest.raises(PlanStoreError, match="corrupt"):
        PlanStore(path).load()
    # atomic save: writing again fully replaces the truncated file
    eng.save_plans(path)
    assert len(PlanStore(path).load()) == 1
    assert not path.with_name(path.name + ".tmp").exists()


def test_plan_store_schema_mismatch(tmp_path):
    import numpy as np

    path = tmp_path / "other.npz"
    doc = json.dumps({"schema": "something-else", "plans": []})
    with open(path, "wb") as f:
        np.savez(f, manifest=np.frombuffer(doc.encode(), dtype=np.uint8))
    with pytest.raises(PlanStoreError, match="schema"):
        PlanStore(path).load()


def test_engine_restart_serves_warm_with_zero_symbolic_work(
        tmp_path, rng, monkeypatch):
    """The ISSUE acceptance behavior: persist plans, kill the engine,
    restore into a fresh one, and every repeated-mask request must hit the
    restored plan — build_plan never runs, no row sizes are recomputed."""
    import repro.service.engine as engine_mod

    A, B, M = make_triple(rng)
    eng = Engine()
    for key, val in (("A", A), ("B", B), ("M", M)):
        eng.register(key, val)
    reqs = [Request(a="A", b="B", mask="M", phases=2),
            Request(a="A", b="B", mask="M", phases=2, algorithm="msa"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="hash")]
    cold = [eng.submit(r) for r in reqs]
    path = tmp_path / "plans.npz"
    saved = eng.save_plans(path)
    assert saved == len(reqs)
    del eng  # the restart: nothing in-memory survives

    restarted = Engine()
    for key, val in (("A", A), ("B", B), ("M", M)):
        restarted.register(key, val)
    assert restarted.load_plans(path) == saved

    calls = []
    monkeypatch.setattr(engine_mod, "build_plan",
                        lambda *a, **k: calls.append(1))
    for req, cold_resp in zip(reqs, cold):
        warm = restarted.submit(req)
        assert warm.stats.plan_cache_hit and warm.stats.symbolic_skipped
        assert warm.stats.plan_seconds == 0
        assert warm.result.equals(cold_resp.result)  # bit-identical replay
    assert calls == []  # zero symbolic passes, zero recomputed row sizes
    assert restarted.stats.plan_hits == len(reqs)
    assert restarted.stats.plan_misses == 0


def test_load_plans_respects_cache_capacity(tmp_path, rng):
    """Restoring more plans than the cache holds must evict, not overflow."""
    eng = Engine()
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    for alg in ("msa", "hash", "heap"):
        eng.submit(Request(a="A", b="B", mask="M", phases=2, algorithm=alg))
    path = tmp_path / "plans.npz"
    eng.save_plans(path)
    small = Engine(plan_capacity=2)
    assert small.load_plans(path) == 3
    assert len(small.plans) == 2


# ---------------------------------------------------------------------- #
# AsyncServer
# ---------------------------------------------------------------------- #
def _server_engine(rng, **engine_kw):
    A, B, M = make_triple(rng, m=30, k=25, n=30)
    eng = Engine(**engine_kw)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng, (A, B, M)


def test_async_serve_preserves_order_and_results(rng):
    eng, (A, B, M) = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, tag=str(i))
            for i in range(12)]

    async def main():
        async with AsyncServer(eng, workers=3, max_batch=4) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    assert [r.tag for r in resps] == [str(i) for i in range(12)]
    for r in resps:
        assert_masked_product_correct(r.result, A, B, M)
    # identical in-flight requests coalesce (dedup is on by default): every
    # request is answered, and executed + coalesced covers all twelve
    assert srv.stats.completed + srv.stats.coalesced == 12
    assert srv.stats.failed == 0
    assert srv.stats.batches <= 12
    assert all(r.stats.queued_seconds >= 0 for r in resps)


def test_async_server_batches_by_group_key(rng):
    """A single-group burst drains into few batches; one cold plan, the rest
    warm — the batch layer's locality carried over to the async path."""
    eng, _ = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, algorithm="msa")
            for _ in range(8)]

    async def main():
        # dedup off: this test exercises group-key batching, which needs
        # the identical requests to actually execute
        async with AsyncServer(eng, workers=1, max_batch=8,
                               dedup=False) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    assert srv.stats.batches < 8
    assert sum(1 for r in resps if not r.stats.plan_cache_hit) == 1


def test_async_server_backpressure_bounds_inflight(rng):
    eng, _ = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, tag=str(i))
            for i in range(10)]

    async def main():
        async with AsyncServer(eng, workers=1, max_inflight=2,
                               max_batch=2, dedup=False) as srv:
            await serve_all(srv, reqs)
            return srv

    srv = asyncio.run(main())
    assert srv.stats.completed == 10
    assert srv.stats.max_inflight_seen <= 2
    assert srv.stats.max_queue_depth <= 2


def test_async_server_flops_bound_still_completes(rng):
    """A queued-flops budget smaller than one request must degrade to
    serial draining, never deadlock."""
    eng, _ = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2) for _ in range(5)]

    async def main():
        async with AsyncServer(eng, workers=2, max_queued_flops=1,
                               dedup=False) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    assert srv.stats.completed == 5 and len(resps) == 5


def test_async_server_error_attributed_to_failing_request(rng):
    """Bad requests fail alone — at admission for shape mismatches (the
    flops estimator validates early), in the worker for execution errors —
    and their stream-mates still complete."""
    from repro.errors import AlgorithmError

    eng, _ = _server_engine(rng)
    bad = csr_random(7, 9, density=0.4, rng=np.random.default_rng(3))
    eng.register("Bad", bad)  # 7x9 against B(25x30): shape mismatch
    good = [Request(a="A", b="B", mask="M", phases=2, tag="good")
            for _ in range(3)]
    reqs = (good[:1]
            + [Request(a="Bad", b="B", phases=2, tag="bad-shape")]
            + good[1:2]
            # no mask + complemented: passes admission, raises in the worker
            + [Request(a="A", b="B", complemented=True, tag="bad-exec")]
            + good[2:])

    async def main():
        async with AsyncServer(eng, workers=1, max_batch=8,
                               dedup=False) as srv:
            return await asyncio.gather(
                *[srv.submit(r) for r in reqs], return_exceptions=True)

    results = asyncio.run(main())
    assert isinstance(results[1], ShapeError)      # admission-time
    assert isinstance(results[3], AlgorithmError)  # worker-time
    ok = [r for i, r in enumerate(results) if i not in (1, 3)]
    assert all(not isinstance(r, Exception) for r in ok)
    for r in ok:
        assert r.tag == "good"
    # exactly-once execution: the failure path must not re-run the
    # batchmates that had already completed (stats would double-count)
    assert eng.stats.requests == len(ok)


def test_batch_executor_return_exceptions_runs_each_once(rng):
    from repro.service import BatchExecutor

    eng, _ = _server_engine(rng)
    bad = csr_random(7, 9, density=0.4, rng=np.random.default_rng(3))
    eng.register("Bad", bad)
    reqs = [Request(a="A", b="B", mask="M", phases=2),
            Request(a="Bad", b="B", phases=2),
            Request(a="A", b="B", mask="M", phases=2)]
    result = BatchExecutor(eng).run(reqs, return_exceptions=True)
    assert isinstance(result.responses[1], ShapeError)
    assert not isinstance(result.responses[0], Exception)
    assert not isinstance(result.responses[2], Exception)
    assert eng.stats.requests == 2  # failing request never recorded
    # without the flag the batch still aborts loudly
    with pytest.raises(ShapeError):
        BatchExecutor(eng).run(reqs)


def test_async_server_closed_refuses_and_unknown_key_fails_at_admission(rng):
    eng, _ = _server_engine(rng)

    async def main():
        srv = AsyncServer(eng)
        with pytest.raises(ServerError, match="not started"):
            await srv.submit(Request(a="A", b="B"))
        async with srv:
            from repro.service import StoreError

            with pytest.raises(StoreError, match="no matrix"):
                await srv.submit(Request(a="missing", b="B"))
        with pytest.raises(ServerClosed):
            await srv.submit(Request(a="A", b="B"))

    asyncio.run(main())


def test_async_server_rejects_bad_bounds(rng):
    eng, _ = _server_engine(rng)
    with pytest.raises(ServerError, match="positive"):
        AsyncServer(eng, workers=0)
    with pytest.raises(ServerError, match="max_queued_flops"):
        AsyncServer(eng, max_queued_flops=0)


def test_async_server_result_cache_tier_reported(rng):
    eng, _ = _server_engine(rng, result_cache_bytes=16 << 20)
    reqs = [Request(a="A", b="B", mask="M", phases=2) for _ in range(6)]

    async def main():
        async with AsyncServer(eng, workers=2, max_batch=3,
                               dedup=False) as srv:
            return await serve_all(srv, reqs)

    resps = asyncio.run(main())
    hits = [r for r in resps if r.stats.result_cache_hit]
    misses = [r for r in resps if not r.stats.result_cache_hit]
    # two workers may race both cold batches, but hits must alias a computed
    # result object and every response must be bit-identical
    assert hits
    computed = {id(m.result) for m in misses}
    assert all(id(h.result) in computed for h in hits)
    assert all(r.result.equals(resps[0].result) for r in resps)
    assert eng.stats.result_hits == len(hits)


# ---------------------------------------------------------------------- #
# request dedup (coalescing identical in-flight requests)
# ---------------------------------------------------------------------- #
def test_async_server_coalesces_identical_inflight(rng):
    """A burst of identical requests executes once; followers share the
    primary's result object and are flagged coalesced."""
    eng, (A, B, M) = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, tag=str(i))
            for i in range(10)]

    async def main():
        async with AsyncServer(eng, workers=2) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    coalesced = [r for r in resps if r.stats.coalesced]
    primaries = [r for r in resps if not r.stats.coalesced]
    assert srv.stats.coalesced == len(coalesced)
    assert srv.stats.completed == len(primaries)
    assert len(primaries) >= 1 and len(coalesced) >= 1
    assert eng.stats.requests == len(primaries)  # executed exactly once each
    # followers alias the primary's matrix (no copy) and keep their own tag
    pid = {id(p.result) for p in primaries}
    for r in coalesced:
        assert id(r.result) in pid
    assert [r.tag for r in resps] == [str(i) for i in range(10)]
    for r in resps:
        assert_masked_product_correct(r.result, A, B, M)


def test_async_server_dedup_distinguishes_values(rng):
    """Same patterns, different values → different value fingerprints →
    no coalescing (the results would differ)."""
    eng, (A, B, M) = _server_engine(rng)
    A2 = CSRMatrix(A.indptr.copy(), A.indices.copy(), A.data + 1.0, A.shape)
    eng.register("A2", A2)
    reqs = [Request(a="A", b="B", mask="M", phases=2),
            Request(a="A2", b="B", mask="M", phases=2)]

    async def main():
        async with AsyncServer(eng, workers=1) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    assert srv.stats.coalesced == 0
    assert not resps[0].result.equals(resps[1].result)


def test_async_server_dedup_distinguishes_config(rng):
    """Same operands, different kernel/phases/semiring → no coalescing."""
    eng, _ = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, algorithm="msa"),
            Request(a="A", b="B", mask="M", phases=1, algorithm="msa"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="hash"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="msa",
                    semiring="plus_pair")]

    async def main():
        async with AsyncServer(eng, workers=1) as srv:
            return await serve_all(srv, reqs), srv

    _, srv = asyncio.run(main())
    assert srv.stats.coalesced == 0 and srv.stats.completed == 4


def test_async_server_dedup_propagates_primary_failure(rng):
    """Followers of a failing primary re-raise the same engine error."""
    from repro.errors import AlgorithmError

    eng, _ = _server_engine(rng)
    # no mask + complemented raises in the worker, after admission
    reqs = [Request(a="A", b="B", complemented=True) for _ in range(4)]

    async def main():
        async with AsyncServer(eng, workers=1) as srv:
            return await asyncio.gather(
                *[srv.submit(r) for r in reqs], return_exceptions=True)

    results = asyncio.run(main())
    assert all(isinstance(r, AlgorithmError) for r in results)


def test_async_server_dedup_off_executes_each(rng):
    eng, _ = _server_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2) for _ in range(6)]

    async def main():
        async with AsyncServer(eng, workers=2, dedup=False) as srv:
            return await serve_all(srv, reqs), srv

    resps, srv = asyncio.run(main())
    assert srv.stats.coalesced == 0
    assert srv.stats.completed == 6
    assert not any(r.stats.coalesced for r in resps)


def test_warm_requests_report_direct_write(rng):
    """Two-phase engine requests on a fused kernel flag the direct-write
    numeric path in their telemetry (cold and warm alike — the cold pass
    also writes through its freshly built plan)."""
    eng, _ = _server_engine(rng)
    req = Request(a="A", b="B", mask="M", phases=2, algorithm="esc")
    cold = eng.submit(req)
    warm = eng.submit(req)
    assert cold.stats.direct_write and warm.stats.direct_write
    one_phase = eng.submit(Request(a="A", b="B", mask="M", phases=1,
                                   algorithm="esc"))
    assert not one_phase.stats.direct_write
    unfused = eng.submit(Request(a="A", b="B", mask="M", phases=2,
                                 algorithm="mca"))
    assert not unfused.stats.direct_write


# ---------------------------------------------------------------------- #
# deltas vs in-flight reads (PR 8)
# ---------------------------------------------------------------------- #
def test_delta_mid_flight_refuses_stale_result_writeback(rng, monkeypatch):
    """The staleness hazard, engine-level: a delta lands on an operand
    while a request is mid-numeric. The request's snapshot stays consistent
    (copy-on-write entries), but its late result-cache writeback must be
    refused by the version guard — otherwise a pre-delta product would
    resurrect into the post-delta cache, behind the invalidation the delta
    just ran."""
    import threading

    import repro.service.engine as engine_mod
    from repro.delta import DeltaBatch

    eng, (A, B, M) = _server_engine(rng, result_cache_bytes=1 << 24)
    req = Request(a="A", b="B", mask="M", phases=2)
    started, release = threading.Event(), threading.Event()
    real = engine_mod.masked_spgemm

    def held(*args, **kw):
        started.set()
        assert release.wait(10.0)
        return real(*args, **kw)

    monkeypatch.setattr(engine_mod, "masked_spgemm", held)
    box = {}
    t = threading.Thread(target=lambda: box.update(resp=eng.submit(req)))
    t.start()
    assert started.wait(10.0)
    rows = np.repeat(np.arange(A.nrows), np.diff(A.indptr))
    eng.apply_delta("A", DeltaBatch(
        update=[(int(rows[0]), int(A.indices[0]), 123.0)]))
    release.set()
    t.join(10.0)
    monkeypatch.undo()

    # the in-flight response itself is the correct *pre-delta* product
    assert_masked_product_correct(box["resp"].result, A, B, M)
    assert "repro_delta_stale_total 1" in eng.metrics.render()
    # nothing resurrected: the next submit misses the result tier (old
    # value hash invalidated, new one never written back stale)
    resp2 = eng.submit(req)
    assert not resp2.stats.result_cache_hit
    resp3 = eng.submit(req)       # ...and the fresh product cached normally
    assert resp3.stats.result_cache_hit


def test_async_server_orders_delta_against_reads(rng, monkeypatch):
    """The server-side ordering contract: a delta waits out in-flight reads
    on its key; reads admitted after the delta began park at the gate and
    resolve post-delta entries."""
    import threading

    import repro.service.engine as engine_mod
    from repro.delta import DeltaBatch

    eng, (A, B, M) = _server_engine(rng)
    started = threading.Event()
    release = threading.Event()
    real = engine_mod.masked_spgemm

    def held(*args, **kw):
        started.set()
        assert release.wait(10.0)
        return real(*args, **kw)

    monkeypatch.setattr(engine_mod, "masked_spgemm", held)
    rows = np.repeat(np.arange(A.nrows), np.diff(A.indptr))
    batch = DeltaBatch(delete=[(int(rows[i]), int(A.indices[i]))
                               for i in range(5)])

    async def main():
        async with AsyncServer(eng, workers=2) as srv:
            r1 = asyncio.create_task(
                srv.submit(Request(a="A", b="B", mask="M", phases=2)))
            await asyncio.to_thread(started.wait, 10.0)
            delta = asyncio.create_task(srv.apply_delta("A", batch))
            # the writer must park until the in-flight reader drains...
            await asyncio.sleep(0.1)
            assert not delta.done() and "A" in srv._writers
            # ...and a read admitted behind it parks at the gate
            r2 = asyncio.create_task(
                srv.submit(Request(a="A", b="B", mask="M", phases=2,
                                   tag="post")))
            await asyncio.sleep(0.1)
            assert not r2.done()
            release.set()
            resp1 = await r1
            outcome = await delta
            resp2 = await r2
            return resp1, outcome, resp2

    resp1, outcome, resp2 = asyncio.run(main())
    monkeypatch.undo()
    # first read saw the pre-delta operands, second the post-delta ones
    assert_masked_product_correct(resp1.result, A, B, M)
    assert outcome.kind == "pattern"
    post_A = eng.entry("A").value
    assert_masked_product_correct(resp2.result, post_A, B, M)
