"""Matrix Market I/O tests."""

import io

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.sparse import csr_random, read_matrix_market, write_matrix_market


def roundtrip(m):
    buf = io.StringIO()
    write_matrix_market(m, buf)
    buf.seek(0)
    return read_matrix_market(buf)


def test_roundtrip_real(rng):
    m = csr_random(20, 30, density=0.15, rng=rng)
    assert roundtrip(m).equals(m)


def test_roundtrip_empty():
    from repro.sparse import CSRMatrix

    m = CSRMatrix.empty((5, 5))
    assert roundtrip(m).equals(m)


def test_pattern_field_roundtrip(rng):
    m = csr_random(10, 10, density=0.2, rng=rng).pattern()
    buf = io.StringIO()
    write_matrix_market(m, buf, field="pattern")
    buf.seek(0)
    got = read_matrix_market(buf)
    assert got.same_pattern(m)
    assert np.all(got.data == 1.0)


def test_reads_symmetric_storage():
    text = """%%MatrixMarket matrix coordinate real symmetric
% comment line
3 3 3
2 1 5.0
3 2 7.0
1 1 2.0
"""
    m = read_matrix_market(io.StringIO(text))
    d = m.to_dense()
    assert d[1, 0] == 5.0 and d[0, 1] == 5.0
    assert d[2, 1] == 7.0 and d[1, 2] == 7.0
    assert d[0, 0] == 2.0  # diagonal not duplicated
    assert m.nnz == 5


def test_reads_integer_and_pattern_fields():
    text_int = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 4\n"
    m = read_matrix_market(io.StringIO(text_int))
    assert m.to_dense()[0, 1] == 4.0
    text_pat = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
    m = read_matrix_market(io.StringIO(text_pat))
    assert m.nnz == 2
    assert np.all(m.data == 1.0)


def test_rejects_bad_header():
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO("not a header\n1 1 0\n"))
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"))


def test_rejects_wrong_entry_count():
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"))
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n"))


def test_rejects_garbage_entries():
    with pytest.raises(IOFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n"))


def test_file_path_roundtrip(tmp_path, rng):
    m = csr_random(8, 8, density=0.3, rng=rng)
    p = tmp_path / "m.mtx"
    write_matrix_market(m, p)
    assert read_matrix_market(p).equals(m)


def test_duplicates_summed():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n1 1 2.5\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.nnz == 1
    assert m.to_dense()[0, 0] == 4.0
