"""Graph generator tests: structure, determinism, parameter behaviour."""

import numpy as np
import pytest

from repro.graphs import (
    banded_matrix,
    chung_lu,
    erdos_renyi,
    grid_graph,
    rmat,
    watts_strogatz,
)
from repro.graphs.generators import GRAPH500_PARAMS


def pattern_symmetric(g):
    d = g.to_dense() != 0
    return np.array_equal(d, d.T)


def no_self_loops(g):
    return np.all(g.diagonal() == 0)


class TestErdosRenyi:
    def test_size_and_degree(self):
        g = erdos_renyi(500, 4, rng=0)
        assert g.shape == (500, 500)
        # duplicates collapse: realized degree <= requested, but close
        assert 2.5 <= g.nnz / 500 <= 4.0

    def test_deterministic_by_seed(self):
        assert erdos_renyi(100, 3, rng=42).equals(erdos_renyi(100, 3, rng=42))
        assert not erdos_renyi(100, 3, rng=1).equals(erdos_renyi(100, 3, rng=2))

    def test_symmetrize(self):
        g = erdos_renyi(120, 3, rng=7, symmetrize=True)
        assert pattern_symmetric(g)
        assert no_self_loops(g)

    def test_zero_degree(self):
        assert erdos_renyi(10, 0, rng=0).nnz == 0


class TestRMAT:
    def test_shape_is_power_of_two(self):
        g = rmat(7, 8, rng=0)
        assert g.shape == (128, 128)

    def test_params_must_sum_to_one(self):
        with pytest.raises(ValueError):
            rmat(5, 8, params=(0.5, 0.5, 0.5, 0.5), rng=0)

    def test_graph500_defaults_are_skewed(self):
        g = rmat(9, 16, rng=3)
        deg = np.sort(g.row_nnz())[::-1]
        # heavy head: top 10% of vertices hold well over 10% of edges
        top = deg[: len(deg) // 10].sum()
        assert top / max(deg.sum(), 1) > 0.25
        assert GRAPH500_PARAMS == (0.57, 0.19, 0.19, 0.05)

    def test_symmetric_simple_by_default(self):
        g = rmat(6, 8, rng=5)
        assert pattern_symmetric(g)
        assert no_self_loops(g)

    def test_uniform_params_approach_er(self):
        g = rmat(8, 8, params=(0.25, 0.25, 0.25, 0.25), rng=1)
        deg = g.row_nnz()
        # ER-like: no extreme hubs
        assert deg.max() < 12 * max(deg.mean(), 1)


class TestOthers:
    def test_watts_strogatz_degree(self):
        g = watts_strogatz(200, 4, 0.0, rng=0)  # no rewiring: pure ring
        assert pattern_symmetric(g)
        deg = g.row_nnz()
        assert np.all(deg == 8)  # k neighbours each side

    def test_watts_strogatz_rewiring_changes_graph(self):
        a = watts_strogatz(100, 3, 0.0, rng=1)
        b = watts_strogatz(100, 3, 0.5, rng=1)
        assert not a.equals(b)

    def test_grid_graph_structure(self):
        g = grid_graph(4)
        assert g.shape == (16, 16)
        assert pattern_symmetric(g)
        deg = g.row_nnz()
        # corners 2, edges 3, interior 4
        assert sorted(np.unique(deg)) == [2, 3, 4]
        assert g.nnz == 2 * (2 * 4 * 3)  # 24 undirected mesh edges

    def test_banded_respects_bandwidth(self):
        bw = 5
        g = banded_matrix(100, bw, rng=2)
        rows = np.repeat(np.arange(100), g.row_nnz())
        assert np.all(np.abs(rows - g.indices) <= bw)
        assert pattern_symmetric(g)

    def test_chung_lu_power_law_head(self):
        g = chung_lu(400, 8, 2.2, rng=4)
        deg = np.sort(g.row_nnz())[::-1]
        assert deg[0] > 4 * max(np.median(deg), 1)
        assert pattern_symmetric(g)

    def test_empty_graphs(self):
        assert watts_strogatz(0, 3, 0.1).nnz == 0
        assert chung_lu(0, 4).nnz == 0
