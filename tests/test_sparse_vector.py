"""SparseVector format tests."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import SparseVector


def test_basic_construction():
    v = SparseVector([1, 4], [2.0, 3.0], 6)
    assert v.n == 6 and v.nnz == 2
    assert np.array_equal(v.to_dense(), [0, 2, 0, 0, 3, 0])


def test_invariants_enforced():
    with pytest.raises(FormatError):
        SparseVector([4, 1], [1.0, 2.0], 6)       # unsorted
    with pytest.raises(FormatError):
        SparseVector([1, 1], [1.0, 2.0], 6)       # duplicate
    with pytest.raises(FormatError):
        SparseVector([7], [1.0], 6)               # out of range
    with pytest.raises(FormatError):
        SparseVector([1], [1.0, 2.0], 6)          # length mismatch


def test_from_pairs_sorts_and_sums():
    v = SparseVector.from_pairs([4, 1, 4], [1.0, 2.0, 3.0], 6)
    assert v.indices.tolist() == [1, 4]
    assert v.data.tolist() == [2.0, 4.0]


def test_from_dense_roundtrip(rng):
    d = rng.random(20)
    d[d < 0.5] = 0.0
    v = SparseVector.from_dense(d)
    assert np.allclose(v.to_dense(), d)


def test_row_matrix_roundtrip(rng):
    v = SparseVector.from_dense((rng.random(15) > 0.6).astype(float))
    m = v.as_row_matrix()
    assert m.shape == (1, 15)
    back = SparseVector.from_row_matrix(m)
    assert back.equals(v)


def test_from_row_matrix_rejects_multirow(rng):
    from repro.sparse import csr_random

    with pytest.raises(FormatError):
        SparseVector.from_row_matrix(csr_random(2, 5, density=0.5, rng=rng))


def test_empty_and_copy():
    v = SparseVector.empty(9)
    assert v.nnz == 0 and v.n == 9
    c = v.copy()
    assert c.equals(v)
