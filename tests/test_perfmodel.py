"""Performance-model tests: §4 traffic formulas, cache simulator, traces."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.mask import Mask
from repro.perfmodel import (
    LRUCache,
    predicted_best,
    pull_traffic,
    push_traffic,
    row_trace,
    simulate_row_misses,
)
from repro.perfmodel.traffic import accumulator_traffic, total_traffic
from repro.sparse import csr_random


# --------------------------------------------------------------------- #
# analytic traffic
# --------------------------------------------------------------------- #
class TestTraffic:
    def test_pull_formula_literal(self, rng):
        A = csr_random(50, 50, density=0.1, rng=rng)
        B = csr_random(50, 50, density=0.1, rng=rng)
        M = csr_random(50, 50, density=0.1, rng=rng)
        got = pull_traffic(A, B, Mask.from_matrix(M))
        want = A.nnz + M.nnz * (1 + B.nnz / 50)
        assert np.isclose(got, want)

    def test_push_formula_literal(self, rng):
        from repro.core.expand import total_flops

        A = csr_random(40, 40, density=0.1, rng=rng)
        B = csr_random(40, 40, density=0.1, rng=rng)
        M = csr_random(40, 40, density=0.1, rng=rng)
        got = push_traffic(A, B, Mask.from_matrix(M), L=8)
        want = A.nnz + A.nnz * 8 + total_flops(A, B) + M.nnz
        assert np.isclose(got, want)

    def test_pull_wins_for_sparse_masks(self):
        A = erdos_renyi(256, 16, rng=1)
        B = erdos_renyi(256, 16, rng=2)
        sparse = Mask.from_matrix(erdos_renyi(256, 1, rng=3))
        assert predicted_best(A, B, sparse) == "inner"

    def test_push_wins_for_dense_masks(self):
        A = erdos_renyi(256, 2, rng=4)
        B = erdos_renyi(256, 2, rng=5)
        dense = Mask.from_matrix(erdos_renyi(256, 64, rng=6))
        assert predicted_best(A, B, dense) != "inner"

    def test_msa_penalized_when_working_set_exceeds_cache(self, rng):
        A = csr_random(64, 64, density=0.1, rng=rng)
        B = csr_random(64, 64, density=0.1, rng=rng)
        M = csr_random(64, 64, density=0.1, rng=rng)
        mask = Mask.from_matrix(M)
        small_cache = accumulator_traffic("msa", A, B, mask, Z=64)
        big_cache = accumulator_traffic("msa", A, B, mask, Z=1 << 20)
        assert small_cache > big_cache

    def test_heap_has_no_scatter_table_cost(self, rng):
        A = csr_random(64, 64, density=0.05, rng=rng)
        B = csr_random(64, 64, density=0.05, rng=rng)
        mask = Mask.from_matrix(csr_random(64, 64, density=0.05, rng=rng))
        # tiny cache: MSA pays full touches, heap stays cheap
        assert (accumulator_traffic("heap", A, B, mask, Z=64)
                < accumulator_traffic("msa", A, B, mask, Z=64))

    def test_unknown_algorithm_rejected(self, rng):
        A = csr_random(8, 8, density=0.3, rng=rng)
        mask = Mask.from_matrix(A)
        with pytest.raises(ValueError):
            accumulator_traffic("fft", A, A, mask)

    def test_total_traffic_bytes(self, rng):
        A = csr_random(16, 16, density=0.3, rng=rng)
        mask = Mask.from_matrix(A)
        t = total_traffic("msa", A, A, mask)
        assert t.bytes == t.words * 8


# --------------------------------------------------------------------- #
# cache simulator
# --------------------------------------------------------------------- #
class TestLRUCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LRUCache(1000, 64, 8)  # not divisible

    def test_cold_misses_then_hits(self):
        c = LRUCache(1024, 64, 2)
        assert not c.access(0)     # cold miss
        assert c.access(8)         # same line -> hit
        assert c.access(0)
        assert c.misses == 1 and c.hits == 2

    def test_capacity_eviction(self):
        # direct-mapped-ish: 1 set x 2 ways of 64B lines = 128B cache
        c = LRUCache(128, 64, 2)
        c.access(0)        # line 0
        c.access(64)       # line 1
        c.access(128)      # line 2 evicts line 0 (LRU)
        assert not c.access(0)   # miss: was evicted
        assert c.access(128)     # hit: most recent survives

    def test_lru_order_updates_on_hit(self):
        c = LRUCache(128, 64, 2)
        c.access(0)
        c.access(64)
        c.access(0)        # touch line 0 -> 64 becomes LRU
        c.access(128)      # evicts 64
        assert c.access(0)
        assert not c.access(64)

    def test_miss_rate_and_reset(self):
        c = LRUCache(1024, 64, 2)
        c.access_many(np.arange(0, 4096, 64))
        assert c.miss_rate == 1.0
        c.reset_stats()
        assert c.accesses == 0

    def test_flush(self):
        c = LRUCache(1024, 64, 2)
        c.access(0)
        c.flush()
        assert not c.access(0)  # cold again


# --------------------------------------------------------------------- #
# address traces
# --------------------------------------------------------------------- #
class TestTraces:
    @pytest.fixture
    def problem(self, rng):
        A = csr_random(48, 48, density=0.15, rng=rng)
        B = csr_random(48, 48, density=0.15, rng=rng)
        M = csr_random(48, 48, density=0.2, rng=rng)
        return A, B, Mask.from_matrix(M)

    @pytest.mark.parametrize("alg", ["msa", "hash", "mca", "heap"])
    def test_traces_nonempty_for_active_rows(self, problem, alg):
        A, B, mask = problem
        total = sum(row_trace(alg, A, B, mask, i).size for i in range(10))
        assert total > 0

    def test_unknown_algorithm(self, problem):
        A, B, mask = problem
        with pytest.raises(ValueError):
            row_trace("fft", A, B, mask, 0)

    def test_msa_misses_grow_with_matrix_width(self, rng):
        """The paper's §5.3 motivation: MSA's dense arrays outgrow cache as
        ncols grows, while the hash table tracks nnz(m) and stays cached."""
        def miss_rate(alg, n):
            A = csr_random(64, n, density=8 / n, rng=np.random.default_rng(5))
            B = csr_random(n, n, density=8 / n, rng=np.random.default_rng(6))
            M = csr_random(64, n, density=8 / n, rng=np.random.default_rng(7))
            m, a = simulate_row_misses(alg, A, B, Mask.from_matrix(M),
                                       range(64), size_bytes=8 * 1024)
            return m / max(a, 1)

        small, large = miss_rate("msa", 256), miss_rate("msa", 1 << 15)
        assert large > small * 1.5
        # hash stays low even at large n
        assert miss_rate("hash", 1 << 15) < large


# --------------------------------------------------------------------- #
# fused-chunk model: cache-aware chunk sizing (PR 4)
# --------------------------------------------------------------------- #
class TestFusedChunkModel:
    def test_fused_stream_trace_shape(self):
        from repro.perfmodel.trace import (FUSED_STREAM_PASSES,
                                           fused_stream_trace)

        tr = fused_stream_trace(100, passes=3)
        assert tr.size == 3 * 100 * 3  # passes × flops × stream words
        assert tr.min() == 0 and tr.max() == (100 * 3 - 1) * 8
        assert fused_stream_trace(10).size == FUSED_STREAM_PASSES * 10 * 3

    def test_chunk_budget_sits_on_the_cache_cliff(self):
        """Validate parallel.partition.chunk_budget against the cache
        simulator: a budget-sized chunk's fused working set reuses cache
        across passes (low miss rate); a chunk several budgets large misses
        on every sweep. Run at a scaled-down cache so true-LRU replay stays
        cheap — the budget formula is size-ratio invariant."""
        from repro.perfmodel.trace import fused_chunk_miss_rate
        from repro.parallel.partition import chunk_budget

        cache_bytes = 64 * 1024
        budget = chunk_budget(cache_bytes)
        within = fused_chunk_miss_rate(max(budget // 2, 1), cache_bytes)
        beyond = fused_chunk_miss_rate(budget * 8, cache_bytes)
        # in-budget chunks: only the cold sweep misses (≤ ~1/passes of the
        # per-line rate); over-budget chunks: every sweep is cold
        assert within < beyond / 3
        assert beyond > 0.08  # ≈ word/line cold rate on every sweep

    def test_budget_headroom_for_sort_temporaries(self):
        """The bytes-per-flop constant must cover at least the stream arrays
        the trace models (keys+vals+perm over FUSED_STREAM_PASSES sweeps
        need the stream resident once)."""
        from repro.parallel.partition import (DEFAULT_CHUNK_CACHE_BYTES,
                                              FUSED_BYTES_PER_FLOP,
                                              chunk_budget)

        assert FUSED_BYTES_PER_FLOP >= 3 * 8  # keys + vals + permutation
        assert chunk_budget() * 3 * 8 <= DEFAULT_CHUNK_CACHE_BYTES
