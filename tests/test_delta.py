"""Differential-oracle harness for incremental serving (repro.delta).

The contract under test is absolute: every delta path — value-only swaps,
pattern splices, sharpened B-side propagation, result patching, the
plan-free route — must leave the engine serving products **bit-identical**
to a cold engine whose operands were rebuilt from scratch and whose plans
were built cold. :func:`conftest.oracle_pair` implements that comparison;
the hypothesis strategies drive it across random matrices and batches
(empty batches, duplicate edges, delete-then-reinsert, rows emptied out),
and the directed tests pin each mechanism individually.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_bit_identical, oracle_pair, rebuild_from_scratch
from repro.core import registry
from repro.core.plan import build_plan, splice_plan
from repro.delta import DeltaBatch, DeltaError
from repro.errors import AlgorithmError
from repro.graphs import erdos_renyi, rmat, to_undirected_simple
from repro.mask import Mask
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.service import Engine, Request
from repro.service.plan import plan_key
from repro.service.result_cache import result_key
from repro.service.store import StoreError
from repro.shard.planner import ShardPlanner, split_row_sizes
from repro.sparse import csr_random
from repro.sparse import ops
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _matrix_from_cells(n: int, cells: dict) -> CSRMatrix:
    """CSR over exactly the (row, col) → value mapping ``cells``."""
    if not cells:
        return COOMatrix(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.float64), (n, n)).to_csr()
    coords = sorted(cells)
    rows = np.array([r for r, _ in coords], dtype=np.int64)
    cols = np.array([c for _, c in coords], dtype=np.int64)
    vals = np.array([float(cells[c]) for c in coords])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


# ---------------------------------------------------------------------- #
# DeltaBatch semantics
# ---------------------------------------------------------------------- #
class TestBatchSemantics:
    def _base(self, n=6):
        return _matrix_from_cells(n, {(0, 1): 2, (0, 4): 3, (1, 0): 1,
                                      (2, 2): 5, (4, 3): 7, (5, 5): 4})

    def test_empty_batch_is_noop_same_object(self):
        m = self._base()
        res = DeltaBatch().apply(m)
        assert res.kind == "noop"
        assert res.matrix is m          # pure no-op: not even a copy
        assert res.dirty_rows.size == 0 and res.changed_keys.size == 0

    def test_delete_unstored_is_noop(self):
        m = self._base()
        res = DeltaBatch(delete=[(3, 3), (0, 0)]).apply(m)
        assert res.kind == "noop" and res.matrix is m

    def test_insert_on_stored_coordinate_is_value_only(self):
        m = self._base()
        res = DeltaBatch(insert=[(0, 1, 9.0)]).apply(m)
        assert res.kind == "value"
        assert res.dirty_rows.size == 0
        # pattern arrays are shared, values are fresh
        assert res.matrix.indptr is m.indptr
        assert res.matrix.indices is m.indices
        assert res.matrix.data is not m.data
        assert res.matrix.data[np.searchsorted(m.indices[:2], 1)] == 9.0
        assert m.data[0] == 2.0         # source never mutated

    def test_duplicate_coordinates_last_occurrence_wins(self):
        m = self._base()
        res = DeltaBatch(insert=[(3, 3, 1.0), (3, 3, 8.0)]).apply(m)
        got = {(r, c): v for r, c, v in zip(
            np.repeat(np.arange(6), np.diff(res.matrix.indptr)),
            res.matrix.indices, res.matrix.data)}
        assert got[(3, 3)] == 8.0

    def test_delete_then_reinsert_leaves_row_pattern_clean(self):
        m = self._base()
        res = DeltaBatch(delete=[(0, 1)], insert=[(0, 1, 6.0)]).apply(m)
        assert res.kind == "value"      # pattern round-tripped
        assert res.dirty_rows.size == 0
        assert res.matrix.same_pattern(m)

    def test_strict_update_of_unstored_raises(self):
        with pytest.raises(DeltaError, match="update"):
            DeltaBatch(update=[(3, 3, 1.0)]).apply(self._base())

    def test_out_of_range_coordinates_raise(self):
        for bad in ({"insert": [(6, 0, 1.0)]}, {"delete": [(0, -1)]},
                    {"update": [(0, 99, 1.0)]}):
            with pytest.raises(DeltaError, match="out of range"):
                DeltaBatch(**bad).apply(self._base())

    def test_malformed_edge_lists_raise(self):
        with pytest.raises(DeltaError):
            DeltaBatch(insert=[(0, 1)]).apply(self._base())   # missing value
        with pytest.raises(DeltaError):
            DeltaBatch(delete=[(0, 1, 2, 3)]).apply(self._base())
        with pytest.raises(DeltaError, match="integers"):
            DeltaBatch(delete=[(0.5, 1)]).apply(self._base())

    def test_row_shrinks_to_empty(self):
        m = self._base()
        res = DeltaBatch(delete=[(0, 1), (0, 4)]).apply(m)
        assert res.kind == "pattern"
        assert 0 in res.dirty_rows
        assert np.diff(res.matrix.indptr)[0] == 0

    def test_changed_keys_is_exact_coordinate_symmetric_difference(self):
        m = self._base()
        res = DeltaBatch(delete=[(0, 1)], insert=[(3, 3, 1.0)]).apply(m)
        want = np.sort(ops.coord_keys(np.array([0, 3]), np.array([1, 3]),
                                      m.ncols))
        assert np.array_equal(res.changed_keys, want)

    def test_mixed_kind_when_pattern_and_values_both_move(self):
        m = self._base()
        res = DeltaBatch(delete=[(0, 1)], update=[(2, 2, 9.0)]).apply(m)
        assert res.kind == "mixed"
        assert np.array_equal(res.dirty_rows, [0])


# ---------------------------------------------------------------------- #
# hypothesis strategies: matrices + delta batches
# ---------------------------------------------------------------------- #
@st.composite
def delta_case(draw, n_min=3, n_max=9):
    """A base cell map plus a batch whose updates are guaranteed valid
    (updates target coordinates that survive the deletes+inserts)."""
    n = draw(st.integers(n_min, n_max))
    cell = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    val = st.integers(1, 9)
    base = draw(st.dictionaries(cell, val, max_size=3 * n))
    deletes = draw(st.lists(cell, max_size=6))
    inserts = draw(st.lists(st.tuples(cell, val), max_size=6))
    survivors = sorted((set(base) - set(deletes)) | {c for c, _ in inserts})
    updates = (draw(st.lists(st.tuples(st.sampled_from(survivors), val),
                             max_size=4)) if survivors else [])
    batch = DeltaBatch(
        insert=[(r, c, float(v)) for (r, c), v in inserts],
        delete=list(deletes),
        update=[(r, c, float(v)) for (r, c), v in updates])
    return n, base, batch


class TestDifferentialOracle:
    """Every delta path vs rebuild-from-scratch + cold re-plan."""

    @given(delta_case())
    @settings(max_examples=40, deadline=None)
    def test_self_product_any_batch(self, case):
        """k-truss shape: C ⊙ (C·C) with PLUS_PAIR, one key in all three
        slots — a single delta exercises the a-, b- and mask-slot splices
        at once."""
        n, base, batch = case
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("G", _matrix_from_cells(n, base))
        req = Request(a="G", b="G", mask="G", phases=2, semiring="plus_pair")
        eng.submit(req)                     # warm plan + cached result
        out = eng.apply_delta("G", batch)
        live, cold = oracle_pair(eng, req)
        assert_bit_identical(live.result, cold.result, context=out.kind)

    @given(delta_case(), st.sampled_from(["A", "B", "M"]))
    @settings(max_examples=40, deadline=None)
    def test_distinct_operands_delta_on_each_slot(self, case, slot):
        """Distinct A, B, mask (integer values — exact in f64); the delta
        lands in one slot, covering the 1:1 row map (A/M) and the sharpened
        B-side propagation separately."""
        n, base, batch = case
        rng = np.random.default_rng(n * 1000 + len(base))
        mats = {"A": _matrix_from_cells(n, base),
                "B": csr_random(n, n, density=0.3, rng=rng, values="randint"),
                "M": csr_random(n, n, density=0.4, rng=rng)}
        if slot != "A":   # the batch was drawn against `base`'s cell map
            mats[slot], mats["A"] = mats["A"], mats[slot]
        eng = Engine(result_cache_bytes=1 << 24)
        for k, v in mats.items():
            eng.register(k, v)
        req = Request(a="A", b="B", mask="M", phases=2,
                      semiring="plus_times")
        eng.submit(req)
        out = eng.apply_delta(slot, batch)
        live, cold = oracle_pair(eng, req)
        assert_bit_identical(live.result, cold.result,
                             context=f"slot={slot} kind={out.kind}")

    @given(delta_case(n_min=4))
    @settings(max_examples=25, deadline=None)
    def test_complemented_mask_fallback(self, case):
        """B-slot deltas under a complemented mask take the conservative
        rows_touching fallback — still bit-identical."""
        n, base, batch = case
        rng = np.random.default_rng(n)
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("A", csr_random(n, n, density=0.3, rng=rng,
                                     values="randint"))
        eng.register("B", _matrix_from_cells(n, base))
        eng.register("M", csr_random(n, n, density=0.3, rng=rng))
        req = Request(a="A", b="B", mask="M", complemented=True, phases=2,
                      algorithm="esc", semiring="plus_times")
        eng.submit(req)
        eng.apply_delta("B", batch)
        live, cold = oracle_pair(eng, req)
        assert_bit_identical(live.result, cold.result)

    def test_oracle_on_er_graph_delete_and_reinsert_waves(self, rng):
        """Streaming shape on an Erdős–Rényi graph: waves of deletes, then
        re-inserts of some of the same edges (pattern round trips for those
        rows), bit-identical after every wave."""
        g = to_undirected_simple(erdos_renyi(48, 4, rng=rng)).pattern()
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("G", g)
        req = Request(a="G", b="G", mask="G", phases=2, semiring="plus_pair")
        eng.submit(req)
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        edges = np.column_stack((rows, g.indices))
        pick = rng.choice(edges.shape[0], size=12, replace=False)
        eng.apply_delta("G", DeltaBatch(delete=edges[pick]))
        live, cold = oracle_pair(eng, req)
        assert_bit_identical(live.result, cold.result, context="delete wave")
        back = edges[pick[:6]]
        eng.apply_delta("G", DeltaBatch(
            insert=[(int(r), int(c), 1.0) for r, c in back]))
        live, cold = oracle_pair(eng, req)
        assert_bit_identical(live.result, cold.result, context="reinsert")


# ---------------------------------------------------------------------- #
# dirty-row computation, pinned
# ---------------------------------------------------------------------- #
class TestDirtyRows:
    def _warm_engine(self, rng, n=40):
        g = to_undirected_simple(rmat(6, 4, rng=rng)).pattern()
        eng = Engine()
        eng.register("G", g)
        req = Request(a="G", b="G", mask="G", phases=2, semiring="plus_pair")
        eng.submit(req)
        return eng, g, req

    def test_spliced_plan_matches_cold_plan_everywhere(self, rng):
        """After a pattern delta, the spliced plan's row sizes equal a cold
        plan's on every row — clean rows carried, dirty rows recomputed."""
        eng, g, req = self._warm_engine(rng)
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        edges = np.column_stack((rows, g.indices))
        pick = rng.choice(edges.shape[0], size=8, replace=False)
        out = eng.apply_delta("G", DeltaBatch(delete=edges[pick]))
        assert out.plans_spliced == 1
        new = rebuild_from_scratch(eng.entry("G").value)
        mask = Mask.from_matrix(new)
        (pkey, spliced), = [(k, p) for k, p in eng.plans.items()
                            if k[0] == out.pattern_fingerprint]
        cold = build_plan(new, new, mask, algorithm=spliced.algorithm,
                          phases=2)
        assert np.array_equal(spliced.row_sizes, cold.row_sizes)

    def test_splice_plan_empty_dirty_returns_same_object(self, rng):
        a = csr_random(12, 12, density=0.3, rng=rng)
        mask = Mask.from_matrix(csr_random(12, 12, density=0.3, rng=rng))
        plan = build_plan(a, a, mask, algorithm="msa", phases=2)
        assert splice_plan(plan, a, a, mask, np.empty(0, np.int64)) is plan

    def test_splice_plan_runs_symbolic_over_exactly_dirty_rows(
            self, rng, monkeypatch):
        """The incremental claim itself: the symbolic pass inside a splice
        visits the dirty rows and nothing else."""
        a = csr_random(16, 16, density=0.25, rng=rng)
        mask = Mask.from_matrix(csr_random(16, 16, density=0.3, rng=rng))
        plan = build_plan(a, a, mask, algorithm="esc", phases=2)
        visited = []
        real = registry.get_spec

        def recording_get_spec(key):
            spec = real(key)

            def symbolic(*args):
                visited.append(np.asarray(args[-1]).copy())
                return spec.symbolic(*args)

            return dataclasses.replace(spec, symbolic=symbolic)

        monkeypatch.setattr(registry, "get_spec", recording_get_spec)
        dirty = np.array([2, 7, 11], dtype=np.int64)
        spliced = splice_plan(plan, a, a, mask, dirty)
        assert len(visited) == 1
        assert np.array_equal(np.sort(visited[0]), dirty)
        # and the clean rows were carried over untouched
        clean = np.setdiff1d(np.arange(16), dirty)
        assert np.array_equal(spliced.row_sizes[clean], plan.row_sizes[clean])

    def test_splice_plan_rejects_out_of_range_dirty(self, rng):
        a = csr_random(8, 8, density=0.3, rng=rng)
        mask = Mask.from_matrix(a)
        plan = build_plan(a, a, mask, algorithm="msa", phases=2)
        with pytest.raises(AlgorithmError, match="dirty rows"):
            splice_plan(plan, a, a, mask, np.array([8]))

    def test_rows_affected_through_covers_every_changed_output_row(self, rng):
        """Soundness of the sharpened B-side propagation: every output row
        that actually differs after a B-pattern change is in the computed
        set, and the set never exceeds the naive neighborhood bound."""
        from repro.core import masked_spgemm

        n = 30
        for trial in range(5):
            A = csr_random(n, n, density=0.15, rng=rng, values="randint")
            B = csr_random(n, n, density=0.15, rng=rng, values="randint")
            M = csr_random(n, n, density=0.3, rng=rng)
            res = DeltaBatch(delete=[
                (int(r), int(c)) for r, c in zip(
                    np.repeat(np.arange(n), B.row_nnz()), B.indices)][:5]
            ).apply(B)
            B2 = res.matrix
            affected = ops.rows_affected_through(
                A, M.indptr, M.indices, res.changed_keys, n)
            mask = Mask.from_matrix(M)
            C1 = masked_spgemm(A, B, mask, algorithm="msa",
                               semiring=PLUS_TIMES)
            C2 = masked_spgemm(A, B2, mask, algorithm="msa",
                               semiring=PLUS_TIMES)
            d1, d2 = C1.to_dense(), C2.to_dense()
            changed = np.flatnonzero((d1 != d2).any(axis=1))
            assert np.all(np.isin(changed, affected)), \
                f"trial {trial}: changed rows escape the dirty set"
            naive = ops.rows_touching(A, res.dirty_rows)
            assert np.all(np.isin(affected, naive))

    def test_splice_result_rows_matches_dense_edit(self, rng):
        m = csr_random(14, 10, density=0.3, rng=rng, values="randint")
        dirty = np.array([1, 5, 13], dtype=np.int64)
        sizes = np.array([0, 3, 2], dtype=np.int64)
        cols = np.array([2, 5, 9, 0, 4], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = ops.splice_result_rows(m, dirty, sizes, cols, vals)
        want = m.to_dense()
        want[dirty] = 0.0               # sizes align with dirty positionally:
        want[5, [2, 5, 9]] = [1.0, 2.0, 3.0]   # row 1 → 0 entries,
        want[13, [0, 4]] = [4.0, 5.0]          # row 5 → 3, row 13 → 2
        assert np.array_equal(out.to_dense(), want)
        assert np.diff(out.indptr)[1] == 0 and np.diff(out.indptr)[5] == 3
        # clean rows bit-equal to the source
        clean = np.setdiff1d(np.arange(14), dirty)
        assert np.array_equal(out.to_dense()[clean], m.to_dense()[clean])


# ---------------------------------------------------------------------- #
# cache economics across deltas (regression)
# ---------------------------------------------------------------------- #
class TestCacheEconomics:
    def _pair(self, rng, n=24):
        eng = Engine(result_cache_bytes=1 << 24)
        for key in ("A", "B", "M", "X", "Y"):
            eng.register(key, csr_random(n, n, density=0.25, rng=rng,
                                         values="randint"))
        r1 = Request(a="A", b="B", mask="M", phases=2)
        r2 = Request(a="X", b="Y", mask="M", phases=2)
        eng.submit(r1)
        eng.submit(r2)
        return eng, r1, r2

    def test_value_only_delta_keeps_plan_cache_perfect(self, rng):
        """A value delta must not cost a single plan miss: the pattern
        fingerprint is carried forward, so the next request is a plan hit
        (the result tier misses — values changed — exactly once)."""
        eng, r1, _ = self._pair(rng)
        a = eng.entry("A").value
        rows = np.repeat(np.arange(a.nrows), a.row_nnz())
        upd = [(int(rows[i]), int(a.indices[i]), float(a.data[i] + 1))
               for i in range(0, a.nnz, 3)]
        misses_before = eng.plans.misses
        out = eng.apply_delta("A", DeltaBatch(update=upd))
        assert out.kind == "value" and out.plans_spliced == 0
        assert out.pattern_fingerprint == eng.entry("A").fingerprint
        resp = eng.submit(r1)
        assert resp.stats.plan_cache_hit and not resp.stats.result_cache_hit
        assert eng.plans.misses == misses_before
        live, cold = oracle_pair(eng, r1)
        assert_bit_identical(live.result, cold.result)

    def test_value_delta_invalidates_only_affected_result_entries(self, rng):
        """The fingerprint scan is targeted: mutating A kills A·B's cached
        product but X·Y's survives and still serves from the result tier."""
        eng, r1, r2 = self._pair(rng)
        out = eng.apply_delta("A", DeltaBatch(update=[(0, int(
            eng.entry("A").value.indices[0]), 99.0)]))
        assert out.results_invalidated >= 1
        assert eng.submit(r2).stats.result_cache_hit    # innocent survives
        assert not eng.submit(r1).stats.result_cache_hit

    def test_pattern_delta_patches_cached_result(self, rng):
        """kind == "pattern" with a resident product: the splice carries the
        plan AND the result — the first post-delta request is a result-tier
        hit, bit-identical to a cold rebuild."""
        g = to_undirected_simple(rmat(6, 6, rng=rng)).pattern()
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("G", g)
        req = Request(a="G", b="G", mask="G", phases=2, semiring="plus_pair")
        eng.submit(req)
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        edges = np.column_stack((rows, g.indices))
        out = eng.apply_delta("G", DeltaBatch(delete=edges[
            rng.choice(edges.shape[0], size=10, replace=False)]))
        assert out.kind == "pattern"
        assert out.plans_spliced == 1 and out.results_patched == 1
        live, cold = oracle_pair(eng, req)
        assert live.stats.result_cache_hit
        assert_bit_identical(live.result, cold.result)

    def test_mixed_delta_never_patches_results(self, rng):
        """A mixed batch's value updates land outside the dirty row set, so
        patching would be unsound — the engine must skip it (and still serve
        bit-identically from a fresh numeric pass)."""
        eng, r1, _ = self._pair(rng)
        a = eng.entry("A").value
        rows = np.repeat(np.arange(a.nrows), a.row_nnz())
        out = eng.apply_delta("A", DeltaBatch(
            delete=[(int(rows[0]), int(a.indices[0]))],
            update=[(int(rows[-1]), int(a.indices[-1]), 42.0)]))
        assert out.kind == "mixed" and out.results_patched == 0
        live, cold = oracle_pair(eng, r1)
        assert not live.stats.result_cache_hit
        assert_bit_identical(live.result, cold.result)

    def test_patched_result_key_names_post_delta_content(self, rng):
        """The patched entry is reachable under the *new* fingerprints only
        — probing with old fingerprints misses (no resurrection)."""
        g = to_undirected_simple(rmat(5, 5, rng=rng)).pattern()
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("G", g)
        req = Request(a="G", b="G", mask="G", phases=2, semiring="plus_pair")
        eng.submit(req)
        old_fp = eng.entry("G").fingerprint
        old_vfp = eng.entry("G").value_fingerprint
        old_key = result_key(
            plan_key(old_fp, old_fp, old_fp, False, "auto", 2, "plus_pair"),
            old_vfp, old_vfp)
        assert old_key in eng.results       # resident before the delta
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        eng.apply_delta("G", DeltaBatch(
            delete=[(int(rows[0]), int(g.indices[0]))]))
        assert old_key not in eng.results

    def test_delta_kind_counters(self, rng):
        eng = Engine()
        eng.register("G", csr_random(10, 10, density=0.3, rng=rng))
        g = eng.entry("G").value
        rows = np.repeat(np.arange(10), g.row_nnz())
        eng.apply_delta("G", DeltaBatch())                        # noop
        eng.apply_delta("G", DeltaBatch(
            update=[(int(rows[0]), int(g.indices[0]), 5.0)]))     # value
        eng.apply_delta("G", DeltaBatch(
            delete=[(int(rows[1]), int(g.indices[1]))]))          # pattern
        rendered = eng.metrics.render()
        for kind in ("noop", "value", "pattern"):
            assert f'repro_delta_total{{kind="{kind}"}} 1' in rendered


# ---------------------------------------------------------------------- #
# plan-free route and admission errors
# ---------------------------------------------------------------------- #
class TestRoutesAndErrors:
    def test_plan_free_route_after_delta_bypasses_both_caches(self, rng):
        g = to_undirected_simple(erdos_renyi(32, 3, rng=rng)).pattern()
        eng = Engine(result_cache_bytes=1 << 24)
        eng.register("G", g)
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        eng.apply_delta("G", DeltaBatch(
            delete=[(int(rows[0]), int(g.indices[0]))]))
        req = Request(a="G", b="G", mask="G", phases=2,
                      semiring="plus_pair", plan_free=True)
        plans_before = len(eng.plans)
        resp = eng.submit(req)
        assert not resp.stats.planned and not resp.stats.result_cache_hit
        assert len(eng.plans) == plans_before       # no LRU pollution
        live, cold = oracle_pair(
            eng, Request(a="G", b="G", mask="G", phases=2,
                         semiring="plus_pair"))
        assert_bit_identical(resp.result, cold.result)
        assert_bit_identical(live.result, cold.result)

    def test_delta_on_mask_entry_raises(self, rng):
        eng = Engine()
        eng.register("M", Mask.from_matrix(
            csr_random(8, 8, density=0.3, rng=rng)))
        with pytest.raises(StoreError, match="CSR"):
            eng.apply_delta("M", DeltaBatch(delete=[(0, 0)]))

    def test_delta_on_unknown_key_raises(self):
        with pytest.raises(StoreError):
            Engine().apply_delta("nope", DeltaBatch(delete=[(0, 0)]))

    def test_noop_outcome_carries_fingerprints_and_version(self, rng):
        eng = Engine()
        eng.register("G", csr_random(8, 8, density=0.3, rng=rng))
        version = eng.store.version("G")
        out = eng.apply_delta("G", DeltaBatch())
        assert out.kind == "noop"
        assert out.pattern_fingerprint == eng.entry("G").fingerprint
        assert eng.store.version("G") == version    # no swap on a no-op


# ---------------------------------------------------------------------- #
# dirty-range shard re-planning
# ---------------------------------------------------------------------- #
class TestShardResplit:
    def test_resplit_keeps_boundaries_and_recomputes_offsets(self, rng):
        a = csr_random(64, 64, density=0.2, rng=rng)
        mask = Mask.from_matrix(csr_random(64, 64, density=0.3, rng=rng))
        plan = build_plan(a, a, mask, algorithm="esc", phases=2)
        planner = ShardPlanner(4)
        old = planner.split(plan, key=("old",))
        # perturb some row sizes the way a splice would
        sizes = plan.row_sizes.copy()
        sizes[[3, 17, 40]] += np.array([2, -1, 3])
        spliced = dataclasses.replace(plan, row_sizes=sizes)
        new = planner.resplit(("old",), ("new",), spliced)
        assert [(p.row_lo, p.row_hi) for p in new] == \
            [(p.row_lo, p.row_hi) for p in old]     # boundaries carried
        indptr = np.concatenate([[0], np.cumsum(sizes)])
        for p in new:
            assert p.nnz_lo == indptr[p.row_lo]
            assert p.nnz_hi == indptr[p.row_hi]     # offsets re-derived
        # and the new key is memoized: a later split is a hit
        hits = planner.hits
        assert planner.split(spliced, key=("new",)) == new
        assert planner.hits == hits + 1

    def test_resplit_unknown_old_key_returns_none(self, rng):
        a = csr_random(16, 16, density=0.3, rng=rng)
        plan = build_plan(a, a, Mask.from_matrix(a), algorithm="esc",
                          phases=2)
        assert ShardPlanner(2).resplit(("never",), ("new",), plan) is None

    def test_resplit_offsets_consistent_with_fresh_split_totals(self, rng):
        a = csr_random(40, 40, density=0.25, rng=rng)
        plan = build_plan(a, a, Mask.from_matrix(a), algorithm="esc",
                          phases=2)
        planner = ShardPlanner(3)
        planner.split(plan, key=("k",))
        new = planner.resplit(("k",), ("k2",), plan)
        fresh = split_row_sizes(plan.row_sizes, 3)
        assert new[-1].nnz_hi == fresh[-1].nnz_hi == int(plan.row_sizes.sum())


# ---------------------------------------------------------------------- #
# end-to-end: k-truss served via deltas
# ---------------------------------------------------------------------- #
class TestKTrussDelta:
    def test_matches_full_replan_bit_identically(self, rng):
        from repro.algorithms.ktruss import ktruss, ktruss_delta

        g = rmat(7, 6, rng=rng)
        full = ktruss(g, 5, phases=2)
        inc = ktruss_delta(g, 5)
        assert_bit_identical(inc.subgraph, full.subgraph)
        assert inc.iterations == full.iterations
        # every iteration after the first is served warm (spliced plan or
        # patched result)
        assert all(h >= 1 for h in inc.plan_hits_per_iteration[1:])

    def test_store_key_evicted_after_run(self, rng):
        from repro.algorithms.ktruss import ktruss_delta

        eng = Engine(result_cache_bytes=1 << 24)
        ktruss_delta(rmat(6, 4, rng=rng), 4, engine=eng)
        assert "ktruss:C" not in eng.store
