"""Tests for structural/element-wise ops (the GraphBLAS-ish helpers)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSRMatrix, csr_random, ops


def test_ewise_mult_intersection(rng):
    a = csr_random(12, 14, density=0.3, rng=rng)
    b = csr_random(12, 14, density=0.3, rng=rng)
    c = ops.ewise_mult(a, b)
    assert np.allclose(c.to_dense(), a.to_dense() * b.to_dense())


def test_ewise_mult_custom_op(rng):
    a = csr_random(10, 10, density=0.3, rng=rng, values="ones")
    b = csr_random(10, 10, density=0.3, rng=rng, values="ones")
    c = ops.ewise_mult(a, b, op=np.minimum)
    # both store 1.0 at intersections
    assert np.all(c.data == 1.0)


def test_ewise_add_union(rng):
    a = csr_random(12, 14, density=0.2, rng=rng)
    b = csr_random(12, 14, density=0.2, rng=rng)
    c = ops.ewise_add(a, b)
    assert np.allclose(c.to_dense(), a.to_dense() + b.to_dense())
    # union semantics: pattern is the union of stored patterns
    ka = set(zip(*np.nonzero(a.to_dense() != 0)))
    assert c.nnz >= max(a.nnz, b.nnz)


def test_ewise_add_passthrough_values():
    a = CSRMatrix([0, 1], [0], [5.0], (1, 2))
    b = CSRMatrix([0, 1], [1], [7.0], (1, 2))
    c = ops.ewise_add(a, b)
    assert c.nnz == 2
    assert np.allclose(c.to_dense(), [[5.0, 7.0]])


def test_ewise_div_restricted_to_divisor_pattern():
    a = CSRMatrix([0, 2], [0, 1], [6.0, 9.0], (1, 2))
    b = CSRMatrix([0, 1], [0], [2.0], (1, 2))
    c = ops.ewise_div(a, b)
    assert c.nnz == 1
    assert c.to_dense()[0, 0] == 3.0


def test_shape_mismatch_raises(rng):
    a = csr_random(3, 4, density=0.5, rng=rng)
    b = csr_random(4, 3, density=0.5, rng=rng)
    with pytest.raises(ShapeError):
        ops.ewise_mult(a, b)
    with pytest.raises(ShapeError):
        ops.ewise_add(a, b)


def test_apply_mask_plain_and_complement(rng):
    c = csr_random(10, 10, density=0.4, rng=rng)
    m = csr_random(10, 10, density=0.3, rng=rng)
    kept = ops.apply_mask(c, m)
    dropped = ops.apply_mask(c, m, complemented=True)
    md = m.to_dense() != 0
    assert np.allclose(kept.to_dense(), c.to_dense() * md)
    assert np.allclose(dropped.to_dense(), c.to_dense() * ~md)
    # partition: every stored entry lands in exactly one side
    assert kept.nnz + dropped.nnz == c.nnz


def test_pattern_union_and_difference(rng):
    a = csr_random(8, 8, density=0.3, rng=rng)
    b = csr_random(8, 8, density=0.3, rng=rng)
    u = ops.pattern_union(a, b)
    assert np.array_equal(u.to_dense() != 0,
                          (a.to_dense() != 0) | (b.to_dense() != 0))
    d = ops.pattern_difference(a, b)
    assert np.array_equal(d.to_dense() != 0,
                          (a.to_dense() != 0) & ~(b.to_dense() != 0))


def test_symmetrize(rng):
    a = csr_random(9, 9, density=0.2, rng=rng)
    s = ops.symmetrize(a)
    ds = s.to_dense() != 0
    assert np.array_equal(ds, ds.T)
    assert np.all(ds[a.to_dense() != 0])


def test_symmetrize_requires_square(rng):
    with pytest.raises(ShapeError):
        ops.symmetrize(csr_random(3, 4, density=0.5, rng=rng))


def test_remove_diagonal():
    # stored: (0,0) diag, (0,1) off-diag, (1,1) diag -> one survivor
    m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
    r = ops.remove_diagonal(m)
    assert r.nnz == 1
    assert r.to_dense()[0, 1] == 2.0
    assert np.all(r.diagonal() == 0)


def test_scale_values(rng):
    a = csr_random(6, 6, density=0.4, rng=rng)
    s = ops.scale_values(a, lambda v: v * 2.0)
    assert s.same_pattern(a)
    assert np.allclose(s.data, a.data * 2.0)


def test_transpose_csr_matches_dense(rng):
    a = csr_random(7, 13, density=0.3, rng=rng)
    assert np.allclose(ops.transpose_csr(a).to_dense(), a.to_dense().T)


# ---------------------------------------------------------------------- #
# pattern fingerprinting (the PlanCache key primitive)
# ---------------------------------------------------------------------- #
def test_fingerprint_deterministic(rng):
    a = csr_random(20, 25, density=0.2, rng=rng)
    assert ops.matrix_fingerprint(a) == ops.matrix_fingerprint(a)
    assert ops.matrix_fingerprint(a) == ops.matrix_fingerprint(a.copy())


def test_fingerprint_ignores_values(rng):
    a = csr_random(20, 25, density=0.2, rng=rng)
    b = CSRMatrix(a.indptr.copy(), a.indices.copy(), a.data * 3.14 + 1.0,
                  a.shape, check=False)
    assert ops.matrix_fingerprint(a) == ops.matrix_fingerprint(b)
    assert ops.matrix_fingerprint(a) == ops.matrix_fingerprint(a.pattern())


def test_fingerprint_distinguishes_patterns(rng):
    seen = set()
    for seed in range(40):
        m = csr_random(15, 15, density=0.2, rng=np.random.default_rng(seed))
        seen.add(ops.matrix_fingerprint(m))
    assert len(seen) == 40  # 40 random patterns, 40 distinct fingerprints


def test_fingerprint_single_entry_moves():
    # moving one nonzero anywhere in the matrix must change the hash
    fps = set()
    for i in range(6):
        for j in range(6):
            m = CSRMatrix.empty((6, 6))
            row = np.zeros(7, dtype=np.int64)
            row[i + 1:] = 1
            m = CSRMatrix(row, np.array([j]), np.array([1.0]), (6, 6))
            fps.add(ops.matrix_fingerprint(m))
    assert len(fps) == 36


def test_fingerprint_shape_matters():
    # same (empty) arrays, different shapes -> different fingerprints
    import numpy as _np
    empty = _np.empty(0, dtype=_np.int64)
    fp_a = ops.pattern_fingerprint(_np.zeros(4, dtype=_np.int64), empty, (3, 5))
    fp_b = ops.pattern_fingerprint(_np.zeros(4, dtype=_np.int64), empty, (3, 6))
    assert fp_a != fp_b


def test_fingerprint_indptr_indices_boundary():
    # the indptr|indices split is part of the digest: two patterns whose
    # concatenated arrays coincide must still hash differently
    m1 = CSRMatrix([0, 1, 1], [0], [1.0], (2, 2))       # entry at (0,0)
    m2 = CSRMatrix([0, 0, 1], [0], [1.0], (2, 2))       # entry at (1,0)
    assert ops.matrix_fingerprint(m1) != ops.matrix_fingerprint(m2)


def test_fingerprint_dtype_and_layout_invariance(rng):
    a = csr_random(10, 12, density=0.3, rng=rng)
    fp32 = ops.pattern_fingerprint(a.indptr.astype(np.int32),
                                   a.indices.astype(np.int32), a.shape)
    strided = ops.pattern_fingerprint(
        np.repeat(a.indptr, 2)[::2], np.repeat(a.indices, 2)[::2], a.shape)
    assert fp32 == ops.matrix_fingerprint(a) == strided
