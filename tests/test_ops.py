"""Tests for structural/element-wise ops (the GraphBLAS-ish helpers)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSRMatrix, csr_random, ops


def test_ewise_mult_intersection(rng):
    a = csr_random(12, 14, density=0.3, rng=rng)
    b = csr_random(12, 14, density=0.3, rng=rng)
    c = ops.ewise_mult(a, b)
    assert np.allclose(c.to_dense(), a.to_dense() * b.to_dense())


def test_ewise_mult_custom_op(rng):
    a = csr_random(10, 10, density=0.3, rng=rng, values="ones")
    b = csr_random(10, 10, density=0.3, rng=rng, values="ones")
    c = ops.ewise_mult(a, b, op=np.minimum)
    # both store 1.0 at intersections
    assert np.all(c.data == 1.0)


def test_ewise_add_union(rng):
    a = csr_random(12, 14, density=0.2, rng=rng)
    b = csr_random(12, 14, density=0.2, rng=rng)
    c = ops.ewise_add(a, b)
    assert np.allclose(c.to_dense(), a.to_dense() + b.to_dense())
    # union semantics: pattern is the union of stored patterns
    ka = set(zip(*np.nonzero(a.to_dense() != 0)))
    assert c.nnz >= max(a.nnz, b.nnz)


def test_ewise_add_passthrough_values():
    a = CSRMatrix([0, 1], [0], [5.0], (1, 2))
    b = CSRMatrix([0, 1], [1], [7.0], (1, 2))
    c = ops.ewise_add(a, b)
    assert c.nnz == 2
    assert np.allclose(c.to_dense(), [[5.0, 7.0]])


def test_ewise_div_restricted_to_divisor_pattern():
    a = CSRMatrix([0, 2], [0, 1], [6.0, 9.0], (1, 2))
    b = CSRMatrix([0, 1], [0], [2.0], (1, 2))
    c = ops.ewise_div(a, b)
    assert c.nnz == 1
    assert c.to_dense()[0, 0] == 3.0


def test_shape_mismatch_raises(rng):
    a = csr_random(3, 4, density=0.5, rng=rng)
    b = csr_random(4, 3, density=0.5, rng=rng)
    with pytest.raises(ShapeError):
        ops.ewise_mult(a, b)
    with pytest.raises(ShapeError):
        ops.ewise_add(a, b)


def test_apply_mask_plain_and_complement(rng):
    c = csr_random(10, 10, density=0.4, rng=rng)
    m = csr_random(10, 10, density=0.3, rng=rng)
    kept = ops.apply_mask(c, m)
    dropped = ops.apply_mask(c, m, complemented=True)
    md = m.to_dense() != 0
    assert np.allclose(kept.to_dense(), c.to_dense() * md)
    assert np.allclose(dropped.to_dense(), c.to_dense() * ~md)
    # partition: every stored entry lands in exactly one side
    assert kept.nnz + dropped.nnz == c.nnz


def test_pattern_union_and_difference(rng):
    a = csr_random(8, 8, density=0.3, rng=rng)
    b = csr_random(8, 8, density=0.3, rng=rng)
    u = ops.pattern_union(a, b)
    assert np.array_equal(u.to_dense() != 0,
                          (a.to_dense() != 0) | (b.to_dense() != 0))
    d = ops.pattern_difference(a, b)
    assert np.array_equal(d.to_dense() != 0,
                          (a.to_dense() != 0) & ~(b.to_dense() != 0))


def test_symmetrize(rng):
    a = csr_random(9, 9, density=0.2, rng=rng)
    s = ops.symmetrize(a)
    ds = s.to_dense() != 0
    assert np.array_equal(ds, ds.T)
    assert np.all(ds[a.to_dense() != 0])


def test_symmetrize_requires_square(rng):
    with pytest.raises(ShapeError):
        ops.symmetrize(csr_random(3, 4, density=0.5, rng=rng))


def test_remove_diagonal():
    # stored: (0,0) diag, (0,1) off-diag, (1,1) diag -> one survivor
    m = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
    r = ops.remove_diagonal(m)
    assert r.nnz == 1
    assert r.to_dense()[0, 1] == 2.0
    assert np.all(r.diagonal() == 0)


def test_scale_values(rng):
    a = csr_random(6, 6, density=0.4, rng=rng)
    s = ops.scale_values(a, lambda v: v * 2.0)
    assert s.same_pattern(a)
    assert np.allclose(s.data, a.data * 2.0)


def test_transpose_csr_matches_dense(rng):
    a = csr_random(7, 13, density=0.3, rng=rng)
    assert np.allclose(ops.transpose_csr(a).to_dense(), a.to_dense().T)
