"""Property-based tests for graph algorithms and generators.

Cross-validation strategy: networkx implements every oracle, hypothesis
picks the graph family and parameters.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import betweenness_centrality, ktruss, triangle_count
from repro.graphs import chung_lu, erdos_renyi, watts_strogatz
from repro.graphs.prep import relabel_by_degree, to_undirected_simple
from repro.sparse.convert import to_scipy


@st.composite
def small_graphs(draw):
    family = draw(st.sampled_from(["er", "ws", "cl"]))
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(8, 60))
    if family == "er":
        g = erdos_renyi(n, draw(st.floats(0.5, 4.0)), rng=seed, symmetrize=True)
    elif family == "ws":
        g = watts_strogatz(n, draw(st.integers(1, 4)),
                           draw(st.floats(0, 0.5)), rng=seed)
    else:
        g = chung_lu(n, draw(st.floats(1.0, 6.0)), rng=seed)
    return to_undirected_simple(g)


def to_nx(g):
    return nx.from_scipy_sparse_array(to_scipy(g))


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_triangle_count_matches_networkx(g):
    want = sum(nx.triangles(to_nx(g)).values()) // 3
    assert triangle_count(g) == want


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_triangle_count_invariant_under_relabeling(g):
    assert triangle_count(g) == triangle_count(relabel_by_degree(g, ascending=True))


@given(small_graphs(), st.integers(3, 6))
@settings(max_examples=20, deadline=None)
def test_ktruss_matches_networkx(g, k):
    res = ktruss(g, k)
    assert res.subgraph.nnz // 2 == nx.k_truss(to_nx(g), k).number_of_edges()


@given(small_graphs(), st.integers(3, 5))
@settings(max_examples=15, deadline=None)
def test_ktruss_nested(g, k):
    """(k+1)-truss ⊆ k-truss (trusses are nested by definition)."""
    from repro.sparse import ops

    inner = ktruss(g, k + 1).subgraph
    outer = ktruss(g, k).subgraph
    assert ops.pattern_difference(inner, outer).nnz == 0


@given(small_graphs())
@settings(max_examples=12, deadline=None)
def test_betweenness_matches_networkx(g):
    if g.nrows > 40:  # keep the all-pairs oracle cheap
        return
    want = nx.betweenness_centrality(to_nx(g), normalized=False)
    got = betweenness_centrality(g).centrality
    assert np.allclose(got, [want[i] for i in range(g.nrows)], atol=1e-8)


@given(st.integers(0, 1000), st.integers(16, 128))
@settings(max_examples=20, deadline=None)
def test_generators_produce_simple_symmetric(seed, n):
    g = to_undirected_simple(erdos_renyi(n, 3.0, rng=seed, symmetrize=True))
    d = g.to_dense() != 0
    assert np.array_equal(d, d.T)
    assert not d.diagonal().any()


@given(st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_degree_relabel_idempotent_on_degrees(seed):
    g = to_undirected_simple(chung_lu(64, 4, rng=seed))
    r1 = relabel_by_degree(g)
    r2 = relabel_by_degree(r1)
    assert np.array_equal(r1.row_nnz(), r2.row_nnz())
