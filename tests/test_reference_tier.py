"""Tests of the reference (pure-Python, pseudocode-faithful) tier against
the dense oracle, across algorithms, semirings and mask polarities."""

import numpy as np
import pytest

from conftest import (
    ALL_SEMIRINGS,
    COMPLEMENT_ALGOS,
    PLAIN_ALGOS,
    assert_masked_product_correct,
    make_triple,
)
from repro.core.reference import reference_masked_spgemm
from repro.errors import AlgorithmError, MaskError
from repro.mask import Mask
from repro.semiring import PLUS_TIMES
from repro.sparse import CSRMatrix, csr_random


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_plain_mask_all_algorithms(rng, alg, semiring):
    A, B, M = make_triple(rng)
    C = reference_masked_spgemm(A, B, Mask.from_matrix(M), alg, semiring)
    assert_masked_product_correct(C, A, B, M, semiring)


@pytest.mark.parametrize("alg", COMPLEMENT_ALGOS)
@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_complemented_mask(rng, alg, semiring):
    A, B, M = make_triple(rng, dm=0.1)
    C = reference_masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                                alg, semiring)
    assert_masked_product_correct(C, A, B, M, semiring, complemented=True)


def test_mca_rejects_complement(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(MaskError):
        reference_masked_spgemm(A, B, Mask.from_matrix(M, complemented=True), "mca")


def test_inner_rejects_complement(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(MaskError):
        reference_masked_spgemm(A, B, Mask.from_matrix(M, complemented=True), "inner")


def test_unknown_algorithm(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(AlgorithmError):
        reference_masked_spgemm(A, B, Mask.from_matrix(M), "quantum")


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
def test_empty_mask_gives_empty_output(rng, alg):
    A, B, _ = make_triple(rng)
    empty = Mask.from_matrix(CSRMatrix.empty((A.nrows, B.ncols)))
    C = reference_masked_spgemm(A, B, empty, alg)
    assert C.nnz == 0


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
def test_empty_operands(rng, alg):
    A = CSRMatrix.empty((6, 5))
    B = CSRMatrix.empty((5, 7))
    M = csr_random(6, 7, density=0.3, rng=rng)
    C = reference_masked_spgemm(A, B, Mask.from_matrix(M), alg)
    assert C.nnz == 0
    assert C.shape == (6, 7)


def test_output_rows_sorted(rng):
    # the mask-ordered gather must give canonical (sorted) CSR rows
    A, B, M = make_triple(rng, m=20, n=25, dm=0.4)
    for alg in PLAIN_ALGOS:
        C = reference_masked_spgemm(A, B, Mask.from_matrix(M), alg)
        CSRMatrix(C.indptr, C.indices, C.data, C.shape, check=True)


def test_shape_mismatch(rng):
    from repro.errors import ShapeError

    A = csr_random(4, 5, density=0.5, rng=rng)
    B = csr_random(6, 4, density=0.5, rng=rng)
    M = csr_random(4, 4, density=0.5, rng=rng)
    with pytest.raises(ShapeError):
        reference_masked_spgemm(A, B, Mask.from_matrix(M), "msa")


def test_mask_shape_mismatch(rng):
    from repro.errors import MaskError

    A = csr_random(4, 5, density=0.5, rng=rng)
    B = csr_random(5, 6, density=0.5, rng=rng)
    M = csr_random(4, 5, density=0.5, rng=rng)
    with pytest.raises(MaskError):
        reference_masked_spgemm(A, B, Mask.from_matrix(M), "msa")


def test_identity_mask_recovers_plain_product(rng):
    # mask = full pattern of AB: masked result == plain product
    A, B, _ = make_triple(rng)
    from repro.core.plain import plain_spgemm

    full = plain_spgemm(A, B, PLUS_TIMES)
    C = reference_masked_spgemm(A, B, Mask.from_matrix(full), "msa")
    assert C.allclose_values(full)
