"""Unit tests for the COO format (builder/interchange substrate)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import COOMatrix


def test_basic_construction():
    m = COOMatrix([0, 1], [2, 0], [1.5, -2.0], (3, 4))
    assert m.nnz == 2
    assert m.shape == (3, 4)
    assert m.dtype == np.float64


def test_length_mismatch_rejected():
    with pytest.raises(FormatError):
        COOMatrix([0, 1], [0], [1.0, 2.0], (2, 2))


def test_out_of_range_indices_rejected():
    with pytest.raises(FormatError):
        COOMatrix([0, 5], [0, 0], [1.0, 1.0], (3, 3))
    with pytest.raises(FormatError):
        COOMatrix([0, 1], [0, -1], [1.0, 1.0], (3, 3))


def test_canonicalize_sorts_row_major():
    m = COOMatrix([2, 0, 1, 0], [1, 3, 0, 1], [1, 2, 3, 4], (3, 4)).canonicalize()
    assert list(m.rows) == [0, 0, 1, 2]
    assert list(m.cols) == [1, 3, 0, 1]
    assert list(m.data) == [4, 2, 3, 1]


def test_canonicalize_sums_duplicates():
    m = COOMatrix([1, 1, 1], [2, 2, 2], [1.0, 2.0, 4.0], (3, 3)).canonicalize()
    assert m.nnz == 1
    assert m.data[0] == 7.0


def test_canonicalize_keeps_explicit_zeros():
    # structural semantics: a stored zero is part of the pattern
    m = COOMatrix([0, 0], [1, 1], [1.0, -1.0], (2, 2)).canonicalize()
    assert m.nnz == 1
    assert m.data[0] == 0.0


def test_prune_drops_zeros():
    m = COOMatrix([0, 1], [1, 1], [0.0, 2.0], (2, 2)).prune()
    assert m.nnz == 1
    assert m.data[0] == 2.0


def test_to_dense_sums_duplicates():
    m = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
    assert m.to_dense()[0, 0] == 3.0


def test_transpose_swaps_shape_and_coords():
    m = COOMatrix([0, 1], [2, 0], [1.0, 2.0], (2, 3)).transpose()
    assert m.shape == (3, 2)
    assert list(m.rows) == [2, 0]
    assert list(m.cols) == [0, 1]


def test_empty():
    m = COOMatrix.empty((5, 7))
    assert m.nnz == 0
    assert m.to_dense().shape == (5, 7)
    assert m.canonicalize().nnz == 0


def test_roundtrip_csr(rng):
    from repro.sparse import csr_random

    a = csr_random(20, 30, density=0.2, rng=rng)
    back = a.to_coo().to_csr()
    assert back.equals(a)
