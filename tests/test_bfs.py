"""Multi-source BFS vs networkx shortest-path lengths."""

import networkx as nx
import numpy as np

from repro.algorithms import multi_source_bfs
from repro.graphs import erdos_renyi, grid_graph
from repro.graphs.prep import to_undirected_simple
from repro.sparse.convert import to_scipy


def test_levels_match_networkx():
    g = to_undirected_simple(erdos_renyi(70, 3, rng=31, symmetrize=True))
    G = nx.from_scipy_sparse_array(to_scipy(g))
    sources = [0, 7, 13]
    lv = multi_source_bfs(g, sources)
    for si, s in enumerate(sources):
        want = nx.single_source_shortest_path_length(G, s)
        for v in range(70):
            assert lv[si, v] == want.get(v, -1)


def test_directed_graph():
    g = erdos_renyi(40, 2, rng=32)  # directed
    G = nx.from_scipy_sparse_array(to_scipy(g), create_using=nx.DiGraph)
    lv = multi_source_bfs(g, [3])
    want = nx.single_source_shortest_path_length(G, 3)
    for v in range(40):
        assert lv[0, v] == want.get(v, -1)


def test_grid_distances():
    g = grid_graph(5)  # 5x5 mesh, manhattan distances from corner
    lv = multi_source_bfs(g, [0])
    for r in range(5):
        for c in range(5):
            assert lv[0, r * 5 + c] == r + c


def test_source_level_zero_and_unreachable():
    from repro.sparse import CSRMatrix

    g = CSRMatrix.empty((4, 4))
    lv = multi_source_bfs(g, [2])
    assert lv[0, 2] == 0
    assert (lv[0] == -1).sum() == 3


def test_empty_sources():
    g = erdos_renyi(10, 2, rng=33)
    lv = multi_source_bfs(g, [])
    assert lv.shape == (0, 10)


def test_all_kernels_agree():
    g = to_undirected_simple(erdos_renyi(60, 3, rng=34, symmetrize=True))
    base = multi_source_bfs(g, [0, 5], algorithm="msa")
    for alg in ("hash", "heap", "heapdot"):
        assert np.array_equal(multi_source_bfs(g, [0, 5], algorithm=alg), base)
