"""Determinism pins and order-independence properties.

HPC libraries live and die by reproducibility: seeded generators must be
stable across runs (and releases — these tests pin snapshot values), and
accumulators must be insertion-order independent for commutative monoids.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Mask, masked_spgemm, triangle_count
from repro.accumulators import MSAAccumulator
from repro.graphs import erdos_renyi, load_graph, rmat
from repro.sparse import csr_random


class TestSeedStability:
    """Snapshot pins: if a generator change alters these, every archived
    benchmark number in results/ silently stops being reproducible."""

    def test_rmat_snapshot(self):
        g = rmat(8, 8, rng=1234)
        assert g.nnz == 2584
        assert int(g.indices[:5].sum()) == 15

    def test_er_snapshot(self):
        g = erdos_renyi(500, 4, rng=1234, symmetrize=True)
        assert g.nnz == 3964

    def test_suite_snapshot(self):
        assert load_graph("rmat-s10-e8").nnz == 12080
        assert load_graph("grid-24").nnz == 2 * 2 * 24 * 23

    def test_csr_random_snapshot(self):
        m = csr_random(100, 100, density=0.05, rng=1234)
        assert m.nnz == 486

    def test_generation_is_repeatable_within_process(self):
        assert rmat(7, 8, rng=99).equals(rmat(7, 8, rng=99))
        assert triangle_count(rmat(7, 8, rng=99)) == \
            triangle_count(rmat(7, 8, rng=99))


class TestOrderIndependence:
    @given(st.permutations(list(range(8))), st.data())
    @settings(max_examples=40, deadline=None)
    def test_msa_insertion_order_irrelevant(self, order, data):
        """Integer-valued inserts in any order accumulate identically
        (commutative monoid; integers avoid FP-reassociation noise)."""
        vals = data.draw(st.lists(st.integers(-5, 5), min_size=8, max_size=8))
        acc1 = MSAAccumulator(10)
        acc2 = MSAAccumulator(10)
        key = 3
        acc1.set_allowed(key)
        acc2.set_allowed(key)
        for v in vals:
            acc1.insert(key, float(v))
        for i in order:
            acc2.insert(key, float(vals[i]))
        assert acc1.remove(key) == acc2.remove(key)

    def test_chunking_does_not_change_results(self, rng):
        """Any row partitioning must reproduce the serial matrix exactly —
        the property that makes the parallel layer safe."""
        from repro.parallel import SerialExecutor, parallel_masked_spgemm

        A = csr_random(50, 50, density=0.1, rng=rng, values="randint")
        B = csr_random(50, 50, density=0.1, rng=rng, values="randint")
        M = csr_random(50, 50, density=0.2, rng=rng)
        mask = Mask.from_matrix(M)
        base = masked_spgemm(A, B, mask, algorithm="hash")
        for nchunks in (1, 2, 7, 50):
            got = parallel_masked_spgemm(A, B, mask, algorithm="hash",
                                         executor=SerialExecutor(),
                                         nchunks=nchunks)
            assert got.equals(base)


class TestFullMaskPaths:
    """Mask.full (complement of empty) = plain SpGEMM through every
    complement-capable kernel."""

    def test_all_complement_kernels(self, rng):
        from repro.core import spgemm

        A = csr_random(30, 25, density=0.15, rng=rng, values="randint")
        B = csr_random(25, 35, density=0.15, rng=rng, values="randint")
        want = spgemm(A, B)
        for alg in ("msa", "hash", "heap", "heapdot", "hybrid"):
            got = masked_spgemm(A, B, None, algorithm=alg)
            assert got.allclose_values(want), alg

    def test_empty_pattern_plain_mask_yields_nothing(self, rng):
        from repro.sparse import CSRMatrix

        A = csr_random(10, 10, density=0.3, rng=rng)
        B = csr_random(10, 10, density=0.3, rng=rng)
        empty = Mask.from_matrix(CSRMatrix.empty((10, 10)))
        for alg in ("msa", "hash", "mca", "heap", "inner", "hybrid"):
            assert masked_spgemm(A, B, empty, algorithm=alg).nnz == 0
