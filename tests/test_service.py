"""Tests for the serving layer (repro.service): store, plan cache, engine,
batch execution, workload replay, and the algorithm integrations."""

import json

import numpy as np
import pytest

from conftest import assert_masked_product_correct, make_triple
from repro import Mask, masked_spgemm
from repro.core.plan import build_plan
from repro.errors import AlgorithmError
from repro.parallel import ProcessExecutor, SimulatedExecutor, ThreadExecutor
from repro.semiring import PLUS_PAIR
from repro.service import (
    BatchExecutor,
    Engine,
    MatrixStore,
    PlanCache,
    Request,
    StoreError,
    expand_requests,
    load_workload,
    render_report,
    replay,
)
from repro.service.store import matrix_nbytes
from repro.sparse import csr_random
from repro.sparse.csr import CSRMatrix


# ---------------------------------------------------------------------- #
# MatrixStore
# ---------------------------------------------------------------------- #
def test_store_register_get_evict(rng):
    store = MatrixStore()
    a = csr_random(10, 10, density=0.3, rng=rng)
    store.register("a", a)
    assert "a" in store and store.get("a") is a
    assert store.total_bytes == matrix_nbytes(a)
    assert store.evict("a") and "a" not in store
    assert not store.evict("a")  # double-evict is a no-op


def test_store_unknown_key_lists_known(rng):
    store = MatrixStore()
    store.register("present", csr_random(5, 5, density=0.2, rng=rng))
    with pytest.raises(StoreError, match="present"):
        store.get("absent")


def test_store_rejects_non_matrix():
    with pytest.raises(StoreError, match="CSRMatrix or Mask"):
        MatrixStore().register("x", np.eye(3))


def test_store_lru_eviction_under_budget():
    from repro.sparse import csr_eye

    mats = [csr_eye(20) for _ in range(3)]  # equal-size entries
    budget = sum(matrix_nbytes(m) for m in mats[:2]) + 8
    store = MatrixStore(budget_bytes=budget)
    store.register("m0", mats[0])
    store.register("m1", mats[1])
    store.get("m0")  # m0 is now MRU; m1 is the LRU victim
    store.register("m2", mats[2])
    assert store.keys() == ["m0", "m2"]
    assert store.evictions == 1
    assert store.total_bytes <= budget


def test_store_pinned_entries_survive():
    from repro.sparse import csr_eye

    mats = [csr_eye(20) for _ in range(3)]
    budget = sum(matrix_nbytes(m) for m in mats[:2]) + 8
    store = MatrixStore(budget_bytes=budget)
    store.register("pinned", mats[0], pin=True)
    store.register("m1", mats[1])
    store.register("m2", mats[2])  # must evict m1, not the pinned entry
    assert "pinned" in store and "m2" in store and "m1" not in store


def test_store_unsatisfiable_budget_leaves_store_untouched(rng):
    """An infeasible registration must be rejected atomically: no eviction
    of innocent entries, no resident oversized entry, replaced entry kept."""
    from repro.sparse import csr_eye

    small = csr_eye(5)
    store = MatrixStore(budget_bytes=matrix_nbytes(small) + 8)
    store.register("ok", small)
    big = csr_random(30, 30, density=0.5, rng=rng)
    with pytest.raises(StoreError, match="exceed"):
        store.register("big", big)
    assert store.keys() == ["ok"] and store.evictions == 0
    with pytest.raises(StoreError, match="exceed"):
        store.register("ok", big)  # replacement path: old entry restored
    assert store.get("ok") is small


def test_store_fingerprint_memoized_and_reset(rng):
    store = MatrixStore()
    a = csr_random(10, 10, density=0.3, rng=rng)
    store.register("a", a)
    fp1 = store.entry("a").fingerprint
    assert store.entry("a").fingerprint is fp1  # cached, not recomputed
    store.register("a", a.pattern(2.0))         # same pattern, new values
    assert store.entry("a").fingerprint == fp1
    store.register("a", csr_random(10, 10, density=0.3,
                                   rng=np.random.default_rng(99)))
    assert store.entry("a").fingerprint != fp1


# ---------------------------------------------------------------------- #
# PlanCache
# ---------------------------------------------------------------------- #
def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    for i in range(3):
        assert cache.get(("k", i)) is None
    cache.put(("k", 0), "p0")
    cache.put(("k", 1), "p1")
    assert cache.get(("k", 0)) == "p0"   # 0 now MRU
    cache.put(("k", 2), "p2")            # evicts 1
    assert ("k", 1) not in cache and ("k", 0) in cache
    assert cache.evictions == 1
    assert cache.hits == 1 and cache.misses == 3
    assert cache.hit_rate == 0.25


# ---------------------------------------------------------------------- #
# Engine: cache semantics + correctness
# ---------------------------------------------------------------------- #
@pytest.fixture
def engine_triple(rng):
    A, B, M = make_triple(rng)
    eng = Engine()
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng, (A, B, M)


def test_engine_results_match_direct_call(engine_triple):
    eng, (A, B, M) = engine_triple
    for phases in (1, 2):
        resp = eng.submit(Request(a="A", b="B", mask="M", phases=phases))
        assert_masked_product_correct(resp.result, A, B, M)
        want = masked_spgemm(A, B, Mask.from_matrix(M),
                             algorithm=resp.stats.algorithm, phases=phases)
        assert resp.result.equals(want)


def test_engine_cold_then_warm(engine_triple):
    eng, _ = engine_triple
    req = Request(a="A", b="B", mask="M", phases=2)
    cold = eng.submit(req)
    warm = eng.submit(req)
    assert not cold.stats.plan_cache_hit and cold.stats.plan_seconds > 0
    assert warm.stats.plan_cache_hit and warm.stats.plan_reused
    assert warm.stats.symbolic_skipped and warm.stats.plan_seconds == 0
    assert warm.result.equals(cold.result)
    assert eng.stats.plan_hits == 1 and eng.stats.plan_misses == 1
    assert eng.stats.plan_hit_rate == 0.5


def test_engine_warm_request_skips_symbolic_pass(engine_triple, monkeypatch):
    """Warm two-phase requests must not rebuild the plan (no auto-select, no
    symbolic kernel run)."""
    import repro.service.engine as engine_mod

    eng, _ = engine_triple
    calls = []
    real_build = engine_mod.build_plan

    def counting_build(*args, **kwargs):
        calls.append(1)
        return real_build(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "build_plan", counting_build)
    req = Request(a="A", b="B", mask="M", phases=2)
    eng.submit(req)
    eng.submit(req)
    eng.submit(req)
    assert len(calls) == 1


def test_engine_value_update_still_hits(engine_triple, rng):
    """Re-registering a matrix with new values but the same pattern must keep
    hitting the cached plan (the symbolic phase is pattern-only)."""
    eng, (A, B, M) = engine_triple
    req = Request(a="A", b="B", mask="M", phases=2)
    eng.submit(req)
    A2 = CSRMatrix(A.indptr.copy(), A.indices.copy(),
                   A.data * 0.5 + 2.0, A.shape, check=False)
    eng.register("A", A2)
    warm = eng.submit(req)
    assert warm.stats.plan_cache_hit
    assert_masked_product_correct(warm.result, A2, B, M)


def test_engine_pattern_change_misses(engine_triple, rng):
    eng, (A, B, M) = engine_triple
    req = Request(a="A", b="B", mask="M", phases=2)
    eng.submit(req)
    A2 = csr_random(A.nrows, A.ncols, density=0.15,
                    rng=np.random.default_rng(1234))
    eng.register("A", A2)
    resp = eng.submit(req)
    assert not resp.stats.plan_cache_hit
    assert_masked_product_correct(resp.result, A2, B, M)


def test_engine_distinct_configs_get_distinct_plans(engine_triple):
    eng, _ = engine_triple
    base = dict(a="A", b="B", mask="M")
    eng.submit(Request(**base, phases=2))
    for variant in (Request(**base, phases=1),
                    Request(**base, phases=2, algorithm="hash"),
                    Request(**base, phases=2, semiring="plus_pair"),
                    Request(a="A", b="B", phases=2),          # no mask
                    Request(**base, phases=2, complemented=True)):
        resp = eng.submit(variant)
        assert not resp.stats.plan_cache_hit, variant


def test_engine_auto_resolution_cached(engine_triple):
    eng, (A, B, M) = engine_triple
    cold = eng.submit(Request(a="A", b="B", mask="M", algorithm="auto"))
    warm = eng.submit(Request(a="A", b="B", mask="M", algorithm="auto"))
    assert warm.stats.plan_cache_hit
    assert cold.stats.algorithm == warm.stats.algorithm != "auto"


def test_engine_complemented_mask_correct(engine_triple):
    eng, (A, B, M) = engine_triple
    resp = eng.submit(Request(a="A", b="B", mask="M", complemented=True,
                              algorithm="msa", phases=2))
    assert_masked_product_correct(resp.result, A, B, M, complemented=True)


def test_engine_baseline_bypasses_plan_cache(engine_triple):
    eng, (A, B, M) = engine_triple
    r1 = eng.submit(Request(a="A", b="B", mask="M", algorithm="saxpy",
                            phases=1))
    r2 = eng.submit(Request(a="A", b="B", mask="M", algorithm="saxpy",
                            phases=1))
    assert not r1.stats.planned and not r2.stats.planned
    assert not r1.stats.plan_cache_hit and not r2.stats.plan_cache_hit
    assert len(eng.plans) == 0
    assert_masked_product_correct(r2.result, A, B, M)
    # baselines never warm, so they must not skew hit/miss or latency stats
    assert eng.stats.unplanned == 2
    assert eng.stats.plan_hits == eng.stats.plan_misses == 0
    assert not eng.stats.cold_latencies and not eng.stats.warm_latencies


def test_engine_rejects_mask_as_operand(rng):
    eng = Engine()
    eng.register("m", Mask.from_matrix(csr_random(5, 5, density=0.3, rng=rng)))
    eng.register("a", csr_random(5, 5, density=0.3, rng=rng))
    with pytest.raises(StoreError, match="mask slot"):
        eng.submit(Request(a="m", b="a"))


def test_engine_multiply_adhoc_operands(rng):
    A, B, M = make_triple(rng)
    eng = Engine()
    cold = eng.multiply(A, B, M, phases=2)
    warm = eng.multiply(A.copy(), B.copy(), M.copy(), phases=2)  # new objects
    assert not cold.stats.plan_cache_hit and warm.stats.plan_cache_hit
    assert warm.result.equals(cold.result)
    assert_masked_product_correct(warm.result, A, B, M)


def test_engine_with_row_parallel_executor(rng):
    A, B, M = make_triple(rng, m=60, k=50, n=55)
    ex = SimulatedExecutor(nworkers=4)
    eng = Engine(executor=ex)
    cold = eng.multiply(A, B, M, phases=2, algorithm="hash")
    warm = eng.multiply(A, B, M, phases=2, algorithm="hash")
    assert warm.stats.plan_cache_hit
    assert_masked_product_correct(warm.result, A, B, M)
    serial = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="hash",
                           phases=2)
    assert warm.result.equals(serial)


# ---------------------------------------------------------------------- #
# plan= fast path on the core API
# ---------------------------------------------------------------------- #
def test_masked_spgemm_plan_fast_path(rng):
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="auto", phases=2)
    assert plan.algorithm != "auto" and plan.nnz is not None
    got = masked_spgemm(A, B, mask, phases=2, plan=plan)
    want = masked_spgemm(A, B, mask, algorithm=plan.algorithm, phases=2)
    assert got.equals(want)
    assert plan.nnz == got.nnz


def test_masked_spgemm_plan_algorithm_conflict(rng):
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="msa", phases=2)
    with pytest.raises(AlgorithmError, match="built for algorithm"):
        masked_spgemm(A, B, mask, algorithm="hash", phases=2, plan=plan)


def test_masked_spgemm_stale_plan_detected(rng):
    """A plan replayed against operands whose pattern changed must fail the
    symbolic cross-check, not silently return wrong output."""
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="msa", phases=2)
    A2 = csr_random(A.nrows, A.ncols, density=0.3,
                    rng=np.random.default_rng(5))
    with pytest.raises(AlgorithmError, match="stale plan"):
        masked_spgemm(A2, B, mask, phases=2, plan=plan)


def test_masked_spgemm_stale_plan_detected_parallel(rng):
    """The executor path must cross-check plan row sizes too."""
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="msa", phases=2)
    A2 = csr_random(A.nrows, A.ncols, density=0.3,
                    rng=np.random.default_rng(5))
    with pytest.raises(AlgorithmError, match="stale plan"):
        masked_spgemm(A2, B, mask, phases=2, plan=plan,
                      executor=SimulatedExecutor(nworkers=2))


def test_plan_shape_mismatch_rejected(rng):
    A, B, M = make_triple(rng)
    plan = build_plan(A, B, Mask.from_matrix(M), phases=2)
    A_small = csr_random(A.nrows - 1, A.ncols, density=0.2, rng=rng)
    M_small = csr_random(A.nrows - 1, B.ncols, density=0.2, rng=rng)
    with pytest.raises(AlgorithmError, match="shape"):
        masked_spgemm(A_small, B, Mask.from_matrix(M_small), phases=2,
                      plan=plan)


# ---------------------------------------------------------------------- #
# BatchExecutor
# ---------------------------------------------------------------------- #
def _batch_engine(rng):
    eng = Engine()
    A, B, M = make_triple(rng, m=25, k=20, n=25)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng, (A, B, M)


def test_batch_preserves_request_order(rng):
    eng, _ = _batch_engine(rng)
    reqs = [Request(a="A", b="B", mask="M", phases=2, algorithm="msa", tag="0"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="hash", tag="1"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="msa", tag="2"),
            Request(a="A", b="B", mask="M", phases=2, algorithm="hash", tag="3")]
    result = BatchExecutor(eng).run(reqs)
    assert [r.tag for r in result.responses] == ["0", "1", "2", "3"]
    assert result.groups == 2
    # grouped execution: each config pays one miss, then hits
    assert result.plan_misses == 2 and result.plan_hits == 2


def test_batch_thread_fanout_matches_serial(rng):
    eng_serial, (A, B, M) = _batch_engine(rng)
    eng_thread, _ = _batch_engine(np.random.default_rng(20220402))
    reqs = [Request(a="A", b="B", mask="M", phases=2, tag=str(i))
            for i in range(8)]
    serial = BatchExecutor(eng_serial).run(reqs)
    ex = ThreadExecutor(4)
    try:
        threaded = BatchExecutor(eng_thread, ex).run(reqs)
    finally:
        ex.close()
    for rs, rt in zip(serial.responses, threaded.responses):
        assert rt.result.equals(rs.result)
    # all 8 share one plan key: exactly one miss however the race resolves
    assert serial.plan_misses == 1 and serial.plan_hits == 7
    assert threaded.plan_hits + threaded.plan_misses == 8


def test_batch_rejects_process_pool(rng):
    eng, _ = _batch_engine(rng)
    with pytest.raises(AlgorithmError, match="process pool"):
        BatchExecutor(eng, ProcessExecutor(2))


def test_batch_empty(rng):
    eng, _ = _batch_engine(rng)
    result = BatchExecutor(eng).run([])
    assert result.responses == [] and result.plan_hit_rate == 0.0


# ---------------------------------------------------------------------- #
# algorithm integration: k-truss and MCL through the engine
# ---------------------------------------------------------------------- #
def test_ktruss_replay_reuses_plan_every_iteration():
    """A k-truss run served twice from one engine: the second run's pattern
    sequence is identical, so every iteration after the first (cold) run
    reuses a cached plan — ≥1 plan hit per iteration."""
    from repro.algorithms import ktruss
    from repro.graphs import erdos_renyi

    g = erdos_renyi(150, 10, rng=7, symmetrize=True)
    eng = Engine()
    first = ktruss(g, 4, engine=eng, phases=2)
    assert first.iterations > 1
    assert first.plan_hits == 0  # cold engine: every pattern is new
    second = ktruss(g, 4, engine=eng, phases=2)
    assert second.iterations == first.iterations
    assert second.subgraph.same_pattern(first.subgraph)
    assert len(second.plan_hits_per_iteration) == second.iterations
    assert all(h >= 1 for h in second.plan_hits_per_iteration)
    assert eng.stats.plan_hits >= second.iterations


def test_ktruss_engine_matches_engineless_result():
    from repro.algorithms import ktruss
    from repro.graphs import erdos_renyi

    g = erdos_renyi(100, 8, rng=3, symmetrize=True)
    eng = Engine()
    with_engine = ktruss(g, 4, engine=eng, algorithm="hash", phases=2)
    default = ktruss(g, 4, algorithm="hash")
    assert with_engine.subgraph.same_pattern(default.subgraph)
    assert with_engine.iterations == default.iterations


def test_mcl_engine_hits_on_stabilized_pattern():
    """MCL's support stabilizes before its values converge; once it does,
    every expansion product is a plan-cache hit (same pattern, new values)."""
    from repro.algorithms import markov_clustering
    from repro.graphs import erdos_renyi

    g = erdos_renyi(150, 6, rng=3, symmetrize=True)
    eng = Engine()
    res = markov_clustering(g, engine=eng, inflation=1.5)
    assert res.plan_hits > 0
    assert eng.stats.plan_hits == res.plan_hits
    # clustering itself must be unchanged by the engine routing
    plain = markov_clustering(g, inflation=1.5)
    assert np.array_equal(res.labels, plain.labels)
    assert res.n_clusters == plain.n_clusters


# ---------------------------------------------------------------------- #
# workload replay
# ---------------------------------------------------------------------- #
def _workload_spec():
    return {
        "matrices": {
            "G": {"generator": "er", "n": 60, "degree": 6, "seed": 0,
                  "prep": "pattern"},
            "M": {"random": {"m": 60, "k": 60, "density": 0.1, "seed": 2}},
        },
        "requests": [
            {"a": "G", "b": "G", "mask": "M", "phases": 2, "repeat": 3,
             "tag": "masked"},
            {"a": "G", "b": "G", "mask": "G", "algorithm": "hash",
             "semiring": "plus_pair", "phases": 2, "repeat": 2, "tag": "tc"},
        ],
    }


def test_expand_requests_repeats_in_order():
    reqs = expand_requests(_workload_spec())
    assert [r.tag for r in reqs] == ["masked"] * 3 + ["tc"] * 2


def test_workload_replay_and_report(tmp_path):
    p = tmp_path / "wl.json"
    p.write_text(json.dumps(_workload_spec()))
    spec = load_workload(p)
    engine, result = replay(spec)
    assert len(result.responses) == 5
    assert result.plan_misses == 2 and result.plan_hits == 3
    report = render_report(engine, result)
    assert "hit rate" in report and "warm requests" in report


def test_engine_shape_mismatch_clean_error(rng):
    """Mismatched operand shapes must surface as a ShapeError from plan
    building, not an IndexError from inside a kernel."""
    from repro.errors import ShapeError

    eng = Engine()
    A = csr_random(5, 4, density=0.5, rng=rng)
    B = csr_random(3, 6, density=0.5, rng=rng)
    with pytest.raises(ShapeError):
        eng.multiply(A, B, phases=2)


def test_engine_complemented_without_mask_rejected(rng):
    """¬(no mask) selects nothing — a forgotten mask key, not a request."""
    eng = Engine()
    A = csr_random(5, 5, density=0.5, rng=rng)
    with pytest.raises(AlgorithmError, match="without a mask"):
        eng.multiply(A, A, None, complemented=True)


def test_workload_rejects_misspelled_matrix_field():
    from repro.service.workload import _build_matrix

    with pytest.raises(ValueError, match="densty"):
        _build_matrix("x", {"random": {"m": 10, "densty": 0.5}})
    with pytest.raises(ValueError, match="degre"):
        _build_matrix("x", {"generator": "er", "n": 10, "degre": 20})


def test_render_report_is_batch_scoped(rng):
    """A reused engine's earlier traffic must not leak into a later batch's
    latency lines."""
    eng, _ = _batch_engine(rng)
    req = Request(a="A", b="B", mask="M", phases=2)
    BatchExecutor(eng).run([req] * 3)            # earlier traffic
    result = BatchExecutor(eng).run([req] * 2)   # all warm
    report = render_report(eng, result)
    assert "cold requests:" not in report        # batch had no cold requests
    assert "warm requests: n=2" in report


def test_mcl_algorithm_without_engine_rejected():
    from repro.algorithms import markov_clustering
    from repro.graphs import erdos_renyi

    g = erdos_renyi(30, 4, rng=0, symmetrize=True)
    with pytest.raises(ValueError, match="requires engine="):
        markov_clustering(g, algorithm="hash")


def test_workload_rejects_unknown_request_field():
    with pytest.raises(ValueError, match="unknown request fields"):
        Request.from_dict({"a": "A", "b": "B", "masc": "M"})


def test_workload_rejects_bad_matrix_spec():
    from repro.service.workload import _build_matrix

    with pytest.raises(ValueError, match="path/random/generator"):
        _build_matrix("x", {"nonsense": 1})
    with pytest.raises(ValueError, match="unknown prep"):
        _build_matrix("x", {"generator": "er", "n": 10, "prep": "bogus"})
    with pytest.raises(ValueError, match="missing required field"):
        _build_matrix("x", {"random": {"density": 0.1}})  # no "m"
    with pytest.raises(ValueError, match="file not found"):
        _build_matrix("x", {"path": "does-not-exist.mtx"})
