"""Property-based tests of the Masked SpGEMM kernels themselves.

Core properties:

1. **Oracle agreement** — every kernel equals the dense masked product on
   arbitrary inputs (including empty rows, hub rows, explicit zeros).
2. **Algorithm independence** — all kernels produce the identical matrix
   (the paper's 14 schemes differ in *speed*, never in *result*).
3. **Mask identities** — plain+complement partition the unmasked product;
   masking with the product's own pattern is a no-op.
4. **Phase independence** — 1P ≡ 2P.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    COMPLEMENT_ALGOS,
    PLAIN_ALGOS,
    assert_masked_product_correct,
)
from repro.core import masked_spgemm, spgemm
from repro.mask import Mask
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import COOMatrix, ops


@st.composite
def spgemm_problem(draw, max_dim=10, max_nnz=30):
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def mat(nr, nc):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, nr - 1), min_size=nnz, max_size=nnz))
        cols = draw(st.lists(st.integers(0, nc - 1), min_size=nnz, max_size=nnz))
        vals = [float(v) for v in draw(
            st.lists(st.integers(-4, 4), min_size=nnz, max_size=nnz))]
        return COOMatrix(np.array(rows, dtype=np.int64),
                         np.array(cols, dtype=np.int64),
                         np.array(vals), (nr, nc)).to_csr()

    return mat(m, k), mat(k, n), mat(m, n)


@given(spgemm_problem(), st.sampled_from(PLAIN_ALGOS))
@settings(max_examples=60, deadline=None)
def test_kernels_match_oracle(problem, alg):
    A, B, M = problem
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg)
    assert_masked_product_correct(C, A, B, M, PLUS_TIMES)


@given(spgemm_problem(), st.sampled_from(COMPLEMENT_ALGOS))
@settings(max_examples=40, deadline=None)
def test_complement_kernels_match_oracle(problem, alg):
    A, B, M = problem
    C = masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                      algorithm=alg)
    assert_masked_product_correct(C, A, B, M, PLUS_TIMES, complemented=True)


@given(spgemm_problem())
@settings(max_examples=30, deadline=None)
def test_all_algorithms_identical(problem):
    A, B, M = problem
    mask = Mask.from_matrix(M)
    results = [masked_spgemm(A, B, mask, algorithm=a) for a in PLAIN_ALGOS]
    first = results[0]
    for alg, r in zip(PLAIN_ALGOS[1:], results[1:]):
        assert r.same_pattern(first), alg
        assert np.allclose(r.data, first.data), alg


@given(spgemm_problem(), st.sampled_from(["msa", "hash", "heap"]))
@settings(max_examples=30, deadline=None)
def test_mask_partition_identity(problem, alg):
    """M ⊙ (AB) + ¬M ⊙ (AB) == AB (as dense values)."""
    A, B, M = problem
    plain = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg)
    compl = masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                          algorithm=alg)
    full = spgemm(A, B)
    assert np.allclose(plain.to_dense() + compl.to_dense(), full.to_dense())


@given(spgemm_problem(), st.sampled_from(PLAIN_ALGOS))
@settings(max_examples=30, deadline=None)
def test_self_mask_is_noop(problem, alg):
    """Masking with the product's own stored pattern changes nothing."""
    A, B, _ = problem
    full = spgemm(A, B)
    C = masked_spgemm(A, B, Mask.from_matrix(full), algorithm=alg)
    assert C.same_pattern(full)
    assert np.allclose(C.data, full.data)


@given(spgemm_problem(), st.sampled_from(PLAIN_ALGOS))
@settings(max_examples=30, deadline=None)
def test_phases_equivalent(problem, alg):
    A, B, M = problem
    mask = Mask.from_matrix(M)
    c1 = masked_spgemm(A, B, mask, algorithm=alg, phases=1)
    c2 = masked_spgemm(A, B, mask, algorithm=alg, phases=2)
    assert c1.equals(c2)


@given(spgemm_problem(), st.sampled_from(["msa", "hash"]),
       st.sampled_from([PLUS_PAIR, MIN_PLUS]))
@settings(max_examples=30, deadline=None)
def test_other_semirings_match_oracle(problem, alg, semiring):
    A, B, M = problem
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg,
                      semiring=semiring)
    assert_masked_product_correct(C, A, B, M, semiring)


@given(spgemm_problem())
@settings(max_examples=25, deadline=None)
def test_output_pattern_subset_of_mask(problem):
    A, B, M = problem
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")
    diff = ops.pattern_difference(C.pattern(), M.pattern())
    assert diff.nnz == 0


@given(spgemm_problem())
@settings(max_examples=25, deadline=None)
def test_masked_saxpy_equals_kernels(problem):
    """Multiply-then-mask (the Fig. 1 strawman) must agree numerically with
    the mask-aware kernels — the mask only removes *work*, never changes
    values."""
    A, B, M = problem
    mask = Mask.from_matrix(M)
    kernel = masked_spgemm(A, B, mask, algorithm="hash")
    baseline = masked_spgemm(A, B, mask, algorithm="saxpy")
    assert np.allclose(kernel.to_dense(), baseline.to_dense())
