"""Tests for the observability layer (repro.obs): metrics registry +
Prometheus exposition, span tracer + Chrome export, the HTTP sidecar, and
the wiring through engine, server, caches, and shard workers."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from conftest import make_triple
from repro.obs import (
    CHUNK_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    ObsHTTPServer,
    Tracer,
    capture,
    current_record,
    parse_exposition,
    span,
)
from repro.obs.trace import TraceRecord
from repro.service import Engine, Request
from repro.sparse import csr_random


# ---------------------------------------------------------------------- #
# metrics: counters / gauges / histograms
# ---------------------------------------------------------------------- #
def test_counter_labels_and_totals():
    reg = MetricsRegistry()
    c = reg.counter("repro_widgets_total", "widgets", labels=("kind",))
    c.inc(kind="a")
    c.inc(2, kind="b")
    assert c.value(kind="a") == 1.0
    assert c.value(kind="b") == 2.0
    assert c.value(kind="absent") == 0.0
    assert c.total() == 3.0
    with pytest.raises(ValueError):
        c.inc(-1, kind="a")  # counters only go up


def test_gauge_set_and_callback():
    reg = MetricsRegistry()
    g = reg.gauge("repro_depth", "queue depth")
    g.set(7)
    g.dec(2)
    assert g.value() == 5.0
    box = {"v": 3.0}
    cb = reg.gauge("repro_cb", "callback gauge", callback=lambda: box["v"])
    assert "repro_cb 3" in reg.render()
    box["v"] = 9.5
    assert "repro_cb 9.5" in reg.render()


def test_histogram_bucket_math():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", "latency",
                      buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):  # one per bucket + one above the top
        h.observe(v)
    text = reg.render()
    families = parse_exposition(text)
    buckets = families["repro_lat_seconds_bucket"]
    # cumulative counts: ≤0.01 → 1, ≤0.1 → 2, ≤1.0 → 3, +Inf → 4
    assert buckets[(("le", "0.01"),)] == 1.0
    assert buckets[(("le", "0.1"),)] == 2.0
    assert buckets[(("le", "1"),)] == 3.0
    assert buckets[(("le", "+Inf"),)] == 4.0
    assert families["repro_lat_seconds_count"][()] == 4.0
    assert families["repro_lat_seconds_sum"][()] == pytest.approx(5.555)


def test_registry_get_or_make_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", "x")
    assert reg.counter("repro_x_total", "x") is a
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total", "x")  # same name, different kind
    with pytest.raises(ValueError):
        reg.counter("repro_x_total", "x", labels=("other",))


def test_exposition_round_trip_and_strictness():
    reg = MetricsRegistry()
    reg.counter("repro_a_total", "a", labels=("k",)).inc(k='sp"icy\\')
    reg.histogram("repro_h_seconds", "h", buckets=LATENCY_BUCKETS).observe(1.0)
    families = parse_exposition(reg.render())
    assert families["repro_a_total"][(("k", 'sp\\"icy\\\\'),)] == 1.0
    with pytest.raises(ValueError):
        parse_exposition("repro_untyped_total 3\n")  # sample without TYPE
    with pytest.raises(ValueError):
        parse_exposition("# TYPE x counter\nx not-a-number\n")
    with pytest.raises(ValueError):  # decreasing cumulative buckets
        parse_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n")


def test_histogram_buckets_are_sorted_constants():
    for seq in (LATENCY_BUCKETS, CHUNK_BUCKETS):
        assert list(seq) == sorted(seq) and len(seq) == len(set(seq))


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("repro_race_total", "contended counter")

    def work():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == 4000.0


# ---------------------------------------------------------------------- #
# trace: spans, nesting, ring retention
# ---------------------------------------------------------------------- #
def test_span_nesting_parent_ids():
    with capture("t") as rec:
        with span("outer") as outer:
            with span("inner", depth=2) as inner:
                pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.attrs["depth"] == 2
    assert rec.find("inner")[0].t1 >= rec.find("inner")[0].t0


def test_span_is_noop_outside_trace():
    assert current_record() is None
    with span("orphan") as s:
        assert s is None  # no active trace: nothing recorded, nothing raised


def test_span_exception_safety():
    with capture("t") as rec:
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        with span("after"):  # context restored: next span is a root again
            pass
    boom = rec.find("boom")[0]
    assert boom.attrs["error"] == "RuntimeError"
    assert boom.t1 >= boom.t0
    assert rec.find("after")[0].parent_id is None


def test_trace_record_max_spans_bound():
    rec = TraceRecord("t", max_spans=4)
    for i in range(10):
        rec.add_span(f"s{i}", 0.0, 1.0)
    assert len(rec.spans) == 4
    assert rec.dropped == 6


def test_tracer_ring_eviction():
    tracer = Tracer(capacity=2)
    for i in range(4):
        with tracer.trace(f"r{i}"):
            with span("body"):
                pass
    assert len(tracer) == 2
    assert tracer.ids() == ["r2", "r3"]
    assert tracer.get("r0") is None and tracer.export("r0") is None


def test_tracer_disabled_is_inert():
    tracer = Tracer(enabled=False)
    with tracer.trace("r1") as rec:
        assert rec is None
        with span("body"):
            assert current_record() is None
    assert len(tracer) == 0


def test_merge_remaps_ids_and_reparents():
    with capture("parent") as rec:
        with span("scatter") as sc:
            with capture("worker") as wrec:
                with span("task"):
                    with span("chunk"):
                        pass
            payload = wrec.payload()
            rec.merge(payload, parent_id=sc.span_id)
    task = rec.find("task")[0]
    chunk = rec.find("chunk")[0]
    assert task.parent_id == sc.span_id
    assert chunk.parent_id == task.span_id
    ids = [s.span_id for s in rec.spans]
    assert len(ids) == len(set(ids))  # no id collisions after remap


def test_chrome_export_shape():
    with capture("req") as rec:
        with span("outer"):
            with span("inner"):
                pass
    doc = rec.chrome()
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in xs} == {"outer", "inner"}
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
    assert any(m["name"] == "thread_name" for m in metas)
    json.dumps(doc)  # must be JSON-serializable as-is


# ---------------------------------------------------------------------- #
# HTTP sidecar
# ---------------------------------------------------------------------- #
def test_http_server_routes():
    reg = MetricsRegistry()
    reg.counter("repro_hits_total", "hits").inc(3)
    tracer = Tracer()
    with tracer.trace("r9"):
        with span("numeric"):
            pass
    with ObsHTTPServer(reg, tracer) as obs:
        with urllib.request.urlopen(f"{obs.url}/metrics", timeout=5) as r:
            assert "version=0.0.4" in r.headers["Content-Type"]
            families = parse_exposition(r.read().decode())
        assert families["repro_hits_total"][()] == 3.0
        with urllib.request.urlopen(f"{obs.url}/traces", timeout=5) as r:
            entries = json.loads(r.read())["traces"]
        # scannable summaries, not bare ids: duration + start offset + size
        assert [e["id"] for e in entries] == ["r9"]
        assert entries[0]["spans"] == 1
        assert entries[0]["seconds"] >= 0
        assert entries[0]["start_offset"] == 0.0
        with urllib.request.urlopen(f"{obs.url}/trace/r9.json", timeout=5) as r:
            doc = json.loads(r.read())
        assert any(e["name"] == "numeric" for e in doc["traceEvents"])
        for bad in ("/trace/nope.json", "/bogus"):
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(f"{obs.url}{bad}", timeout=5)
            assert ei.value.code == 404


# ---------------------------------------------------------------------- #
# engine + cache wiring
# ---------------------------------------------------------------------- #
def _engine_with_triple(rng, **kw):
    eng = Engine(**kw)
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng


def test_engine_trace_taxonomy_and_ids(rng):
    eng = _engine_with_triple(rng, result_cache_bytes=1 << 20)
    r1 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
    r2 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
    assert r1.stats.trace_id and r2.stats.trace_id
    assert r1.stats.trace_id != r2.stats.trace_id
    cold = eng.tracer.get(r1.stats.trace_id)
    names = {s.name for s in cold.spans}
    assert {"symbolic.cold", "numeric", "cache.lookup",
            "cache.writeback"} <= names
    numeric = cold.find("numeric")[0]
    assert numeric.attrs["kernel"] == r1.stats.algorithm
    # warm second request: result hit → no symbolic, no numeric
    warm = eng.tracer.get(r2.stats.trace_id)
    warm_names = {s.name for s in warm.spans}
    assert "symbolic.cold" not in warm_names and "numeric" not in warm_names


def test_engine_tracing_off_leaves_no_ids(rng):
    eng = _engine_with_triple(rng, tracing=False)
    resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
    assert resp.stats.trace_id == ""
    assert len(eng.tracer) == 0


def test_engine_chunk_histogram_from_spans(rng):
    eng = _engine_with_triple(rng)
    eng.submit(Request(a="A", b="B", mask="M", phases=2))
    families = parse_exposition(eng.metrics.render())
    counts = families["repro_chunk_seconds_count"]
    assert sum(counts.values()) >= 1.0


def test_engine_stats_derived_from_registry(rng):
    eng = _engine_with_triple(rng, result_cache_bytes=1 << 20)
    for _ in range(3):
        eng.submit(Request(a="A", b="B", mask="M", phases=2))
    assert eng.stats.requests == 3
    assert eng.stats.plan_misses == 1
    assert eng.stats.result_hits == 2
    req = eng.metrics.get("repro_engine_requests_total")
    assert req.value(tier="cold") == 1.0
    assert req.value(tier="result") == 2.0


def test_cache_counters_on_registry(rng):
    eng = _engine_with_triple(rng, result_cache_bytes=1 << 20)
    for _ in range(2):
        eng.submit(Request(a="A", b="B", mask="M", phases=2))
    c = eng.metrics.get("repro_cache_requests_total")
    assert c.value(cache="plan", outcome="miss") == 1.0
    assert c.value(cache="result", outcome="miss") == 1.0
    assert c.value(cache="result", outcome="hit") == 1.0
    # legacy attribute views stay coherent with the registry
    assert eng.plans.misses == 1 and eng.results.hits == 1


def test_cache_bind_metrics_carries_counts_forward(rng):
    from repro.service.plan import PlanCache

    cache = PlanCache()
    cache.get(("nope",))  # one miss on the private registry
    assert cache.misses == 1
    reg = MetricsRegistry()
    cache.bind_metrics(reg)
    assert cache.misses == 1  # carried onto the new registry
    assert reg.get("repro_cache_requests_total").value(
        cache="plan", outcome="miss") == 1.0


def test_serve_smoke_metrics_leg_runs():
    """CLI smoke with --metrics-port 0 must pass its /metrics gate."""
    from repro.__main__ import main

    assert main(["serve", "--smoke", "--metrics-port", "0"]) == 0


def test_trace_cli_writes_chrome_json(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    assert main(["trace", "--smoke", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"queue", "symbolic.cold", "numeric"} <= names


# ---------------------------------------------------------------------- #
# auto_select loop tier (satellite: ktruss-support regime)
# ---------------------------------------------------------------------- #
def test_auto_select_routes_ktruss_regime_to_loop(rng):
    from repro.core.registry import auto_select, available_algorithms, get_spec
    from repro.mask import Mask

    from repro.native import native_available

    n = 512
    E = csr_random(n, n, density=32 / n, rng=rng)  # long rows, ~524k flops
    mask = Mask.from_matrix(E)
    # the compiled msa subsumes the loop tier's dispatch-overhead win, so a
    # passing native probe routes this regime to msa-native instead
    expected = "msa-native" if native_available() else "msa-loop"
    assert auto_select(E, E, mask) == expected
    # the routing tier resolves but stays out of the public listing
    assert get_spec("msa-loop").numeric.__name__ == "numeric_rows_loop"
    assert "msa-loop" not in available_algorithms()


def test_msa_loop_tier_matches_fused(rng):
    from repro.mask import Mask
    from repro import masked_spgemm
    from repro.semiring import PLUS_PAIR

    n = 256
    E = csr_random(n, n, density=24 / n, rng=rng)
    mask = Mask.from_matrix(E)
    got = masked_spgemm(E, E, mask, algorithm="msa-loop", semiring=PLUS_PAIR)
    want = masked_spgemm(E, E, mask, algorithm="msa", semiring=PLUS_PAIR)
    assert got.same_pattern(want) and np.array_equal(got.data, want.data)


# ---------------------------------------------------------------------- #
# shard-worker span merging (skipped where shared memory is unusable)
# ---------------------------------------------------------------------- #
def _shm_ok():
    from repro.shard.memory import shared_memory_available

    return shared_memory_available()


@pytest.mark.skipif(not _shm_ok(), reason="no usable shared memory")
def test_sharded_request_merges_worker_spans(rng):
    eng = Engine(shards=2)
    A = csr_random(300, 300, density=0.05, rng=rng)
    M = csr_random(300, 300, density=0.05, rng=rng)
    eng.register("A", A)
    eng.register("M", M)
    try:
        resp = eng.submit(Request(a="A", b="A", mask="M", phases=2,
                                  algorithm="hash"))
        assert resp.stats.sharded
        rec = eng.tracer.get(resp.stats.trace_id)
        names = {s.name for s in rec.spans}
        assert {"shard.scatter", "shard.task", "chunk",
                "symbolic.cold"} <= names
        pids = {s.pid for s in rec.spans}
        assert len(pids) >= 2  # coordinator + at least one worker process
        # worker spans nest under the scatter span that dispatched them
        scatter_ids = {s.span_id for s in rec.find("shard.scatter")}
        for task in rec.find("shard.task"):
            assert task.parent_id in scatter_ids
        # scatter histogram derived from the merged spans
        fam = parse_exposition(eng.metrics.render())
        assert sum(fam["repro_shard_scatter_seconds_count"].values()) >= 2.0
    finally:
        eng.close()
