"""Conversion tests: COO<->CSR<->CSC, plus the scipy oracle bridge."""

import numpy as np
import scipy.sparse as sp

from repro.sparse import (
    COOMatrix,
    coo_to_csr,
    csr_random,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy,
)


def test_coo_to_csr_canonicalizes():
    coo = COOMatrix([1, 0, 1], [0, 2, 0], [1.0, 2.0, 3.0], (2, 3))
    m = coo_to_csr(coo)
    assert m.nnz == 2  # duplicates summed
    assert m.to_dense()[1, 0] == 4.0


def test_csr_to_coo_is_sorted(rng):
    m = csr_random(10, 10, density=0.3, rng=rng)
    coo = csr_to_coo(m)
    keys = coo.rows * 10 + coo.cols
    assert np.all(np.diff(keys) > 0)


def test_matches_scipy_conversions(rng):
    m = csr_random(25, 31, density=0.15, rng=rng)
    s = to_scipy(m)
    assert isinstance(s, sp.csr_matrix)
    assert np.allclose(s.toarray(), m.to_dense())
    # scipy CSC vs our CSC hold the same dense content
    ours = csr_to_csc(m)
    theirs = s.tocsc()
    assert np.array_equal(ours.indptr, theirs.indptr)
    assert np.array_equal(ours.indices, theirs.indices)
    assert np.allclose(ours.data, theirs.data)


def test_from_scipy_handles_unsorted_input(rng):
    d = rng.random((8, 8))
    d[d < 0.7] = 0
    s = sp.coo_matrix(d)  # unsorted triplets
    m = from_scipy(s)
    assert np.allclose(m.to_dense(), d)


def test_from_scipy_sums_duplicates():
    s = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
    m = from_scipy(s)
    assert m.nnz == 1
    assert m.to_dense()[0, 1] == 3.0


def test_empty_conversions():
    m = coo_to_csr(COOMatrix.empty((3, 4)))
    assert m.nnz == 0
    assert csr_to_csc(m).nnz == 0
    assert csr_to_coo(m).nnz == 0
