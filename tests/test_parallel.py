"""Parallel-layer tests: partitioning invariants, executor equivalence,
and the simulated work/span model."""

import numpy as np
import pytest

from conftest import COMPLEMENT_ALGOS, PLAIN_ALGOS, make_triple
from repro.core import masked_spgemm
from repro.mask import Mask
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
    balanced_partition,
    estimate_row_weights,
    parallel_masked_spgemm,
    uniform_partition,
)
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.sparse import csr_random


# --------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------- #
class TestPartition:
    def test_uniform_covers_all_rows_in_order(self):
        chunks = uniform_partition(10, 3)
        flat = np.concatenate(chunks)
        assert np.array_equal(flat, np.arange(10))
        assert all(c.size > 0 for c in chunks)

    def test_uniform_more_chunks_than_rows(self):
        chunks = uniform_partition(3, 10)
        assert np.array_equal(np.concatenate(chunks), np.arange(3))

    def test_uniform_rejects_bad_nchunks(self):
        with pytest.raises(ValueError):
            uniform_partition(5, 0)

    def test_balanced_covers_all_rows(self):
        w = np.array([1.0, 100.0, 1.0, 1.0, 100.0, 1.0])
        chunks = balanced_partition(w, 3)
        assert np.array_equal(np.concatenate(chunks), np.arange(6))

    def test_balanced_isolates_heavy_rows(self):
        w = np.zeros(100)
        w[0] = 1000.0
        w[50] = 1000.0
        chunks = balanced_partition(w, 4)
        # the two heavy rows must not share a chunk
        owner = {}
        for ci, c in enumerate(chunks):
            for r in c:
                owner[int(r)] = ci
        assert owner[0] != owner[50]

    def test_balanced_zero_weights_fall_back(self):
        chunks = balanced_partition(np.zeros(8), 2)
        assert np.array_equal(np.concatenate(chunks), np.arange(8))

    def test_balanced_empty(self):
        assert balanced_partition(np.array([]), 3) == []

    def test_weights_positive_and_sized(self, rng):
        A, B, M = make_triple(rng)
        for alg in ("msa", "inner"):
            w = estimate_row_weights(A, B, Mask.from_matrix(M), alg)
            assert w.shape == (A.nrows,)
            assert np.all(w >= 0)

    def test_inner_weights_track_dot_cost(self, rng):
        # a mask row over heavy B columns must weigh more than an empty row
        A = csr_random(2, 10, density=0.5, rng=rng)
        B = csr_random(10, 4, density=0.9, rng=rng)
        from repro.sparse import CSRMatrix

        M = CSRMatrix([0, 4, 4], [0, 1, 2, 3], np.ones(4), (2, 4))
        w = estimate_row_weights(A, B, Mask.from_matrix(M), "inner")
        assert w[0] > w[1]


# --------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------- #
class TestExecutors:
    @pytest.mark.parametrize("make_exec", [
        lambda: SerialExecutor(),
        lambda: ThreadExecutor(2),
        lambda: SimulatedExecutor(3),
    ], ids=["serial", "thread", "simulated"])
    @pytest.mark.parametrize("alg", PLAIN_ALGOS)
    def test_identical_to_serial(self, rng, make_exec, alg):
        A, B, M = make_triple(rng, m=40, k=30, n=45)
        mask = Mask.from_matrix(M)
        want = masked_spgemm(A, B, mask, algorithm=alg)
        ex = make_exec()
        got = masked_spgemm(A, B, mask, algorithm=alg, executor=ex)
        assert got.equals(want)
        ex.close()

    @pytest.mark.parametrize("alg", COMPLEMENT_ALGOS)
    def test_complement_parallel(self, rng, alg):
        A, B, M = make_triple(rng, dm=0.08)
        mask = Mask.from_matrix(M, complemented=True)
        want = masked_spgemm(A, B, mask, algorithm=alg)
        got = masked_spgemm(A, B, mask, algorithm=alg,
                            executor=SimulatedExecutor(4))
        assert got.equals(want)

    def test_process_executor_roundtrip(self, rng):
        A, B, M = make_triple(rng, m=50, k=40, n=50)
        mask = Mask.from_matrix(M)
        want = masked_spgemm(A, B, mask, algorithm="hash", semiring=PLUS_PAIR)
        got = masked_spgemm(A, B, mask, algorithm="hash", semiring=PLUS_PAIR,
                            executor=ProcessExecutor(2))
        assert got.equals(want)

    def test_process_executor_rejects_unregistered_semiring(self, rng):
        from repro.errors import AlgorithmError
        from repro.semiring import Monoid, Semiring

        custom = Semiring(Monoid(np.add, 0.0, "plus"), lambda a, b: a * b,
                          "my-custom")
        A, B, M = make_triple(rng)
        with pytest.raises(AlgorithmError):
            parallel_masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa",
                                   semiring=custom, executor=ProcessExecutor(2))

    def test_two_phase_parallel(self, rng):
        A, B, M = make_triple(rng)
        mask = Mask.from_matrix(M)
        want = masked_spgemm(A, B, mask, algorithm="msa")
        got = masked_spgemm(A, B, mask, algorithm="msa", phases=2,
                            executor=SimulatedExecutor(2))
        assert got.equals(want)

    def test_simulated_model_sanity(self, rng):
        A, B, M = make_triple(rng, m=60, k=50, n=60, da=0.2, db=0.2, dm=0.3)
        ex = SimulatedExecutor(4)
        masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa", executor=ex)
        # makespan can never beat serial/p nor exceed serial
        assert ex.last_makespan_seconds <= ex.last_serial_seconds + 1e-12
        assert ex.last_makespan_seconds >= ex.last_serial_seconds / 4 - 1e-12
        assert 1.0 <= ex.speedup() <= 4.0 + 1e-9
        assert len(ex.last_chunk_seconds) >= 1

    def test_simulated_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SimulatedExecutor(0)

    def test_thread_executor_context_manager(self):
        with ThreadExecutor(2) as ex:
            assert ex.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_empty_matrix_parallel(self, rng):
        from repro.sparse import CSRMatrix

        A = CSRMatrix.empty((0, 0))
        B = CSRMatrix.empty((0, 0))
        mask = Mask.full((0, 0))
        got = parallel_masked_spgemm(A, B, mask, algorithm="msa",
                                     executor=SerialExecutor())
        assert got.shape == (0, 0) and got.nnz == 0
