"""DCSR (hypersparse) format tests."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import CSRMatrix, csr_random
from repro.sparse.dcsr import DCSRMatrix


def hypersparse_matrix(rng, nrows=1000, active=7, per_row=4):
    """A matrix with only a few non-empty rows (BC-frontier shaped)."""
    from repro.sparse import COOMatrix

    act = rng.choice(nrows, size=active, replace=False)
    rows = np.repeat(act, per_row)
    cols = rng.integers(0, nrows, size=rows.size)
    return COOMatrix(rows, cols, np.ones(rows.size), (nrows, nrows)).to_csr()


def test_round_trip(rng):
    m = csr_random(30, 40, density=0.1, rng=rng)
    d = DCSRMatrix.from_csr(m)
    assert d.to_csr().equals(m)
    assert np.allclose(d.to_dense(), m.to_dense())


def test_row_access_matches_csr(rng):
    m = hypersparse_matrix(rng)
    d = DCSRMatrix.from_csr(m)
    for i in range(0, 1000, 97):
        cm, vm = m.row(i)
        cd, vd = d.row(i)
        assert np.array_equal(cm, cd)
        assert np.array_equal(vm, vd)


def test_iter_rows_skips_empties(rng):
    m = hypersparse_matrix(rng, active=5)
    d = DCSRMatrix.from_csr(m)
    visited = [rid for rid, _, _ in d.iter_rows()]
    assert len(visited) == d.nzr <= 5  # duplicate picks collapse
    assert visited == sorted(visited)
    assert all(m.row(r)[0].size > 0 for r in visited)


def test_storage_savings_on_hypersparse(rng):
    m = hypersparse_matrix(rng, nrows=5000, active=6)
    d = DCSRMatrix.from_csr(m)
    csr_words = m.indptr.size + m.indices.size
    assert d.storage_words() < csr_words / 50  # 5001 pointers vs ~13 words


def test_nzr_property(rng):
    m = hypersparse_matrix(rng, active=8)
    d = DCSRMatrix.from_csr(m)
    assert d.nzr == int((m.row_nnz() > 0).sum())
    assert d.nnz == m.nnz


def test_format_invariants():
    # empty "non-empty" row forbidden
    with pytest.raises(FormatError):
        DCSRMatrix([2], [0, 0], [], [], (4, 4))
    # unsorted row_ids forbidden
    with pytest.raises(FormatError):
        DCSRMatrix([3, 1], [0, 1, 2], [0, 0], [1.0, 1.0], (4, 4))
    # row id out of range
    with pytest.raises(FormatError):
        DCSRMatrix([9], [0, 1], [0], [1.0], (4, 4))


def test_empty_matrix():
    d = DCSRMatrix.empty((6, 7))
    assert d.nnz == 0 and d.nzr == 0
    assert d.to_csr().equals(CSRMatrix.empty((6, 7)))
    cols, vals = d.row(3)
    assert cols.size == 0


def test_fully_dense_rows_round_trip(rng):
    m = csr_random(10, 10, density=0.9, rng=rng)
    d = DCSRMatrix.from_csr(m)
    assert d.nzr == int((m.row_nnz() > 0).sum())
    assert d.to_csr().equals(m)
