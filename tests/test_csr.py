"""Unit tests for the CSR format (the paper's primary storage, §2.1)."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import CSRMatrix, csr_from_dense, csr_random


def test_format_invariants_enforced():
    # bad indptr head
    with pytest.raises(FormatError):
        CSRMatrix([1, 2], [0], [1.0], (1, 3))
    # indptr length
    with pytest.raises(FormatError):
        CSRMatrix([0, 1], [0], [1.0], (2, 3))
    # decreasing indptr
    with pytest.raises(FormatError):
        CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 3))
    # column out of range
    with pytest.raises(FormatError):
        CSRMatrix([0, 1], [5], [1.0], (1, 3))
    # unsorted columns within a row
    with pytest.raises(FormatError):
        CSRMatrix([0, 2], [1, 0], [1.0, 2.0], (1, 3))
    # duplicate columns within a row
    with pytest.raises(FormatError):
        CSRMatrix([0, 2], [1, 1], [1.0, 2.0], (1, 3))


def test_rows_may_decrease_across_boundaries():
    # last col of row 0 is 2, first col of row 1 is 0: legal
    m = CSRMatrix([0, 2, 3], [0, 2, 0], [1.0, 2.0, 3.0], (2, 3))
    assert m.nnz == 3


def test_row_views_are_zero_copy():
    m = CSRMatrix([0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0], (2, 3))
    cols, vals = m.row(0)
    assert list(cols) == [0, 2]
    vals[0] = 42.0
    assert m.data[0] == 42.0  # view, not copy


def test_row_nnz_and_properties(rng):
    m = csr_random(10, 8, density=0.3, rng=rng)
    assert m.row_nnz().sum() == m.nnz
    assert m.nrows == 10 and m.ncols == 8


def test_to_dense_matches_manual():
    m = CSRMatrix([0, 1, 1, 3], [2, 0, 1], [5.0, 1.0, 2.0], (3, 3))
    d = m.to_dense()
    want = np.zeros((3, 3))
    want[0, 2], want[2, 0], want[2, 1] = 5.0, 1.0, 2.0
    assert np.array_equal(d, want)


def test_transpose_involution(rng):
    m = csr_random(12, 17, density=0.2, rng=rng)
    assert m.transpose().transpose().equals(m)
    assert np.allclose(m.T.to_dense(), m.to_dense().T)


def test_pattern_replaces_values(rng):
    m = csr_random(10, 10, density=0.2, rng=rng)
    p = m.pattern()
    assert p.same_pattern(m)
    assert np.all(p.data == 1.0)
    p2 = m.pattern(value=7.0)
    assert np.all(p2.data == 7.0)


def test_tril_triu_partition(rng):
    m = csr_random(15, 15, density=0.3, rng=rng)
    lower = m.tril()
    upper = m.triu()
    diag = np.diag(np.diag(m.to_dense()))
    assert np.allclose(lower.to_dense() + upper.to_dense() + diag, m.to_dense())


def test_sum_and_row_sums(rng):
    m = csr_random(10, 12, density=0.25, rng=rng)
    assert np.isclose(m.sum(), m.to_dense().sum())
    assert np.allclose(m.row_sums(), m.to_dense().sum(axis=1))


def test_equals_and_same_pattern(rng):
    m = csr_random(10, 10, density=0.2, rng=rng)
    m2 = m.copy()
    assert m.equals(m2)
    if m.nnz:
        m2.data[0] += 1.0
        assert m.same_pattern(m2)
        assert not m.equals(m2)


def test_astype():
    m = CSRMatrix([0, 1], [0], [1.5], (1, 1))
    i = m.astype(np.int64)
    assert i.data.dtype == np.int64


def test_empty_matrix():
    m = CSRMatrix.empty((4, 6))
    assert m.nnz == 0
    assert m.to_dense().shape == (4, 6)
    assert m.transpose().shape == (6, 4)


def test_from_dense_roundtrip(rng):
    d = rng.random((9, 11))
    d[d < 0.6] = 0.0
    m = csr_from_dense(d)
    assert np.allclose(m.to_dense(), d)


def test_from_dense_rejects_bad_ndim():
    with pytest.raises(ShapeError):
        csr_from_dense(np.zeros(3))


def test_diagonal(rng):
    m = csr_random(8, 8, density=0.4, rng=rng)
    assert np.allclose(m.diagonal(), np.diag(m.to_dense()))


def test_prune_explicit_zeros():
    m = CSRMatrix([0, 2], [0, 1], [0.0, 2.0], (1, 2))
    assert m.nnz == 2
    assert m.prune().nnz == 1
