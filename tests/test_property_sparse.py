"""Property-based tests (hypothesis) for the sparse substrate.

Strategies generate arbitrary COO triplets (duplicates, unsorted, explicit
zeros included) and the properties assert format invariants, roundtrips and
algebraic identities against dense numpy.
"""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    COOMatrix,
    csr_to_csc,
    ops,
    read_matrix_market,
    write_matrix_market,
)


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=40, integral=True):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    if integral:
        vals = draw(st.lists(st.integers(-5, 5), min_size=nnz, max_size=nnz))
        vals = [float(v) for v in vals]
    else:
        vals = draw(st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz, max_size=nnz))
    return COOMatrix(np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64),
                     np.array(vals, dtype=np.float64), (nrows, ncols))


@st.composite
def csr_matrices(draw, max_dim=12, max_nnz=40):
    return draw(coo_matrices(max_dim, max_nnz)).to_csr()


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_coo_to_csr_preserves_dense(coo):
    assert np.allclose(coo.to_csr().to_dense(), coo.to_dense())


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_invariants_always_hold(coo):
    m = coo.to_csr()
    assert m.indptr[0] == 0
    assert m.indptr[-1] == m.nnz
    assert np.all(np.diff(m.indptr) >= 0)
    for i in range(m.nrows):
        cols, _ = m.row(i)
        assert np.all(np.diff(cols) > 0)  # strictly increasing


@given(csr_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution_and_dense(m):
    t = m.transpose()
    assert np.allclose(t.to_dense(), m.to_dense().T)
    assert t.transpose().equals(m)


@given(csr_matrices())
@settings(max_examples=60, deadline=None)
def test_csc_roundtrip(m):
    assert csr_to_csc(m).to_csr().equals(m)


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_coo_roundtrip(m):
    assert m.to_coo().to_csr().equals(m)


@given(csr_matrices())
@settings(max_examples=30, deadline=None)
def test_matrix_market_roundtrip(m):
    buf = io.StringIO()
    write_matrix_market(m, buf)
    buf.seek(0)
    assert read_matrix_market(buf).equals(m)


@given(coo_matrices(), coo_matrices())
@settings(max_examples=40, deadline=None)
def test_ewise_ops_match_dense(ca, cb):
    # reshape second operand onto the first's shape by rebuilding
    a = ca.to_csr()
    b = COOMatrix(cb.rows % a.shape[0], cb.cols % a.shape[1], cb.data,
                  a.shape).to_csr()
    assert np.allclose(ops.ewise_add(a, b).to_dense(),
                       a.to_dense() + b.to_dense())
    assert np.allclose(ops.ewise_mult(a, b).to_dense(),
                       a.to_dense() * b.to_dense())


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_tril_triu_diag_partition(m):
    if m.nrows != m.ncols:
        return
    full = (ops.tril(m, -1).to_dense() + ops.triu(m, 1).to_dense()
            + np.diag(m.diagonal()))
    assert np.allclose(full, m.to_dense())


@given(csr_matrices(), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_apply_mask_partition(m, seed):
    rng = np.random.default_rng(seed)
    from repro.sparse import csr_random

    mask = csr_random(m.nrows, m.ncols, density=0.4, rng=rng)
    kept = ops.apply_mask(m, mask)
    dropped = ops.apply_mask(m, mask, complemented=True)
    assert kept.nnz + dropped.nnz == m.nnz
    assert np.allclose(kept.to_dense() + dropped.to_dense(), m.to_dense())


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_symmetrize_idempotent(m):
    if m.nrows != m.ncols:
        return
    s1 = ops.symmetrize(m)
    s2 = ops.symmetrize(s1)
    assert s1.same_pattern(s2)
