"""Tests for the hybrid per-row kernel (the paper's §9 future work)."""

import numpy as np
import pytest

from conftest import assert_masked_product_correct, make_triple
from repro.core import masked_spgemm
from repro.core.hybrid_kernel import _CLASSES, classify_rows
from repro.mask import Mask
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import COOMatrix, CSRMatrix, csr_random
from repro.validation import INDEX_DTYPE


def heterogeneous_problem(rng, n=60):
    """Rows engineered to hit all three classes: dense-mask rows with few
    products (heap), sparse-mask hub rows (inner), balanced rows (msa)."""
    k = n
    # A: first third sparse rows, middle third hubs, last third moderate
    rows, cols = [], []
    for i in range(n // 3):
        rows += [i]
        cols += [int(rng.integers(0, k))]
    for i in range(n // 3, 2 * n // 3):
        cs = rng.choice(k, size=20, replace=False)
        rows += [i] * 20
        cols += cs.tolist()
    for i in range(2 * n // 3, n):
        cs = rng.choice(k, size=4, replace=False)
        rows += [i] * 4
        cols += cs.tolist()
    A = COOMatrix(np.array(rows), np.array(cols),
                  np.ones(len(rows)), (n, k)).to_csr()
    B = csr_random(k, n, density=0.15, rng=rng, values="randint")
    # mask: dense rows for the sparse-A block, sparse rows for the hub block
    mrows, mcols = [], []
    for i in range(n // 3):
        cs = rng.choice(n, size=30, replace=False)
        mrows += [i] * 30
        mcols += cs.tolist()
    for i in range(n // 3, 2 * n // 3):
        mrows += [i]
        mcols += [int(rng.integers(0, n))]
    for i in range(2 * n // 3, n):
        cs = rng.choice(n, size=6, replace=False)
        mrows += [i] * 6
        mcols += cs.tolist()
    M = COOMatrix(np.array(mrows), np.array(mcols),
                  np.ones(len(mrows)), (n, n)).to_csr()
    return A, B, M


def test_classifier_uses_multiple_classes(rng):
    A, B, M = heterogeneous_problem(rng)
    cls = classify_rows(A, B, Mask.from_matrix(M),
                        np.arange(A.nrows, dtype=INDEX_DTYPE))
    used = {int(c) for c in np.unique(cls)}
    assert len(used) >= 2, f"expected a mixed dispatch, got classes {used}"


def test_complement_routes_everything_to_msa(rng):
    A, B, M = make_triple(rng)
    cls = classify_rows(A, B, Mask.from_matrix(M, complemented=True),
                        np.arange(A.nrows, dtype=INDEX_DTYPE))
    assert np.all(cls == 0)
    assert _CLASSES[0] == "msa"


@pytest.mark.parametrize("semiring", [PLUS_TIMES, PLUS_PAIR, MIN_PLUS],
                         ids=lambda s: s.name)
def test_hybrid_matches_oracle(rng, semiring):
    A, B, M = heterogeneous_problem(rng)
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="hybrid",
                      semiring=semiring)
    assert_masked_product_correct(C, A, B, M, semiring)


def test_hybrid_equals_msa_on_random(rng):
    for _ in range(5):
        A, B, M = make_triple(rng)
        want = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")
        got = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="hybrid")
        assert got.equals(want)


def test_hybrid_complement(rng):
    A, B, M = make_triple(rng, dm=0.1)
    mask = Mask.from_matrix(M, complemented=True)
    want = masked_spgemm(A, B, mask, algorithm="msa")
    got = masked_spgemm(A, B, mask, algorithm="hybrid")
    assert got.equals(want)


def test_hybrid_two_phase(rng):
    A, B, M = heterogeneous_problem(rng)
    mask = Mask.from_matrix(M)
    c1 = masked_spgemm(A, B, mask, algorithm="hybrid", phases=1)
    c2 = masked_spgemm(A, B, mask, algorithm="hybrid", phases=2)
    assert c1.equals(c2)


def test_hybrid_parallel(rng):
    from repro.parallel import SimulatedExecutor

    A, B, M = heterogeneous_problem(rng)
    mask = Mask.from_matrix(M)
    want = masked_spgemm(A, B, mask, algorithm="hybrid")
    got = masked_spgemm(A, B, mask, algorithm="hybrid",
                        executor=SimulatedExecutor(3))
    assert got.equals(want)


def test_hybrid_empty_inputs():
    A = CSRMatrix.empty((5, 4))
    B = CSRMatrix.empty((4, 6))
    M = CSRMatrix.empty((5, 6))
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="hybrid")
    assert C.nnz == 0 and C.shape == (5, 6)


def test_hybrid_row_subset(rng):
    """The parallel layer hands the kernel arbitrary row chunks."""
    from repro.core.hybrid_kernel import numeric_rows

    A, B, M = heterogeneous_problem(rng)
    mask = Mask.from_matrix(M)
    full = masked_spgemm(A, B, mask, algorithm="hybrid")
    rows = np.array([2, 25, 45], dtype=INDEX_DTYPE)
    block = numeric_rows(A, B, mask, PLUS_TIMES, rows)
    pos = 0
    for t, i in enumerate(rows):
        k = int(block.sizes[t])
        lo, hi = full.indptr[i], full.indptr[i + 1]
        assert k == hi - lo
        assert np.array_equal(block.cols[pos:pos + k], full.indices[lo:hi])
        pos += k
