"""Vectorized-tier kernel tests: every kernel against the dense oracle and
against the reference tier, plus symbolic-phase exactness."""

import numpy as np
import pytest

from conftest import (
    ALL_SEMIRINGS,
    COMPLEMENT_ALGOS,
    PLAIN_ALGOS,
    assert_masked_product_correct,
    make_triple,
)
from repro.core import masked_spgemm, registry
from repro.core.reference import reference_masked_spgemm
from repro.errors import MaskError
from repro.mask import Mask
from repro.semiring import PLUS_TIMES
from repro.sparse import CSRMatrix, csr_random
from repro.validation import INDEX_DTYPE


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_against_oracle_plain(rng, alg, semiring):
    A, B, M = make_triple(rng)
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg, semiring=semiring)
    assert_masked_product_correct(C, A, B, M, semiring)


@pytest.mark.parametrize("alg", COMPLEMENT_ALGOS)
@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_against_oracle_complement(rng, alg, semiring):
    A, B, M = make_triple(rng, dm=0.1)
    C = masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                      algorithm=alg, semiring=semiring)
    assert_masked_product_correct(C, A, B, M, semiring, complemented=True)


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
def test_vectorized_equals_reference(rng, alg):
    """The two tiers must agree bit-for-bit on pattern and values."""
    for _ in range(3):
        A, B, M = make_triple(rng, m=25, k=20, n=30)
        mask = Mask.from_matrix(M)
        v = masked_spgemm(A, B, mask, algorithm=alg)
        r = reference_masked_spgemm(A, B, mask, alg)
        assert v.same_pattern(r)
        assert np.allclose(v.data, r.data)


@pytest.mark.parametrize("alg", COMPLEMENT_ALGOS)
def test_vectorized_equals_reference_complement(rng, alg):
    A, B, M = make_triple(rng, dm=0.08)
    mask = Mask.from_matrix(M, complemented=True)
    v = masked_spgemm(A, B, mask, algorithm=alg)
    r = reference_masked_spgemm(A, B, mask, alg)
    assert v.same_pattern(r)
    assert np.allclose(v.data, r.data)


@pytest.mark.parametrize("alg", PLAIN_ALGOS)
def test_symbolic_matches_numeric(rng, alg):
    """Two-phase symbolic row sizes must equal the numeric result's —
    masked_spgemm verifies this internally (verify_symbolic=True)."""
    A, B, M = make_triple(rng)
    C1 = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg, phases=1)
    C2 = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg, phases=2)
    assert C1.equals(C2)


@pytest.mark.parametrize("alg", COMPLEMENT_ALGOS)
def test_symbolic_matches_numeric_complement(rng, alg):
    A, B, M = make_triple(rng, dm=0.08)
    mask = Mask.from_matrix(M, complemented=True)
    C1 = masked_spgemm(A, B, mask, algorithm=alg, phases=1)
    C2 = masked_spgemm(A, B, mask, algorithm=alg, phases=2)
    assert C1.equals(C2)


def test_kernels_accept_row_subsets(rng):
    """numeric_rows must be usable on arbitrary row chunks (the parallel
    layer's contract)."""
    A, B, M = make_triple(rng, m=20)
    mask = Mask.from_matrix(M)
    full = masked_spgemm(A, B, mask, algorithm="msa")
    for alg in PLAIN_ALGOS:
        spec = registry.get_spec(alg)
        rows = np.array([3, 4, 10], dtype=INDEX_DTYPE)
        block = spec.numeric(A, B, mask, PLUS_TIMES, rows)
        # each row's slice must match the full result
        pos = 0
        for t, i in enumerate(rows):
            k = int(block.sizes[t])
            lo, hi = full.indptr[i], full.indptr[i + 1]
            assert k == hi - lo, (alg, i)
            assert np.array_equal(block.cols[pos:pos + k], full.indices[lo:hi])
            assert np.allclose(block.vals[pos:pos + k], full.data[lo:hi])
            pos += k


def test_mca_complement_raises(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(MaskError):
        masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                      algorithm="mca")


def test_inner_complement_raises(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(MaskError):
        masked_spgemm(A, B, Mask.from_matrix(M, complemented=True),
                      algorithm="inner")


def test_heap_vs_heapdot_same_result(rng):
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    h = masked_spgemm(A, B, mask, algorithm="heap")
    hd = masked_spgemm(A, B, mask, algorithm="heapdot")
    assert h.equals(hd)


def test_hash_kernel_on_adversarial_collisions(rng):
    """Mask columns that are multiples of a power of two stress the
    multiplicative hash's low bits."""
    n = 256
    cols = np.arange(0, n, 8, dtype=np.int64)
    indptr = np.array([0, cols.size], dtype=np.int64)
    M = CSRMatrix(indptr, cols, np.ones(cols.size), (1, n))
    A = csr_random(1, 64, density=0.5, rng=rng, values="randint")
    B = csr_random(64, n, density=0.3, rng=rng, values="randint")
    got = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="hash")
    want = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")
    assert got.equals(want)


def test_wide_rows_and_hub_columns(rng):
    """A hub row in A (touches every B row) exercises big expansions."""
    k, n = 40, 50
    A = CSRMatrix(np.array([0, k]), np.arange(k), np.ones(k), (1, k))
    B = csr_random(k, n, density=0.4, rng=rng, values="randint")
    M = csr_random(1, n, density=0.5, rng=rng)
    for alg in PLAIN_ALGOS:
        C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg)
        assert_masked_product_correct(C, A, B, M, PLUS_TIMES)


def test_cancellation_keeps_explicit_zero(rng):
    """1 + (-1) accumulates to 0.0 — the entry stays stored (GraphBLAS
    semantics: the accumulator was touched)."""
    A = CSRMatrix(np.array([0, 2]), np.array([0, 1]), np.array([1.0, -1.0]),
                  (1, 2))
    B = CSRMatrix(np.array([0, 1, 2]), np.array([0, 0]), np.array([1.0, 1.0]),
                  (2, 1))
    M = CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (1, 1))
    for alg in PLAIN_ALGOS:
        C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg)
        assert C.nnz == 1, alg
        assert C.data[0] == 0.0, alg
