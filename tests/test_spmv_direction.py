"""Masked SpMV (push/pull) and direction-optimized BFS tests."""

import networkx as nx
import numpy as np
import pytest

from repro import SparseVector, masked_spmv
from repro.algorithms import direction_optimized_bfs, multi_source_bfs
from repro.core.spmv import pull_work_estimate, push_work_estimate
from repro.errors import ShapeError
from repro.graphs import erdos_renyi, grid_graph, rmat
from repro.graphs.prep import to_undirected_simple
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.sparse import csr_random
from repro.sparse.convert import to_scipy


def make_problem(rng, k=25, n=35):
    A = csr_random(k, n, density=0.2, rng=rng, values="randint")
    x = SparseVector.from_dense(rng.integers(0, 3, k).astype(float))
    m = SparseVector.from_dense((rng.random(n) < 0.4).astype(float))
    return x, A, m


class TestMaskedSpMV:
    @pytest.mark.parametrize("direction", ["push", "pull", "auto"])
    def test_matches_dense(self, rng, direction):
        x, A, m = make_problem(rng)
        y = masked_spmv(x, A, m, direction=direction)
        want = (x.to_dense() @ A.to_dense()) * (m.to_dense() != 0)
        assert np.allclose(y.to_dense(), want)

    def test_push_equals_pull_exactly(self, rng):
        for _ in range(5):
            x, A, m = make_problem(rng)
            a = masked_spmv(x, A, m, direction="push")
            b = masked_spmv(x, A, m, direction="pull")
            assert a.equals(b)

    def test_complemented_mask(self, rng):
        x, A, m = make_problem(rng)
        y = masked_spmv(x, A, m, complemented=True)
        want = (x.to_dense() @ A.to_dense()) * (m.to_dense() == 0)
        assert np.allclose(y.to_dense(), want)

    def test_pull_rejects_complement(self, rng):
        x, A, m = make_problem(rng)
        with pytest.raises(ValueError):
            masked_spmv(x, A, m, complemented=True, direction="pull")

    def test_no_mask(self, rng):
        x, A, _ = make_problem(rng)
        y = masked_spmv(x, A, None)
        assert np.allclose(y.to_dense(), x.to_dense() @ A.to_dense())

    def test_semirings(self, rng):
        x, A, m = make_problem(rng)
        y = masked_spmv(x, A, m, semiring=PLUS_PAIR, direction="pull")
        want = ((x.to_dense() != 0).astype(float)
                @ (A.to_dense() != 0).astype(float)) * (m.to_dense() != 0)
        assert np.allclose(y.to_dense(), want)

    def test_min_plus_both_directions(self, rng):
        x, A, m = make_problem(rng)
        a = masked_spmv(x, A, m, semiring=MIN_PLUS, direction="push")
        b = masked_spmv(x, A, m, semiring=MIN_PLUS, direction="pull")
        assert a.equals(b)

    def test_shape_validation(self, rng):
        x, A, m = make_problem(rng)
        with pytest.raises(ShapeError):
            masked_spmv(SparseVector.empty(A.nrows + 1), A, m)
        with pytest.raises(ShapeError):
            masked_spmv(x, A, SparseVector.empty(A.ncols + 1))
        with pytest.raises(ValueError):
            masked_spmv(x, A, m, direction="sideways")

    def test_empty_frontier(self, rng):
        _, A, m = make_problem(rng)
        y = masked_spmv(SparseVector.empty(A.nrows), A, m)
        assert y.nnz == 0

    def test_work_estimates(self, rng):
        x, A, m = make_problem(rng)
        Ad = A.to_dense() != 0
        want_push = sum(int(Ad[k].sum()) for k in x.indices)
        assert push_work_estimate(x, A) == want_push
        csc = A.to_csc()
        want_pull = sum(int(Ad[:, j].sum()) for j in m.indices)
        assert pull_work_estimate(m.indices, csc) == want_pull


class TestDirectionOptimizedBFS:
    def test_matches_networkx(self):
        g = to_undirected_simple(rmat(8, 8, rng=71))
        G = nx.from_scipy_sparse_array(to_scipy(g))
        res = direction_optimized_bfs(g, 0)
        want = nx.single_source_shortest_path_length(G, 0)
        for v in range(g.nrows):
            assert res.levels[v] == want.get(v, -1)

    def test_matches_masked_spgemm_bfs(self):
        g = to_undirected_simple(erdos_renyi(150, 4, rng=72, symmetrize=True))
        res = direction_optimized_bfs(g, 3)
        lv = multi_source_bfs(g, [3])
        assert np.array_equal(res.levels, lv[0])

    def test_forced_directions_agree(self):
        g = to_undirected_simple(rmat(7, 8, rng=73))
        a = direction_optimized_bfs(g, 0, force="push").levels
        b = direction_optimized_bfs(g, 0, force="pull").levels
        assert np.array_equal(a, b)

    def test_skewed_graph_switches_to_pull(self):
        g = to_undirected_simple(rmat(9, 16, rng=74))
        res = direction_optimized_bfs(g, 0)
        assert "pull" in res.directions  # hub explosion triggers bottom-up

    def test_high_diameter_graph_mostly_push(self):
        # grids have narrow frontiers: push should dominate, with pull only
        # legitimate in the last levels once few unvisited vertices remain
        g = grid_graph(16)
        res = direction_optimized_bfs(g, 0)
        frac_push = res.directions.count("push") / len(res.directions)
        assert frac_push > 0.7
        assert res.directions[0] == "push"
        # any pull levels must come after the push phase (a single switch
        # point, as in Beamer's original heuristic behaviour on meshes)
        if "pull" in res.directions:
            first_pull = res.directions.index("pull")
            assert all(d == "push" for d in res.directions[:first_pull])

    def test_telemetry_shapes(self):
        g = to_undirected_simple(erdos_renyi(100, 3, rng=75, symmetrize=True))
        res = direction_optimized_bfs(g, 0)
        assert len(res.directions) == len(res.frontier_sizes)
        assert res.levels[0] == 0

    def test_source_validation(self):
        g = grid_graph(4)
        with pytest.raises(ValueError):
            direction_optimized_bfs(g, 99)
