"""Failure-injection tests: corrupted structures, hostile inputs, and
resource-shaped edge cases must fail loudly (library errors), never return
wrong results or crash with raw numpy exceptions."""

import io

import numpy as np
import pytest

from repro import Mask, masked_spgemm
from repro.errors import FormatError, IOFormatError, ReproError, ShapeError
from repro.sparse import CSRMatrix, csr_random, read_matrix_market


class TestCorruptedCSR:
    def test_truncated_data_array(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2], [0, 1], [1.0], (1, 3))

    def test_negative_nnz_regions(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 3, 2], [0, 1, 2], [1.0, 2.0, 3.0], (2, 3))

    def test_indptr_overruns_indices(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 5], [0, 1], [1.0, 2.0], (1, 3))

    def test_float_indices_are_coerced_or_rejected(self):
        # numpy would silently truncate; our coercion preserves exact ints
        m = CSRMatrix(np.array([0.0, 1.0]), np.array([2.0]), [1.0], (1, 3))
        assert m.indices.dtype == np.int64

    def test_kernels_never_validate_garbage_silently(self, rng):
        # a matrix that skipped validation (check=False) with out-of-range
        # columns must still not corrupt other operands' memory: the kernels
        # will raise IndexError from numpy rather than write out of bounds
        bad = CSRMatrix(np.array([0, 1]), np.array([99]), np.array([1.0]),
                        (1, 3), check=False)
        B = csr_random(3, 3, density=0.5, rng=rng)
        M = csr_random(1, 3, density=0.9, rng=rng)
        with pytest.raises(Exception):
            masked_spgemm(B.transpose(), bad.transpose(), None)  # shape error path
        with pytest.raises(Exception):
            masked_spgemm(bad, B, Mask.from_matrix(M), algorithm="msa")


class TestHostileMatrixMarket:
    def test_binary_garbage(self):
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO("\x00\x01\x02"))

    def test_header_only(self):
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix coordinate real general\n"))

    def test_size_line_with_words(self):
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix coordinate real general\nthree by 3\n"))

    def test_indices_out_of_declared_range(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"
        with pytest.raises(ReproError):
            read_matrix_market(io.StringIO(text))

    def test_zero_based_indices_rejected(self):
        # MM is 1-based; a 0 row index becomes -1 and must be caught
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"
        with pytest.raises(ReproError):
            read_matrix_market(io.StringIO(text))


class TestShapeMismatchEverywhere:
    def test_masked_spgemm_inner_dims(self, rng):
        A = csr_random(4, 5, density=0.5, rng=rng)
        B = csr_random(6, 7, density=0.5, rng=rng)
        with pytest.raises(ShapeError):
            masked_spgemm(A, B, None)

    def test_mask_wrong_shape(self, rng):
        from repro.errors import MaskError

        A = csr_random(4, 5, density=0.5, rng=rng)
        B = csr_random(5, 7, density=0.5, rng=rng)
        M = csr_random(4, 6, density=0.5, rng=rng)
        with pytest.raises(MaskError):
            masked_spgemm(A, B, Mask.from_matrix(M))

    def test_stitch_rejects_partial_coverage(self):
        from repro.core.types import RowBlock, stitch_blocks

        block = RowBlock(np.array([1], dtype=np.int64),
                         np.array([0], dtype=np.int64), np.array([1.0]))
        with pytest.raises(ValueError):
            stitch_blocks([block], nrows=2, ncols=3)


class TestDegenerateScales:
    """Zero-dimensional and single-element shapes through the whole stack."""

    @pytest.mark.parametrize("shape", [(0, 0), (0, 5), (5, 0), (1, 1)])
    def test_empty_shapes_all_algorithms(self, shape):
        m, n = shape
        k = 3
        A = CSRMatrix.empty((m, k))
        B = CSRMatrix.empty((k, n))
        M = CSRMatrix.empty((m, n))
        for alg in ("msa", "hash", "mca", "heap", "inner", "hybrid", "saxpy"):
            C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm=alg)
            assert C.shape == (m, n)
            assert C.nnz == 0

    def test_single_entry_everything(self):
        A = CSRMatrix([0, 1], [0], [2.0], (1, 1))
        M = CSRMatrix([0, 1], [0], [1.0], (1, 1))
        for alg in ("msa", "hash", "mca", "heap", "heapdot", "inner"):
            C = masked_spgemm(A, A, Mask.from_matrix(M), algorithm=alg)
            assert C.nnz == 1 and C.data[0] == 4.0

    def test_mask_larger_than_any_product(self, rng):
        # every mask entry misses: output must be empty, not error
        A = CSRMatrix.empty((3, 4))
        B = csr_random(4, 5, density=0.5, rng=rng)
        M = csr_random(3, 5, density=1.0, rng=rng)
        for alg in ("msa", "hash", "mca", "heap", "inner"):
            assert masked_spgemm(A, B, Mask.from_matrix(M),
                                 algorithm=alg).nnz == 0
