"""k-truss vs the networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import ktruss
from repro.graphs import erdos_renyi, rmat, watts_strogatz
from repro.graphs.prep import to_undirected_simple
from repro.sparse import csr_from_dense
from repro.sparse.convert import to_scipy


def nx_truss_edges(g, k):
    G = nx.from_scipy_sparse_array(to_scipy(g))
    return nx.k_truss(G, k).number_of_edges()


@pytest.mark.parametrize("alg", ["msa", "hash", "mca", "inner"])
@pytest.mark.parametrize("k", [3, 4, 5])
def test_matches_networkx(alg, k):
    g = to_undirected_simple(rmat(7, 10, rng=11))
    res = ktruss(g, k, algorithm=alg)
    assert res.subgraph.nnz // 2 == nx_truss_edges(g, k)


def test_result_is_symmetric_pattern():
    g = to_undirected_simple(watts_strogatz(100, 4, 0.05, rng=2))
    res = ktruss(g, 4)
    d = res.subgraph.to_dense() != 0
    assert np.array_equal(d, d.T)


def test_k2_returns_input_without_multiplying():
    g = to_undirected_simple(erdos_renyi(50, 3, rng=3, symmetrize=True))
    res = ktruss(g, 2)
    assert res.subgraph.same_pattern(g.pattern())
    assert res.iterations == 0
    assert res.flops_per_iteration == []


def test_k_below_2_rejected():
    g = to_undirected_simple(erdos_renyi(20, 2, rng=4, symmetrize=True))
    with pytest.raises(ValueError):
        ktruss(g, 1)


def test_telemetry_consistency():
    g = to_undirected_simple(rmat(6, 12, rng=5))
    res = ktruss(g, 5, algorithm="hash")
    assert res.iterations == len(res.flops_per_iteration)
    assert res.iterations == len(res.nnz_per_iteration)
    assert res.total_flops == 2 * sum(res.flops_per_iteration)
    # nnz must be non-increasing over iterations
    assert all(a >= b for a, b in zip(res.nnz_per_iteration,
                                      res.nnz_per_iteration[1:]))


def test_k4_of_k4_graph_is_itself():
    # K4: every edge supported by 2 triangles -> 4-truss == K4, 5-truss empty
    k4 = csr_from_dense(1 - np.eye(4))
    assert ktruss(k4, 4).subgraph.nnz == 12
    assert ktruss(k4, 5).subgraph.nnz == 0


def test_triangle_free_graph_empties_at_k3():
    c6 = np.zeros((6, 6))
    for i in range(6):
        c6[i, (i + 1) % 6] = c6[(i + 1) % 6, i] = 1
    res = ktruss(csr_from_dense(c6), 3)
    assert res.subgraph.nnz == 0


def test_iterative_pruning_happens():
    # a triangle chained to a pendant triangle: k=4 needs >1 iteration on
    # suitable shapes; here we at least verify convergence & telemetry
    g = to_undirected_simple(watts_strogatz(64, 3, 0.0, rng=1))
    res = ktruss(g, 4, algorithm="msa")
    assert res.iterations >= 1


def test_empty_graph():
    from repro.sparse import CSRMatrix

    res = ktruss(CSRMatrix.empty((10, 10)), 5)
    assert res.subgraph.nnz == 0
    assert res.iterations == 0
