"""Direct-write numeric execution + the chunk-fused hash/heap kernels.

The PR-4 contracts:

* the chunk-fused ``hash`` and ``heap`` kernels are **bit-identical** to
  their retained ``*_rows_loop`` baselines and the pure-Python reference
  tier, across semirings, plain and complemented masks, empty rows and
  empty outputs;
* the direct-write numeric path (two-phase with known row sizes →
  preallocate ``indptr/indices/data`` → chunks scatter into disjoint
  slices) produces results identical to the stitch path on every executor;
* two-phase runs without a plan capture their symbolic results into an
  implied :class:`~repro.core.plan.SymbolicPlan` exposed via ``plan_sink``;
* a stale plan fails loudly on the direct path (sizes validated before any
  write);
* chunk sizing comes from the cache-aware flops budget
  (:func:`repro.parallel.partition.chunk_budget`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_masked_product_correct, make_triple
from repro.core import build_plan, masked_spgemm
from repro.core import hash_kernel, heap_kernel
from repro.core.plan import SymbolicPlan
from repro.core.reference import reference_masked_spgemm
from repro.core.registry import get_spec
from repro.core.types import stitch_blocks, write_block_into
from repro.errors import AlgorithmError
from repro.mask import Mask
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
)
from repro.parallel.partition import (
    FUSED_BYTES_PER_FLOP,
    budget_chunk_count,
    chunk_budget,
)
from repro.parallel.runner import (
    parallel_masked_spgemm,
    uses_direct_write,
)
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import COOMatrix, CSRMatrix, csr_random
from repro.validation import INDEX_DTYPE

SEMIRINGS = [PLUS_TIMES, PLUS_PAIR, MIN_PLUS]
FUSED = ["esc", "msa", "hash", "heap"]


@st.composite
def fused_problem(draw, max_dim=12, max_nnz=40):
    """Random (A, B, M, complemented) with empty rows likely (nnz may be 0)."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def mat(nr, nc):
        nnz = draw(st.integers(0, max_nnz))
        rows = draw(st.lists(st.integers(0, nr - 1), min_size=nnz, max_size=nnz))
        cols = draw(st.lists(st.integers(0, nc - 1), min_size=nnz, max_size=nnz))
        vals = [float(v) for v in draw(
            st.lists(st.integers(-4, 4), min_size=nnz, max_size=nnz))]
        return COOMatrix(np.array(rows, dtype=np.int64),
                         np.array(cols, dtype=np.int64),
                         np.array(vals), (nr, nc)).to_csr()

    return mat(m, k), mat(k, n), mat(m, n), draw(st.booleans())


def _assert_blocks_equal(got, want):
    assert np.array_equal(got.sizes, want.sizes)
    assert np.array_equal(got.cols, want.cols)
    assert np.array_equal(got.vals, want.vals)


# --------------------------------------------------------------------- #
# fused hash / heap ≡ per-row loops ≡ reference tier
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("module,name", [(hash_kernel, "hash"),
                                         (heap_kernel, "heap")])
@given(problem=fused_problem())
@settings(max_examples=40, deadline=None)
def test_fused_equals_loop_property(module, name, problem):
    """Fused hash/heap ≡ their per-row loops, bit for bit, plain and
    complemented, including empty rows/outputs."""
    A, B, M, complemented = problem
    mask = Mask.from_matrix(M, complemented=complemented)
    rows = np.arange(A.nrows, dtype=INDEX_DTYPE)
    for semiring in (PLUS_TIMES, MIN_PLUS):
        fused = module.numeric_rows(A, B, mask, semiring, rows)
        loop = module.numeric_rows_loop(A, B, mask, semiring, rows)
        _assert_blocks_equal(fused, loop)
    assert np.array_equal(module.symbolic_rows(A, B, mask, rows),
                          module.symbolic_rows_loop(A, B, mask, rows))


@pytest.mark.parametrize("algorithm", ["hash", "heap"])
@given(problem=fused_problem())
@settings(max_examples=30, deadline=None)
def test_fused_equals_reference_property(algorithm, problem):
    """Fused hash/heap ≡ the pure-Python reference tier, bit for bit."""
    A, B, M, complemented = problem
    mask = Mask.from_matrix(M, complemented=complemented)
    ref = reference_masked_spgemm(A, B, mask, algorithm)
    got = masked_spgemm(A, B, mask, algorithm=algorithm)
    assert got.same_pattern(ref)
    assert np.array_equal(got.data, ref.data)


@pytest.mark.parametrize("module", [hash_kernel, heap_kernel])
@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("complemented", [False, True])
def test_fused_all_semirings_vs_oracle(rng, module, semiring, complemented):
    A, B, M = make_triple(rng, dm=0.12)
    mask = Mask.from_matrix(M, complemented=complemented)
    rows = np.arange(A.nrows, dtype=INDEX_DTYPE)
    block = module.numeric_rows(A, B, mask, semiring, rows)
    C = stitch_blocks([block], A.nrows, B.ncols)
    assert_masked_product_correct(C, A, B, M, semiring,
                                  complemented=complemented)
    _assert_blocks_equal(block,
                         module.numeric_rows_loop(A, B, mask, semiring, rows))


@pytest.mark.parametrize("module", [hash_kernel, heap_kernel])
@pytest.mark.parametrize("complemented", [False, True])
def test_fused_hash_heap_under_tiny_flops_budget(rng, monkeypatch, module,
                                                 complemented):
    """Results are invariant to the memory-bounding fused-block splits."""
    import functools

    from repro.core.expand import fused_blocks

    A, B, M = make_triple(rng, m=40, k=30, n=35)
    mask = Mask.from_matrix(M, complemented=complemented)
    rows = np.arange(40, dtype=INDEX_DTYPE)
    want = module.numeric_rows(A, B, mask, PLUS_TIMES, rows)
    monkeypatch.setattr(module, "fused_blocks",
                        functools.partial(fused_blocks, max_flops=7))
    got = module.numeric_rows(A, B, mask, PLUS_TIMES, rows)
    _assert_blocks_equal(got, want)
    assert np.array_equal(module.symbolic_rows(A, B, mask, rows), want.sizes)


def test_fused_hash_row_subsets_match_full(rng):
    """Chunk contract: arbitrary (non-contiguous) row subsets slice the
    full result — what the hybrid kernel and the runner rely on."""
    A, B, M = make_triple(rng, m=24)
    mask = Mask.from_matrix(M)
    rows = np.array([1, 5, 6, 17, 23], dtype=INDEX_DTYPE)
    for module in (hash_kernel, heap_kernel):
        full = stitch_blocks(
            [module.numeric_rows(A, B, mask, PLUS_TIMES,
                                 np.arange(24, dtype=INDEX_DTYPE))], 24, B.ncols)
        block = module.numeric_rows(A, B, mask, PLUS_TIMES, rows)
        assert np.array_equal(block.sizes,
                              module.symbolic_rows(A, B, mask, rows))
        pos = 0
        for t, i in enumerate(rows):
            k = int(block.sizes[t])
            lo, hi = full.indptr[i], full.indptr[i + 1]
            assert k == hi - lo
            assert np.array_equal(block.cols[pos:pos + k], full.indices[lo:hi])
            assert np.array_equal(block.vals[pos:pos + k], full.data[lo:hi])
            pos += k


# --------------------------------------------------------------------- #
# direct-write vs stitch: every executor, every fused kernel
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", FUSED)
@pytest.mark.parametrize("complemented", [False, True])
def test_direct_write_equals_stitch_all_executors(rng, algorithm,
                                                  complemented):
    A, B, M = make_triple(rng, m=60, k=40, n=50)
    mask = Mask.from_matrix(M, complemented=complemented)
    plan = build_plan(A, B, mask, algorithm=algorithm, phases=2)
    stitched = parallel_masked_spgemm(
        A, B, mask, algorithm=algorithm, phases=2, plan=plan,
        direct_write=False)
    executors = [None, SerialExecutor(), ThreadExecutor(3),
                 SimulatedExecutor(3), ProcessExecutor(2)]
    for ex in executors:
        direct = masked_spgemm(A, B, mask, algorithm=algorithm, phases=2,
                               plan=plan, executor=ex)
        assert direct.same_pattern(stitched), (algorithm, ex)
        assert np.array_equal(direct.data, stitched.data), (algorithm, ex)
        if isinstance(ex, ThreadExecutor):
            ex.close()


@pytest.mark.parametrize("algorithm", FUSED)
def test_direct_write_empty_rows_and_empty_output(rng, algorithm):
    """Empty operands, empty masks, and rows with no entries go through the
    preallocation path (zero-length arrays) without incident."""
    A = CSRMatrix.empty((6, 5))
    B = CSRMatrix.empty((5, 7))
    M = csr_random(6, 7, density=0.3, rng=rng)
    for complemented in (False, True):
        mask = Mask.from_matrix(M, complemented=complemented)
        plan = build_plan(A, B, mask, algorithm=algorithm, phases=2)
        C = masked_spgemm(A, B, mask, algorithm=algorithm, phases=2,
                          plan=plan)
        assert C.nnz == 0 and C.shape == (6, 7)
    # middle rows empty, mask rows empty
    A = CSRMatrix(np.array([0, 2, 2, 2, 4]), np.array([0, 1, 0, 2]),
                  np.array([1.0, 2.0, 3.0, 4.0]), (4, 3))
    B = csr_random(3, 6, density=0.5, rng=rng, values="randint")
    M = CSRMatrix(np.array([0, 0, 2, 2, 3]), np.array([1, 4, 2]),
                  np.ones(3), (4, 6))
    mask = Mask.from_matrix(M)
    ref = reference_masked_spgemm(A, B, mask, algorithm)
    got = masked_spgemm(A, B, mask, algorithm=algorithm, phases=2)
    assert got.same_pattern(ref) and np.array_equal(got.data, ref.data)


@pytest.mark.parametrize("algorithm", FUSED)
def test_direct_write_stale_plan_fails_loudly(rng, algorithm):
    """A plan whose row sizes no longer match the operands must raise before
    any out-of-slice write can corrupt neighbouring rows."""
    A, B, M = make_triple(rng, m=30)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm=algorithm, phases=2)
    total = int(plan.row_sizes.sum())
    if total == 0:
        pytest.skip("degenerate draw: empty output")
    stale_sizes = plan.row_sizes.copy()
    # shift one entry between rows: same total nnz, wrong per-row split —
    # the hardest stale plan to catch (an nnz-sum check would pass)
    src = int(np.argmax(stale_sizes))
    dst = (src + 1) % stale_sizes.size
    stale_sizes[src] -= 1
    stale_sizes[dst] += 1
    stale = SymbolicPlan(algorithm=algorithm, phases=2, shape=plan.shape,
                         row_sizes=stale_sizes)
    with pytest.raises(AlgorithmError, match="stale plan"):
        masked_spgemm(A, B, mask, algorithm=algorithm, phases=2, plan=stale)


def test_write_block_into_validates_sizes():
    from repro.core.types import RowBlock

    block = RowBlock(np.array([2, 1]), np.array([0, 3, 1]),
                     np.array([1.0, 2.0, 3.0]))
    out_c = np.zeros(5, dtype=np.int64)
    out_v = np.zeros(5)
    write_block_into(block, np.array([1, 3, 4]), out_c, out_v)
    assert np.array_equal(out_c, [0, 0, 3, 1, 0])
    assert np.array_equal(out_v, [0.0, 1.0, 2.0, 3.0, 0.0])
    with pytest.raises(AlgorithmError, match="stale plan"):
        write_block_into(block, np.array([1, 2, 4]), out_c, out_v)


def test_uses_direct_write_conditions():
    assert uses_direct_write("esc", 2)
    assert uses_direct_write("hash", 2, ThreadExecutor(1))
    assert not uses_direct_write("esc", 1)
    assert not uses_direct_write("esc", 2, ProcessExecutor(2))
    assert not uses_direct_write("mca", 2)          # no numeric_into
    assert not uses_direct_write("esc", 2, row_sizes_known=False)
    assert not uses_direct_write("nonesuch", 2)
    assert get_spec("mca").numeric_into is None
    assert get_spec("heapdot").numeric_into is None


# --------------------------------------------------------------------- #
# symbolic capture: no-plan two-phase runs feed direct write + plan_sink
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("executor_factory",
                         [lambda: None, lambda: ThreadExecutor(3),
                          lambda: ProcessExecutor(2)])
def test_plan_sink_captures_implied_plan(rng, executor_factory):
    A, B, M = make_triple(rng, m=40, k=30, n=35)
    mask = Mask.from_matrix(M)
    built = build_plan(A, B, mask, algorithm="esc", phases=2)
    ex = executor_factory()
    sink = []
    C = masked_spgemm(A, B, mask, algorithm="esc", phases=2, executor=ex,
                      plan_sink=sink)
    assert len(sink) == 1
    implied = sink[0]
    assert implied.algorithm == "esc" and implied.phases == 2
    assert implied.shape == built.shape
    assert np.array_equal(implied.row_sizes, built.row_sizes)
    # the implied plan replays as a warm plan
    warm = masked_spgemm(A, B, mask, algorithm="esc", phases=2, plan=implied)
    assert warm.equals(C)
    if isinstance(ex, ThreadExecutor):
        ex.close()


def test_plan_sink_captures_auto_resolution(rng):
    """``auto`` resolves before the runner, so the implied plan carries the
    concrete kernel key — replaying it skips the density heuristic."""
    A, B, M = make_triple(rng, m=40, k=30, n=35)
    mask = Mask.from_matrix(M)
    sink = []
    masked_spgemm(A, B, mask, algorithm="auto", phases=2, plan_sink=sink)
    assert len(sink) == 1 and sink[0].algorithm != "auto"


def test_plan_sink_not_filled_when_plan_given(rng):
    A, B, M = make_triple(rng)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="msa", phases=2)
    sink = []
    masked_spgemm(A, B, mask, algorithm="msa", phases=2, plan=plan,
                  plan_sink=sink)
    assert sink == []


# --------------------------------------------------------------------- #
# cache-aware chunk sizing
# --------------------------------------------------------------------- #
def test_chunk_budget_formula():
    assert chunk_budget(72 * 1000) == 1000
    assert chunk_budget(72 * 1000, bytes_per_flop=36) == 2000
    assert chunk_budget(1) == 1  # floor
    assert chunk_budget() == chunk_budget(None)
    assert chunk_budget() * FUSED_BYTES_PER_FLOP <= (16 << 20)


def test_budget_chunk_count_scales_with_work_not_workers():
    w_small = np.ones(100)                      # 100 flops total
    w_big = np.full(100, 10 * chunk_budget())   # 1000 budgets of work
    assert budget_chunk_count(w_small, nworkers=1) == 1
    assert budget_chunk_count(w_small, nworkers=4) == 4   # worker floor
    assert budget_chunk_count(w_big, nworkers=1) == 1000  # cache term
    assert budget_chunk_count(w_big, nworkers=4) == 1000
    assert budget_chunk_count(np.zeros(10), nworkers=2) == 2
    assert budget_chunk_count(np.empty(0), nworkers=3) == 3
    # explicit budget
    assert budget_chunk_count(np.full(8, 5.0), 1, budget=10) == 4


def test_runner_uses_budget_chunks(rng, monkeypatch):
    """The runner's default chunk count comes from budget_chunk_count (the
    old nworkers×4 heuristic is gone)."""
    from repro.parallel import runner as runner_mod

    A, B, M = make_triple(rng, m=50, k=40, n=45)
    mask = Mask.from_matrix(M)
    seen = {}

    def spy(weights, nworkers, budget=None):
        seen["count"] = budget_chunk_count(weights, nworkers, budget)
        return seen["count"]

    monkeypatch.setattr(runner_mod, "budget_chunk_count", spy)
    parallel_masked_spgemm(A, B, mask, algorithm="msa",
                           executor=SerialExecutor())
    assert seen["count"] >= 1


# --------------------------------------------------------------------- #
# shard direct write ≡ thread direct write ≡ stitch (PR 5)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", FUSED)
@pytest.mark.parametrize("complemented", [False, True])
def test_shard_direct_write_equals_thread_and_stitch(rng, algorithm,
                                                     complemented):
    """The multi-process direct-write path (shard workers scattering into a
    shared output CSR) is bit-identical to the thread direct-write path and
    the stitch path for every fused kernel — the executor-backed coverage
    the process-pool numeric path previously lacked."""
    from repro.shard import shard_masked_spgemm, shared_memory_available

    if not shared_memory_available():
        pytest.skip("no usable shared memory on this machine")
    A, B, M = make_triple(rng, m=50, k=40, n=45)
    mask = Mask.from_matrix(M, complemented=complemented)
    plan = build_plan(A, B, mask, algorithm=algorithm, phases=2)
    stitched = parallel_masked_spgemm(
        A, B, mask, algorithm=algorithm, phases=2, plan=plan,
        direct_write=False)
    with ThreadExecutor(3) as ex:
        threaded = masked_spgemm(A, B, mask, algorithm=algorithm, phases=2,
                                 plan=plan, executor=ex)
    sharded = shard_masked_spgemm(A, B, mask, algorithm=algorithm,
                                  nshards=2, plan=plan)
    for got in (threaded, sharded):
        assert got.same_pattern(stitched), algorithm
        assert np.array_equal(got.data, stitched.data), algorithm
