"""Coverage for the remaining constructors and runner knobs."""

import numpy as np
import pytest

from repro.mask import Mask
from repro.parallel import SerialExecutor, parallel_masked_spgemm
from repro.sparse import csr_diag, csr_eye, csr_random
from repro.sparse.construct import csr_random as _random


class TestEyeDiag:
    def test_eye(self):
        i5 = csr_eye(5)
        assert np.array_equal(i5.to_dense(), np.eye(5))
        assert i5.nnz == 5

    def test_eye_is_spgemm_identity(self, rng):
        from repro.core import spgemm

        a = csr_random(6, 6, density=0.4, rng=rng)
        assert spgemm(a, csr_eye(6)).allclose_values(a)
        assert spgemm(csr_eye(6), a).allclose_values(a)

    def test_diag_main(self):
        d = csr_diag([1.0, 2.0, 3.0])
        assert np.array_equal(d.to_dense(), np.diag([1.0, 2.0, 3.0]))

    @pytest.mark.parametrize("k", [-2, -1, 1, 2])
    def test_diag_offsets(self, k):
        d = csr_diag([1.0, 2.0], k=k)
        assert np.array_equal(d.to_dense(), np.diag([1.0, 2.0], k=k))


class TestRandomConstructor:
    def test_requires_exactly_one_size_spec(self, rng):
        with pytest.raises(ValueError):
            _random(5, 5, rng=rng)
        with pytest.raises(ValueError):
            _random(5, 5, density=0.1, nnz=3, rng=rng)

    def test_density_bounds(self, rng):
        with pytest.raises(ValueError):
            _random(5, 5, density=1.5, rng=rng)
        with pytest.raises(ValueError):
            _random(5, 5, nnz=-1, rng=rng)

    def test_nnz_request(self, rng):
        m = _random(20, 20, nnz=30, rng=rng)
        assert 0 < m.nnz <= 30  # duplicates may collapse

    def test_value_kinds(self, rng):
        assert np.all(_random(10, 10, density=0.3, rng=rng,
                              values="ones").data == 1.0)
        ri = _random(10, 10, density=0.3, rng=rng, values="randint")
        assert np.all((ri.data >= 1) & (ri.data <= 9))
        with pytest.raises(ValueError):
            _random(5, 5, density=0.2, rng=rng, values="gaussian")

    def test_full_density(self, rng):
        m = _random(6, 6, density=1.0, rng=rng)
        assert m.nnz <= 36  # sampling with replacement caps below full


class TestRunnerKnobs:
    def test_explicit_nchunks(self, rng):
        A = csr_random(40, 40, density=0.1, rng=rng)
        B = csr_random(40, 40, density=0.1, rng=rng)
        M = csr_random(40, 40, density=0.2, rng=rng)
        mask = Mask.from_matrix(M)
        base = parallel_masked_spgemm(A, B, mask, algorithm="msa",
                                      executor=SerialExecutor())
        for nchunks in (1, 3, 17, 100):
            got = parallel_masked_spgemm(A, B, mask, algorithm="msa",
                                         executor=SerialExecutor(),
                                         nchunks=nchunks)
            assert got.equals(base), nchunks


def test_all_26_suite_graphs_build_and_are_simple():
    from repro.graphs import suite_names, load_graph

    for name in suite_names():
        g = load_graph(name)
        assert g.nnz > 0, name
        assert np.all(g.diagonal() == 0), name
        # symmetry check via transpose pattern equality (cheap)
        assert g.pattern().same_pattern(g.transpose().pattern()), name
