"""Chaos suite for :mod:`repro.resilience` (PR 7).

The standing contract: every resilience mechanism keeps results
**bit-identical** — a retried, degraded, healed, or breaker-routed request
returns exactly the bytes the plain in-process engine would have. The
fault-injection seam (:class:`~repro.resilience.FaultPlan`) is what lets
this suite *actually* kill shard workers, inject worker errors, slow
kernels, and expire deadlines, deterministically:

* worker kill mid-scatter → pool break, heal, same-tier retry, identical
  result; a second kill exhausts the retry budget and degrades in-process,
  still identical;
* injected worker errors feed the circuit breaker: trip after N
  consecutive failures, route around the pool while open, half-open probe
  after the cooldown, close on probe success;
* deadlines shed queued work (typed ``DeadlineExceeded`` naming the
  enforcement stage) and attribute a coalesced follower's expiry to the
  follower, not the primary;
* ``AsyncServer.close()`` during injected failures leaves no stranded
  futures and no leaked ``/dev/shm`` segments;
* orphaned-segment sweeps (``repro gc-shm``) unlink only dead-owner
  segments, and the PlanStore warm start survives corrupt entries.
"""

import asyncio
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from conftest import make_triple
from repro.mask import Mask
from repro.obs import MetricsRegistry, ObsHTTPServer, parse_exposition
from repro.resilience import (
    BREAKER_STATE_VALUES,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    apply_fault,
    list_repro_segments,
    resolve_deadline,
    sweep_orphans,
    wire_format,
)
from repro.service import AsyncServer, Engine, PlanStore, Request, serve_all
from repro.service.plan import plan_key
from repro.core.plan import build_plan
from repro.shard import shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="no usable shared memory on this machine")

#: fast schedule for tests — single quick retry, microscopic backoff
FAST_RETRY = dict(max_attempts=2, base_delay=0.001, max_delay=0.002)


def _assert_identical(got, want):
    assert got.same_pattern(want)
    assert np.array_equal(got.data, want.data)


def _shard_engine(rng, *, faults=None, breaker=None, retry=None, nshards=2):
    A, B, M = make_triple(rng, m=40, k=30, n=35)
    eng = Engine(shards=nshards, faults=faults, breaker=breaker,
                 retry=retry or RetryPolicy(**FAST_RETRY))
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    return eng, (A, B, M)


def _reference_result(A, B, M, **req_kw):
    """The plain, fault-free, in-process answer — the bit-identity oracle."""
    ref = Engine(faults=FaultPlan(()))
    ref.register("A", A)
    ref.register("B", B)
    ref.register("M", M)
    try:
        return ref.submit(Request(a="A", b="B", mask="M", phases=2,
                                  **req_kw)).result
    finally:
        ref.close()


def _families(engine):
    return parse_exposition(engine.metrics.render())


def _family_sum(engine, name):
    return sum(_families(engine).get(name, {}).values())


# ---------------------------------------------------------------------- #
# fault plan parsing and bookkeeping
# ---------------------------------------------------------------------- #
def test_fault_spec_parse_forms():
    s = FaultSpec.parse("shard.numeric:kill")
    assert (s.site, s.action, s.count) == ("shard.numeric", "kill", 1)
    s = FaultSpec.parse("engine.kernel:error:3")
    assert (s.action, s.count) == ("error", 3)
    s = FaultSpec.parse("shard.numeric:slow:2:0.05")
    assert (s.count, s.param) == (2, 0.05)
    with pytest.raises(ValueError):
        FaultSpec.parse("just-a-site")
    with pytest.raises(ValueError):
        FaultSpec.parse("shard.numeric:explode")
    with pytest.raises(ValueError):
        FaultSpec(site="x", action="kill", count=0)


def test_fault_plan_check_decrements_and_records():
    plan = FaultPlan.parse("shard.numeric:error:2,engine.kernel:slow:1")
    assert bool(plan)
    assert plan.check("nowhere") is None
    assert plan.check("shard.numeric").action == "error"
    assert plan.check("shard.numeric").action == "error"
    assert plan.check("shard.numeric") is None  # budget spent
    assert plan.check("engine.kernel").action == "slow"
    assert not plan  # everything spent
    assert plan.fired == {("shard.numeric", "error"): 2,
                          ("engine.kernel", "slow"): 1}
    assert plan.fired_total() == 3


def test_fault_plan_skip_passes_through_first():
    plan = FaultPlan([FaultSpec(site="s", action="error", count=1, skip=2)])
    assert plan.check("s") is None
    assert plan.check("s") is None
    assert plan.check("s") is not None
    assert plan.check("s") is None


def test_fault_plan_from_env():
    assert FaultPlan.from_env({}) is None
    assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None
    plan = FaultPlan.from_env({"REPRO_FAULTS": "shard.attach:error:2"})
    assert plan.check("shard.attach") is not None


def test_apply_fault_actions_and_wire_format():
    apply_fault(None)  # no-op
    with pytest.raises(InjectedFault):
        apply_fault(FaultSpec(site="s", action="error"))
    with pytest.raises(InjectedFault):
        apply_fault(("s", "error", 0.0))  # wire form, as workers receive it
    t0 = time.perf_counter()
    apply_fault(FaultSpec(site="s", action="slow", param=0.02))
    assert time.perf_counter() - t0 >= 0.02
    assert wire_format(None) is None
    assert wire_format(FaultSpec(site="s", action="kill", param=0.1)) == \
        ("s", "kill", 0.1)


def test_apply_fault_kill_exits_hard():
    # kill must be a crash (os._exit), not an exception — verify in a
    # throwaway child so the test process survives
    code = ("from repro.resilience import apply_fault, FaultSpec\n"
            "apply_fault(FaultSpec(site='s', action='kill'))\n"
            "print('survived')\n")
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True,
                          env={**os.environ,
                               "PYTHONPATH": str(Path(__file__).parent.parent
                                                 / "src")})
    assert proc.returncode == 1
    assert "survived" not in proc.stdout


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #
def test_retry_backoff_grows_and_caps():
    pol = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=2.0,
                      max_delay=0.05, jitter=0.0)
    assert pol.backoff(0) == pytest.approx(0.01)
    assert pol.backoff(1) == pytest.approx(0.02)
    assert pol.backoff(2) == pytest.approx(0.04)
    assert pol.backoff(3) == pytest.approx(0.05)  # capped
    assert pol.backoff(10) == pytest.approx(0.05)


def test_retry_jitter_is_seeded_and_bounded():
    a = [RetryPolicy(jitter=0.5, seed=7).backoff(1) for _ in range(3)]
    b = [RetryPolicy(jitter=0.5, seed=7).backoff(1) for _ in range(3)]
    assert a == b  # same seed, same schedule
    base = RetryPolicy(jitter=0.0).backoff(1)
    for d in a:
        assert base <= d <= base * 1.5
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
def test_breaker_trips_half_opens_and_recovers():
    reg = MetricsRegistry()
    br = CircuitBreaker(failure_threshold=2, reset_seconds=0.03)
    br.bind_metrics(reg)
    assert br.state == "closed" and br.allow()
    br.record_failure()
    assert br.state == "closed"  # one failure below threshold
    br.record_failure()
    assert br.state == "open"
    assert not br.allow()  # cooling down: route around the pool
    time.sleep(0.04)
    assert br.allow()  # this call claims the half-open probe slot
    assert br.state == "half_open"
    assert not br.allow()  # concurrent callers refused while probing
    br.record_failure()  # probe failed → reopen
    assert br.state == "open"
    time.sleep(0.04)
    assert br.allow()
    br.record_success()  # probe succeeded → closed, counter reset
    assert br.state == "closed"
    br.record_failure()
    assert br.state == "closed"  # consecutive count restarted

    fam = parse_exposition(reg.render())
    assert sum(fam["repro_breaker_state"].values()) == \
        BREAKER_STATE_VALUES["closed"]
    assert sum(fam["repro_breaker_transitions_total"].values()) >= 4


def test_breaker_success_resets_consecutive_failures():
    br = CircuitBreaker(failure_threshold=2)
    br.record_failure()
    br.record_success()
    br.record_failure()
    assert br.state == "closed"  # never two *consecutive* failures


# ---------------------------------------------------------------------- #
# deadlines
# ---------------------------------------------------------------------- #
def test_deadline_basics():
    assert Deadline.after_ms(None) is None
    d = Deadline.after_ms(10_000)
    assert not d.expired() and d.remaining() > 9.0
    d.check("engine")  # plenty of budget: no raise
    spent = Deadline(time.monotonic() - 0.001)
    assert spent.expired()
    with pytest.raises(DeadlineExceeded) as ei:
        spent.check("scatter", "3 tasks in flight")
    assert ei.value.stage == "scatter"
    assert "3 tasks in flight" in str(ei.value)


def test_resolve_deadline_prefers_server_stamp():
    req = Request(a="A", b="B", deadline_ms=5_000)
    fresh = resolve_deadline(req)
    assert fresh is not None and fresh.remaining() > 4.0
    stamped = Deadline.after_ms(50)
    req._deadline = stamped
    assert resolve_deadline(req) is stamped  # queue time already counted
    assert resolve_deadline(Request(a="A", b="B")) is None


def test_request_deadline_ms_roundtrips_from_dict():
    req = Request.from_dict({"a": "A", "b": "B", "deadline_ms": 250})
    assert req.deadline_ms == 250
    # deadline is not part of batching identity: equal work, equal key
    assert req.group_key() == Request(a="A", b="B").group_key()


# ---------------------------------------------------------------------- #
# orphaned shared-memory hygiene
# ---------------------------------------------------------------------- #
def _dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_sweep_orphans_unlinks_only_dead_owners(tmp_path):
    dead = _dead_pid()
    (tmp_path / f"repro_{dead}_0").write_bytes(b"x" * 64)
    (tmp_path / f"repro_{os.getpid()}_0").write_bytes(b"y" * 32)
    (tmp_path / "repro_notapid").write_bytes(b"z")  # unparsable: left alone
    (tmp_path / "unrelated").write_bytes(b"w")

    segs = {s.name: s for s in list_repro_segments(str(tmp_path))}
    assert segs[f"repro_{dead}_0"].owner_alive is False
    assert segs[f"repro_{os.getpid()}_0"].owner_alive is True
    assert segs["repro_notapid"].owner_pid == 0
    assert "unrelated" not in segs

    dry = sweep_orphans(str(tmp_path), dry_run=True)
    assert [s.name for s in dry] == [f"repro_{dead}_0"]
    assert (tmp_path / f"repro_{dead}_0").exists()  # dry run touches nothing

    swept = sweep_orphans(str(tmp_path))
    assert [s.name for s in swept] == [f"repro_{dead}_0"]
    assert not (tmp_path / f"repro_{dead}_0").exists()
    assert (tmp_path / f"repro_{os.getpid()}_0").exists()
    assert (tmp_path / "repro_notapid").exists()
    assert (tmp_path / "unrelated").exists()


def test_gc_shm_cli(tmp_path, capsys):
    from repro.__main__ import main

    dead = _dead_pid()
    (tmp_path / f"repro_{dead}_1").write_bytes(b"x" * 128)
    assert main(["gc-shm", "--shm-dir", str(tmp_path), "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would unlink 1" in out and "ORPHAN" in out
    assert (tmp_path / f"repro_{dead}_1").exists()

    assert main(["gc-shm", "--shm-dir", str(tmp_path)]) == 0
    assert "unlinked 1" in capsys.readouterr().out
    assert not (tmp_path / f"repro_{dead}_1").exists()

    assert main(["gc-shm", "--shm-dir", str(tmp_path)]) == 0
    assert "no repro_* segments" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# tolerant plan-store warm start
# ---------------------------------------------------------------------- #
def test_plan_store_skips_corrupt_entry(rng, tmp_path):
    A, B, M = make_triple(rng, m=25, k=20, n=25)
    mask = Mask.from_matrix(M)
    pairs = []
    for alg in ("msa", "hash"):
        plan = build_plan(A, B, mask, algorithm=alg, phases=2)
        key = plan_key("afp", "bfp", "mfp", False, alg, 2, "plus_times")
        pairs.append((key, plan))
    path = tmp_path / "plans.npz"
    store = PlanStore(path)
    assert store.save(pairs) == 2

    # mangle entry 0's key in place (wrong arity) — entry 1 must survive
    with np.load(path, allow_pickle=False) as z:
        arrays = {name: z[name] for name in z.files}
        doc = json.loads(bytes(arrays.pop("manifest")))
    doc["plans"][0]["key"] = ["broken"]
    arrays["manifest"] = np.frombuffer(json.dumps(doc).encode(),
                                       dtype=np.uint8)
    with open(path, "wb") as f:
        np.savez_compressed(f, **arrays)

    with pytest.warns(RuntimeWarning, match="skipping corrupt plan entry 0"):
        restored = store.load()
    assert len(restored) == 1
    key, plan = restored[0]
    assert key[4] == "hash"
    assert np.array_equal(plan.row_sizes, pairs[1][1].row_sizes)


# ---------------------------------------------------------------------- #
# worker kill mid-scatter: retry, heal, degrade — all bit-identical
# ---------------------------------------------------------------------- #
@needs_shm
def test_worker_kill_retries_bit_identically(rng):
    eng, (A, B, M) = _shard_engine(
        rng, faults=FaultPlan(["shard.numeric:kill:1"]))
    try:
        resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(resp.result, _reference_result(A, B, M))
        assert resp.stats.sharded  # the retry landed back on the pool
        assert eng.shards is not None and eng.shards.respawns == 1
        assert eng._retries.value(tier="shard", outcome="success") == 1
        assert eng.breaker.state == "closed"  # below the default threshold
        assert eng.faults.fired == {("shard.numeric", "kill"): 1}
    finally:
        eng.close()


@needs_shm
def test_worker_kill_exhausting_retries_degrades_bit_identically(rng):
    eng, (A, B, M) = _shard_engine(
        rng, faults=FaultPlan(["shard.numeric:kill:2"]))
    try:
        resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(resp.result, _reference_result(A, B, M))
        assert not resp.stats.sharded  # retry budget spent → in-process
        assert eng._retries.value(tier="shard", outcome="failure") == 1
        assert _families(eng)["repro_degraded_total"][
            (("from", "shard"), ("to", "inprocess"))] >= 1
        # the pool healed behind the failure: the next request shards again
        resp2 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        assert resp2.stats.sharded
        _assert_identical(resp2.result, resp.result)
    finally:
        eng.close()


@needs_shm
def test_injected_worker_error_trips_and_half_opens_breaker(rng):
    eng, (A, B, M) = _shard_engine(
        rng,
        faults=FaultPlan(["shard.numeric:error:3"]),
        breaker=CircuitBreaker(failure_threshold=2, reset_seconds=0.05))
    try:
        want = _reference_result(A, B, M)
        # request 1: two injected worker errors exhaust the retry budget
        # and trip the breaker (threshold 2)
        r1 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(r1.result, want)
        assert eng.breaker.state == "open"

        # request 2 (breaker open): routed straight around the pool — the
        # remaining fault budget is not consumed
        r2 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(r2.result, want)
        assert not r2.stats.sharded
        assert eng.faults.fired_total() == 2

        # request 3 after the cooldown: half-open probe hits the third
        # injected error → breaker reopens
        time.sleep(0.06)
        r3 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(r3.result, want)
        assert eng.breaker.state == "open"
        assert eng.faults.fired_total() == 3

        # request 4 after another cooldown: probe succeeds (faults spent)
        # → breaker closes and sharded serving resumes
        time.sleep(0.06)
        r4 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        _assert_identical(r4.result, want)
        assert r4.stats.sharded
        assert eng.breaker.state == "closed"
        fam = _families(eng)
        assert fam["repro_breaker_transitions_total"][
            (("to", "open"),)] == 2
        assert fam["repro_breaker_transitions_total"][
            (("to", "half_open"),)] == 2
        assert fam["repro_breaker_transitions_total"][
            (("to", "closed"),)] == 1
    finally:
        eng.close()


def test_engine_kernel_fault_degrades_to_loop_tier(rng):
    from repro.native import native_available

    # the compiled tier (when present) adds a rung above fused: kill every
    # rung so the request bottoms out on the loop
    native = native_available()
    nfaults = 2 if native else 1
    algorithm = "msa-native" if native else "msa"
    eng = Engine(faults=FaultPlan([f"engine.kernel:error:{nfaults}"]))
    A, B, M = make_triple(rng, m=30, k=25, n=30)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    try:
        resp = eng.submit(Request(a="A", b="B", mask="M",
                                  algorithm=algorithm, phases=2))
        _assert_identical(resp.result, _reference_result(A, B, M))
        assert resp.stats.kernel_tier == "loop"
        fam = _families(eng)["repro_degraded_total"]
        if native:
            assert fam[(("from", "native"), ("to", "fused"))] == 1
        assert fam[(("from", "inprocess"), ("to", "loop"))] == 1
    finally:
        eng.close()


# ---------------------------------------------------------------------- #
# deadlines through the engine and the shard scatter
# ---------------------------------------------------------------------- #
@needs_shm
def test_scatter_deadline_sheds_and_pool_survives(rng):
    eng, (A, B, M) = _shard_engine(
        rng, faults=FaultPlan(["shard.numeric:slow:1:0.5"]))
    try:
        with pytest.raises(DeadlineExceeded) as ei:
            eng.submit(Request(a="A", b="B", mask="M", phases=2,
                               deadline_ms=120))
        assert ei.value.stage == "scatter"
        assert eng._deadline_total.value(stage="scatter") == 1
        # the abandoned scatter must not poison the pool: the next
        # (undeadlined) request serves sharded and bit-identically
        resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        assert resp.stats.sharded
        _assert_identical(resp.result, _reference_result(A, B, M))
    finally:
        eng.close()


def test_expired_deadline_shed_before_any_work(rng):
    eng = Engine()
    A, B, M = make_triple(rng, m=20, k=15, n=20)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    try:
        req = Request(a="A", b="B", mask="M", phases=2, deadline_ms=50)
        req._deadline = Deadline(time.monotonic() - 1.0)  # already spent
        with pytest.raises(DeadlineExceeded) as ei:
            eng.submit(req)
        assert ei.value.stage == "engine"
        assert eng._deadline_total.value(stage="engine") == 1
    finally:
        eng.close()


# ---------------------------------------------------------------------- #
# async server: queue sheds and follower attribution
# ---------------------------------------------------------------------- #
def test_deadline_sheds_queued_work(rng):
    # one worker, a slow request in front (injected 0.3 s kernel stall),
    # and a 60 ms-deadline request stuck behind it in the queue
    eng = Engine(faults=FaultPlan(["engine.kernel:slow:1:0.3"]))
    A, B, M = make_triple(rng, m=30, k=25, n=30)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    slow = Request(a="A", b="B", mask="M", phases=2, tag="slow")
    shed = Request(a="A", b="B", mask="M", phases=2, tag="shed",
                   deadline_ms=60)

    async def main():
        async with AsyncServer(eng, workers=1, dedup=False) as srv:
            results = await asyncio.gather(srv.submit(slow),
                                           srv.submit(shed),
                                           return_exceptions=True)
        return results, srv

    try:
        (slow_res, shed_res), srv = asyncio.run(main())
        assert not isinstance(slow_res, BaseException)
        _assert_identical(slow_res.result, _reference_result(A, B, M))
        assert isinstance(shed_res, DeadlineExceeded)
        assert shed_res.stage in ("queue", "submit", "admission")
        assert srv.stats.shed == 1
        assert srv.stats.completed == 1
    finally:
        eng.close()


def test_follower_gets_own_deadline_not_the_primaries(rng):
    # a coalesced follower whose own budget expires while awaiting the
    # (undeadlined, slow) primary is shed with stage="follower"; the
    # primary still completes
    eng = Engine(faults=FaultPlan(["engine.kernel:slow:1:0.4"]))
    A, B, M = make_triple(rng, m=30, k=25, n=30)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    primary = Request(a="A", b="B", mask="M", phases=2)
    follower = Request(a="A", b="B", mask="M", phases=2, deadline_ms=100)

    async def main():
        async with AsyncServer(eng, workers=1) as srv:
            t1 = asyncio.ensure_future(srv.submit(primary))
            await asyncio.sleep(0.05)  # primary is in flight
            t2 = asyncio.ensure_future(srv.submit(follower))
            return await asyncio.gather(t1, t2,
                                        return_exceptions=True), srv

    try:
        (prim_res, foll_res), srv = asyncio.run(main())
        assert not isinstance(prim_res, BaseException)
        _assert_identical(prim_res.result, _reference_result(A, B, M))
        assert isinstance(foll_res, DeadlineExceeded)
        assert foll_res.stage == "follower"
        assert srv.stats.shed == 1
    finally:
        eng.close()


# ---------------------------------------------------------------------- #
# shutdown under injected failure: no stranded futures, no leaked shm
# ---------------------------------------------------------------------- #
@needs_shm
def test_close_during_failures_strands_nothing(rng):
    eng, (A, B, M) = _shard_engine(
        rng, faults=FaultPlan(["shard.numeric:kill:3"]))
    want = _reference_result(A, B, M)
    reqs = [Request(a="A", b="B", mask="M", phases=2, tag=str(i))
            for i in range(4)]

    async def main():
        async with AsyncServer(eng, workers=2, dedup=False) as srv:
            tasks = [asyncio.ensure_future(srv.submit(r)) for r in reqs]
            await asyncio.sleep(0.05)  # kills land while these are live
            # __aexit__ drains the queue; every submitted future must
            # resolve — bound the wait so a strand fails instead of hanging
            return await asyncio.wait_for(
                asyncio.gather(*tasks, return_exceptions=True), 60), srv

    try:
        results, srv = asyncio.run(main())
        assert len(results) == 4
        for r in results:
            assert not isinstance(r, BaseException), r
            _assert_identical(r.result, want)
        assert srv.stats.completed == 4
    finally:
        names = eng.shards.store.live_segment_names() if eng.shards else []
        eng.close()
    shm = Path("/dev/shm")
    if shm.is_dir():
        assert not [n for n in names if (shm / n.lstrip("/")).exists()]
        mine = [s for s in list_repro_segments()
                if s.owner_pid == os.getpid()]
        assert mine == []


# ---------------------------------------------------------------------- #
# liveness/readiness endpoints
# ---------------------------------------------------------------------- #
def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()


def test_healthz_readyz_follow_readiness():
    up = {"ready": True}
    with ObsHTTPServer(MetricsRegistry(),
                       ready=lambda: up["ready"]) as obs:
        assert _get(f"{obs.url}/healthz") == (200, "ok\n")
        assert _get(f"{obs.url}/readyz") == (200, "ready\n")
        up["ready"] = False
        assert _get(f"{obs.url}/readyz")[0] == 503
        assert _get(f"{obs.url}/healthz")[0] == 200  # alive though not ready


def test_readyz_without_probe_and_with_dying_probe():
    with ObsHTTPServer(MetricsRegistry()) as obs:  # no probe: always ready
        assert _get(f"{obs.url}/readyz")[0] == 200

    def dying():
        raise RuntimeError("probe crashed")

    with ObsHTTPServer(MetricsRegistry(), ready=dying) as obs:
        assert _get(f"{obs.url}/readyz")[0] == 503


def test_engine_ready_flips_on_close():
    eng = Engine()
    assert eng.ready()
    eng.close()
    assert not eng.ready()


# ---------------------------------------------------------------------- #
# chaos × deltas (PR 8): a worker kill on the first post-delta request
# ---------------------------------------------------------------------- #
@needs_shm
def test_worker_kill_after_delta_degrades_bit_identically(rng):
    """A pattern delta splices the cached plan and resplits the shard
    partition; killing workers on the very next request must exhaust the
    retry budget, degrade in-process, and still serve the *post-delta*
    product bit-identically — the spliced plan is kernel-portable all the
    way down the tier ladder."""
    from repro.delta import DeltaBatch

    eng, (A, B, M) = _shard_engine(
        rng, faults=FaultPlan([FaultSpec(site="shard.numeric",
                                         action="kill", count=2, skip=1)]))
    try:
        warm = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        assert warm.stats.sharded  # skip=1 let the warm-up through
        rows = np.repeat(np.arange(A.nrows), np.diff(A.indptr))
        out = eng.apply_delta("A", DeltaBatch(
            delete=[(int(rows[i]), int(A.indices[i])) for i in range(4)]))
        assert out.kind == "pattern" and out.plans_spliced == 1
        post_A = eng.entry("A").value

        resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        assert resp.stats.plan_cache_hit           # served off the splice
        assert not resp.stats.sharded              # both kills landed
        _assert_identical(resp.result, _reference_result(post_A, B, M))
        assert eng.faults.fired == {("shard.numeric", "kill"): 2}
        assert _families(eng)["repro_degraded_total"][
            (("from", "shard"), ("to", "inprocess"))] >= 1
        # the pool healed behind the kills: the next request shards again,
        # on the resplit partition, same bytes
        resp2 = eng.submit(Request(a="A", b="B", mask="M", phases=2))
        assert resp2.stats.sharded
        _assert_identical(resp2.result, resp.result)
    finally:
        eng.close()
