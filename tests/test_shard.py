"""Sharded multi-process execution (`repro.shard`).

The PR-5 contracts:

* sharded execution is **bit-identical** to the in-process tiers (and the
  pure-Python reference) across the four fused kernels, plain and
  complemented masks, all registered semirings — the same kernels run on
  the same contiguous row ranges, only into a shared mapping;
* :class:`~repro.shard.ShardPlanner` splits are deterministic, contiguous,
  cover every row exactly once, and carry absolute offsets matching the
  full plan's indptr;
* lifecycle safety: ``Engine.close()`` / coordinator ``close()`` unlink
  every created segment (verified against ``/dev/shm``), worker failures
  clean up the request's output segment and leave the pool serviceable,
  and everything degrades to the in-process path when shared memory or
  eligibility is missing;
* the service layer reports shard telemetry (``RequestStats.sharded``,
  ``EngineStats.sharded``, ``ServerStats.sharded``).
"""

import asyncio
import os
from pathlib import Path

import numpy as np
import pytest

from conftest import make_triple
from repro.core import build_plan, masked_spgemm
from repro.core.plan import SymbolicPlan
from repro.core.reference import reference_masked_spgemm
from repro.errors import AlgorithmError, ReproError
from repro.mask import Mask
from repro.parallel.runner import parallel_masked_spgemm
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.service import AsyncServer, Engine, Request
from repro.shard import (
    ShardCoordinator,
    ShardedMatrixStore,
    ShardError,
    ShardPlanner,
    shard_masked_spgemm,
    shared_memory_available,
    split_row_sizes,
)
from repro.sparse import CSRMatrix, csr_random

FUSED = ["esc", "msa", "hash", "heap"]

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="no usable shared memory on this machine (degradation has its "
           "own always-on tests below)")


def _shm_leftovers(names):
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return [n for n in names if (shm / n.lstrip("/")).exists()]


def _assert_identical(got, want):
    assert got.same_pattern(want)
    assert np.array_equal(got.data, want.data)


# --------------------------------------------------------------------- #
# bit-identity against the in-process tiers
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", FUSED)
@pytest.mark.parametrize("complemented", [False, True])
def test_shard_equals_reference(rng, algorithm, complemented):
    A, B, M = make_triple(rng, m=40, k=30, n=35)
    mask = Mask.from_matrix(M, complemented=complemented)
    ref = reference_masked_spgemm(A, B, mask, algorithm)
    got = shard_masked_spgemm(A, B, mask, algorithm=algorithm, nshards=3)
    _assert_identical(got, ref)


@pytest.mark.parametrize("semiring", [PLUS_TIMES, PLUS_PAIR, MIN_PLUS],
                         ids=lambda s: s.name)
def test_shard_all_semirings(rng, semiring):
    A, B, M = make_triple(rng, m=35, k=30, n=30)
    mask = Mask.from_matrix(M)
    want = masked_spgemm(A, B, mask, algorithm="esc", semiring=semiring,
                         phases=2)
    got = shard_masked_spgemm(A, B, mask, algorithm="esc",
                              semiring=semiring, nshards=2)
    _assert_identical(got, want)


def test_shard_tc_workload(rng):
    """The paper's TC product L ⊙ (L·L) — the gate workload's shape."""
    from repro.graphs import erdos_renyi
    from repro.graphs.prep import triangle_prep

    L = triangle_prep(erdos_renyi(200, 8.0, rng=7, symmetrize=True))
    mask = Mask.from_matrix(L)
    want = masked_spgemm(L, L, mask, algorithm="esc", semiring=PLUS_PAIR,
                         phases=2)
    got = shard_masked_spgemm(L, L, mask, algorithm="esc",
                              semiring=PLUS_PAIR, nshards=2)
    _assert_identical(got, want)


def test_shard_empty_and_tiny(rng):
    A = CSRMatrix.empty((6, 5))
    B = CSRMatrix.empty((5, 7))
    M = csr_random(6, 7, density=0.3, rng=rng)
    got = shard_masked_spgemm(A, B, Mask.from_matrix(M), algorithm="esc",
                              nshards=2)
    assert got.nnz == 0 and got.shape == (6, 7)
    # more shards than rows
    A2, B2, M2 = make_triple(rng, m=3, k=4, n=5)
    mask = Mask.from_matrix(M2)
    got = shard_masked_spgemm(A2, B2, mask, algorithm="msa", nshards=8)
    _assert_identical(got, masked_spgemm(A2, B2, mask, algorithm="msa",
                                         phases=2))


def test_shard_with_prebuilt_plan_and_sink(rng):
    A, B, M = make_triple(rng, m=30)
    mask = Mask.from_matrix(M)
    plan = build_plan(A, B, mask, algorithm="hash", phases=2)
    got = shard_masked_spgemm(A, B, mask, algorithm="hash", nshards=2,
                              plan=plan)
    _assert_identical(got, masked_spgemm(A, B, mask, algorithm="hash",
                                         phases=2, plan=plan))
    # no plan: the sharded symbolic pass fills the sink with an equal plan
    sink = []
    shard_masked_spgemm(A, B, mask, algorithm="hash", nshards=2,
                        plan_sink=sink)
    assert len(sink) == 1
    assert np.array_equal(sink[0].row_sizes, plan.row_sizes)


def test_runner_shard_backend(rng):
    A, B, M = make_triple(rng, m=30)
    mask = Mask.from_matrix(M)
    want = parallel_masked_spgemm(A, B, mask, algorithm="esc", phases=2)
    got = parallel_masked_spgemm(A, B, mask, algorithm="esc", phases=2,
                                 backend="shard")
    _assert_identical(got, want)
    with pytest.raises(AlgorithmError, match="backend"):
        parallel_masked_spgemm(A, B, mask, backend="nonesuch")


# --------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------- #
class TestShardPlanner:
    def test_split_covers_rows_disjointly(self):
        sizes = np.array([5, 0, 3, 7, 1, 0, 2, 4], dtype=np.int64)
        plans = split_row_sizes(sizes, 3)
        assert plans[0].row_lo == 0 and plans[-1].row_hi == sizes.size
        for a, b in zip(plans, plans[1:]):
            assert a.row_hi == b.row_lo
        indptr = np.concatenate([[0], np.cumsum(sizes)])
        for sp in plans:
            assert sp.nnz_lo == indptr[sp.row_lo]
            assert sp.nnz_hi == indptr[sp.row_hi]
            assert sp.nnz == int(sizes[sp.row_lo:sp.row_hi].sum())

    def test_split_balances_by_sizes(self):
        # one huge row should not drag its whole half along
        sizes = np.array([100, 1, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        plans = split_row_sizes(sizes, 2)
        assert plans[0].row_hi == 1  # the heavy row alone
        assert plans[1].nrows == 7

    def test_split_deterministic_and_memoized(self):
        plan = SymbolicPlan(algorithm="esc", phases=2, shape=(6, 4),
                            row_sizes=np.array([1, 2, 3, 1, 0, 2]))
        planner = ShardPlanner(2)
        a = planner.split(plan, key=("k",))
        b = planner.split(plan, key=("k",))
        assert a is b and planner.hits == 1 and planner.misses == 1
        again = ShardPlanner(2).split(plan, key=("k",))
        assert [(p.row_lo, p.row_hi) for p in a] == \
               [(p.row_lo, p.row_hi) for p in again]

    def test_keyless_plans_never_memoized(self):
        """Ad-hoc plans (no cache key) must be split fresh: an id()-based
        memo could hand a recycled object id another plan's partition."""
        planner = ShardPlanner(2)
        p1 = SymbolicPlan(algorithm="esc", phases=2, shape=(4, 4),
                          row_sizes=np.array([5, 1, 1, 1]))
        s1 = planner.split(p1)
        p2 = SymbolicPlan(algorithm="esc", phases=2, shape=(4, 4),
                          row_sizes=np.array([1, 1, 1, 5]))
        s2 = planner.split(p2)
        assert planner.hits == 0 and planner.misses == 0
        assert [(p.row_lo, p.row_hi) for p in s1] != \
               [(p.row_lo, p.row_hi) for p in s2]

    def test_one_phase_plan_rejected(self):
        plan = SymbolicPlan(algorithm="esc", phases=1, shape=(4, 4))
        with pytest.raises(ValueError, match="two-phase"):
            ShardPlanner(2).split(plan)

    def test_bad_nshards(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)
        with pytest.raises(ShardError):
            ShardCoordinator(0)


# --------------------------------------------------------------------- #
# store + segment lifecycle
# --------------------------------------------------------------------- #
class TestShardedStoreLifecycle:
    def test_register_replace_evict_unlink(self, rng):
        store = ShardedMatrixStore()
        A = csr_random(20, 20, density=0.2, rng=rng)
        h1 = store.register("A", A)
        assert not _shm_leftovers([])  # sanity: helper tolerates empty
        assert store.handle("A") is h1 and "A" in store
        h2 = store.register("A", A)  # replace: old segment unlinked
        assert h2.name != h1.name
        assert _shm_leftovers([h1.name]) == []
        assert _shm_leftovers([h2.name]) == [h2.name]
        assert store.evict("A") and not store.evict("A")
        assert _shm_leftovers([h2.name]) == []
        with pytest.raises(ShardError, match="no shared matrix"):
            store.handle("A")
        store.close()

    def test_close_unlinks_everything_idempotently(self, rng):
        store = ShardedMatrixStore()
        names = [store.register(f"m{i}",
                                csr_random(10, 10, density=0.3, rng=rng)).name
                 for i in range(3)]
        assert len(store.live_segment_names()) == 3
        store.close()
        store.close()  # idempotent
        assert _shm_leftovers(names) == []
        assert store.live_segment_names() == []

    def test_rejects_non_matrix(self):
        with pytest.raises(ShardError, match="CSRMatrix or Mask"):
            ShardedMatrixStore().register("x", object())

    def test_result_survives_coordinator_close(self, rng):
        """Results view their own (already unlinked) segments — closing the
        coordinator must not invalidate previously returned matrices."""
        A, B, M = make_triple(rng, m=25)
        mask = Mask.from_matrix(M)
        coord = ShardCoordinator(2)
        try:
            a_key, _ = coord._adhoc_handle(A)
            b_key, _ = coord._adhoc_handle(B)
            m_key, _ = coord._adhoc_handle(mask)
            plan = build_plan(A, B, mask, algorithm="esc", phases=2)
            got = coord.multiply(a_key, b_key, m_key, mask, plan, PLUS_TIMES)
        finally:
            coord.close()
        want = masked_spgemm(A, B, mask, algorithm="esc", phases=2, plan=plan)
        _assert_identical(got, want)  # read AFTER close: mapping still live

    def test_closed_coordinator_refuses_work(self, rng):
        coord = ShardCoordinator(1)
        coord.close()
        with pytest.raises(ShardError, match="closed"):
            coord._ensure_pool()


# --------------------------------------------------------------------- #
# failure injection: worker errors must clean up and not poison the pool
# --------------------------------------------------------------------- #
class TestWorkerFailureCleanup:
    def test_stale_plan_raises_and_unlinks_output(self, rng):
        """A stale plan fails inside the *worker* (before any out-of-slice
        write); the coordinator must propagate the error, unlink the
        request's output segment, and keep serving later requests."""
        A, B, M = make_triple(rng, m=30)
        mask = Mask.from_matrix(M)
        plan = build_plan(A, B, mask, algorithm="esc", phases=2)
        if plan.nnz == 0:
            pytest.skip("degenerate draw: empty output")
        stale_sizes = plan.row_sizes.copy()
        src = int(np.argmax(stale_sizes))
        stale_sizes[src] -= 1
        stale_sizes[(src + 1) % stale_sizes.size] += 1
        stale = SymbolicPlan(algorithm="esc", phases=2, shape=plan.shape,
                             row_sizes=stale_sizes)
        coord = ShardCoordinator(2)
        try:
            a_key, _ = coord._adhoc_handle(A)
            b_key, _ = coord._adhoc_handle(B)
            m_key, _ = coord._adhoc_handle(mask)
            before = set(coord.store.live_segment_names())
            with pytest.raises(ReproError, match="stale plan"):
                coord.multiply(a_key, b_key, m_key, mask, stale, PLUS_TIMES)
            # no output segment left behind by the failed request
            assert set(coord.store.live_segment_names()) == before
            # the pool survived: the honest plan still executes
            got = coord.multiply(a_key, b_key, m_key, mask, plan, PLUS_TIMES)
            _assert_identical(got, masked_spgemm(A, B, mask, algorithm="esc",
                                                 phases=2, plan=plan))
        finally:
            coord.close()
        assert _shm_leftovers(list(before)) == []

    def test_engine_worker_failure_keeps_segments_clean(self, rng):
        """Same injection through the engine: the failed request surfaces
        its error, later requests still shard, close() leaves nothing."""
        A, B, M = make_triple(rng, m=30)
        engine = Engine(shards=2)
        try:
            engine.register("A", A)
            engine.register("B", B)
            engine.register("M", M)
            req = Request(a="A", b="B", mask="M", algorithm="esc", phases=2)
            r1 = engine.submit(req)
            assert r1.stats.sharded
            # poison the cached plan with shifted sizes (same total nnz)
            key = next(iter(engine.plans._plans))
            good = engine.plans._plans[key]
            stale_sizes = good.row_sizes.copy()
            src = int(np.argmax(stale_sizes))
            stale_sizes[src] -= 1
            stale_sizes[(src + 1) % stale_sizes.size] += 1
            engine.plans._plans[key] = SymbolicPlan(
                algorithm=good.algorithm, phases=2, shape=good.shape,
                row_sizes=stale_sizes)
            with pytest.raises(ReproError, match="stale plan"):
                engine.submit(req)
            engine.plans._plans[key] = good
            r2 = engine.submit(req)
            assert r2.stats.sharded
            _assert_identical(r2.result, r1.result)
            names = engine.shards.store.live_segment_names()
        finally:
            engine.close()
        assert _shm_leftovers(names) == []
        engine.close()  # idempotent


# --------------------------------------------------------------------- #
# engine / server integration + telemetry
# --------------------------------------------------------------------- #
class TestEngineSharded:
    def test_submit_sharded_bit_identical_and_counted(self, rng):
        A, B, M = make_triple(rng, m=40, k=30, n=35)
        plain = Engine()
        plain.register("A", A), plain.register("B", B), plain.register("M", M)
        req = Request(a="A", b="B", mask="M", algorithm="esc", phases=2)
        want = plain.submit(req).result
        with Engine(shards=2) as engine:
            engine.register("A", A)
            engine.register("B", B)
            engine.register("M", M)
            cold = engine.submit(req)
            warm = engine.submit(req)
            assert cold.stats.sharded and warm.stats.sharded
            assert warm.stats.plan_cache_hit and warm.stats.direct_write
            assert engine.stats.sharded == 2
            _assert_identical(cold.result, want)
            _assert_identical(warm.result, want)
            # the planner memoized the warm split
            assert engine.shards.planner.hits >= 1

    def test_complemented_mask_request_shards(self, rng):
        A, B, M = make_triple(rng, m=30)
        with Engine(shards=2) as engine:
            engine.register("A", A)
            engine.register("B", B)
            engine.register("M", M)
            req = Request(a="A", b="B", mask="M", complemented=True,
                          algorithm="esc", phases=2)
            resp = engine.submit(req)
            assert resp.stats.sharded
            mask = Mask.from_matrix(M, complemented=True)
            _assert_identical(resp.result,
                              masked_spgemm(A, B, mask, algorithm="esc",
                                            phases=2))

    def test_ineligible_requests_fall_back_in_process(self, rng):
        A, B, M = make_triple(rng, m=25, k=25, n=25)
        with Engine(shards=2) as engine:
            engine.register("A", A)
            engine.register("M", M)
            # mca has no numeric_rows_into -> in-process, still correct
            resp = engine.submit(Request(a="A", b="A", mask="M",
                                         algorithm="mca", phases=2))
            assert not resp.stats.sharded
            # one-phase requests carry no row sizes -> in-process
            resp1 = engine.submit(Request(a="A", b="A", mask="M",
                                          algorithm="esc", phases=1))
            assert not resp1.stats.sharded
            # ad-hoc multiply (no store keys) -> in-process
            resp2 = engine.multiply(A, A, Mask.from_matrix(M),
                                    algorithm="esc")
            assert not resp2.stats.sharded
            assert engine.stats.sharded == 0

    def test_evicted_operand_falls_back_then_recovers(self, rng):
        A, B, M = make_triple(rng, m=25, k=25, n=25)
        with Engine(shards=1) as engine:
            engine.register("A", A)
            engine.register("M", M)
            req = Request(a="A", b="A", mask="M", algorithm="esc", phases=2)
            assert engine.submit(req).stats.sharded
            # drop only the *shared* copy: the request must degrade, not die
            engine.shards.evict("A")
            resp = engine.submit(req)
            assert not resp.stats.sharded and engine.shard_degraded
            engine.shards.share("A", A)
            assert engine.submit(req).stats.sharded

    def test_degraded_engine_when_shm_unavailable(self, rng, monkeypatch):
        monkeypatch.setattr("repro.shard.shared_memory_available",
                            lambda *a, **k: False)
        A, B, M = make_triple(rng, m=20, k=20, n=20)
        engine = Engine(shards=2)
        assert engine.shards is None and engine.shard_degraded
        engine.register("A", A)
        engine.register("M", M)
        resp = engine.submit(Request(a="A", b="A", mask="M",
                                     algorithm="esc", phases=2))
        assert not resp.stats.sharded
        engine.close()  # no-op, must not raise

    def test_async_server_counts_sharded(self, rng):
        A, B, M = make_triple(rng, m=30)
        with Engine(shards=2) as engine:
            engine.register("A", A)
            engine.register("B", B)
            engine.register("M", M)
            reqs = [Request(a="A", b="B", mask="M", algorithm="esc",
                            phases=2, tag=str(i)) for i in range(6)]

            async def run():
                async with AsyncServer(engine, workers=2,
                                       dedup=False) as srv:
                    return await asyncio.gather(
                        *[srv.submit(r) for r in reqs])

            resps = asyncio.run(run())
            assert all(r.stats.sharded for r in resps)
            assert engine.stats.sharded == len(reqs)

    def test_store_budget_evictions_release_shared_segments(self, rng):
        """Operands the in-process store LRU-evicts under its byte budget
        must drop their shared segments too — /dev/shm cannot outgrow the
        operand budget under churn."""
        mats = [csr_random(40, 40, density=0.2, rng=rng) for _ in range(4)]
        budget = sum(m.indptr.nbytes + m.indices.nbytes + m.data.nbytes
                     for m in mats[:2]) + 64
        with Engine(budget_bytes=budget, shards=1) as engine:
            names = {}
            for i, m in enumerate(mats):
                engine.register(f"m{i}", m)
                names[f"m{i}"] = engine.shards.store.handle(f"m{i}").name
            live = set(engine.shards.store.keys())
            assert live == set(engine.store.keys())  # mirrored exactly
            evicted = set(names) - live
            assert evicted  # the budget really did evict something
            assert _shm_leftovers([names[k] for k in evicted]) == []

    def test_engine_close_unlinks_all_segments(self, rng):
        A, B, M = make_triple(rng, m=25)
        engine = Engine(shards=2)
        engine.register("A", A)
        engine.register("B", B)
        engine.register("M", M)
        engine.submit(Request(a="A", b="B", mask="M", algorithm="esc",
                              phases=2))
        names = engine.shards.store.live_segment_names()
        assert names  # operands really were shared
        engine.close()
        assert _shm_leftovers(names) == []
        assert engine.shards is None


# --------------------------------------------------------------------- #
# degradation paths that must work even without shared memory
# --------------------------------------------------------------------- #
class TestDegradation:
    def test_shard_spgemm_degrades_for_non_fused_kernel(self, rng):
        A, B, M = make_triple(rng, m=25)
        mask = Mask.from_matrix(M)
        got = shard_masked_spgemm(A, B, mask, algorithm="mca", nshards=2)
        _assert_identical(got, masked_spgemm(A, B, mask, algorithm="mca",
                                             phases=2))

    def test_shard_spgemm_degrades_for_one_phase(self, rng):
        A, B, M = make_triple(rng, m=25)
        mask = Mask.from_matrix(M)
        got = shard_masked_spgemm(A, B, mask, algorithm="esc", phases=1,
                                  nshards=2)
        _assert_identical(got, masked_spgemm(A, B, mask, algorithm="esc",
                                             phases=1))

    def test_shard_spgemm_degrades_without_shm(self, rng, monkeypatch):
        import repro.shard.coordinator as coord_mod

        monkeypatch.setattr(coord_mod, "shared_memory_available",
                            lambda *a, **k: False)
        A, B, M = make_triple(rng, m=25)
        mask = Mask.from_matrix(M)
        got = shard_masked_spgemm(A, B, mask, algorithm="esc", nshards=2)
        _assert_identical(got, masked_spgemm(A, B, mask, algorithm="esc",
                                             phases=2))

    def test_custom_semiring_degrades(self, rng):
        from repro.semiring import Semiring
        from repro.semiring.semiring import Monoid

        custom = Semiring(add=Monoid(np.maximum, -np.inf, "max"),
                          mul=np.multiply, name="custom_max_times")
        A, B, M = make_triple(rng, m=20)
        mask = Mask.from_matrix(M)
        got = shard_masked_spgemm(A, B, mask, algorithm="esc",
                                  semiring=custom, nshards=2)
        _assert_identical(got, masked_spgemm(A, B, mask, algorithm="esc",
                                             semiring=custom, phases=2))


# --------------------------------------------------------------------- #
# async-server worker hardening (satellite: shutdown on exception paths)
# --------------------------------------------------------------------- #
class TestServerFailureHardening:
    def test_batch_level_failure_attributed_and_server_survives(self, rng):
        """A batch-execution crash (not a per-request error) must fail that
        batch's futures, keep the worker alive, and leave close() clean."""
        A, B, M = make_triple(rng, m=20, k=20, n=20)
        engine = Engine()
        engine.register("A", A)
        engine.register("M", M)
        req = Request(a="A", b="A", mask="M", algorithm="esc", phases=2)

        async def run():
            server = AsyncServer(engine, workers=1, dedup=False)
            await server.start()
            boom = RuntimeError("injected batch crash")

            def exploding(requests):
                raise boom

            original = server._run_batch
            server._run_batch = exploding
            with pytest.raises(RuntimeError, match="injected batch crash"):
                await server.submit(req)
            # the worker lived through it: restore and serve normally
            server._run_batch = original
            resp = await server.submit(req)
            await server.close()
            return resp

        resp = asyncio.run(run())
        assert resp.result.nnz == masked_spgemm(
            A, A, Mask.from_matrix(M), algorithm="esc", phases=2).nnz
        assert engine.stats.requests == 1  # the crashed batch never executed


# ---------------------------------------------------------------------- #
# segment recycling (the pool behind coordinator outputs)
# ---------------------------------------------------------------------- #
class TestSegmentPool:
    def test_size_classes(self):
        from repro.shard.memory import _MIN_CLASS, _size_class

        assert _size_class(1) == _MIN_CLASS
        assert _size_class(_MIN_CLASS) == _MIN_CLASS
        assert _size_class(_MIN_CLASS + 1) == _MIN_CLASS * 2
        assert _size_class(5000) == 8192
        assert _size_class(8192) == 8192

    def test_acquire_release_recycles_within_class(self):
        from repro.shard import SegmentPool
        from repro.shard.memory import SegmentRegistry

        registry = SegmentRegistry()
        pool = SegmentPool(registry)
        try:
            seg = pool.acquire(5000)
            name = seg.name
            assert seg.size == 8192
            assert pool.release(seg)
            # any request that rounds to the same class reuses the mapping
            again = pool.acquire(6000)
            assert again.name == name
            s = pool.stats
            assert (s["hits"], s["misses"], s["returned"]) == (1, 1, 1)
            assert s["held"] == 0
            pool.release(again)
            assert pool.stats["held"] == 1
            assert pool.stats["held_bytes"] == 8192
        finally:
            pool.close()
            registry.close()
        assert not _shm_leftovers([name])

    def test_caps_retire_overflow(self):
        from repro.shard import SegmentPool
        from repro.shard.memory import SegmentRegistry

        registry = SegmentRegistry()
        pool = SegmentPool(registry, max_per_class=1, max_total=2)
        try:
            a, b, c = (pool.acquire(100) for _ in range(3))
            names = [a.name, b.name, c.name]
            assert pool.release(a)          # pooled
            assert not pool.release(b)      # same class → over per-class cap
            assert not _shm_leftovers([b.name])  # retired immediately
            big = pool.acquire(100_000)     # different class
            assert pool.release(big)        # total 2: at max_total
            assert not pool.release(c)      # over the global cap
            assert pool.stats["dropped"] == 2
        finally:
            pool.close()
            registry.close()
        assert not _shm_leftovers(names + [big.name])

    def test_late_release_after_close_leaks_nothing(self):
        from repro.shard import SegmentPool
        from repro.shard.memory import SegmentRegistry

        registry = SegmentRegistry()
        pool = SegmentPool(registry)
        seg = pool.acquire(4096)
        name = seg.name
        pool.close()
        registry.close()
        # a still-alive result releasing after engine teardown must retire
        # the segment, not pool it (and not crash on the closed registry)
        assert not pool.release(seg)
        assert not _shm_leftovers([name])

    def test_adopt_arrays_refcount_releases_once(self):
        from repro.shard import SegmentPool
        from repro.shard.memory import (SegmentRegistry, _new_segment,
                                        adopt_arrays)

        registry = SegmentRegistry()
        pool = SegmentPool(registry)
        released = []
        seg = _new_segment(4096)
        registry.track(seg)
        xs = np.ndarray(8, dtype=np.int64, buffer=seg.buf)
        ys = np.ndarray(8, dtype=np.float64, buffer=seg.buf, offset=64)
        adopt_arrays(seg, xs, ys, on_release=released.append)
        view = xs[:4]  # a view keeps its base alive, not a new refcount
        del xs
        assert not released
        del ys
        assert not released  # the view still pins the first array
        del view
        assert released == [seg]
        pool.close()
        registry.close()

    def test_engine_pool_reuse_and_gauges(self, rng):
        eng = Engine(shards=2)
        A, B, M = make_triple(rng, m=60, k=50, n=60)
        eng.register("A", A)
        eng.register("B", B)
        eng.register("M", M)
        try:
            want = None
            for _ in range(4):
                resp = eng.submit(Request(a="A", b="B", mask="M",
                                          algorithm="hash", phases=2))
                assert resp.stats.sharded
                if want is None:
                    want = resp.result
                else:
                    _assert_identical(resp.result, want)
            s = eng.shards.segment_pool.stats
            assert s["hits"] >= 1  # warm requests recycle output segments
            from repro.obs import parse_exposition

            fam = parse_exposition(eng.metrics.render())
            assert "repro_segment_pool_segments" in fam
            assert "repro_segment_pool_bytes" in fam
        finally:
            eng.close()
