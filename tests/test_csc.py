"""Unit tests for the CSC format (used by the pull-based Inner kernel)."""

import numpy as np

from repro.sparse import CSCMatrix, csr_random, csr_to_csc


def test_col_views_match_dense(rng):
    a = csr_random(20, 15, density=0.2, rng=rng)
    c = csr_to_csc(a)
    d = a.to_dense()
    for j in range(15):
        rows, vals = c.col(j)
        assert np.array_equal(np.flatnonzero(d[:, j]), rows)
        assert np.allclose(d[rows, j], vals)


def test_col_nnz(rng):
    a = csr_random(20, 15, density=0.2, rng=rng)
    c = csr_to_csc(a)
    assert np.array_equal(c.col_nnz(), (a.to_dense() != 0).sum(axis=0))


def test_round_trip_csr_csc_csr(rng):
    a = csr_random(13, 17, density=0.25, rng=rng)
    assert a.to_csc().to_csr().equals(a)


def test_to_dense(rng):
    a = csr_random(10, 12, density=0.3, rng=rng)
    assert np.allclose(a.to_csc().to_dense(), a.to_dense())


def test_transpose_view_is_zero_copy(rng):
    a = csr_random(10, 12, density=0.3, rng=rng)
    c = a.to_csc()
    t = c.transpose_view_csr()
    assert t.shape == (12, 10)
    assert np.allclose(t.to_dense(), a.to_dense().T)
    assert t.indices is c.indices  # same buffers


def test_empty():
    c = CSCMatrix.empty((4, 7))
    assert c.nnz == 0
    assert c.shape == (4, 7)
    assert c.col(3)[0].size == 0
    assert c.to_csr().shape == (4, 7)


def test_properties(rng):
    a = csr_random(5, 9, density=0.4, rng=rng)
    c = a.to_csc()
    assert c.nrows == 5 and c.ncols == 9
    assert c.nnz == a.nnz
    assert c.copy().to_dense().tolist() == c.to_dense().tolist()
