"""Semiring and monoid behavioural tests."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_FIRST,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    Monoid,
    Semiring,
    by_name,
)


def test_monoid_requires_ufunc():
    with pytest.raises(TypeError):
        Monoid(lambda a, b: a + b, 0.0, "bogus")


def test_monoid_reduce_identity_on_empty():
    assert Monoid(np.add, 0.0, "plus").reduce(np.array([])) == 0.0
    assert Monoid(np.minimum, np.inf, "min").reduce(np.array([])) == np.inf


def test_plus_times_multiply():
    a, b = np.array([2.0, 3.0]), np.array([5.0, 7.0])
    assert np.array_equal(PLUS_TIMES.multiply(a, b), [10.0, 21.0])
    assert PLUS_TIMES.mul_scalar(2.0, 5.0) == 10.0
    assert PLUS_TIMES.identity == 0.0


def test_plus_pair_ignores_values():
    a, b = np.array([2.0, -3.0]), np.array([5.0, 0.5])
    assert np.array_equal(PLUS_PAIR.multiply(a, b), [1.0, 1.0])
    assert PLUS_PAIR.mul_scalar(99.0, -1.0) == 1.0


def test_first_second():
    a, b = np.array([2.0, 3.0]), np.array([5.0, 7.0])
    assert np.array_equal(PLUS_FIRST.multiply(a, b), a)
    assert np.array_equal(PLUS_SECOND.multiply(a, b), b)
    assert PLUS_FIRST.mul_scalar(2.0, 5.0) == 2.0
    assert PLUS_SECOND.mul_scalar(2.0, 5.0) == 5.0


def test_min_plus_tropical():
    a, b = np.array([2.0, 3.0]), np.array([5.0, 7.0])
    assert np.array_equal(MIN_PLUS.multiply(a, b), [7.0, 10.0])
    assert MIN_PLUS.identity == np.inf
    assert MIN_PLUS.add.reduce(np.array([4.0, 2.0, 9.0])) == 2.0


def test_max_times():
    assert MAX_TIMES.identity == -np.inf
    assert MAX_TIMES.add.reduce(np.array([1.0, 5.0, 3.0])) == 5.0


def test_or_and_boolean():
    a, b = np.array([1.0, 0.0, 2.0]), np.array([1.0, 1.0, 0.0])
    assert np.array_equal(OR_AND.multiply(a, b), [1.0, 0.0, 0.0])
    assert OR_AND.mul_scalar(1.0, 1.0) == 1.0
    assert OR_AND.mul_scalar(0.0, 1.0) == 0.0
    # OR via max over {0, 1}
    assert OR_AND.add.ufunc(0.0, 1.0) == 1.0


def test_by_name_lookup():
    assert by_name("plus_pair") is PLUS_PAIR
    assert by_name("ARITHMETIC") is PLUS_TIMES
    with pytest.raises(AlgorithmError):
        by_name("nope")


def test_default_mul_scalar_derived_from_mul():
    s = Semiring(Monoid(np.add, 0.0, "plus"), lambda a, b: a * b + 1, "weird")
    assert s.mul_scalar(2.0, 3.0) == 7.0


def test_ufunc_at_reduceat_compatibility():
    # the vectorized kernels depend on these ufunc capabilities
    for sem in (PLUS_TIMES, MIN_PLUS, MAX_TIMES, OR_AND):
        arr = np.full(4, sem.identity)
        sem.add.ufunc.at(arr, np.array([1, 1, 2]), np.array([3.0, 4.0, 5.0]))
        out = sem.add.ufunc.reduceat(np.array([1.0, 2.0, 3.0]), np.array([0, 2]))
        assert out.shape == (2,)
