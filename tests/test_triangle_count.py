"""Triangle counting vs the networkx oracle, across kernels."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import triangle_count
from repro.algorithms.triangle_count import triangle_count_matrix
from repro.graphs import erdos_renyi, rmat, watts_strogatz
from repro.graphs.prep import triangle_prep, to_undirected_simple
from repro.parallel import SimulatedExecutor
from repro.sparse import csr_from_dense
from repro.sparse.convert import to_scipy


def nx_triangles(g):
    G = nx.from_scipy_sparse_array(to_scipy(g))
    return sum(nx.triangles(G).values()) // 3


@pytest.mark.parametrize("alg", ["msa", "hash", "mca", "heap", "heapdot", "inner"])
def test_matches_networkx_er(alg):
    g = to_undirected_simple(erdos_renyi(150, 6, rng=1, symmetrize=True))
    assert triangle_count(g, algorithm=alg) == nx_triangles(g)


@pytest.mark.parametrize("alg", ["msa", "hash", "inner"])
def test_matches_networkx_rmat(alg):
    g = to_undirected_simple(rmat(7, 10, rng=2))
    assert triangle_count(g, algorithm=alg) == nx_triangles(g)


def test_small_world_lots_of_triangles():
    g = to_undirected_simple(watts_strogatz(128, 4, 0.02, rng=3))
    want = nx_triangles(g)
    assert want > 100  # ring lattices are triangle factories
    assert triangle_count(g, algorithm="msa") == want


def test_known_small_graphs():
    # K4 has 4 triangles
    k4 = csr_from_dense(1 - np.eye(4))
    assert triangle_count(k4) == 4
    # C5 (5-cycle) has none
    c5 = np.zeros((5, 5))
    for i in range(5):
        c5[i, (i + 1) % 5] = c5[(i + 1) % 5, i] = 1
    assert triangle_count(csr_from_dense(c5)) == 0
    # two disjoint triangles
    two = np.zeros((6, 6))
    for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
        two[a, b] = two[b, a] = 1
    assert triangle_count(csr_from_dense(two)) == 2


def test_empty_and_tiny():
    from repro.sparse import CSRMatrix

    assert triangle_count(CSRMatrix.empty((5, 5))) == 0
    assert triangle_count(csr_from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))) == 0


def test_prepared_path():
    g = to_undirected_simple(erdos_renyi(100, 5, rng=4, symmetrize=True))
    L = triangle_prep(g)
    assert triangle_count(L, prepared=True) == triangle_count(g)


def test_two_phase_and_parallel_agree():
    g = to_undirected_simple(erdos_renyi(120, 6, rng=5, symmetrize=True))
    want = triangle_count(g, algorithm="msa")
    assert triangle_count(g, algorithm="msa", phases=2) == want
    assert triangle_count(g, algorithm="hash",
                          executor=SimulatedExecutor(4)) == want


def test_matrix_entries_count_per_edge_triangles():
    # C[i,j] = number of triangles the edge (i,j) participates in (i>j order)
    k4 = csr_from_dense(1 - np.eye(4))
    L = triangle_prep(k4)
    C = triangle_count_matrix(L)
    # in K4 every edge lies in exactly 2 triangles, but L⊙(L·L) counts only
    # wedges through lower-numbered vertices; the total is what matters
    assert int(C.sum()) == 4
