"""Unit tests for the validation helpers (error paths and edge cases)."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.validation import (
    as_index_array,
    as_value_array,
    check_indices_in_range,
    check_indptr,
    check_multiplicable,
    check_same_shape,
    check_shape,
    rows_sorted_unique,
)


def test_as_index_array_coerces():
    a = as_index_array([1, 2, 3])
    assert a.dtype == np.int64
    with pytest.raises(FormatError):
        as_index_array([[1, 2]])


def test_as_value_array_dtype_passthrough():
    a = as_value_array(np.array([1, 2], dtype=np.int32), dtype=np.int32)
    assert a.dtype == np.int32
    with pytest.raises(FormatError):
        as_value_array(np.zeros((2, 2)))


def test_check_shape():
    assert check_shape((3, 4)) == (3, 4)
    assert check_shape((0, 0)) == (0, 0)
    with pytest.raises(ShapeError):
        check_shape((3,))
    with pytest.raises(ShapeError):
        check_shape((-1, 2))
    with pytest.raises(ShapeError):
        check_shape("nope")


def test_check_multiplicable():
    assert check_multiplicable((3, 4), (4, 5)) == (3, 5)
    with pytest.raises(ShapeError):
        check_multiplicable((3, 4), (5, 4))


def test_check_same_shape():
    check_same_shape((2, 3), (2, 3))
    with pytest.raises(ShapeError):
        check_same_shape((2, 3), (3, 2))


def test_check_indptr():
    check_indptr(np.array([0, 1, 3]), 2, 3)
    with pytest.raises(FormatError):
        check_indptr(np.array([0, 1]), 2, 1)       # wrong length
    with pytest.raises(FormatError):
        check_indptr(np.array([1, 1, 3]), 2, 3)    # head not 0
    with pytest.raises(FormatError):
        check_indptr(np.array([0, 1, 2]), 2, 3)    # tail != nnz
    with pytest.raises(FormatError):
        check_indptr(np.array([0, 2, 1]), 2, 1)    # decreasing


def test_check_indices_in_range():
    check_indices_in_range(np.array([0, 4]), 5)
    check_indices_in_range(np.array([], dtype=np.int64), 0)
    with pytest.raises(FormatError):
        check_indices_in_range(np.array([5]), 5)
    with pytest.raises(FormatError):
        check_indices_in_range(np.array([-1]), 5)


def test_rows_sorted_unique():
    # sorted rows
    assert rows_sorted_unique(np.array([0, 2, 3]), np.array([1, 5, 0]))
    # duplicate inside a row
    assert not rows_sorted_unique(np.array([0, 2]), np.array([1, 1]))
    # descending inside a row
    assert not rows_sorted_unique(np.array([0, 2]), np.array([5, 1]))
    # empty
    assert rows_sorted_unique(np.array([0, 0]), np.array([], dtype=np.int64))
