"""Tests for graph preparation helpers and the stand-in input suite."""

import numpy as np

from repro.graphs import (
    erdos_renyi,
    load_graph,
    relabel_by_degree,
    suite_names,
    suite_graphs,
    to_undirected_simple,
)
from repro.graphs.prep import triangle_prep, tril_lower
from repro.graphs.suite import LARGEST, SUITE_SPECS


class TestPrep:
    def test_to_undirected_simple(self, rng):
        g = erdos_renyi(80, 4, rng=rng)
        u = to_undirected_simple(g)
        d = u.to_dense()
        assert np.array_equal(d != 0, (d != 0).T)
        assert np.all(np.diag(d) == 0)
        assert np.all(u.data == 1.0)

    def test_relabel_by_degree_sorts(self, rng):
        g = to_undirected_simple(erdos_renyi(100, 5, rng=rng, symmetrize=True))
        r = relabel_by_degree(g)
        deg = r.row_nnz()
        assert np.all(np.diff(deg) <= 0)  # non-increasing

    def test_relabel_preserves_structure(self, rng):
        # degree *multiset* and triangle count are isomorphism invariants
        g = to_undirected_simple(erdos_renyi(60, 4, rng=rng, symmetrize=True))
        r = relabel_by_degree(g)
        assert sorted(g.row_nnz()) == sorted(r.row_nnz())
        assert g.nnz == r.nnz

    def test_relabel_ascending(self, rng):
        g = to_undirected_simple(erdos_renyi(50, 4, rng=rng, symmetrize=True))
        r = relabel_by_degree(g, ascending=True)
        assert np.all(np.diff(r.row_nnz()) >= 0)

    def test_tril_lower_strict(self, rng):
        g = to_undirected_simple(erdos_renyi(40, 4, rng=rng, symmetrize=True))
        L = tril_lower(g)
        rows = np.repeat(np.arange(40), L.row_nnz())
        assert np.all(L.indices < rows)
        assert L.nnz == g.nnz // 2  # each undirected edge once

    def test_triangle_prep_pipeline(self, rng):
        g = erdos_renyi(60, 5, rng=rng)
        L = triangle_prep(g)
        rows = np.repeat(np.arange(60), L.row_nnz())
        assert np.all(L.indices < rows)


class TestSuite:
    def test_suite_has_26_graphs(self):
        assert len(SUITE_SPECS) == 26
        assert len(suite_names()) == 26

    def test_exclusion_mechanism(self):
        names = suite_names(exclude_largest=True)
        assert len(names) == 26 - len(LARGEST)
        assert all(n not in names for n in LARGEST)

    def test_load_graph_caches(self):
        a = load_graph("grid-24")
        b = load_graph("grid-24")
        assert a is b  # lru_cache

    def test_load_unknown_raises(self):
        import pytest

        from repro.errors import ReproError

        with pytest.raises(ReproError):
            load_graph("facebook-2010")

    def test_all_graphs_are_simple_undirected(self):
        # load the small half of the suite and verify invariants
        for name, g in suite_graphs(limit=8):
            d = g.to_dense() != 0
            assert np.array_equal(d, d.T), name
            assert np.all(g.diagonal() == 0), name
            assert g.nnz > 0, name

    def test_suite_spans_sizes(self):
        sizes = {load_graph(n).nrows for n in suite_names()[:6]}
        assert len(sizes) >= 2

    def test_limit_iteration(self):
        assert len(list(suite_graphs(limit=3))) == 3
