"""Tests for the row-expansion helpers shared by push kernels."""

import numpy as np

from repro.core.expand import (
    concat_ranges,
    expand_row,
    expand_row_pattern,
    expand_rows,
    expand_rows_pattern,
    flatten_rows_pattern,
    per_row_flops,
    total_flops,
)
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.sparse import csr_random
from repro.validation import INDEX_DTYPE


def test_concat_ranges_basic():
    starts = np.array([5, 0, 10])
    lens = np.array([2, 3, 1])
    assert concat_ranges(starts, lens).tolist() == [5, 6, 0, 1, 2, 10]


def test_concat_ranges_with_empties():
    starts = np.array([3, 7, 1])
    lens = np.array([0, 2, 0])
    assert concat_ranges(starts, lens).tolist() == [7, 8]
    assert concat_ranges(np.array([1]), np.array([0])).size == 0
    assert concat_ranges(np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64)).size == 0


def test_expand_row_matches_manual(rng):
    A = csr_random(8, 6, density=0.4, rng=rng, values="randint")
    B = csr_random(6, 9, density=0.4, rng=rng, values="randint")
    Ad, Bd = A.to_dense(), B.to_dense()
    for i in range(8):
        bj, prod = expand_row(A, B, i, PLUS_TIMES)
        want = []
        for k in np.flatnonzero(Ad[i]):
            for j in np.flatnonzero(Bd[k]):
                want.append((j, Ad[i, k] * Bd[k, j]))
        assert bj.tolist() == [j for j, _ in want]
        assert np.allclose(prod, [v for _, v in want])
        assert expand_row_pattern(A, B, i).tolist() == [j for j, _ in want]


def test_expand_row_semiring_awareness(rng):
    A = csr_random(5, 5, density=0.5, rng=rng, values="randint")
    B = csr_random(5, 5, density=0.5, rng=rng, values="randint")
    for i in range(5):
        _, prod = expand_row(A, B, i, PLUS_PAIR)
        assert np.all(prod == 1.0)


def test_per_row_flops_and_total(rng):
    A = csr_random(10, 7, density=0.3, rng=rng)
    B = csr_random(7, 11, density=0.3, rng=rng)
    Ad, Bd = A.to_dense() != 0, B.to_dense() != 0
    want = np.array([sum(Bd[k].sum() for k in np.flatnonzero(Ad[i]))
                     for i in range(10)])
    assert np.array_equal(per_row_flops(A, B), want)
    assert total_flops(A, B) == want.sum()


def test_concat_ranges_int64_positions():
    """Positions past int32 must survive even if a narrower index dtype were
    configured: the cumsum arithmetic always runs in int64."""
    big = np.int64(1) << 33  # > int32 max
    out = concat_ranges(np.array([big, 5], dtype=np.int64),
                        np.array([2, 2], dtype=np.int64))
    assert out.tolist() == [big, big + 1, 5, 6]
    assert out.dtype == np.int64


def test_expand_rows_matches_per_row(rng):
    """The chunk-fused expansion is the concatenation of expand_row results,
    with segment offsets bracketing each row's slice."""
    A = csr_random(10, 8, density=0.35, rng=rng, values="randint")
    B = csr_random(8, 12, density=0.35, rng=rng, values="randint")
    for rows in ([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], [3, 4, 9], [7], []):
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        seg, cols, vals = expand_rows(A, B, rows, PLUS_TIMES)
        pseg, pcols = expand_rows_pattern(A, B, rows)
        assert seg.size == rows.size + 1 and seg[0] == 0
        assert np.array_equal(seg, pseg)
        assert np.array_equal(cols, pcols)
        for t, i in enumerate(rows):
            bj, prod = expand_row(A, B, int(i), PLUS_TIMES)
            assert np.array_equal(cols[seg[t]:seg[t + 1]], bj)
            assert np.array_equal(vals[seg[t]:seg[t + 1]], prod)


def test_flatten_rows_pattern(rng):
    M = csr_random(9, 11, density=0.3, rng=rng)
    rows = np.array([0, 2, 8], dtype=INDEX_DTYPE)
    seg, cols = flatten_rows_pattern(M.indptr, M.indices, rows)
    for t, i in enumerate(rows):
        lo, hi = M.indptr[i], M.indptr[i + 1]
        assert np.array_equal(cols[seg[t]:seg[t + 1]], M.indices[lo:hi])


def test_empty_matrices():
    from repro.sparse import CSRMatrix

    A = CSRMatrix.empty((4, 5))
    B = CSRMatrix.empty((5, 6))
    assert total_flops(A, B) == 0
    assert per_row_flops(A, B).tolist() == [0, 0, 0, 0]
    bj, prod = expand_row(A, B, 0, PLUS_TIMES)
    assert bj.size == 0 and prod.size == 0
