"""Tests for the row-expansion helpers shared by push kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expand import (
    composite_keys,
    concat_ranges,
    expand_row,
    expand_row_pattern,
    expand_rows,
    expand_rows_pattern,
    flatten_rows_pattern,
    per_row_flops,
    total_flops,
)
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.sparse import csr_random
from repro.validation import INDEX_DTYPE


def test_concat_ranges_basic():
    starts = np.array([5, 0, 10])
    lens = np.array([2, 3, 1])
    assert concat_ranges(starts, lens).tolist() == [5, 6, 0, 1, 2, 10]


def test_concat_ranges_with_empties():
    starts = np.array([3, 7, 1])
    lens = np.array([0, 2, 0])
    assert concat_ranges(starts, lens).tolist() == [7, 8]
    assert concat_ranges(np.array([1]), np.array([0])).size == 0
    assert concat_ranges(np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64)).size == 0


def test_expand_row_matches_manual(rng):
    A = csr_random(8, 6, density=0.4, rng=rng, values="randint")
    B = csr_random(6, 9, density=0.4, rng=rng, values="randint")
    Ad, Bd = A.to_dense(), B.to_dense()
    for i in range(8):
        bj, prod = expand_row(A, B, i, PLUS_TIMES)
        want = []
        for k in np.flatnonzero(Ad[i]):
            for j in np.flatnonzero(Bd[k]):
                want.append((j, Ad[i, k] * Bd[k, j]))
        assert bj.tolist() == [j for j, _ in want]
        assert np.allclose(prod, [v for _, v in want])
        assert expand_row_pattern(A, B, i).tolist() == [j for j, _ in want]


def test_expand_row_semiring_awareness(rng):
    A = csr_random(5, 5, density=0.5, rng=rng, values="randint")
    B = csr_random(5, 5, density=0.5, rng=rng, values="randint")
    for i in range(5):
        _, prod = expand_row(A, B, i, PLUS_PAIR)
        assert np.all(prod == 1.0)


def test_per_row_flops_and_total(rng):
    A = csr_random(10, 7, density=0.3, rng=rng)
    B = csr_random(7, 11, density=0.3, rng=rng)
    Ad, Bd = A.to_dense() != 0, B.to_dense() != 0
    want = np.array([sum(Bd[k].sum() for k in np.flatnonzero(Ad[i]))
                     for i in range(10)])
    assert np.array_equal(per_row_flops(A, B), want)
    assert total_flops(A, B) == want.sum()


def test_concat_ranges_int64_positions():
    """Positions past int32 must survive even if a narrower index dtype were
    configured: the cumsum arithmetic always runs in int64."""
    big = np.int64(1) << 33  # > int32 max
    out = concat_ranges(np.array([big, 5], dtype=np.int64),
                        np.array([2, 2], dtype=np.int64))
    assert out.tolist() == [big, big + 1, 5, 6]
    assert out.dtype == np.int64


def test_expand_rows_matches_per_row(rng):
    """The chunk-fused expansion is the concatenation of expand_row results,
    with segment offsets bracketing each row's slice."""
    A = csr_random(10, 8, density=0.35, rng=rng, values="randint")
    B = csr_random(8, 12, density=0.35, rng=rng, values="randint")
    for rows in ([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], [3, 4, 9], [7], []):
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        seg, cols, vals = expand_rows(A, B, rows, PLUS_TIMES)
        pseg, pcols = expand_rows_pattern(A, B, rows)
        assert seg.size == rows.size + 1 and seg[0] == 0
        assert np.array_equal(seg, pseg)
        assert np.array_equal(cols, pcols)
        for t, i in enumerate(rows):
            bj, prod = expand_row(A, B, int(i), PLUS_TIMES)
            assert np.array_equal(cols[seg[t]:seg[t + 1]], bj)
            assert np.array_equal(vals[seg[t]:seg[t + 1]], prod)


def test_flatten_rows_pattern(rng):
    M = csr_random(9, 11, density=0.3, rng=rng)
    rows = np.array([0, 2, 8], dtype=INDEX_DTYPE)
    seg, cols = flatten_rows_pattern(M.indptr, M.indices, rows)
    for t, i in enumerate(rows):
        lo, hi = M.indptr[i], M.indptr[i + 1]
        assert np.array_equal(cols[seg[t]:seg[t + 1]], M.indices[lo:hi])


def test_empty_matrices():
    from repro.sparse import CSRMatrix

    A = CSRMatrix.empty((4, 5))
    B = CSRMatrix.empty((5, 6))
    assert total_flops(A, B) == 0
    assert per_row_flops(A, B).tolist() == [0, 0, 0, 0]
    bj, prod = expand_row(A, B, 0, PLUS_TIMES)
    assert bj.size == 0 and prod.size == 0


# --------------------------------------------------------------------- #
# int32 composite-key fast path (budget-sized chunks fit int32 keys)
# --------------------------------------------------------------------- #
class TestCompositeKeyDtype:
    """``composite_keys`` halves sort traffic with int32 keys whenever the
    chunk's key space ``chunk_rows * ncols`` fits, falling back to int64 at
    the boundary — values must be identical either side of it."""

    @staticmethod
    def _keys_for(nrows, ncols, per_row=2):
        seg = np.arange(nrows + 1, dtype=np.int64) * per_row
        cols = np.tile(np.array([0, ncols - 1], dtype=np.int64)[:per_row],
                       nrows)
        return composite_keys(seg, cols, ncols)

    def test_small_chunks_use_int32(self):
        keys = self._keys_for(nrows=6, ncols=100)
        assert keys.dtype == np.int32
        assert keys.tolist() == [0, 99, 100, 199, 200, 299,
                                 300, 399, 400, 499, 500, 599]

    def test_boundary_exact(self):
        # largest int32-safe key space: chunk_rows * ncols == 2^31 - 1
        ncols = (2**31 - 1) // 3
        assert composite_keys(np.array([0, 1, 1, 2]),
                              np.array([0, ncols - 1]),
                              ncols).dtype == np.int32
        # one column more tips chunk_rows * ncols past 2^31 - 1 -> int64
        assert composite_keys(np.array([0, 1, 1, 2]),
                              np.array([0, ncols]),
                              ncols + 1).dtype == np.int64

    def test_values_equal_across_boundary(self):
        # same logical (row, col) pairs, key spaces straddling the cutoff:
        # the fused keys must decode to identical (row, col) either way
        for ncols in ((2**31 - 1) // 4, (2**31 - 1) // 4 + 1):
            keys = self._keys_for(nrows=4, ncols=ncols)
            rows_back = keys.astype(np.int64) // ncols
            cols_back = keys.astype(np.int64) % ncols
            assert rows_back.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
            assert cols_back.tolist() == [0, ncols - 1] * 4

    def test_int64_fallback_huge_ncols(self):
        # a single row over a > 2^31 column space cannot use int32
        ncols = 2**32
        keys = composite_keys(np.array([0, 2]),
                              np.array([0, ncols - 1], dtype=np.int64), ncols)
        assert keys.dtype == np.int64
        assert keys.tolist() == [0, ncols - 1]

    def test_zero_row_chunk_any_ncols(self):
        # empty chunks must not trip the int32 cast on a huge ncols
        keys = composite_keys(np.array([0]), np.empty(0, dtype=np.int64),
                              2**40)
        assert keys.size == 0

    @given(nrows=st.integers(1, 8), ncols=st.integers(1, 50),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_matches_int64_reference(self, nrows, ncols, data):
        lens = data.draw(st.lists(st.integers(0, 5), min_size=nrows,
                                  max_size=nrows))
        seg = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
        cols = np.array(data.draw(st.lists(st.integers(0, ncols - 1),
                                           min_size=int(seg[-1]),
                                           max_size=int(seg[-1]))),
                        dtype=np.int64)
        keys = composite_keys(seg, cols, ncols)
        prow = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(seg))
        ref = prow * np.int64(ncols) + cols
        assert np.array_equal(keys.astype(np.int64), ref)
