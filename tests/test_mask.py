"""Mask abstraction tests."""

import numpy as np
import pytest

from repro.errors import MaskError
from repro.mask import Mask
from repro.sparse import csr_random


def test_from_matrix_copies_pattern(rng):
    m = csr_random(10, 12, density=0.3, rng=rng)
    mk = Mask.from_matrix(m)
    assert mk.nnz == m.nnz
    assert mk.shape == m.shape
    assert not mk.complemented
    # mutation of the source must not leak into the mask
    m.indices[0] = (m.indices[0] + 1) % 12 if m.nnz else 0
    mk2 = Mask.from_matrix(csr_random(10, 12, density=0.3, rng=rng))
    assert mk2.shape == (10, 12)


def test_explicit_zeros_count_as_stored():
    from repro.sparse import CSRMatrix

    m = CSRMatrix([0, 2], [0, 1], [0.0, 2.0], (1, 2))
    mk = Mask.from_matrix(m)
    assert mk.nnz == 2  # structural semantics


def test_row_access(rng):
    m = csr_random(6, 9, density=0.4, rng=rng)
    mk = Mask.from_matrix(m)
    for i in range(6):
        cols, _ = m.row(i)
        assert np.array_equal(mk.row(i), cols)
    assert np.array_equal(mk.row_nnz(), m.row_nnz())


def test_complement_flag_and_flip(rng):
    m = csr_random(5, 5, density=0.3, rng=rng)
    mk = Mask.from_matrix(m, complemented=True)
    assert mk.complemented
    flipped = mk.complement()
    assert not flipped.complemented
    assert np.array_equal(flipped.indices, mk.indices)


def test_full_mask_allows_everything():
    mk = Mask.full((4, 7))
    assert mk.complemented
    assert mk.nnz == 0
    assert mk.shape == (4, 7)


def test_to_matrix_is_all_ones(rng):
    m = csr_random(6, 6, density=0.3, rng=rng)
    mat = Mask.from_matrix(m).to_matrix()
    assert mat.same_pattern(m)
    assert np.all(mat.data == 1.0)


def test_check_output_shape():
    mk = Mask.full((3, 4))
    mk.check_output_shape((3, 4))
    with pytest.raises(MaskError):
        mk.check_output_shape((4, 3))


def test_repr_mentions_complement(rng):
    m = csr_random(3, 3, density=0.5, rng=rng)
    assert "¬" in repr(Mask.from_matrix(m, complemented=True))
