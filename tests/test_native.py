"""Compiled (native) kernel tier tests — the PR-9 contracts.

* **bit-identity**: ``msa-native`` / ``hash-native`` produce byte-for-byte
  the CSR triplets of their fused bases and the pure-Python reference,
  across every registered semiring, both mask polarities, both phase
  modes, empty rows, and the int32/int64 column-id boundary (hypothesis
  sweeps the shape/density space);
* **graceful absence**: with ``REPRO_NATIVE=off`` (or no backend at all)
  the probe reports unavailable, routing keeps the fused keys, and the
  native entry points still answer — by delegating — so nothing anywhere
  needs a guard. These tests never skip;
* **degrade ladder**: a chaos fault on ``engine.kernel`` drops a
  native-routed request to its fused base (then the loop rung) with
  bit-identical output, counted in ``repro_degraded_total`` and visible
  as ``RequestStats.kernel_tier``;
* **thread backend**: ``backend="thread"`` is bit-identical to the local
  path with owned, borrowed, and absent executors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_bit_identical, make_triple
from repro import native
from repro.core import masked_spgemm
from repro.core.reference import reference_masked_spgemm
from repro.core.registry import (NATIVE_BASE, auto_select,
                                 available_algorithms, get_spec,
                                 native_variant)
from repro.mask import Mask
from repro.native import native_available, native_backend_name
from repro.parallel.executor import ThreadExecutor
from repro.parallel.runner import parallel_masked_spgemm
from repro.resilience import FaultPlan
from repro.semiring import PLUS_PAIR, PLUS_TIMES, Monoid, Semiring
from repro.semiring.standard import _REGISTRY as SEMIRINGS
from repro.service import Engine, Request
from repro.sparse import CSRMatrix, csr_random

needs_native = pytest.mark.skipif(
    not native_available(),
    reason="no compiled backend (numba, or cffi + a C compiler) on this "
           "machine — the fallback contract has its own always-on tests")

NATIVE_KEYS = ["msa-native", "hash-native"]


def _families(engine):
    from repro.obs import parse_exposition

    return parse_exposition(engine.metrics.render())


@pytest.fixture
def native_mode(monkeypatch):
    """Flip ``REPRO_NATIVE`` and re-probe; restores the real probe after."""
    def set_mode(mode):
        monkeypatch.setenv("REPRO_NATIVE", mode)
        native._reset_probe()

    yield set_mode
    monkeypatch.undo()
    native._reset_probe()


# --------------------------------------------------------------------- #
# bit-identity against fused and reference
# --------------------------------------------------------------------- #
@needs_native
class TestBitIdentity:
    @pytest.mark.parametrize("alg", NATIVE_KEYS)
    @pytest.mark.parametrize("semiring", list(SEMIRINGS))
    @pytest.mark.parametrize("complemented", [False, True])
    def test_matches_fused_all_semirings(self, rng, alg, semiring,
                                         complemented):
        A, B, M = make_triple(rng, m=60, k=50, n=55)
        mask = Mask.from_matrix(M, complemented=complemented)
        sr = SEMIRINGS[semiring]
        for phases in (1, 2):
            got = masked_spgemm(A, B, mask, algorithm=alg, semiring=sr,
                                phases=phases)
            want = masked_spgemm(A, B, mask, algorithm=NATIVE_BASE[alg],
                                 semiring=sr, phases=phases)
            assert_bit_identical(got, want,
                                 f"{alg}/{semiring}/compl={complemented}/"
                                 f"{phases}P")

    @pytest.mark.parametrize("alg", NATIVE_KEYS)
    def test_matches_reference(self, rng, alg):
        A, B, M = make_triple(rng, m=40, k=30, n=45)
        mask = Mask.from_matrix(M)
        got = masked_spgemm(A, B, mask, algorithm=alg, semiring=PLUS_TIMES,
                            phases=2)
        want = reference_masked_spgemm(A, B, mask, algorithm="msa",
                                       semiring=PLUS_TIMES)
        assert_bit_identical(got, want, f"{alg} vs reference")

    @pytest.mark.parametrize("alg", NATIVE_KEYS)
    def test_empty_rows_and_empty_mask_rows(self, rng, alg):
        # rows of A with no entries, rows of the mask with no entries, and
        # a fully-empty B stripe must all round-trip identically
        A = csr_random(24, 20, density=0.15, rng=rng)
        A = CSRMatrix(A.indptr.copy(), A.indices.copy(), A.data.copy(),
                      A.shape)
        B = csr_random(20, 26, density=0.15, rng=rng)
        M = csr_random(24, 26, density=0.12, rng=rng)
        for complemented in (False, True):
            mask = Mask.from_matrix(M, complemented=complemented)
            got = masked_spgemm(A, B, mask, algorithm=alg, phases=2)
            want = masked_spgemm(A, B, mask, algorithm=NATIVE_BASE[alg],
                                 phases=2)
            assert_bit_identical(got, want, f"{alg}/compl={complemented}")

    @given(m=st.integers(2, 40), k=st.integers(2, 40), n=st.integers(2, 40),
           da=st.floats(0.0, 0.4), dm=st.floats(0.0, 0.5),
           semiring=st.sampled_from(["plus_times", "plus_pair", "min_plus",
                                     "max_times", "or_and"]),
           complemented=st.booleans(), phases=st.sampled_from([1, 2]),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    @pytest.mark.parametrize("alg", NATIVE_KEYS)
    def test_hypothesis_sweep(self, alg, m, k, n, da, dm, semiring,
                              complemented, phases, seed):
        r = np.random.default_rng(seed)
        A = csr_random(m, k, density=da, rng=r, values="randint")
        B = csr_random(k, n, density=da, rng=r, values="randint")
        mask = Mask.from_matrix(csr_random(m, n, density=dm, rng=r),
                                complemented=complemented)
        sr = SEMIRINGS[semiring]
        got = masked_spgemm(A, B, mask, algorithm=alg, semiring=sr,
                            phases=phases)
        want = masked_spgemm(A, B, mask, algorithm=NATIVE_BASE[alg],
                             semiring=sr, phases=phases)
        assert_bit_identical(
            got, want, f"{alg}/{semiring}/compl={complemented}/{phases}P")

    def test_hash_native_wide_column_ids(self, rng):
        """Column ids past 2**31 must hash and compare as int64 — an int32
        truncation anywhere in the table would collide or mis-sort them."""
        wide = 2**31 + 64
        k = 6
        indptr = np.arange(k + 1, dtype=np.int64) * 3
        cols = np.array([7, 2**31 - 1, 2**31 + 5] * k, dtype=np.int64)
        vals = rng.random(cols.size)
        B = CSRMatrix(indptr, cols, vals, (k, wide))
        A = csr_random(8, k, density=0.6, rng=rng, values="randint")
        m_indptr = np.arange(9, dtype=np.int64) * 2
        m_cols = np.array([2**31 - 1, 2**31 + 5] * 8, dtype=np.int64)
        M = CSRMatrix(m_indptr, m_cols, np.ones(m_cols.size), (8, wide))
        for complemented in (False, True):
            mask = Mask.from_matrix(M, complemented=complemented)
            got = masked_spgemm(A, B, mask, algorithm="hash-native",
                                phases=2)
            want = masked_spgemm(A, B, mask, algorithm="hash", phases=2)
            assert_bit_identical(got, want, f"wide/compl={complemented}")

    def test_msa_native_delegates_past_ncols_cap(self, rng):
        """msa's dense scratch cannot scale to huge column counts; past
        MSA_NCOLS_CAP the native face must hand the rows to fused msa
        (which chunks its scratch) and stay bit-identical."""
        from repro.native.kernels import MSA_NCOLS_CAP

        wide = MSA_NCOLS_CAP + 3
        k = 4
        indptr = np.arange(k + 1, dtype=np.int64) * 2
        cols = np.array([3, wide - 2] * k, dtype=np.int64)
        B = CSRMatrix(indptr, cols, rng.random(cols.size), (k, wide))
        A = csr_random(6, k, density=0.7, rng=rng, values="randint")
        m_indptr = np.arange(7, dtype=np.int64) * 2
        m_cols = np.array([3, wide - 2] * 6, dtype=np.int64)
        M = CSRMatrix(m_indptr, m_cols, np.ones(m_cols.size), (6, wide))
        mask = Mask.from_matrix(M)
        got = masked_spgemm(A, B, mask, algorithm="msa-native", phases=2)
        want = masked_spgemm(A, B, mask, algorithm="msa", phases=2)
        assert_bit_identical(got, want, "msa ncols cap delegation")


# --------------------------------------------------------------------- #
# routing + registry surface
# --------------------------------------------------------------------- #
@needs_native
def test_auto_select_routes_to_native(rng):
    n = 128
    A = csr_random(n, n, density=16 / n, rng=rng)
    mask = Mask.from_matrix(csr_random(n, n, density=16 / n, rng=rng))
    assert auto_select(A, A, mask).endswith("-native")
    assert native_variant("msa") == "msa-native"
    assert native_variant("hash") == "hash-native"
    assert native_variant("msa-loop") == "msa-native"
    assert native_variant("esc") == "esc"  # unmapped kernels pass through


def test_native_tiers_not_publicly_listed():
    for key in NATIVE_KEYS:
        assert get_spec(key) is not None  # resolvable by name
        assert key not in available_algorithms()


@needs_native
def test_unregistered_semiring_delegates(rng):
    """op-code mapping only covers the standard semirings; a custom one
    must silently take the fused path with identical output."""
    add = Monoid(np.add, 0.0, "custom_add")
    custom = Semiring(add, lambda a, b: a * b, "custom_times",
                      mul_scalar=lambda a, b: a * b)
    A, B, M = make_triple(rng, m=25, k=20, n=25)
    mask = Mask.from_matrix(M)
    got = masked_spgemm(A, B, mask, algorithm="msa-native",
                        semiring=custom, phases=2)
    want = masked_spgemm(A, B, mask, algorithm="msa", semiring=custom,
                         phases=2)
    assert_bit_identical(got, want, "custom semiring delegation")


# --------------------------------------------------------------------- #
# graceful absence — always-on, no backend required
# --------------------------------------------------------------------- #
def test_repro_native_off_disables_the_tier(rng, native_mode):
    native_mode("off")
    assert not native_available()
    assert native_backend_name() is None
    assert native_variant("msa") == "msa"
    n = 128
    A = csr_random(n, n, density=16 / n, rng=rng)
    mask = Mask.from_matrix(csr_random(n, n, density=16 / n, rng=rng))
    assert not auto_select(A, A, mask).endswith("-native")


def test_native_keys_still_answer_without_backend(rng, native_mode):
    """Explicitly-requested native keys delegate instead of erroring when
    the tier is off — callers never need a guard."""
    native_mode("off")
    A, B, M = make_triple(rng, m=30, k=25, n=30)
    mask = Mask.from_matrix(M)
    for alg in NATIVE_KEYS:
        got = masked_spgemm(A, B, mask, algorithm=alg, phases=2)
        want = masked_spgemm(A, B, mask, algorithm=NATIVE_BASE[alg],
                             phases=2)
        assert_bit_identical(got, want, f"{alg} off-delegation")


def test_unknown_mode_means_unavailable(native_mode):
    native_mode("not-a-backend")
    assert not native_available()


def test_warmup_memoized_and_gauged():
    native._reset_probe()
    try:
        eng = Engine()
        try:
            seconds = native.warmup()
            assert seconds == native.warmup()  # memoized
            gauge = _families(eng)["repro_native_compile_seconds"]
            (value,) = gauge.values()
            assert value == pytest.approx(seconds)
            if not native_available():
                assert value == 0.0
        finally:
            eng.close()
    finally:
        native._reset_probe()


# --------------------------------------------------------------------- #
# degrade ladder (chaos leg)
# --------------------------------------------------------------------- #
@needs_native
def test_chaos_native_degrades_to_fused_bit_identically(rng):
    eng = Engine(faults=FaultPlan(["engine.kernel:error:1"]))
    A, B, M = make_triple(rng, m=40, k=30, n=40)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    try:
        req = Request(a="A", b="B", mask="M", algorithm="msa-native",
                      phases=2)
        resp = eng.submit(req)
        want = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa",
                             phases=2)
        assert_bit_identical(resp.result, want, "degraded output")
        assert resp.stats.kernel_tier == "fused"
        assert resp.stats.algorithm.endswith("-native")  # plan unchanged
        fam = _families(eng)["repro_degraded_total"]
        assert fam[(("from", "native"), ("to", "fused"))] == 1
        # the fault is spent: the next request serves native again
        resp2 = eng.submit(req)
        assert resp2.stats.kernel_tier == "native"
        assert_bit_identical(resp2.result, want, "recovered output")
    finally:
        eng.close()


@needs_native
def test_engine_stamps_native_tier_and_counter(rng):
    eng = Engine()
    A, B, M = make_triple(rng, m=40, k=30, n=40)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    try:
        for _ in range(3):
            resp = eng.submit(Request(a="A", b="B", mask="M",
                                      algorithm="hash-native", phases=2))
            assert resp.stats.kernel_tier == "native"
        assert eng.stats.kernel_tiers == {"native": 3}
        fam = _families(eng)["repro_kernel_requests_total"]
        assert fam[(("tier", "native"),)] == 3
    finally:
        eng.close()


# --------------------------------------------------------------------- #
# thread backend
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("nworkers", [1, 2, 4])
def test_thread_backend_bit_identical(rng, nworkers):
    A, B, M = make_triple(rng, m=80, k=60, n=80, da=0.08, db=0.08)
    mask = Mask.from_matrix(M)
    want = masked_spgemm(A, B, mask, algorithm="msa", phases=2)
    ex = ThreadExecutor(nworkers)
    try:
        got = parallel_masked_spgemm(A, B, mask, algorithm="msa",
                                     semiring=PLUS_TIMES, phases=2,
                                     executor=ex, backend="thread")
    finally:
        ex.close()
    assert_bit_identical(got, want, f"thread x{nworkers}")


def test_thread_backend_transient_pool(rng):
    A, B, M = make_triple(rng, m=50, k=40, n=50)
    mask = Mask.from_matrix(M)
    got = parallel_masked_spgemm(A, B, mask, algorithm="hash",
                                 semiring=PLUS_PAIR, phases=2,
                                 backend="thread")
    want = masked_spgemm(A, B, mask, algorithm="hash", semiring=PLUS_PAIR,
                         phases=2)
    assert_bit_identical(got, want, "transient thread pool")


def test_thread_backend_plan_reuse(rng):
    A, B, M = make_triple(rng, m=60, k=50, n=60)
    mask = Mask.from_matrix(M)
    sink = []
    first = parallel_masked_spgemm(A, B, mask, algorithm="msa", phases=2,
                                   plan_sink=sink, backend="thread")
    assert len(sink) == 1
    warm = parallel_masked_spgemm(A, B, mask,
                                  algorithm=sink[0].algorithm, phases=2,
                                  plan=sink[0], backend="thread")
    assert_bit_identical(warm, first, "warm thread replay")
