"""Tests for the diagnosis layer (repro.obs v2): declarative SLOs with
multi-window burn-rate alerting, OpenMetrics trace exemplars on the latency
histograms, the failure flight recorder (ring + debug bundles on resilience
edges), and the span-scoped sampling profiler — plus the call-site timing
satellite (chunk/scatter histograms populated with tracing off,
bit-identical to the spans with tracing on)."""

import json
import time
import urllib.request

import pytest

from conftest import make_triple
from repro.obs import (
    MetricsRegistry,
    ObsHTTPServer,
    SamplingProfiler,
    Tracer,
    capture,
    parse_exposition,
    parse_slo,
    span,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.slo import SLOEvaluator
from repro.resilience import DeadlineExceeded, FaultPlan
from repro.service import Engine, Request
from repro.sparse import csr_random


# ---------------------------------------------------------------------- #
# SLO spec parsing
# ---------------------------------------------------------------------- #
def test_parse_slo_latency_and_availability():
    o = parse_slo("p99=50ms:0.99")
    assert (o.name, o.kind) == ("p99", "latency")
    assert o.threshold == pytest.approx(0.05)
    assert o.target == 0.99 and o.budget == pytest.approx(0.01)
    assert parse_slo("slow=1.5s:0.9").threshold == pytest.approx(1.5)
    assert parse_slo("tail=250us:0.5").threshold == pytest.approx(250e-6)
    a = parse_slo("availability=0.999")
    assert a.kind == "availability" and a.target == 0.999
    assert parse_slo("avail=0.9").kind == "availability"


@pytest.mark.parametrize("bad", [
    "p99",                 # no '='
    "p99=50ms",            # latency without a target
    "p99=50lightyears:0.9",  # unknown unit
    "p99=50ms:1.0",        # target of 1 has no budget to burn
    "p99=50ms:0",          # target must be positive
    "=50ms:0.9",           # empty name
])
def test_parse_slo_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_slo(bad)


# ---------------------------------------------------------------------- #
# exemplars: histogram slots → OpenMetrics syntax → parse round-trip
# ---------------------------------------------------------------------- #
def test_exemplar_round_trip_through_exposition():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", "lat", labels=("op",),
                      buckets=(0.01, 0.1, 1.0))
    h.observe_traced(0.05, "r1", op="x")
    h.observe_traced(0.07, "r2", op="x")  # same bucket — latest wins
    h.observe_traced(5.0, "r3", op="x")   # above top bucket → +Inf slot
    h.observe_traced(0.005, None, op="x")  # untraced: no exemplar slot
    samples, exemplars = parse_exposition(reg.render(),
                                          return_exemplars=True)
    by_le = {dict(key)["le"]: ex for key, ex
             in exemplars["repro_lat_seconds_bucket"].items()}
    pairs, value, ts = by_le["0.1"]
    assert dict(pairs)["trace_id"] == "r2"  # r1 overwritten, bounded slot
    assert value == pytest.approx(0.07)
    assert ts is not None and ts > 0
    assert dict(by_le["+Inf"][0])["trace_id"] == "r3"
    assert "0.01" not in by_le  # the untraced observation left no exemplar
    # exposition values are unaffected by exemplar suffixes
    assert samples["repro_lat_seconds_count"][(("op", "x"),)] == 4.0
    # direct views agree with what the exposition said
    assert h.exemplars(op="x")[0.1][0] == "r2"
    assert {e[0] for e in h.exemplars_above(0.01)} == {"r2", "r3"}


def test_observe_resolves_active_trace_implicitly():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", "lat", buckets=(0.01, 1.0))
    tracer = Tracer()
    with tracer.trace("r42"):
        h.observe(0.5)
    h.observe(0.5)  # outside any trace: no exemplar churn
    assert h.exemplars()[1.0][0] == "r42"


def test_engine_latency_histograms_carry_exemplars(rng):
    eng = Engine()
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
    _, exemplars = parse_exposition(eng.metrics.render(),
                                    return_exemplars=True)
    for family in ("repro_request_seconds_bucket",
                   "repro_phase_seconds_bucket",
                   "repro_chunk_seconds_bucket"):
        ids = {dict(pairs)["trace_id"]
               for pairs, _, _ in exemplars.get(family, {}).values()}
        assert resp.stats.trace_id in ids, family


# ---------------------------------------------------------------------- #
# burn-rate window math against a synthetic timeline
# ---------------------------------------------------------------------- #
def _make_evaluator(**kw):
    reg = MetricsRegistry()
    hist = reg.histogram("repro_request_seconds", "latency",
                         buckets=LATENCY_BUCKETS)
    clock = {"t": 0.0}
    ev = SLOEvaluator(reg, [parse_slo("p99=10ms:0.9")],
                      clock=lambda: clock["t"], **kw)
    return reg, hist, clock, ev


def test_burn_rate_windows_and_alert_lifecycle():
    reg, hist, clock, ev = _make_evaluator(alert_burn_rate=8.0)
    (s0,) = ev.evaluate()
    assert s0["windows"]["fast"]["burn_rate"] == 0.0
    assert not s0["alerting"]

    # t=10: a spike of 10 requests, all breaching the 10 ms threshold.
    # Error rate 100% against a 10% budget → burn 10x on both windows
    # (younger than either window, the baseline is process start).
    for i in range(10):
        hist.observe_traced(0.5, f"bad{i}")
    clock["t"] = 10.0
    (s1,) = ev.evaluate()
    assert s1["windows"]["fast"]["burn_rate"] == pytest.approx(10.0)
    assert s1["windows"]["slow"]["burn_rate"] == pytest.approx(10.0)
    assert s1["alerting"]  # both windows ≥ 8.0
    assert s1["threshold_bucket"] == pytest.approx(0.01)
    assert {e["trace_id"] for e in s1["exemplars"]} <= {
        f"bad{i}" for i in range(10)} and s1["exemplars"]
    alerts = reg.get("repro_slo_alerts_total")
    assert alerts.value(slo="p99") == 1.0
    assert reg.get("repro_slo_alerting").value(slo="p99") == 1.0

    # t=20: 90 fast requests dilute the window to a 10% error rate →
    # burn 1.0 (spending budget exactly at the sustainable rate)
    for _ in range(90):
        hist.observe(0.001)
    clock["t"] = 20.0
    (s2,) = ev.evaluate()
    assert s2["windows"]["fast"]["burn_rate"] == pytest.approx(1.0)
    assert s2["windows"]["slow"]["burn_rate"] == pytest.approx(1.0)
    assert not s2["alerting"]  # cleared; rising-edge counter unchanged
    assert alerts.value(slo="p99") == 1.0
    assert s2["error_budget_remaining"] == pytest.approx(0.0)

    # t=400: the spike ages out of the 5 m fast window (its baseline is
    # now the t=20 snapshot; no traffic since → fast burn 0) while the
    # 1 h slow window still sees the whole lifetime at burn 1.0 — the
    # multi-window rule: a stale spike must not page
    clock["t"] = 400.0
    (s3,) = ev.evaluate()
    assert s3["windows"]["fast"]["total"] == 0.0
    assert s3["windows"]["fast"]["burn_rate"] == 0.0
    assert s3["windows"]["slow"]["burn_rate"] == pytest.approx(1.0)
    assert not s3["alerting"]
    assert reg.get("repro_slo_burn_rate").value(
        slo="p99", window="slow") == pytest.approx(1.0)


def test_availability_objective_counts_server_outcomes():
    reg = MetricsRegistry()
    ctr = reg.counter("repro_server_requests_total", "outcomes",
                      labels=("outcome",))
    clock = {"t": 0.0}
    ev = SLOEvaluator(reg, [parse_slo("availability=0.9")],
                      clock=lambda: clock["t"])
    ctr.inc(8, outcome="completed")
    ctr.inc(1, outcome="failed")
    ctr.inc(1, outcome="shed")
    clock["t"] = 30.0
    (s,) = ev.evaluate()
    assert (s["good"], s["total"]) == (8.0, 10.0)
    # 20% failure against a 10% budget → burn 2.0
    assert s["windows"]["fast"]["burn_rate"] == pytest.approx(2.0)
    assert s["exemplars"] == []  # latency-only concept


# ---------------------------------------------------------------------- #
# flight recorder: ring, bundles, rate limiting, eviction
# ---------------------------------------------------------------------- #
def test_flight_recorder_bundle_contents(tmp_path):
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "x").inc(3)
    tracer = Tracer()
    with tracer.trace("r7"):
        with span("numeric"):
            pass
    fr = FlightRecorder(registry=reg, tracer=tracer, spool_dir=tmp_path,
                        context=lambda: {"breaker": "closed"})
    fr.note_request({"trace_id": "r7", "tier": "cold"})
    bid = fr.capture("degrade", detail="shard->inprocess (WorkerDied)")
    assert bid is not None and "degrade" in bid
    doc = fr.bundle(bid)
    assert doc["reason"] == "degrade"
    assert doc["detail"] == "shard->inprocess (WorkerDied)"
    assert doc["ring"] == [{"trace_id": "r7", "tier": "cold"}]
    assert "repro_x_total 3" in doc["metrics"]
    assert doc["context"] == {"breaker": "closed"}
    assert fr.bundle_path(bid).exists()
    assert fr.bundle("nope") is None


def test_flight_recorder_rate_limit_is_per_reason(tmp_path):
    fr = FlightRecorder(spool_dir=tmp_path, min_interval=10.0)
    assert fr.capture("degrade") is not None
    assert fr.capture("degrade") is None  # within min_interval: dropped
    assert fr.capture("deadline") is not None  # other reasons unaffected
    assert fr.capture("degrade", force=True) is not None  # manual override


def test_flight_recorder_evicts_oldest_bundle_files(tmp_path):
    fr = FlightRecorder(spool_dir=tmp_path, max_bundles=2)
    ids = [fr.capture(f"edge{i}", force=True) for i in range(3)]
    kept = fr.bundle_ids()
    assert kept == ids[1:]
    assert not any(tmp_path.glob(f"{ids[0]}*"))  # evicted file unlinked


def _shm_ok():
    from repro.shard.memory import shared_memory_available

    return shared_memory_available()


@pytest.mark.skipif(not _shm_ok(), reason="no usable shared memory")
def test_engine_captures_bundles_on_retry_exhaustion_and_degrade(rng):
    eng = Engine(shards=2, faults=FaultPlan.parse("shard.numeric:kill:2"))
    A = csr_random(300, 300, density=0.05, rng=rng)
    M = csr_random(300, 300, density=0.05, rng=rng)
    eng.register("A", A)
    eng.register("M", M)
    try:
        resp = eng.submit(Request(a="A", b="A", mask="M", phases=2,
                                  algorithm="hash"))
        assert resp.result.nnz >= 0  # degraded in-process, still served
        ids = eng.flight.bundle_ids()
        assert any("retry-exhausted" in i for i in ids)
        degrade = [i for i in ids if "degrade" in i]
        assert degrade
        doc = eng.flight.bundle(degrade[-1])
        assert "shard->inprocess" in doc["detail"]
        assert doc["context"]["shard_degraded"] is True
        assert doc["metrics"]  # a /metrics snapshot rode along
        assert doc["trace"] is not None  # the offending request's flame
    finally:
        eng.close()


def test_engine_captures_bundle_on_deadline(rng):
    eng = Engine()
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    with pytest.raises(DeadlineExceeded):
        eng.submit(Request(a="A", b="B", mask="M", phases=2,
                           deadline_ms=1e-4))
    ids = eng.flight.bundle_ids()
    assert any("deadline" in i for i in ids)
    doc = eng.flight.bundle([i for i in ids if "deadline" in i][-1])
    assert doc["detail"].startswith("stage=")


def test_request_ring_records_serving_summaries(rng):
    eng = Engine(result_cache_bytes=1 << 20)
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    for _ in range(2):
        eng.submit(Request(a="A", b="B", mask="M", phases=2))
    ring = eng.flight.ring()
    assert [e["tier"] for e in ring] == ["cold", "result"]
    assert all(e["trace_id"] and e["total_seconds"] >= 0 for e in ring)


# ---------------------------------------------------------------------- #
# sampling profiler
# ---------------------------------------------------------------------- #
def _spin(seconds: float) -> int:
    x = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        x += 1
    return x


def test_profiler_finds_known_hot_function():
    prof = SamplingProfiler(interval=0.001)
    with prof:
        _spin(0.3)
    out = prof.collapsed()
    assert prof.samples > 0
    assert "_spin" in out
    for line in out.splitlines():  # collapsed format: "f1;f2;f3 count"
        stack, count = line.rsplit(" ", 1)
        assert stack and int(count) > 0


def test_profiler_scopes_samples_to_named_spans():
    prof = SamplingProfiler(interval=0.001, spans=("hot",))
    with prof:
        with capture("t"):
            _spin(0.1)  # outside the span: must not be attributed
            with span("hot"):
                _spin(0.2)
    out = prof.collapsed()
    assert out, "no samples landed inside the span"
    assert all(line.startswith("span:hot;") for line in out.splitlines())


def test_profiler_lifecycle_guards():
    prof = SamplingProfiler(interval=0.01)
    prof.start()
    with pytest.raises(RuntimeError):
        prof.start()
    prof.stop()
    prof.stop()  # idempotent


# ---------------------------------------------------------------------- #
# call-site timing satellite: histograms populate with tracing OFF and
# stay bit-identical to the spans with tracing ON
# ---------------------------------------------------------------------- #
def test_chunk_histogram_populates_with_tracing_off(rng):
    eng = Engine(tracing=False)
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    eng.submit(Request(a="A", b="B", mask="M", phases=2))
    families = parse_exposition(eng.metrics.render())
    assert sum(families["repro_chunk_seconds_count"].values()) >= 1.0
    assert len(eng.tracer) == 0  # no trace machinery was involved


def test_chunk_histogram_bit_identical_to_spans(rng):
    eng = Engine()
    A, B, M = make_triple(rng)
    eng.register("A", A)
    eng.register("B", B)
    eng.register("M", M)
    resp = eng.submit(Request(a="A", b="B", mask="M", phases=2))
    rec = eng.tracer.get(resp.stats.trace_id)
    span_total = sum(s.t1 - s.t0 for s in rec.find("chunk"))
    hist = eng.metrics.get("repro_chunk_seconds")
    assert hist.total_count() == len(rec.find("chunk"))
    assert hist.total_sum() == pytest.approx(span_total, rel=1e-9)


@pytest.mark.skipif(not _shm_ok(), reason="no usable shared memory")
def test_shard_timings_populate_with_tracing_off(rng):
    eng = Engine(shards=2, tracing=False)
    A = csr_random(300, 300, density=0.05, rng=rng)
    M = csr_random(300, 300, density=0.05, rng=rng)
    eng.register("A", A)
    eng.register("M", M)
    try:
        resp = eng.submit(Request(a="A", b="A", mask="M", phases=2,
                                  algorithm="hash"))
        assert resp.stats.sharded
        families = parse_exposition(eng.metrics.render())
        assert sum(families["repro_shard_scatter_seconds_count"]
                   .values()) >= 2.0  # symbolic + numeric scatters
        assert sum(families["repro_chunk_seconds_count"].values()) >= 1.0
    finally:
        eng.close()


# ---------------------------------------------------------------------- #
# sidecar routes: /slo, /debug/bundles, /profile
# ---------------------------------------------------------------------- #
def test_http_sidecar_serves_diagnosis_routes(tmp_path):
    reg = MetricsRegistry()
    hist = reg.histogram("repro_request_seconds", "latency",
                         buckets=LATENCY_BUCKETS)
    tracer = Tracer()
    with tracer.trace("r1"):
        with span("numeric"):
            pass
    hist.observe_traced(0.5, "r1")
    slo = SLOEvaluator(reg, [parse_slo("p99=10ms:0.9")], tracer=tracer)
    flight = FlightRecorder(registry=reg, tracer=tracer, spool_dir=tmp_path)
    bid = flight.capture("degrade", detail="test")
    with ObsHTTPServer(reg, tracer, slo=slo, flight=flight) as obs:
        with urllib.request.urlopen(f"{obs.url}/slo", timeout=5) as r:
            doc = json.loads(r.read())
        (s,) = doc["slos"]
        assert s["slo"] == "p99"
        assert s["exemplars"][0]["trace_id"] == "r1"
        with urllib.request.urlopen(f"{obs.url}/debug/bundles",
                                    timeout=5) as r:
            assert json.loads(r.read())["bundles"] == [bid]
        with urllib.request.urlopen(f"{obs.url}/debug/bundle/{bid}",
                                    timeout=5) as r:
            assert json.loads(r.read())["reason"] == "degrade"
        url = f"{obs.url}/profile?seconds=0.05&interval=0.01"
        with urllib.request.urlopen(url, timeout=15) as r:
            assert r.status == 200  # body may be empty on an idle process


# ---------------------------------------------------------------------- #
# CLI: trace --index bounds, bundle + profile subcommands
# ---------------------------------------------------------------------- #
def test_trace_cli_index_out_of_range(tmp_path):
    from repro.__main__ import main

    with pytest.raises(SystemExit, match="out of range"):
        main(["trace", "--smoke", "--index", "99",
              "-o", str(tmp_path / "t.json")])


def test_bundle_cli_writes_bundle(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "bundle.json"
    assert main(["bundle", "--smoke", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["reason"] == "manual"
    assert doc["ring"] and doc["metrics"]


def test_profile_cli_writes_collapsed_stacks(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "prof.txt"
    assert main(["profile", "--smoke", "--spans", "all",
                 "-o", str(out)]) == 0
    text = out.read_text()
    assert text.strip(), "whole-process profile captured no stacks"
    for line in text.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) > 0


def test_serve_cli_rejects_bad_slo_spec():
    from repro.__main__ import main

    with pytest.raises(SystemExit, match="bad --slo spec"):
        main(["serve", "--smoke", "--slo", "p99=nonsense"])
