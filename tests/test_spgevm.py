"""Masked SpGEVM (vector-level API) tests."""

import numpy as np
import pytest

from repro import Mask, SparseVector, masked_spgevm
from repro.errors import ShapeError
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.sparse import csr_random


def make_problem(rng, k=30, n=40):
    B = csr_random(k, n, density=0.2, rng=rng, values="randint")
    u = SparseVector.from_dense(
        rng.integers(0, 3, size=k).astype(float))
    m = SparseVector.from_dense((rng.random(n) < 0.3).astype(float))
    return u, B, m


@pytest.mark.parametrize("alg", ["msa", "hash", "mca", "heap", "inner", "auto"])
def test_matches_dense(rng, alg):
    u, B, m = make_problem(rng)
    v = masked_spgevm(u, B, m, algorithm=alg)
    want = (u.to_dense() @ B.to_dense()) * (m.to_dense() != 0)
    assert np.allclose(v.to_dense(), want)


def test_complemented(rng):
    u, B, m = make_problem(rng)
    v = masked_spgevm(u, B, m, complemented=True, algorithm="msa")
    want = (u.to_dense() @ B.to_dense()) * (m.to_dense() == 0)
    assert np.allclose(v.to_dense(), want)


def test_no_mask_is_plain_product(rng):
    u, B, _ = make_problem(rng)
    v = masked_spgevm(u, B, None)
    assert np.allclose(v.to_dense(), u.to_dense() @ B.to_dense())


def test_semirings(rng):
    u, B, m = make_problem(rng)
    v = masked_spgevm(u, B, m, semiring=PLUS_PAIR, algorithm="hash")
    want = ((u.to_dense() != 0).astype(float)
            @ (B.to_dense() != 0).astype(float)) * (m.to_dense() != 0)
    assert np.allclose(v.to_dense(), want)


def test_min_plus_relaxation(rng):
    # one tropical SpGEVM step == one round of Bellman-Ford relaxation
    u, B, m = make_problem(rng)
    v = masked_spgevm(u, B, None, semiring=MIN_PLUS)
    ud, Bd = u.to_dense(), B.to_dense()
    want = np.full(B.ncols, np.inf)
    for k in u.indices:
        for p in range(B.indptr[k], B.indptr[k + 1]):
            j = B.indices[p]
            want[j] = min(want[j], ud[k] + B.data[p])
    got = np.full(B.ncols, np.inf)
    got[v.indices] = v.data
    assert np.array_equal(np.isfinite(got), np.isfinite(want))
    assert np.allclose(got[np.isfinite(got)], want[np.isfinite(want)])


def test_mask_object_accepted(rng):
    u, B, m = make_problem(rng)
    mask = Mask(np.array([0, m.nnz]), m.indices, (1, B.ncols))
    v1 = masked_spgevm(u, B, mask)
    v2 = masked_spgevm(u, B, m)
    assert v1.equals(v2)


def test_shape_errors(rng):
    u, B, m = make_problem(rng)
    bad_u = SparseVector.empty(B.nrows + 1)
    with pytest.raises(ShapeError):
        masked_spgevm(bad_u, B, m)
    bad_mask = Mask(np.array([0, 0]), np.empty(0, dtype=np.int64),
                    (1, B.ncols + 1))
    with pytest.raises(ShapeError):
        masked_spgevm(u, B, bad_mask)


def test_reference_tier(rng):
    u, B, m = make_problem(rng)
    v = masked_spgevm(u, B, m, algorithm="msa", tier="reference")
    w = masked_spgevm(u, B, m, algorithm="msa")
    assert v.equals(w)
