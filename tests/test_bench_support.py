"""Tests for bench support: metrics, performance profiles, harness,
reporting."""

import numpy as np
import pytest

from repro.bench import (
    GridResult,
    compression_factor,
    gflops,
    masked_flops,
    mteps,
    performance_profile,
    render_profile,
    render_series,
    render_table,
    run_grid,
    spgemm_flops,
    time_callable,
)
from repro.mask import Mask
from repro.sparse import csr_random


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_spgemm_flops_definition(self, rng):
        from repro.core.expand import total_flops

        A = csr_random(20, 20, density=0.2, rng=rng)
        B = csr_random(20, 20, density=0.2, rng=rng)
        assert spgemm_flops(A, B) == 2 * total_flops(A, B)

    def test_masked_flops_bounds(self, rng):
        A = csr_random(20, 20, density=0.2, rng=rng)
        B = csr_random(20, 20, density=0.2, rng=rng)
        M = csr_random(20, 20, density=0.3, rng=rng)
        mk = Mask.from_matrix(M)
        mf = masked_flops(A, B, mk)
        assert 0 <= mf <= spgemm_flops(A, B)
        # plain + complement partition the total
        mfc = masked_flops(A, B, mk.complement())
        assert mf + mfc == spgemm_flops(A, B)

    def test_masked_flops_full_mask(self, rng):
        A = csr_random(10, 10, density=0.3, rng=rng)
        B = csr_random(10, 10, density=0.3, rng=rng)
        assert masked_flops(A, B, Mask.full((10, 10))) == spgemm_flops(A, B)

    def test_rate_metrics(self):
        assert gflops(2e9, 2.0) == 1.0
        assert gflops(1.0, 0.0) == float("inf")
        assert mteps(512, 1_000_000, 512.0) == 1.0

    def test_compression_factor(self, rng):
        from repro.core import spgemm

        A = csr_random(15, 15, density=0.3, rng=rng)
        B = csr_random(15, 15, density=0.3, rng=rng)
        C = spgemm(A, B)
        cf = compression_factor(A, B, C)
        assert cf >= 1.0  # flops >= outputs


# --------------------------------------------------------------------- #
# performance profiles
# --------------------------------------------------------------------- #
class TestPerfProfile:
    def test_basic_fractions(self):
        times = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 2.0, "y": 1.0}}
        p = performance_profile(times, taus=np.array([1.0, 2.0, 3.0]))
        assert p.fraction_best("a") == 0.5
        assert p.fraction_best("b") == 0.5
        assert p.curves["a"].tolist() == [0.5, 1.0, 1.0]

    def test_dominant_scheme_ranks_first(self):
        times = {"fast": {"x": 1.0, "y": 1.0, "z": 1.0},
                 "slow": {"x": 1.5, "y": 3.0, "z": 2.0}}
        p = performance_profile(times)
        assert p.ranking()[0] == "fast"
        assert p.fraction_best("fast") == 1.0

    def test_missing_cases_are_failures(self):
        times = {"full": {"x": 1.0, "y": 1.0}, "partial": {"x": 0.5}}
        p = performance_profile(times, taus=np.array([1.0, 10.0]))
        assert p.ratios["partial"]["y"] == float("inf")
        assert p.curves["partial"][-1] == 0.5

    def test_ties_count_as_best_for_both(self):
        times = {"a": {"x": 1.0}, "b": {"x": 1.0}}
        p = performance_profile(times)
        assert p.fraction_best("a") == p.fraction_best("b") == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            performance_profile({})
        with pytest.raises(ValueError):
            performance_profile({"a": {}})

    def test_area_monotone_in_dominance(self):
        times = {"good": {"x": 1.0, "y": 1.0}, "bad": {"x": 2.0, "y": 2.0}}
        p = performance_profile(times, taus=np.linspace(1, 3, 10))
        assert p.area("good") > p.area("bad")


# --------------------------------------------------------------------- #
# harness + reporting
# --------------------------------------------------------------------- #
class TestHarness:
    def test_time_callable_measures(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert t >= 0.0

    def test_run_grid_skips_unsupported(self):
        def make(scheme):
            if scheme == "broken":
                raise ValueError("unsupported")
            return lambda: None

        cases = [("case1", lambda s: make(s))]
        res = run_grid(cases, ["ok", "broken"], repeats=1, warmup=0)
        assert "case1" in res.times["ok"]
        assert "broken" not in res.times

    def test_run_grid_raise_mode(self):
        cases = [("c", lambda s: (_ for _ in ()).throw(ValueError()))]
        with pytest.raises(ValueError):
            run_grid(cases, ["x"], on_error="raise")

    def test_grid_result_accessors(self):
        r = GridResult()
        r.record("s1", "c1", 1.0)
        r.record("s1", "c2", 2.0)
        r.record("s2", "c1", 3.0)
        assert r.schemes() == ["s1", "s2"]
        assert r.cases() == ["c1", "c2"]


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "22.5" in lines[3]

    def test_render_series_includes_all_points(self):
        out = render_series("T", "x", "y", {"s1": [(1, 10.0), (2, 20.0)],
                                            "s2": [(1, 5.0)]})
        assert "T" in out and "s1" in out and "s2" in out
        assert "20" in out
        assert "nan" in out  # s2 missing at x=2

    def test_render_profile_smoke(self):
        times = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 2.0, "y": 1.0}}
        out = render_profile("demo", performance_profile(times))
        assert "demo" in out and "tau=1" in out
        assert "a" in out and "b" in out
