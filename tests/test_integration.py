"""End-to-end integration tests spanning the whole stack:
generator → prep → masked kernels (all variants) → application → metric,
on suite graphs, with parallel executors in the loop."""

import numpy as np
import pytest

from repro import (
    Mask,
    PLUS_PAIR,
    SimulatedExecutor,
    masked_spgemm,
    triangle_count,
)
from repro.algorithms import betweenness_centrality, ktruss
from repro.bench import masked_flops, performance_profile, spgemm_flops
from repro.core import available_algorithms, display_name
from repro.graphs import load_graph, suite_graphs
from repro.graphs.prep import triangle_prep
from repro.perfmodel import predicted_best


def test_tc_pipeline_all_schemes_agree_on_suite_graph():
    """One suite graph through all scheme variants (the paper's 6 algorithms
    plus our hybrid extension, × 2 phases): identical masked-product
    matrices everywhere."""
    g = load_graph("rmat-s8-e4")
    L = triangle_prep(g)
    mask = Mask.from_matrix(L)
    results = {}
    for alg in available_algorithms():
        for phases in (1, 2):
            C = masked_spgemm(L, L, mask, algorithm=alg, semiring=PLUS_PAIR,
                              phases=phases)
            results[display_name(alg, phases)] = C
    names = list(results)
    first = results[names[0]]
    for nm in names[1:]:
        assert results[nm].equals(first), nm
    # (6 paper algorithms + hybrid + chunk-fused esc) x {1P, 2P}
    assert len(results) == 16


def test_masking_saves_work_on_triangle_counting():
    """The Fig. 1 story quantified: for TC the masked flops are a small
    fraction of the full product's flops."""
    g = load_graph("er-s10-d16")
    L = triangle_prep(g)
    full = spgemm_flops(L, L)
    useful = masked_flops(L, L, Mask.from_matrix(L))
    assert useful < 0.5 * full


def test_tc_parallel_and_serial_consistent_across_suite():
    ex = SimulatedExecutor(4)
    for name, g in suite_graphs(limit=4):
        want = triangle_count(g)
        got = triangle_count(g, algorithm="hash", executor=ex)
        assert got == want, name


def test_ktruss_then_tc_composition():
    """Triangles of the 5-truss == triangles counted on the 5-truss graph:
    two applications composed through the same substrate."""
    g = load_graph("ws-s9-k6")
    truss = ktruss(g, 5, algorithm="msa").subgraph
    t_via_pipeline = triangle_count(truss)
    assert t_via_pipeline == triangle_count(truss, algorithm="inner")


def test_bc_small_batch_runs_on_suite_graph():
    g = load_graph("er-s8-d4")
    res = betweenness_centrality(g, sources=range(8), algorithm="msa")
    assert res.centrality.shape == (g.nrows,)
    assert np.all(res.centrality >= -1e-9)
    assert res.depth >= 1


def test_perfmodel_prediction_is_a_valid_algorithm():
    g = load_graph("er-s9-d8")
    L = triangle_prep(g)
    pred = predicted_best(L, L, Mask.from_matrix(L))
    assert pred in available_algorithms()


def test_profile_workflow_on_real_timings():
    """Mini Fig. 8: time three kernels on three suite graphs and build a
    performance profile — the exact workflow of the figure benches."""
    from repro.bench import time_callable

    times = {}
    for name, g in suite_graphs(limit=3):
        L = triangle_prep(g)
        mask = Mask.from_matrix(L)
        for alg in ("msa", "hash", "inner"):
            t = time_callable(
                lambda a=alg: masked_spgemm(L, L, mask, algorithm=a,
                                            semiring=PLUS_PAIR),
                repeats=1, warmup=1)
            times.setdefault(display_name(alg), {})[name] = t
    prof = performance_profile(times)
    fracs = [prof.fraction_best(s) for s in prof.curves]
    assert max(fracs) > 0
    assert all(0.0 <= f <= 1.0 for f in fracs)


def test_matrix_market_to_application_roundtrip(tmp_path):
    """Persist a suite graph to .mtx, reload, and get identical results —
    the workflow a user with real SuiteSparse files would follow."""
    from repro import read_matrix_market, write_matrix_market

    g = load_graph("grid-24")
    path = tmp_path / "g.mtx"
    write_matrix_market(g, path)
    g2 = read_matrix_market(path)
    assert triangle_count(g2) == triangle_count(g)
