"""Markov clustering tests on graphs with known community structure."""

import numpy as np
import pytest

from repro.algorithms.mcl import MCLResult, markov_clustering
from repro.graphs import erdos_renyi
from repro.graphs.prep import to_undirected_simple
from repro.sparse import COOMatrix, CSRMatrix, csr_from_dense


def planted_blocks(rng, nblocks=3, size=12, p_in=0.8, bridges=1):
    """Dense blocks joined by a few weak bridge edges."""
    n = nblocks * size
    rows, cols = [], []
    for b in range(nblocks):
        lo = b * size
        for i in range(lo, lo + size):
            for j in range(i + 1, lo + size):
                if rng.random() < p_in:
                    rows += [i, j]
                    cols += [j, i]
    for b in range(nblocks - 1):
        for _ in range(bridges):
            u = int(rng.integers(b * size, (b + 1) * size))
            v = int(rng.integers((b + 1) * size, (b + 2) * size))
            rows += [u, v]
            cols += [v, u]
    return COOMatrix(np.array(rows), np.array(cols), np.ones(len(rows)),
                     (n, n)).to_csr().pattern(), nblocks, size


def test_recovers_planted_blocks(rng):
    g, nblocks, size = planted_blocks(rng)
    res = markov_clustering(g)
    assert res.n_clusters == nblocks
    # every block must be label-pure
    for b in range(nblocks):
        block_labels = res.labels[b * size:(b + 1) * size]
        assert len(set(block_labels.tolist())) == 1


def test_disconnected_cliques():
    two = np.zeros((8, 8))
    for base in (0, 4):
        for i in range(base, base + 4):
            for j in range(base, base + 4):
                if i != j:
                    two[i, j] = 1
    res = markov_clustering(csr_from_dense(two))
    assert res.n_clusters == 2
    assert len(set(res.labels[:4].tolist())) == 1
    assert len(set(res.labels[4:].tolist())) == 1


def test_single_clique_is_one_cluster():
    k6 = csr_from_dense(1.0 - np.eye(6))
    res = markov_clustering(k6)
    assert res.n_clusters == 1


def test_higher_inflation_not_coarser(rng):
    g, _, _ = planted_blocks(rng, nblocks=2, size=10, p_in=0.6)
    fine = markov_clustering(g, inflation=4.0)
    coarse = markov_clustering(g, inflation=1.6)
    assert fine.n_clusters >= coarse.n_clusters


def test_parameter_validation(rng):
    g = to_undirected_simple(erdos_renyi(10, 2, rng=rng, symmetrize=True))
    with pytest.raises(ValueError):
        markov_clustering(g, expansion=1)
    with pytest.raises(ValueError):
        markov_clustering(g, inflation=1.0)


def test_empty_graph():
    res = markov_clustering(CSRMatrix.empty((0, 0)))
    assert res.n_clusters == 0
    assert res.labels.size == 0


def test_isolated_vertices_get_own_clusters():
    # 3 isolated vertices + one edge pair
    m = np.zeros((5, 5))
    m[3, 4] = m[4, 3] = 1
    res = markov_clustering(csr_from_dense(m))
    assert res.n_clusters == 4  # {0},{1},{2},{3,4}
    assert res.labels[3] == res.labels[4]


def test_telemetry(rng):
    g, _, _ = planted_blocks(rng, nblocks=2, size=8)
    res = markov_clustering(g)
    assert isinstance(res, MCLResult)
    assert res.iterations >= 1
    assert len(res.nnz_history) == res.iterations
    assert all(x > 0 for x in res.nnz_history)
