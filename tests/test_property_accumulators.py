"""Model-based property tests for the accumulator state machines.

A python-dict "model accumulator" defines the correct semantics; random
operation sequences (hypothesis-generated) are replayed against both model
and implementation, and the observable outputs (remove results) must match.
This pins the NOTALLOWED/ALLOWED/SET automata of Figs. 3 and 5 far more
thoroughly than example-based tests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accumulators import (
    HashAccumulator,
    MCAAccumulator,
    MSAAccumulator,
    MSAComplementAccumulator,
)

NCOLS = 16


class ModelMasked:
    """Dict-based specification of the masked accumulator semantics."""

    def __init__(self):
        self.allowed: set[int] = set()
        self.values: dict[int, float] = {}

    def set_allowed(self, k):
        self.allowed.add(k)

    def insert(self, k, v):
        if k in self.allowed:
            self.values[k] = self.values.get(k, 0.0) + v

    def remove(self, k):
        self.allowed.discard(k)
        return self.values.pop(k, None)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("allow"), st.integers(0, NCOLS - 1)),
        st.tuples(st.just("insert"), st.integers(0, NCOLS - 1),
                  st.integers(-3, 3)),
        st.tuples(st.just("remove"), st.integers(0, NCOLS - 1)),
    ),
    max_size=60,
)


def replay(acc, model, ops):
    """Replay an op sequence; remove() outputs must match the model's.

    Only keys currently allowed may be inserted in the implementation-
    agnostic way (hash accumulators cannot allow more than their capacity,
    so 'allow' ops beyond capacity are filtered by the caller)."""
    for op in ops:
        if op[0] == "allow":
            acc.set_allowed(op[1])
            model.set_allowed(op[1])
        elif op[0] == "insert":
            acc.insert(op[1], float(op[2]))
            model.insert(op[1], float(op[2]))
        else:
            got = acc.remove(op[1])
            want = model.remove(op[1])
            assert (got is None) == (want is None), op
            if got is not None:
                assert np.isclose(got, want), op


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_msa_matches_model(ops):
    replay(MSAAccumulator(NCOLS), ModelMasked(), ops)


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_hash_matches_model(ops):
    # capacity for all possible keys so 'allow' never overflows
    replay(HashAccumulator(NCOLS), ModelMasked(), ops)


@given(st.lists(st.one_of(
    st.tuples(st.just("insert"), st.integers(0, NCOLS - 1), st.integers(-3, 3)),
    st.tuples(st.just("remove"), st.integers(0, NCOLS - 1)),
), max_size=60))
@settings(max_examples=80, deadline=None)
def test_mca_matches_model(ops):
    """MCA: every rank implicitly allowed, remove resets to ALLOWED (so a
    key can be re-accumulated, unlike MSA where remove de-allows)."""
    acc = MCAAccumulator(NCOLS)
    values: dict[int, float] = {}
    for op in ops:
        if op[0] == "insert":
            values[op[1]] = values.get(op[1], 0.0) + float(op[2])
            acc.insert(op[1], float(op[2]))
        else:
            want = values.pop(op[1], None)
            got = acc.remove(op[1])
            assert (got is None) == (want is None)
            if got is not None:
                assert np.isclose(got, want)


@given(st.lists(st.one_of(
    st.tuples(st.just("ban"), st.integers(0, NCOLS - 1)),
    st.tuples(st.just("insert"), st.integers(0, NCOLS - 1), st.integers(-3, 3)),
), max_size=60))
@settings(max_examples=80, deadline=None)
def test_msa_complement_matches_model(ops):
    acc = MSAComplementAccumulator(NCOLS)
    banned: set[int] = set()
    values: dict[int, float] = {}
    for op in ops:
        if op[0] == "ban":
            # paper semantics: banning only transitions ALLOWED keys; a key
            # already inserted (SET) stays collectable
            if op[1] not in values:
                banned.add(op[1])
            acc.set_not_allowed(op[1])
        else:
            if op[1] not in banned:
                values[op[1]] = values.get(op[1], 0.0) + float(op[2])
            acc.insert(op[1], float(op[2]))
    keys, vals = acc.drain(banned)
    want = sorted(values.items())
    assert keys == [k for k, _ in want]
    assert np.allclose(vals, [v for _, v in want])


@given(st.lists(st.tuples(st.integers(0, 2 ** 20), st.integers(-3, 3)),
                max_size=50))
@settings(max_examples=60, deadline=None)
def test_hash_huge_key_space(pairs):
    """Key magnitudes far beyond capacity stress hashing & probing."""
    distinct = {k for k, _ in pairs}
    acc = HashAccumulator(max(len(distinct), 1))
    model: dict[int, float] = {}
    for k, v in pairs:
        acc.set_allowed(k)
        acc.insert(k, float(v))
        model[k] = model.get(k, 0.0) + float(v)
    for k in sorted(distinct):
        assert np.isclose(acc.remove(k), model[k])
