"""Docs integrity: internal markdown links must resolve (same check CI runs
via ``tools/check_docs_links.py``), and the documented entry points must
exist where the docs say they do."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_docs_links  # noqa: E402


def test_required_docs_exist():
    for name in ("docs/ARCHITECTURE.md", "docs/BENCHMARKS.md", "README.md"):
        assert (REPO / name).exists(), name


def test_readme_links_the_docs():
    readme = (REPO / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/BENCHMARKS.md" in readme


def test_internal_links_resolve():
    problems = [p for f in check_docs_links.doc_files()
                for p in check_docs_links.check_file(f)]
    assert not problems, "\n".join(problems)


def test_checker_cli_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs_links.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_catches_broken_link(tmp_path, monkeypatch):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](nope/absent.md) and [anchor](#not-there)")
    problems = check_docs_links.check_file(bad)
    assert len(problems) == 2
