"""Shared fixtures and oracles for the test suite.

The central oracle is dense numpy arithmetic: every masked product is
checked against ``(A_dense @ B_dense) * mask_pattern`` (suitably generalized
per semiring). scipy and networkx serve as secondary oracles for formats and
graph algorithms respectively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mask import Mask
from repro.semiring import MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.sparse import csr_random
from repro.sparse.csr import CSRMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(20220402)  # PPoPP'22 dates, why not


def make_triple(rng, m=30, k=25, n=35, da=0.12, db=0.12, dm=0.2,
                values="randint"):
    """Random (A, B, M) triple with compatible shapes."""
    A = csr_random(m, k, density=da, rng=rng, values=values)
    B = csr_random(k, n, density=db, rng=rng, values=values)
    M = csr_random(m, n, density=dm, rng=rng)
    return A, B, M


@pytest.fixture
def triple(rng):
    return make_triple(rng)


def _stored_pattern(m: CSRMatrix) -> np.ndarray:
    """Dense bool array of *stored* coordinates (explicit zeros included —
    GraphBLAS structural semantics, which the kernels follow)."""
    pat = np.zeros(m.shape, dtype=bool)
    rows = np.repeat(np.arange(m.shape[0]), np.diff(m.indptr))
    pat[rows, m.indices] = True
    return pat


def dense_masked_product(A: CSRMatrix, B: CSRMatrix, M: CSRMatrix,
                         semiring=PLUS_TIMES, complemented=False) -> np.ndarray:
    """Dense oracle for C = M ⊙ (A ⊕.⊗ B). Returns a dense array where
    absent entries are the additive identity."""
    Ad, Bd = A.to_dense(), B.to_dense()
    Ap, Bp = _stored_pattern(A), _stored_pattern(B)
    m, n = A.shape[0], B.shape[1]
    ident = semiring.identity
    out = np.full((m, n), ident)
    exists = np.zeros((m, n), dtype=bool)
    for t in range(A.shape[1]):
        arow = Ap[:, t]
        bcol = Bp[t, :]
        pair = np.outer(arow, bcol)
        if not pair.any():
            continue
        prod = semiring.mul(
            np.broadcast_to(Ad[:, t][:, None], (m, n)),
            np.broadcast_to(Bd[t, :][None, :], (m, n)),
        )
        upd = pair & ~exists
        out[upd] = prod[upd]
        acc = pair & exists
        out[acc] = semiring.add.ufunc(out[acc], prod[acc])
        exists |= pair
    mask_pat = _stored_pattern(M) if M is not None else np.ones((m, n), bool)
    # note: mask pattern uses *stored* entries; explicit zeros in M count.
    if complemented:
        mask_pat = ~mask_pat
    out[~mask_pat] = ident
    exists &= mask_pat
    return out, exists


def stored_dense(C: CSRMatrix, identity: float) -> tuple[np.ndarray, np.ndarray]:
    """(values, presence) dense rendering of a sparse result."""
    m, n = C.shape
    vals = np.full((m, n), identity)
    pres = np.zeros((m, n), dtype=bool)
    rows = np.repeat(np.arange(m), np.diff(C.indptr))
    vals[rows, C.indices] = C.data
    pres[rows, C.indices] = True
    return vals, pres


def assert_masked_product_correct(C: CSRMatrix, A, B, M, semiring=PLUS_TIMES,
                                  complemented=False):
    """Full structural + numeric check against the dense oracle."""
    want_vals, want_pres = dense_masked_product(A, B, M, semiring, complemented)
    got_vals, got_pres = stored_dense(C, semiring.identity)
    assert np.array_equal(got_pres, want_pres), "output pattern mismatch"
    assert np.allclose(got_vals[got_pres], want_vals[want_pres])


ALL_SEMIRINGS = [PLUS_TIMES, PLUS_PAIR, MIN_PLUS]
PLAIN_ALGOS = ["msa", "esc", "hash", "mca", "heap", "heapdot", "inner"]
COMPLEMENT_ALGOS = ["msa", "esc", "hash", "heap", "heapdot"]


# ---------------------------------------------------------------------- #
# differential oracle for the delta subsystem (repro.delta)
# ---------------------------------------------------------------------- #
def rebuild_from_scratch(m: CSRMatrix) -> CSRMatrix:
    """Independent reconstruction of ``m``: a COO round trip through fresh
    arrays, re-validated on construction. Shares nothing with ``m`` — the
    cold engine in :func:`oracle_pair` must not be able to inherit spliced
    state through aliased buffers."""
    from repro.sparse.coo import COOMatrix

    rows = np.repeat(np.arange(m.shape[0]), np.diff(m.indptr))
    return COOMatrix(rows.copy(), m.indices.copy(), m.data.copy(),
                     m.shape).to_csr()


def assert_bit_identical(got: CSRMatrix, want: CSRMatrix, context=""):
    """Exact equality of the CSR triplet arrays — no tolerance. The delta
    machinery's contract is *bit*-identity with a cold rebuild, not
    closeness."""
    where = f" [{context}]" if context else ""
    assert got.shape == want.shape, f"shape mismatch{where}"
    assert np.array_equal(got.indptr, want.indptr), f"indptr differ{where}"
    assert np.array_equal(got.indices, want.indices), f"indices differ{where}"
    assert np.array_equal(got.data, want.data), f"data differ{where}"


def oracle_pair(engine, request):
    """Differential oracle for incremental serving.

    Submits ``request`` against ``engine`` — whose stored operands have
    typically evolved through :meth:`Engine.apply_delta` (spliced plans,
    patched results, carried fingerprints) — and against a *fresh cold
    engine* whose operands are rebuilt from scratch from the live store's
    current contents (so every plan is built cold and every result computed
    from nothing). Returns ``(live, cold)`` responses; callers assert the
    pair bit-identical, which proves the whole incremental path (dirty-row
    computation, plan splicing, result patching, fingerprint carrying)
    equivalent to recomputation.
    """
    from repro.service import Engine

    live = engine.submit(request)
    cold_engine = Engine()
    keys = {request.a, request.b}
    if request.mask is not None:
        keys.add(request.mask)
    for key in keys:
        value = engine.entry(key).value
        if isinstance(value, Mask):
            cold_engine.register(key, Mask.from_matrix(
                rebuild_from_scratch(value.to_matrix())))
        else:
            cold_engine.register(key, rebuild_from_scratch(value))
    cold = cold_engine.submit(request)
    return live, cold
