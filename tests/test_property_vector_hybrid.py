"""Property-based tests for the vector API and the hybrid kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Mask, SparseVector, masked_spgemm, masked_spgevm
from repro.sparse import COOMatrix
from repro.sparse.dcsr import DCSRMatrix


@st.composite
def vectors(draw, n=None, max_n=20):
    if n is None:
        n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n))
    idx = sorted(draw(st.sets(st.integers(0, n - 1), min_size=nnz,
                              max_size=nnz)))
    vals = [float(v) for v in draw(
        st.lists(st.integers(-4, 4), min_size=len(idx), max_size=len(idx)))]
    return SparseVector(np.array(idx, dtype=np.int64), np.array(vals), n)


@st.composite
def csr_mats(draw, nr=None, nc=None, max_dim=15, max_nnz=40):
    nr = nr if nr is not None else draw(st.integers(1, max_dim))
    nc = nc if nc is not None else draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, nr - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, nc - 1), min_size=nnz, max_size=nnz))
    vals = [float(v) for v in draw(
        st.lists(st.integers(-4, 4), min_size=nnz, max_size=nnz))]
    return COOMatrix(np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64),
                     np.array(vals), (nr, nc)).to_csr()


@st.composite
def spgevm_problem(draw):
    k = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    B = draw(csr_mats(nr=k, nc=n))
    u = draw(vectors(n=k))
    m = draw(vectors(n=n))
    return u, B, m


@given(spgevm_problem())
@settings(max_examples=50, deadline=None)
def test_spgevm_is_one_matrix_row(problem):
    """masked_spgevm(u, B, m) must equal row 0 of the equivalent 1-row
    masked_spgemm, for every algorithm the dispatcher would pick."""
    u, B, m = problem
    v = masked_spgevm(u, B, m, algorithm="msa")
    C = masked_spgemm(u.as_row_matrix(), B,
                      Mask(np.array([0, m.nnz]), m.indices, (1, B.ncols)),
                      algorithm="msa")
    assert v.equals(SparseVector.from_row_matrix(C))


@given(spgevm_problem(), st.sampled_from(["msa", "hash", "mca", "heap",
                                          "inner", "hybrid"]))
@settings(max_examples=50, deadline=None)
def test_spgevm_algorithms_agree(problem, alg):
    u, B, m = problem
    base = masked_spgevm(u, B, m, algorithm="msa")
    got = masked_spgevm(u, B, m, algorithm=alg)
    assert got.equals(base)


@given(spgevm_problem())
@settings(max_examples=40, deadline=None)
def test_spgevm_dense_oracle(problem):
    u, B, m = problem
    v = masked_spgevm(u, B, m, algorithm="hybrid")
    mask_pat = np.zeros(B.ncols, dtype=bool)
    mask_pat[m.indices] = True
    # oracle: dense product restricted to STORED u entries (explicit zeros
    # count) and the mask pattern
    want = np.zeros(B.ncols)
    exists = np.zeros(B.ncols, dtype=bool)
    ud = u.to_dense()
    for k in u.indices:
        lo, hi = B.indptr[k], B.indptr[k + 1]
        js = B.indices[lo:hi]
        want[js] += ud[k] * B.data[lo:hi]
        exists[js] = True
    exists &= mask_pat
    got = np.zeros(B.ncols)
    got[v.indices] = v.data
    got_exists = np.zeros(B.ncols, dtype=bool)
    got_exists[v.indices] = True
    assert np.array_equal(got_exists, exists)
    assert np.allclose(got[exists], want[exists])


@given(csr_mats())
@settings(max_examples=50, deadline=None)
def test_dcsr_roundtrip_property(m):
    d = DCSRMatrix.from_csr(m)
    assert d.to_csr().equals(m)
    assert d.nzr == int((m.row_nnz() > 0).sum())
    # row access agrees everywhere, including empty rows
    for i in range(m.nrows):
        cm, vm = m.row(i)
        cd, vd = d.row(i)
        assert np.array_equal(cm, cd) and np.array_equal(vm, vd)


@given(vectors())
@settings(max_examples=50, deadline=None)
def test_vector_dense_roundtrip(v):
    assert SparseVector.from_dense(v.to_dense()).to_dense().tolist() == \
        v.to_dense().tolist()


@given(st.integers(1, 12), st.data())
@settings(max_examples=40, deadline=None)
def test_hybrid_equals_fixed_on_random(n, data):
    A = data.draw(csr_mats(nr=n, nc=n))
    B = data.draw(csr_mats(nr=n, nc=n))
    M = data.draw(csr_mats(nr=n, nc=n))
    mask = Mask.from_matrix(M)
    assert masked_spgemm(A, B, mask, algorithm="hybrid").equals(
        masked_spgemm(A, B, mask, algorithm="msa"))
