"""Betweenness centrality vs the networkx oracle (directed and undirected,
full and batched sources, across complement-capable kernels)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import betweenness_centrality
from repro.errors import MaskError
from repro.graphs import erdos_renyi, rmat
from repro.graphs.prep import to_undirected_simple
from repro.sparse import csr_from_dense
from repro.sparse.convert import to_scipy


def nx_bc(g, directed):
    G = nx.from_scipy_sparse_array(
        to_scipy(g), create_using=nx.DiGraph if directed else nx.Graph)
    d = nx.betweenness_centrality(G, normalized=False)
    return np.array([d[i] for i in range(g.nrows)])


@pytest.mark.parametrize("alg", ["msa", "hash", "heap", "heapdot"])
def test_directed_all_sources(alg):
    g = erdos_renyi(50, 3, rng=21)
    res = betweenness_centrality(g, algorithm=alg)
    assert np.allclose(res.centrality, nx_bc(g, directed=True), atol=1e-8)


def test_undirected_halves_scores():
    g = to_undirected_simple(erdos_renyi(40, 3, rng=22, symmetrize=True))
    res = betweenness_centrality(g)
    assert np.allclose(res.centrality, nx_bc(g, directed=False), atol=1e-8)


def test_rmat_graph():
    g = to_undirected_simple(rmat(6, 6, rng=23))
    res = betweenness_centrality(g, algorithm="hash")
    assert np.allclose(res.centrality, nx_bc(g, directed=False), atol=1e-8)


def test_path_graph_known_values():
    # path a-b-c-d: unnormalized undirected BC = [0, 2, 2, 0]
    p = np.zeros((4, 4))
    for i in range(3):
        p[i, i + 1] = p[i + 1, i] = 1
    res = betweenness_centrality(csr_from_dense(p))
    assert np.allclose(res.centrality, [0, 2, 2, 0])


def test_star_graph_center_dominates():
    n = 7
    star = np.zeros((n, n))
    star[0, 1:] = star[1:, 0] = 1
    res = betweenness_centrality(csr_from_dense(star))
    want = (n - 1) * (n - 2) / 2  # center lies on every leaf pair
    assert np.isclose(res.centrality[0], want)
    assert np.allclose(res.centrality[1:], 0)


def test_batched_sources_sum_to_full():
    g = erdos_renyi(36, 3, rng=24)
    full = betweenness_centrality(g).centrality
    part1 = betweenness_centrality(g, sources=range(18)).centrality
    part2 = betweenness_centrality(g, sources=range(18, 36)).centrality
    assert np.allclose(part1 + part2, full, atol=1e-8)


def test_batch_telemetry():
    g = to_undirected_simple(erdos_renyi(64, 3, rng=25, symmetrize=True))
    res = betweenness_centrality(g, sources=[0, 1, 2, 3])
    assert res.batch_size == 4
    assert res.depth == len(res.frontier_nnz)
    assert all(f > 0 for f in res.frontier_nnz)


def test_mca_rejected():
    g = erdos_renyi(20, 2, rng=26)
    with pytest.raises(MaskError):
        betweenness_centrality(g, algorithm="mca")


def test_empty_sources_and_graph():
    from repro.sparse import CSRMatrix

    g = erdos_renyi(10, 2, rng=27)
    res = betweenness_centrality(g, sources=[])
    assert np.allclose(res.centrality, 0)
    res = betweenness_centrality(CSRMatrix.empty((5, 5)))
    assert np.allclose(res.centrality, 0)


def test_disconnected_components():
    # two disjoint paths; scores must not leak across components
    p = np.zeros((6, 6))
    for i in (0, 1):
        p[i, i + 1] = p[i + 1, i] = 1
    for i in (3, 4):
        p[i, i + 1] = p[i + 1, i] = 1
    res = betweenness_centrality(csr_from_dense(p))
    assert np.allclose(res.centrality, [0, 1, 0, 0, 1, 0])
