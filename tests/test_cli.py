"""CLI (`python -m repro`) tests — in-process via main(argv)."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.sparse import csr_random, read_matrix_market, write_matrix_market


def run(argv, capsys):
    rc = main(argv)
    out = capsys.readouterr().out
    return rc, out


def test_info(capsys):
    rc, out = run(["info"], capsys)
    assert rc == 0
    assert "MSA-1P" in out and "Hybrid-1P" in out
    assert "plus_pair" in out


def test_suite_listing(capsys):
    rc, out = run(["suite"], capsys)
    assert rc == 0
    assert "rmat-s8-e4" in out and "grid-24" in out


def test_tc_on_generated(capsys):
    rc, out = run(["tc", "--rmat", "7", "--seed", "3", "-a", "msa"], capsys)
    assert rc == 0
    assert "triangles:" in out


def test_tc_on_mtx_file(tmp_path, capsys):
    rng = np.random.default_rng(0)
    g = csr_random(60, 60, density=0.1, rng=rng)
    p = tmp_path / "g.mtx"
    write_matrix_market(g, p)
    rc, out = run(["tc", str(p)], capsys)
    assert rc == 0
    assert "triangles:" in out


def test_ktruss_with_output(tmp_path, capsys):
    out_path = tmp_path / "truss.mtx"
    rc, out = run(["ktruss", "--rmat", "7", "--k", "4", "-o", str(out_path)],
                  capsys)
    assert rc == 0
    assert out_path.exists()
    truss = read_matrix_market(out_path)
    assert truss.shape == (128, 128)


def test_bc(capsys):
    rc, out = run(["bc", "--er", "80", "--batch", "8", "--top", "2"], capsys)
    assert rc == 0
    assert "betweenness centrality" in out
    assert out.count("vertex") == 2


def test_spgemm_files(tmp_path, capsys):
    rng = np.random.default_rng(1)
    A = csr_random(20, 25, density=0.2, rng=rng)
    B = csr_random(25, 30, density=0.2, rng=rng)
    M = csr_random(20, 30, density=0.3, rng=rng)
    pa, pb, pm = tmp_path / "a.mtx", tmp_path / "b.mtx", tmp_path / "m.mtx"
    po = tmp_path / "c.mtx"
    write_matrix_market(A, pa)
    write_matrix_market(B, pb)
    write_matrix_market(M, pm)
    rc, out = run(["spgemm", str(pa), str(pb), "--mask", str(pm),
                   "-a", "hash", "-o", str(po)], capsys)
    assert rc == 0
    C = read_matrix_market(po)
    from repro import Mask, masked_spgemm

    want = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")
    assert C.allclose_values(want)


def test_missing_input_errors(capsys):
    with pytest.raises(SystemExit):
        main(["tc"])  # no path, no generator


def test_parser_subcommands_exist():
    p = build_parser()
    for cmd in ("tc", "ktruss", "bc", "spgemm", "batch", "serve", "suite",
                "info"):
        assert cmd in p.format_help()


def test_batch_workload(tmp_path, capsys):
    """`python -m repro batch workload.json` on a tiny generated workload."""
    import json

    wl = {
        "matrices": {
            "G": {"generator": "er", "n": 50, "degree": 5, "seed": 0,
                  "prep": "pattern"},
        },
        "requests": [
            {"a": "G", "b": "G", "mask": "G", "algorithm": "msa",
             "semiring": "plus_pair", "phases": 2, "repeat": 3, "tag": "tc"},
        ],
    }
    p = tmp_path / "workload.json"
    p.write_text(json.dumps(wl))
    rc, out = run(["batch", str(p)], capsys)
    assert rc == 0
    # 3 repeats of one pattern: 1 cold miss, 2 warm hits
    assert "2 hits / 1 misses" in out
    assert "warm requests:" in out and "cold requests:" in out
    assert sum(1 for line in out.splitlines()
               if line.strip().startswith("tc")) == 3


def test_serve_smoke(capsys):
    """`python -m repro serve --smoke` — the CI gate: warm serving plus the
    persist/restore restart leg, both asserted by the command itself."""
    rc, out = run(["serve", "--smoke"], capsys)
    assert rc == 0
    assert "smoke:" in out and "PASS" in out and "FAIL" not in out
    assert "smoke restart:" in out
    assert "cache tiers:" in out


def test_serve_smoke_sharded(capsys):
    """`serve --smoke --shards 2` — the sharded CI leg: same warm-serving
    gates plus the shared-memory shutdown-hygiene check. On machines
    without usable shared memory the command degrades to an in-process
    smoke and must still pass (the clean-skip contract the CI leg needs)."""
    from repro.shard import shared_memory_available

    rc, out = run(["serve", "--smoke", "--shards", "2"], capsys)
    assert rc == 0
    assert "smoke:" in out and "PASS" in out and "FAIL" not in out
    if shared_memory_available():
        assert "shards:" in out                # serve-report telemetry line
        assert "smoke shard shutdown:" in out  # segments verifiably unlinked
    else:  # pragma: no cover - degraded runner
        assert "serving in-process instead" in out


def test_serve_workload_with_plan_persistence(tmp_path, capsys):
    """serve twice with --plans: the second process must warm-start (restore
    plans, zero cold plans with the result cache disabled)."""
    import json

    wl = {
        "matrices": {
            "G": {"generator": "er", "n": 60, "degree": 6, "seed": 0,
                  "prep": "pattern"},
        },
        "requests": [
            {"a": "G", "b": "G", "mask": "G", "algorithm": "msa",
             "semiring": "plus_pair", "phases": 2, "repeat": 4, "tag": "tc"},
        ],
    }
    p = tmp_path / "workload.json"
    p.write_text(json.dumps(wl))
    plans = tmp_path / "plans.npz"

    rc, out = run(["serve", str(p), "--plans", str(plans),
                   "--result-cache-mb", "0"], capsys)
    assert rc == 0
    assert "cold start" in out and "persisted 1 plans" in out
    assert "1 cold plans" in out and plans.exists()

    rc, out = run(["serve", str(p), "--plans", str(plans),
                   "--result-cache-mb", "0"], capsys)
    assert rc == 0
    assert "restored 1 plans" in out
    assert "0 cold plans (100% warm)" in out


def test_serve_partial_failure_still_persists_plans(tmp_path, capsys):
    """A failing request must not discard its stream-mates' responses or
    the warm plans: the CLI reports it, persists, and exits nonzero."""
    import json

    wl = {
        "matrices": {
            "G": {"generator": "er", "n": 50, "degree": 5, "seed": 0,
                  "prep": "pattern"},
            "R": {"random": {"m": 40, "k": 40, "density": 0.1, "seed": 1}},
        },
        "requests": [
            {"a": "G", "b": "G", "mask": "G", "phases": 2, "repeat": 3,
             "tag": "ok"},
            {"a": "G", "b": "R", "phases": 2, "tag": "boom"},  # 50x50 · 40x40
        ],
    }
    p = tmp_path / "workload.json"
    p.write_text(json.dumps(wl))
    plans = tmp_path / "plans.npz"
    rc, out = run(["serve", str(p), "--plans", str(plans)], capsys)
    assert rc == 1
    assert "FAILED request 'boom'" in out and "ShapeError" in out
    assert out.count("\n ok") == 3  # the good responses still reported
    assert plans.exists() and "persisted 1 plans" in out


def test_serve_missing_workload_errors(capsys):
    with pytest.raises(SystemExit, match="workload"):
        main(["serve"])
    with pytest.raises(SystemExit, match="not found"):
        main(["serve", "does-not-exist.json"])


def test_batch_workload_threaded(tmp_path, capsys):
    import json

    wl = {
        "matrices": {
            "A": {"random": {"m": 40, "k": 40, "density": 0.1, "seed": 1}},
            "M": {"random": {"m": 40, "k": 40, "density": 0.2, "seed": 2}},
        },
        "requests": [
            {"a": "A", "b": "A", "mask": "M", "phases": 2, "repeat": 4},
        ],
    }
    p = tmp_path / "workload.json"
    p.write_text(json.dumps(wl))
    rc, out = run(["batch", str(p), "--threads", "2"], capsys)
    assert rc == 0
    assert "4 requests" in out
