"""Dispatcher tests: masked_spgemm options, registry, auto-selection,
baselines, plain spgemm."""

import numpy as np
import pytest

from conftest import make_triple
from repro.core import (
    algorithm_info,
    available_algorithms,
    display_name,
    masked_spgemm,
    spgemm,
)
from repro.core.registry import BASELINE_KEYS, auto_select, get_spec, parse_name
from repro.errors import AlgorithmError
from repro.mask import Mask
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.sparse import csr_random


def test_mask_argument_flexibility(rng):
    A, B, M = make_triple(rng)
    want = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")
    # raw CSRMatrix accepted as a plain mask
    got = masked_spgemm(A, B, M, algorithm="msa")
    assert got.equals(want)
    # None = unmasked
    unmasked = masked_spgemm(A, B, None, algorithm="msa")
    assert unmasked.allclose_values(spgemm(A, B))


def test_invalid_phase_count(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(AlgorithmError):
        masked_spgemm(A, B, M, algorithm="msa", phases=3)


def test_invalid_tier(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(AlgorithmError):
        masked_spgemm(A, B, M, algorithm="msa", tier="turbo")


def test_unknown_algorithm(rng):
    A, B, M = make_triple(rng)
    with pytest.raises(AlgorithmError):
        masked_spgemm(A, B, M, algorithm="does-not-exist")


def test_reference_tier_dispatch(rng):
    A, B, M = make_triple(rng)
    v = masked_spgemm(A, B, M, algorithm="hash")
    r = masked_spgemm(A, B, M, algorithm="hash", tier="reference")
    assert v.equals(r)


def test_baselines_match_kernels(rng):
    A, B, M = make_triple(rng)
    want = masked_spgemm(A, B, M, algorithm="msa")
    for base in BASELINE_KEYS:
        got = masked_spgemm(A, B, M, algorithm=base)
        # saxpy baselines keep explicit zeros differently; compare dense
        assert got.allclose_values(want), base


def test_baseline_plus_pair(rng):
    A, B, M = make_triple(rng)
    want = masked_spgemm(A, B, M, algorithm="msa", semiring=PLUS_PAIR)
    got = masked_spgemm(A, B, M, algorithm="saxpy-scipy", semiring=PLUS_PAIR)
    assert got.allclose_values(want)


def test_registry_contents():
    algs = available_algorithms()
    assert set(algs) == {"msa", "esc", "hash", "mca", "heap", "heapdot",
                         "inner", "hybrid"}
    compl = available_algorithms(complemented=True)
    assert "mca" not in compl and "inner" not in compl
    assert "hybrid" in compl and "esc" in compl
    assert "saxpy" in available_algorithms(include_baselines=True)


def test_display_and_parse_names():
    assert display_name("msa", 1) == "MSA-1P"
    assert display_name("heapdot", 2) == "HeapDot-2P"
    assert display_name("saxpy") == "SS:SAXPY*"
    assert parse_name("MSA-2P") == ("msa", 2)
    assert parse_name("hash") == ("hash", 1)
    with pytest.raises(AlgorithmError):
        parse_name("BOGUS-1P")


def test_algorithm_info():
    spec = algorithm_info("mca")
    assert spec.family == "push"
    assert not spec.supports_complement
    assert "mask rank" in spec.description.lower() or "Mask" in spec.description


def test_auto_select_follows_density_heuristic(rng):
    n = 128
    A = csr_random(n, n, density=16 / n, rng=rng)
    B = csr_random(n, n, density=16 / n, rng=rng)
    sparse_mask = Mask.from_matrix(csr_random(n, n, density=1 / n, rng=rng))
    dense_mask = Mask.from_matrix(csr_random(n, n, density=100 / n, rng=rng))
    comparable = Mask.from_matrix(csr_random(n, n, density=16 / n, rng=rng))
    from repro.native import native_available

    # with a compiled backend present, auto routes the accumulator kernels
    # to their bit-identical native variants (strict either way: the tier
    # must engage exactly when the probe passes)
    native = native_available()
    assert auto_select(A, B, sparse_mask) == "inner"
    assert auto_select(A, B, dense_mask) == "heap"
    assert auto_select(A, B, comparable) == (  # small n
        "msa-native" if native else "msa")
    compl = Mask.from_matrix(csr_random(n, n, density=0.1, rng=rng),
                             complemented=True)
    expected_compl = (("msa-native", "hash-native") if native
                      else ("msa", "hash"))
    assert auto_select(A, B, compl) in expected_compl


def test_auto_runs_end_to_end(rng):
    A, B, M = make_triple(rng)
    C = masked_spgemm(A, B, M, algorithm="auto")
    want = masked_spgemm(A, B, M, algorithm="msa")
    assert C.equals(want)


def test_spgemm_matches_scipy(rng):
    from repro.sparse.convert import to_scipy

    A, B, _ = make_triple(rng)
    got = spgemm(A, B)
    want = (to_scipy(A) @ to_scipy(B)).toarray()
    assert np.allclose(got.to_dense(), want)


def test_get_spec_unknown():
    with pytest.raises(AlgorithmError):
        get_spec("nope")
