"""Unit tests for the reference accumulators (paper §5 state machines).

These tests pin the exact automaton behaviour of Figs. 3 and 5, the lazy
thunk contract of the insert procedure, and the open-addressing details of
the hash accumulator.
"""

import numpy as np
import pytest

from repro.accumulators import (
    HashAccumulator,
    HashComplementAccumulator,
    MCAAccumulator,
    MSAAccumulator,
    MSAComplementAccumulator,
    SPAAccumulator,
)
from repro.accumulators.hash_acc import table_capacity
from repro.errors import AccumulatorError
from repro.semiring import MIN_PLUS, PLUS_TIMES


# --------------------------------------------------------------------- #
# MSA
# --------------------------------------------------------------------- #
class TestMSA:
    def test_insert_without_allow_is_discarded(self):
        acc = MSAAccumulator(8)
        acc.insert(3, 5.0)
        assert acc.remove(3) is None

    def test_allow_insert_remove_cycle(self):
        acc = MSAAccumulator(8)
        acc.set_allowed(3)
        acc.insert(3, 5.0)
        acc.insert(3, 2.0)
        assert acc.remove(3) == 7.0
        # removed: state reset to NOTALLOWED, second remove gives None
        assert acc.remove(3) is None

    def test_remove_allowed_but_never_inserted_returns_none(self):
        acc = MSAAccumulator(8)
        acc.set_allowed(2)
        assert acc.remove(2) is None
        # and the mark was cleaned up
        acc.insert(2, 1.0)
        assert acc.remove(2) is None

    def test_thunk_not_evaluated_when_discarded(self):
        acc = MSAAccumulator(4)
        calls = []

        def thunk():
            calls.append(1)
            return 1.0

        acc.insert(1, thunk)          # not allowed -> must not evaluate
        assert calls == []
        acc.set_allowed(1)
        acc.insert(1, thunk)          # allowed -> evaluates
        assert calls == [1]

    def test_reuse_across_rows(self):
        acc = MSAAccumulator(4)
        acc.set_allowed(0)
        acc.insert(0, 1.0)
        assert acc.remove(0) == 1.0
        # second "row": fresh marks
        acc.set_allowed(1)
        acc.insert(1, 3.0)
        acc.insert(0, 9.0)  # no longer allowed
        assert acc.remove(1) == 3.0
        assert acc.remove(0) is None

    def test_key_range_checked(self):
        acc = MSAAccumulator(4)
        with pytest.raises(AccumulatorError):
            acc.set_allowed(4)
        with pytest.raises(AccumulatorError):
            acc.insert(-1, 1.0)

    def test_min_plus_accumulation(self):
        acc = MSAAccumulator(4, semiring=MIN_PLUS)
        acc.set_allowed(0)
        acc.insert(0, 5.0)
        acc.insert(0, 3.0)
        acc.insert(0, 7.0)
        assert acc.remove(0) == 3.0


class TestMSAComplement:
    def test_mask_entries_blocked(self):
        acc = MSAComplementAccumulator(8)
        acc.set_not_allowed(3)
        acc.insert(3, 5.0)
        acc.insert(4, 2.0)
        keys, vals = acc.drain([3])
        assert keys == [4] and vals == [2.0]

    def test_drain_sorted_and_resets(self):
        acc = MSAComplementAccumulator(8)
        for k, v in [(5, 1.0), (1, 2.0), (7, 3.0), (1, 0.5)]:
            acc.insert(k, v)
        keys, vals = acc.drain([])
        assert keys == [1, 5, 7]
        assert vals == [2.5, 1.0, 3.0]
        # after drain the accumulator is clean
        keys2, vals2 = acc.drain([])
        assert keys2 == []

    def test_set_allowed_not_supported(self):
        with pytest.raises(NotImplementedError):
            MSAComplementAccumulator(4).set_allowed(0)


# --------------------------------------------------------------------- #
# Hash
# --------------------------------------------------------------------- #
class TestHash:
    def test_capacity_power_of_two_lf25(self):
        for nkeys, want_min in [(1, 4), (4, 16), (5, 32), (16, 64)]:
            cap = table_capacity(nkeys)
            assert cap >= want_min and (cap & (cap - 1)) == 0
            assert nkeys / cap <= 0.25

    def test_basic_cycle(self):
        acc = HashAccumulator(3)
        for k in (10, 20, 30):
            acc.set_allowed(k)
        acc.insert(20, 1.5)
        acc.insert(20, 2.5)
        acc.insert(99, 100.0)  # not in mask -> dropped
        assert acc.remove(20) == 4.0
        assert acc.remove(10) is None
        assert acc.remove(99) is None

    def test_collision_chains_survive_removal(self):
        # regression: removing a key must not break probe chains (this was a
        # real bug — open addressing cannot punch holes mid-gather)
        acc = HashAccumulator(64)
        keys = list(range(0, 640, 10))
        for k in keys:
            acc.set_allowed(k)
        for k in keys:
            acc.insert(k, float(k))
        got = {k: acc.remove(k) for k in keys}
        assert all(got[k] == float(k) for k in keys)

    def test_overflow_guard(self):
        acc = HashAccumulator(1)  # capacity 4, max 1 distinct allowed key
        acc.set_allowed(7)
        acc.set_allowed(7)  # idempotent re-allow is fine
        with pytest.raises(AccumulatorError):
            acc.set_allowed(8)

    def test_thunk_laziness(self):
        acc = HashAccumulator(1)
        calls = []
        acc.insert(5, lambda: calls.append(1) or 1.0)
        assert calls == []  # dropped without evaluation


class TestHashComplement:
    def test_mask_keys_banned_products_kept(self):
        acc = HashComplementAccumulator([2, 4], products_bound=8)
        acc.insert(2, 10.0)   # banned
        acc.insert(3, 1.0)
        acc.insert(3, 2.0)
        acc.insert(5, 7.0)
        keys, vals = acc.drain()
        assert keys == [3, 5]
        assert vals == [3.0, 7.0]

    def test_remove_consumes(self):
        acc = HashComplementAccumulator([], products_bound=4)
        acc.insert(1, 2.0)
        assert acc.remove(1) == 2.0
        assert acc.remove(1) is None


# --------------------------------------------------------------------- #
# MCA
# --------------------------------------------------------------------- #
class TestMCA:
    def test_two_state_automaton(self):
        acc = MCAAccumulator(3)
        acc.insert(1, 2.0)
        acc.insert(1, 3.0)
        assert acc.remove(1) == 5.0
        assert acc.remove(1) is None  # back to ALLOWED
        acc.insert(1, 4.0)            # reusable
        assert acc.remove(1) == 4.0

    def test_rank_range_enforced(self):
        acc = MCAAccumulator(3)
        with pytest.raises(AccumulatorError):
            acc.insert(3, 1.0)
        with pytest.raises(AccumulatorError):
            acc.remove(-1)

    def test_set_allowed_validates_only(self):
        acc = MCAAccumulator(2)
        acc.set_allowed(1)
        with pytest.raises(AccumulatorError):
            acc.set_allowed(2)

    def test_complement_unsupported_error(self):
        err = MCAAccumulator.complement_unsupported()
        assert "complemented" in str(err)


# --------------------------------------------------------------------- #
# SPA (plain, unmasked)
# --------------------------------------------------------------------- #
class TestSPA:
    def test_accumulate_and_drain_sorted(self):
        acc = SPAAccumulator(10)
        for k, v in [(7, 1.0), (2, 2.0), (7, 3.0)]:
            acc.insert(k, v)
        assert acc.get(7) == 4.0
        assert acc.get(3) is None
        keys, vals = acc.drain()
        assert keys == [2, 7]
        assert vals == [2.0, 4.0]
        # drained clean
        assert acc.get(7) is None
        assert acc.drain() == ([], [])
