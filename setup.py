"""Setup shim: keeps `pip install -e .` working on offline boxes that lack
the `wheel` package (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
