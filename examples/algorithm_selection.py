#!/usr/bin/env python3
"""Choosing the right masked kernel — a working tour of the paper's Fig. 7.

Sweeps mask density against input density on Erdős-Rényi matrices, times
every kernel per cell, and prints the winner grid next to the §4 traffic
model's prediction — the "which algorithm should I use?" guidance the paper
distills, plus the ``algorithm="auto"`` dispatcher that encodes it.

Run:  python examples/algorithm_selection.py
"""

from repro import Mask, masked_spgemm
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.core.registry import auto_select
from repro.graphs import erdos_renyi
from repro.perfmodel import predicted_best

ALGOS = ("inner", "msa", "hash", "mca", "heap", "heapdot")
N = 1 << 10
INPUT_DEGREES = (2, 8, 32)
MASK_DEGREES = (1, 8, 64)


def cell(d_in, d_m, seed=0):
    A = erdos_renyi(N, d_in, rng=seed * 3 + 1)
    B = erdos_renyi(N, d_in, rng=seed * 3 + 2)
    M = erdos_renyi(N, d_m, rng=seed * 3 + 3)
    return A, B, Mask.from_matrix(M)


def main() -> None:
    print(f"=== Which masked kernel wins where?  (ER, n={N}) ===\n")
    rows = []
    for d_in in INPUT_DEGREES:
        for d_m in MASK_DEGREES:
            A, B, mask = cell(d_in, d_m)
            best_alg, best_t = None, float("inf")
            for alg in ALGOS:
                t = time_callable(
                    lambda a=alg: masked_spgemm(A, B, mask, algorithm=a),
                    repeats=1, warmup=1)
                if t < best_t:
                    best_alg, best_t = alg, t
            rows.append([
                d_in, d_m,
                display_name(best_alg).replace("-1P", ""),
                display_name(predicted_best(A, B, mask)).replace("-1P", ""),
                display_name(auto_select(A, B, mask)).replace("-1P", ""),
                best_t * 1e3,
            ])
    print(render_table(
        ["deg(A,B)", "deg(M)", "measured best", "traffic model",
         "auto picks", "best time (ms)"], rows))

    print(
        "\nreading the grid (paper §8.1):\n"
        "  * mask much sparser than inputs  -> pull-based Inner wins\n"
        "  * inputs much sparser than mask  -> Heap/HeapDot win\n"
        "  * comparable densities           -> MSA/Hash win\n"
        "\n`masked_spgemm(..., algorithm='auto')` applies this heuristic —\n"
        "the simplest form of the hybrid dispatch the paper leaves as\n"
        "future work."
    )


if __name__ == "__main__":
    main()
