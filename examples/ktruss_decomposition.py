#!/usr/bin/env python3
"""k-truss decomposition — the paper's second benchmark app (§8.3).

Shows the iterated masked product at the heart of k-truss: the mask is the
*current graph*, which shrinks as unsupported edges are pruned, so the mask
density decays over iterations — the property that makes pull-based Inner
unexpectedly competitive on this benchmark.

Run:  python examples/ktruss_decomposition.py
"""

import time

from repro import ktruss
from repro.core import display_name
from repro.graphs import load_graph, rmat
from repro.graphs.prep import to_undirected_simple


def main() -> None:
    print("=== k-truss decomposition via iterated Masked SpGEMM ===\n")
    g = to_undirected_simple(rmat(10, 12, rng=5))
    print(f"graph: n={g.nrows}, undirected edges={g.nnz // 2}\n")

    # ------------------------------------------------------------------ #
    # the truss hierarchy: each k prunes further; trusses are nested
    # ------------------------------------------------------------------ #
    print("truss hierarchy (algorithm=msa):")
    prev_edges = g.nnz // 2
    for k in range(3, 8):
        res = ktruss(g, k, algorithm="msa")
        edges = res.subgraph.nnz // 2
        assert edges <= prev_edges
        prev_edges = edges
        print(f"  k={k}: {edges:6d} edges survive "
              f"({res.iterations} masked-product iterations)")

    # ------------------------------------------------------------------ #
    # the mask-density decay that favours pull-based Inner (paper §8.3)
    # ------------------------------------------------------------------ #
    res = ktruss(g, 5, algorithm="msa")
    print("\nmask shrinkage across iterations (k=5):")
    for it, (nnz, flops) in enumerate(zip(res.nnz_per_iteration,
                                          res.flops_per_iteration), 1):
        print(f"  iteration {it}: mask nnz = {nnz:7d}, product flops = {flops}")

    # ------------------------------------------------------------------ #
    # algorithm comparison on the whole loop
    # ------------------------------------------------------------------ #
    print("\nwhole-loop timing per masked kernel (k=5):")
    for alg in ("msa", "hash", "mca", "inner"):
        t0 = time.perf_counter()
        res = ktruss(g, 5, algorithm=alg)
        dt = time.perf_counter() - t0
        print(f"  {display_name(alg):9s}: {dt * 1e3:8.2f} ms "
              f"({res.subgraph.nnz // 2} edges kept)")

    # suite graph, for flavour
    sg = load_graph("ws-s10-k4")
    res = ktruss(sg, 4)
    print(f"\nsuite graph ws-s10-k4: 4-truss keeps {res.subgraph.nnz // 2} "
          f"of {sg.nnz // 2} edges")


if __name__ == "__main__":
    main()
