#!/usr/bin/env python3
"""Betweenness centrality and multi-source BFS — the complemented-mask apps.

The forward stage of batch Brandes (paper §8.4) is the motivating use of
*complemented* masks: "extend shortest paths only to vertices not yet
discovered". This example runs the full two-stage algorithm, validates a
hand-checkable case, and shows the same complement pattern in a plain
multi-source BFS.

Run:  python examples/betweenness_and_bfs.py
"""

import numpy as np

from repro import betweenness_centrality, csr_from_dense, multi_source_bfs
from repro.core import display_name
from repro.graphs import load_graph, rmat
from repro.graphs.prep import to_undirected_simple


def main() -> None:
    print("=== Betweenness centrality (batch Brandes on Masked SpGEMM) ===\n")

    # ------------------------------------------------------------------ #
    # a hand-checkable case: a path graph's interior carries all the load
    # ------------------------------------------------------------------ #
    path = np.zeros((5, 5))
    for i in range(4):
        path[i, i + 1] = path[i + 1, i] = 1
    res = betweenness_centrality(csr_from_dense(path))
    print(f"path graph BC: {res.centrality}   (expect [0, 3, 4, 3, 0])")

    # ------------------------------------------------------------------ #
    # batch BC on an R-MAT graph: complement masks in the forward stage,
    # plain masks in the backward stage
    # ------------------------------------------------------------------ #
    g = to_undirected_simple(rmat(9, 8, rng=3))
    rng = np.random.default_rng(0)
    sources = rng.choice(g.nrows, size=64, replace=False)
    for alg in ("msa", "hash"):
        res = betweenness_centrality(g, sources, algorithm=alg)
        top = np.argsort(res.centrality)[::-1][:5]
        print(f"\n{display_name(alg)}: batch of {res.batch_size} sources, "
              f"BFS depth {res.depth}")
        print(f"  top-5 central vertices: {top.tolist()}")
        print(f"  frontier sizes per level: {res.frontier_nnz}")

    # MCA cannot run BC — its accumulator is indexed by mask rank, which the
    # complement does not have (the paper excludes it for the same reason):
    try:
        betweenness_centrality(g, sources[:4], algorithm="mca")
    except Exception as exc:
        print(f"\nMCA on complemented masks correctly refuses: "
              f"{type(exc).__name__}")

    # ------------------------------------------------------------------ #
    # the same ¬visited masking in its simplest form: multi-source BFS
    # ------------------------------------------------------------------ #
    print("\n=== Multi-source BFS (Frontier = ¬Visited ⊙ (Frontier · A)) ===")
    sg = load_graph("grid-24")
    sources = [0, sg.nrows - 1]
    levels = multi_source_bfs(sg, sources)
    for si, s in enumerate(sources):
        reached = int((levels[si] >= 0).sum())
        print(f"  source {s}: reached {reached}/{sg.nrows} vertices, "
              f"eccentricity {levels[si].max()}")

    # ------------------------------------------------------------------ #
    # and where the push/pull classification came from (paper §4): the
    # direction-optimized traversal switches per level by work estimate
    # ------------------------------------------------------------------ #
    from repro.algorithms import direction_optimized_bfs

    print("\n=== Direction-optimized BFS (the §4 push/pull origin story) ===")
    for name, gg in (("skewed R-MAT", g), ("2-D grid", sg)):
        res = direction_optimized_bfs(gg, 0)
        print(f"  {name:13s}: directions per level = {res.directions}")
    print("  (hub graphs flip to pull once the frontier explodes; meshes "
          "stay push until the unvisited set shrinks)")


if __name__ == "__main__":
    main()
