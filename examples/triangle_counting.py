#!/usr/bin/env python3
"""Triangle counting on real-ish graphs — the paper's first benchmark app.

Demonstrates the full TC pipeline (§8.2): symmetrize → sort vertices by
non-increasing degree → take the strictly-lower triangle L → one masked
product ``C = L ⊙ (L·L)`` on the plus_pair semiring → reduce. Compares
algorithms, shows the work the mask saves, and cross-checks the count on
several graph families.

Run:  python examples/triangle_counting.py
"""

import time

from repro import Mask, PLUS_PAIR, masked_spgemm, triangle_count
from repro.bench import masked_flops, spgemm_flops
from repro.core import available_algorithms, display_name
from repro.graphs import load_graph, rmat, watts_strogatz
from repro.graphs.prep import to_undirected_simple, triangle_prep


def count_with_timing(g, algorithm: str):
    L = triangle_prep(g)
    mask = Mask.from_matrix(L)
    t0 = time.perf_counter()
    C = masked_spgemm(L, L, mask, algorithm=algorithm, semiring=PLUS_PAIR)
    dt = time.perf_counter() - t0
    return int(round(C.sum())), dt


def main() -> None:
    print("=== Triangle counting via Masked SpGEMM ===\n")

    # ------------------------------------------------------------------ #
    # a skewed R-MAT graph (Graph500 parameters, like the paper's scaling
    # experiments) and a clustered small-world graph
    # ------------------------------------------------------------------ #
    graphs = {
        "rmat scale 10 (skewed)": to_undirected_simple(rmat(10, 8, rng=1)),
        "watts-strogatz (clustered)": to_undirected_simple(
            watts_strogatz(1 << 10, 6, 0.05, rng=2)),
        "suite graph cl-s10-d12": load_graph("cl-s10-d12"),
    }

    for name, g in graphs.items():
        print(f"--- {name}: n={g.nrows}, undirected edges={g.nnz // 2} ---")
        L = triangle_prep(g)
        total = spgemm_flops(L, L)
        useful = masked_flops(L, L, Mask.from_matrix(L))
        print(f"    flops(L·L) = {total}, inside mask = {useful} "
              f"({100 * useful / max(total, 1):.1f}%)")
        baseline = None
        for alg in available_algorithms():
            tri, dt = count_with_timing(g, alg)
            if baseline is None:
                baseline = tri
            assert tri == baseline, "kernels disagree!"
            print(f"    {display_name(alg):11s}: {tri:7d} triangles "
                  f"in {dt * 1e3:7.2f} ms")
        print()

    # ------------------------------------------------------------------ #
    # the one-call API, with auto algorithm selection
    # ------------------------------------------------------------------ #
    g = graphs["rmat scale 10 (skewed)"]
    print(f"triangle_count(g, algorithm='auto') = "
          f"{triangle_count(g, algorithm='auto')}")


if __name__ == "__main__":
    main()
