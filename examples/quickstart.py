#!/usr/bin/env python3
"""Quickstart: masked sparse matrix-matrix products in five minutes.

Walks through the library's core objects — CSR matrices, masks, semirings —
and the ``masked_spgemm`` entry point with its algorithm/phase knobs,
reproducing the paper's Fig. 1 contrast (plain multiply-then-mask vs
mask-aware multiply) on a small random problem.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Mask,
    PLUS_PAIR,
    available_algorithms,
    csr_random,
    display_name,
    masked_spgemm,
    spgemm,
)
from repro.bench import masked_flops, spgemm_flops


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------ #
    # 1. Build sparse operands. CSRMatrix is the library's primary format
    #    (indptr / indices / data, rows sorted) — same as the paper's.
    # ------------------------------------------------------------------ #
    n = 500
    A = csr_random(n, n, density=0.01, rng=rng)
    B = csr_random(n, n, density=0.01, rng=rng)
    print(f"A: {A}")
    print(f"B: {B}")

    # ------------------------------------------------------------------ #
    # 2. A mask is a *structural* pattern: values are irrelevant. Here we
    #    only care about ~2% of output positions.
    # ------------------------------------------------------------------ #
    M = csr_random(n, n, density=0.02, rng=rng)
    mask = Mask.from_matrix(M)
    print(f"mask: {mask}")

    # ------------------------------------------------------------------ #
    # 3. The headline operation: C = M ⊙ (A·B).
    # ------------------------------------------------------------------ #
    C = masked_spgemm(A, B, mask, algorithm="msa")
    print(f"C = M ⊙ (A·B): {C}")

    # Every algorithm computes the identical matrix; they differ in *how*.
    for alg in available_algorithms():
        C2 = masked_spgemm(A, B, mask, algorithm=alg)
        assert C2.equals(C)
    print(f"all kernels agree: {[display_name(a) for a in available_algorithms()]}")

    # ------------------------------------------------------------------ #
    # 4. Why masking matters (the paper's Fig. 1): the unmasked product
    #    computes far more than the mask keeps.
    # ------------------------------------------------------------------ #
    full = spgemm(A, B)
    total = spgemm_flops(A, B)
    useful = masked_flops(A, B, mask)
    print(f"\nplain product:  nnz={full.nnz}, flops={total}")
    print(f"masked product: nnz={C.nnz}, useful flops={useful} "
          f"({100 * useful / total:.1f}% of total)")

    # The naive route — multiply, then mask — matches numerically but does
    # all the work anyway:
    naive = masked_spgemm(A, B, mask, algorithm="saxpy")
    assert naive.allclose_values(C)
    print("multiply-then-mask (SS:SAXPY-style baseline) agrees numerically")

    # ------------------------------------------------------------------ #
    # 5. Complemented masks: keep entries NOT in the pattern — how graph
    #    traversals express "skip already-visited vertices".
    # ------------------------------------------------------------------ #
    C_rest = masked_spgemm(A, B, mask.complement(), algorithm="msa")
    assert np.allclose(C.to_dense() + C_rest.to_dense(), full.to_dense())
    print(f"\ncomplemented mask: {C_rest.nnz} entries; "
          f"plain + complement == unmasked product ✓")

    # ------------------------------------------------------------------ #
    # 6. Semirings: plus_pair counts pattern intersections — the triangle
    #    counting workhorse.
    # ------------------------------------------------------------------ #
    counts = masked_spgemm(A, B, mask, algorithm="hash", semiring=PLUS_PAIR)
    print(f"plus_pair semiring: C[i,j] = |A(i,:) ∩ B(:,j)|, "
          f"max = {int(counts.data.max(initial=0))}")

    # ------------------------------------------------------------------ #
    # 7. One- vs two-phase (paper §6): identical output, different cost.
    # ------------------------------------------------------------------ #
    C_2p = masked_spgemm(A, B, mask, algorithm="msa", phases=2)
    assert C_2p.equals(C)
    print("two-phase (symbolic + numeric) output identical to one-phase ✓")
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
