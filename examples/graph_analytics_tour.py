#!/usr/bin/env python3
"""Graph-analytics tour: the wider application surface on one dataset.

Composes the library's extended applications — clustering coefficients,
Markov clustering, direction-optimized BFS — on a planted-community graph,
showing how the SpGEMM substrate the paper motivates ("the computational
backbone of many applications", §2) serves a whole analytics session, not
just the three benchmark kernels.

Run:  python examples/graph_analytics_tour.py
"""

import numpy as np

from repro import (
    average_clustering,
    direction_optimized_bfs,
    markov_clustering,
    triangle_count,
)
from repro.sparse import COOMatrix


def planted_communities(nblocks=4, size=24, p_in=0.5, p_out=0.004, seed=9):
    rng = np.random.default_rng(seed)
    n = nblocks * size
    rows, cols = [], []
    for i in range(n):
        for j in range(i + 1, n):
            p = p_in if i // size == j // size else p_out
            if rng.random() < p:
                rows += [i, j]
                cols += [j, i]
    g = COOMatrix(np.array(rows), np.array(cols), np.ones(len(rows)),
                  (n, n)).to_csr().pattern()
    return g, nblocks, size


def main() -> None:
    g, nblocks, size = planted_communities()
    print(f"planted-community graph: {g.nrows} vertices, {g.nnz // 2} edges, "
          f"{nblocks} blocks of {size}\n")

    # ---- global structure via the TC masked product -------------------- #
    tri = triangle_count(g, algorithm="msa")
    cc = average_clustering(g)
    print(f"triangles: {tri},  average clustering coefficient: {cc:.3f}")
    print("(dense blocks -> high clustering, as expected)\n")

    # ---- community recovery via MCL (iterated SpGEMM) ------------------ #
    res = markov_clustering(g, inflation=2.0)
    print(f"Markov clustering: {res.n_clusters} clusters "
          f"in {res.iterations} iterations")
    purity = 0
    for b in range(nblocks):
        block = res.labels[b * size:(b + 1) * size]
        counts = np.bincount(block)
        purity += counts.max()
    print(f"block purity: {purity}/{g.nrows} vertices in their block's "
          f"majority cluster\n")

    # ---- traversal with direction optimization ------------------------- #
    bfs = direction_optimized_bfs(g, 0)
    print(f"direction-optimized BFS from vertex 0: "
          f"eccentricity {bfs.levels.max()}, "
          f"directions per level: {bfs.directions}")
    reached = int((bfs.levels >= 0).sum())
    print(f"reached {reached}/{g.nrows} vertices")


if __name__ == "__main__":
    main()
