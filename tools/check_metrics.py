#!/usr/bin/env python
"""Observability endpoint checker: /metrics must parse, traces must export.

Spins up a real :class:`repro.obs.ObsHTTPServer` next to a small engine,
serves a handful of requests, then validates over actual HTTP that

* ``GET /metrics`` returns strict Prometheus text exposition
  (:func:`repro.obs.parse_exposition` — HELP/TYPE lines, escaped labels,
  monotone cumulative histogram buckets) carrying non-zero engine request
  counters, the expected metric families (``repro_slo_*`` included), and
  well-formed OpenMetrics exemplars on the latency histograms whose trace
  ids resolve;
* ``GET /slo`` reports burn rates for the configured objective;
* ``GET /traces`` lists every retained request with duration/tier/outcome;
* ``GET /trace/<id>.json`` returns Chrome-trace JSON whose complete events
  cover the serving span taxonomy (symbolic.cold → numeric → cache on the
  cold request), loadable by Perfetto / chrome://tracing as-is;
* unknown routes 404.

Run from anywhere: ``PYTHONPATH=src python tools/check_metrics.py``. Exits
nonzero and prints one line per violated invariant. Wired into CI next to
``repro serve --smoke`` (which additionally asserts the same endpoints
in-process via ``--metrics-port 0``).
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: metric families the engine must expose after serving traffic
REQUIRED_FAMILIES = (
    "repro_engine_requests_total",
    "repro_cache_requests_total",
    "repro_phase_seconds",
    "repro_request_seconds",
    "repro_chunk_seconds",
    # native tier (PR 9): the compile gauge renders from engine init (0.0
    # when the tier is unavailable); the per-tier kernel counter populates
    # on the first executed numeric pass either way
    "repro_native_compile_seconds",
    "repro_kernel_requests_total",
    # resilience: the breaker gauge renders from engine init; the labeled
    # retry/degrade/deadline counters only appear after their first
    # increment, so the chaos smoke gate asserts those instead
    "repro_breaker_state",
    # SLO layer (PR 10): all five families render from evaluator init
    "repro_slo_target",
    "repro_slo_burn_rate",
    "repro_slo_error_budget_remaining",
    "repro_slo_alerting",
    "repro_slo_alerts_total",
)

#: spans a cold two-phase request must record
REQUIRED_SPANS = {"symbolic.cold", "numeric", "cache.lookup"}


def _fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


def check() -> list[str]:
    import numpy as np

    from repro.obs import ObsHTTPServer, parse_exposition, parse_slo
    from repro.service import Engine, Request
    from repro.sparse import csr_random

    problems: list[str] = []
    rng = np.random.default_rng(7)
    engine = Engine(result_cache_bytes=1 << 20,
                    slos=[parse_slo("p99=50ms:0.99")])
    engine.register("A", csr_random(200, 200, density=0.05, rng=rng))
    engine.register("M", csr_random(200, 200, density=0.05, rng=rng))
    responses = [engine.submit(Request(a="A", b="A", mask="M", phases=2))
                 for _ in range(3)]

    with ObsHTTPServer(engine.metrics, engine.tracer, slo=engine.slo,
                       flight=engine.flight) as obs:
        # -- /metrics: strict exposition + expected families ------------- #
        body = _fetch(f"{obs.url}/metrics").decode()
        try:
            families = parse_exposition(body)
        except ValueError as e:
            return [f"/metrics does not parse: {e}"]
        for name in REQUIRED_FAMILIES:
            if not any(k == name or k.startswith(name + "_")
                       for k in families):
                problems.append(f"/metrics missing family {name}")
        served = sum(families.get("repro_engine_requests_total",
                                  {}).values())
        if served < len(responses):
            problems.append(
                f"repro_engine_requests_total {served:.0f} < "
                f"{len(responses)} submitted requests")

        # -- exemplars: well-formed OpenMetrics syntax, resolvable ids --- #
        try:
            _, exemplars = parse_exposition(body, return_exemplars=True)
        except ValueError as e:
            problems.append(f"exemplar syntax does not parse: {e}")
            exemplars = {}
        req_ex = exemplars.get("repro_request_seconds_bucket", {})
        if not req_ex:
            problems.append(
                "repro_request_seconds buckets carry no exemplars despite "
                "tracing being on")
        for expairs, exvalue, _exts in req_ex.values():
            trace_id = dict(expairs).get("trace_id", "")
            if engine.tracer.get(trace_id) is None:
                problems.append(f"exemplar trace {trace_id!r} not retained")
            if not exvalue > 0:
                problems.append(
                    f"exemplar on {trace_id!r} has value {exvalue}")

        # -- /slo reports burn rates for the configured objective -------- #
        slos = json.loads(_fetch(f"{obs.url}/slo"))["slos"]
        if [s["slo"] for s in slos] != ["p99"]:
            problems.append(f"/slo objectives {[s['slo'] for s in slos]} "
                            f"!= ['p99']")
        for s in slos:
            for window in ("fast", "slow"):
                if window not in s["windows"]:
                    problems.append(f"/slo {s['slo']} lacks {window} window")

        # -- /traces lists every retained request with its summary ------- #
        entries = json.loads(_fetch(f"{obs.url}/traces"))["traces"]
        ids = [e.get("id") for e in entries]
        want_ids = [r.stats.trace_id for r in responses]
        missing = [i for i in want_ids if i not in ids]
        if missing:
            problems.append(f"/traces missing ids {missing}")
        for e in entries:
            lacking = {"id", "seconds", "start_offset", "spans",
                       "tier", "outcome"} - set(e)
            if lacking:
                problems.append(
                    f"/traces entry {e.get('id')} lacks {sorted(lacking)}")

        # -- /trace/<id>.json: Chrome JSON with the span taxonomy -------- #
        doc = json.loads(_fetch(f"{obs.url}/trace/{want_ids[0]}.json"))
        events = doc.get("traceEvents", [])
        names = {e.get("name") for e in events if e.get("ph") == "X"}
        if not REQUIRED_SPANS <= names:
            problems.append(
                f"cold trace spans {sorted(names)} lack "
                f"{sorted(REQUIRED_SPANS - names)}")
        bad = [e for e in events if e.get("ph") == "X"
               and (e.get("ts", -1) < 0 or e.get("dur", -1) < 0)]
        if bad:
            problems.append(f"{len(bad)} trace events with negative ts/dur")

        # -- unknown routes 404 ------------------------------------------ #
        try:
            _fetch(f"{obs.url}/trace/absent.json")
            problems.append("/trace/absent.json did not 404")
        except urllib.error.HTTPError as e:
            if e.code != 404:
                problems.append(f"/trace/absent.json returned {e.code}")
    engine.close()
    return problems


def main() -> int:
    problems = check()
    for p in problems:
        print(p)
    print("checked /metrics + /traces + /trace/<id>.json: "
          + ("OK" if not problems else f"{len(problems)} problems"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
