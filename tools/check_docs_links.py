#!/usr/bin/env python
"""Docs link checker: every internal markdown link must resolve.

Scans the repo's markdown documentation (``docs/*.md``, ``README.md``,
``ROADMAP.md``) for ``[text](target)`` links and verifies that every
*internal* target — a relative path, optionally with a ``#fragment`` — names
an existing file, and that pure ``#fragment`` links match a heading in the
same document. External links (``http(s)://``, ``mailto:``) are skipped:
CI must not depend on the network.

Run from anywhere: ``python tools/check_docs_links.py``. Exits nonzero and
prints one line per broken link. Wired into CI next to ``repro serve
--smoke``; ``tests/test_docs.py`` runs the same check in tier-1.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown links, skipping images (the docs have none, but be safe)
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: fenced code blocks — links inside them are examples, not navigation
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _anchor(heading: str) -> str:
    """GitHub-style anchor: lowercase, punctuation dropped, spaces → dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text)


def doc_files() -> list[Path]:
    docs = sorted((REPO / "docs").glob("*.md")) if (REPO / "docs").is_dir() else []
    return [p for p in [REPO / "README.md", REPO / "ROADMAP.md", *docs]
            if p.exists()]


def check_file(path: Path) -> list[str]:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    problems = []
    rel = path.relative_to(REPO) if path.is_relative_to(REPO) else path
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        if not file_part:  # same-document anchor
            anchors = {_anchor(h) for h in _HEADING.findall(text)}
            if fragment and _anchor(fragment) not in anchors:
                problems.append(f"{rel}: broken anchor #{fragment}")
            continue
        dest = (path.parent / file_part).resolve()
        if not dest.exists():
            problems.append(f"{rel}: broken link {target}")
        elif fragment and dest.suffix == ".md":
            dest_text = dest.read_text(encoding="utf-8")
            anchors = {_anchor(h) for h in _HEADING.findall(dest_text)}
            if _anchor(fragment) not in anchors:
                problems.append(f"{rel}: broken anchor {target}")
    return problems


def main() -> int:
    files = doc_files()
    problems = [p for f in files for p in check_file(f)]
    for p in problems:
        print(p)
    print(f"checked {len(files)} docs: "
          + ("OK" if not problems else f"{len(problems)} broken links"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
