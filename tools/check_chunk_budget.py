#!/usr/bin/env python
"""Chunk-budget checker: are the ``BYTES_PER_FLOP`` constants honest?

The cache-aware partitioner (:mod:`repro.parallel.partition`) sizes chunks
so each one streams roughly :data:`DEFAULT_CHUNK_CACHE_BYTES` of memory
traffic: a kernel tier's ``BYTES_PER_FLOP`` constant converts the cache
target into a per-chunk flops budget. That normalization has a directly
observable consequence — *every* correctly-calibrated tier should produce
per-chunk wall times near ``cache_bytes / stream_bandwidth``, regardless of
how many flops its chunks carry. A constant that is too small packs too few
flops per chunk (times collapse toward dispatch overhead); one that is too
large overfills the cache (times balloon past the streaming bound).

This tool serves a triangle-counting workload through a real
:class:`repro.service.Engine` once per kernel tier (fused ``msa``/``hash``
with :data:`FUSED_BYTES_PER_FLOP`, compiled ``msa-native``/``hash-native``
with :data:`NATIVE_BYTES_PER_FLOP` when the native probe passes), reads the
``repro_chunk_seconds{kernel,phase="numeric"}`` histograms back through the
same Prometheus text exposition a scraper would see, interpolates the p50
per kernel from the cumulative buckets, and flags any kernel whose p50
falls outside a ``BAND``-wide window around the streaming model. The band
is deliberately loose (machine bandwidth varies ~10x across CI boxes): the
check catches order-of-magnitude mispredictions — a stale constant after a
kernel rewrite — not single-digit drift.

Advisory by default (always exits 0, prints one line per kernel);
``--strict`` turns violations into a nonzero exit for local tuning runs.

Run from anywhere: ``PYTHONPATH=src python tools/check_chunk_budget.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: assumed sustainable single-core memory stream bandwidth. Deliberately a
#: round middle-of-the-road figure — the acceptance band absorbs real
#: machines landing anywhere from laptop DDR4 to server DDR5.
STREAM_BANDWIDTH = 16e9

#: accept p50 chunk times within expected/BAND .. expected*BAND
BAND = 16.0


def _quantile_from_buckets(edges, cumulative, q: float = 0.5) -> float:
    """Linear interpolation inside the first bucket whose cumulative count
    crosses ``q`` (the standard Prometheus ``histogram_quantile`` scheme;
    the +Inf bucket degrades to the top finite edge)."""
    total = cumulative[-1]
    if total <= 0:
        return float("nan")
    target = q * total
    prev_edge, prev_count = 0.0, 0
    for edge, count in zip(edges, cumulative):
        if count >= target:
            span = count - prev_count
            frac = (target - prev_count) / span if span else 1.0
            return prev_edge + (edge - prev_edge) * frac
        prev_edge, prev_count = edge, count
    return edges[-1]  # p50 above the top finite bucket


def _chunk_p50s(families) -> dict[str, float]:
    """kernel → p50 chunk seconds for the numeric phase, rebuilt from the
    ``repro_chunk_seconds_bucket`` exposition samples."""
    per_kernel: dict[str, dict[float, float]] = {}
    for labels, value in families.get("repro_chunk_seconds_bucket",
                                      {}).items():
        attrs = dict(labels)
        if attrs.get("phase") != "numeric":
            continue
        le = attrs["le"]
        edge = float("inf") if le == "+Inf" else float(le)
        per_kernel.setdefault(attrs["kernel"], {})[edge] = value
    out = {}
    for kernel, by_edge in per_kernel.items():
        edges = sorted(e for e in by_edge if e != float("inf"))
        cumulative = [by_edge[e] for e in edges] + [by_edge[float("inf")]]
        out[kernel] = _quantile_from_buckets(edges + [float("inf")],
                                             cumulative)
    return out


def _workload(scale: int):
    import numpy as np

    from repro.graphs import rmat
    from repro.graphs.prep import triangle_prep
    from repro.mask import Mask

    g = rmat(scale, 8, rng=np.random.default_rng(7000 + scale))
    L = triangle_prep(g)
    return L, Mask.from_matrix(L)


def check(scale: int, repeats: int) -> list[str]:
    from repro.native import native_available
    from repro.obs import parse_exposition
    from repro.parallel.partition import (DEFAULT_CHUNK_CACHE_BYTES,
                                          FUSED_BYTES_PER_FLOP,
                                          NATIVE_BYTES_PER_FLOP)
    from repro.service import Engine, Request

    kernels = {"msa": FUSED_BYTES_PER_FLOP, "hash": FUSED_BYTES_PER_FLOP}
    if native_available():
        kernels["msa-native"] = NATIVE_BYTES_PER_FLOP
        kernels["hash-native"] = NATIVE_BYTES_PER_FLOP
    else:
        print("native tier unavailable on this box; "
              "checking the fused constants only")

    L, mask = _workload(scale)
    engine = Engine()
    try:
        engine.register("L", L)
        engine.register("M", mask.to_matrix())
        for kernel in kernels:
            for _ in range(repeats):
                engine.submit(Request(a="L", b="L", mask="M",
                                      algorithm=kernel, phases=2,
                                      semiring="plus_pair"))
        families = parse_exposition(engine.metrics.render())
    finally:
        engine.close()

    expected = DEFAULT_CHUNK_CACHE_BYTES / STREAM_BANDWIDTH
    lo, hi = expected / BAND, expected * BAND
    p50s = _chunk_p50s(families)
    problems = []
    for kernel, bpf in kernels.items():
        p50 = p50s.get(kernel)
        if p50 is None or p50 != p50:
            problems.append(f"{kernel}: no numeric chunk samples recorded")
            continue
        verdict = "ok" if lo <= p50 <= hi else "OUT OF BAND"
        print(f"{kernel:12s} bytes/flop={bpf:<3d} p50 chunk "
              f"{p50 * 1e3:8.3f} ms  band [{lo * 1e3:.3f}, {hi * 1e3:.1f}] "
              f"ms  {verdict}")
        if verdict != "ok":
            direction = ("constant likely too large (chunks under-filled)"
                         if p50 < lo else
                         "constant likely too small (chunks overflow the "
                         "cache share)")
            problems.append(
                f"{kernel}: p50 chunk time {p50 * 1e3:.3f} ms outside "
                f"[{lo * 1e3:.3f}, {hi * 1e3:.1f}] ms — {direction}")
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=13,
                    help="rmat scale for the probe workload (default 13; "
                    "must be big enough that the cache term, not the "
                    "per-worker floor, decides the chunk count)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="requests per kernel (default 3)")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on out-of-band kernels (default: "
                    "advisory — report and exit 0)")
    args = ap.parse_args()
    problems = check(args.scale, args.repeats)
    for p in problems:
        print(f"PROBLEM: {p}", file=sys.stderr)
    if problems and not args.strict:
        print(f"{len(problems)} advisory finding(s); pass --strict to fail")
        return 0
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
