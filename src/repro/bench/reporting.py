"""ASCII renderers producing the same rows/series the paper's figures plot.

No plotting libraries are available offline, so each figure is reported as
(a) a data table and (b) — for performance profiles and series — a coarse
text chart. EXPERIMENTS.md embeds these outputs directly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .perfprof import PerformanceProfile


def render_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 floatfmt: str = "{:.4g}") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def fmt(x):
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    sep = "  "
    out = [sep.join(h.ljust(w) for h, w in zip(headers, widths)),
           sep.join("-" * w for w in widths)]
    for r in cells:
        out.append(sep.join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def render_series(title: str, xlabel: str, ylabel: str,
                  series: Mapping[str, Sequence[tuple[float, float]]]) -> str:
    """Multi-series table: one x column, one y column per scheme —
    the textual form of a line plot like Figs. 10/11/14/15."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {name: dict(pts) for name, pts in series.items()}
    headers = [xlabel] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [lookup[name].get(x, float("nan")) for name in series])
    return f"== {title} ==  (y: {ylabel})\n" + render_table(headers, rows)


def render_profile(title: str, profile: PerformanceProfile,
                   taus: Sequence[float] = (1.0, 1.1, 1.2, 1.5, 2.0, 2.5),
                   *, width: int = 40) -> str:
    """Performance-profile summary: fraction-of-cases at chosen tau cuts,
    plus a bar for fraction-best — the textual Fig. 8/9/12/13/16."""
    lines = [f"== {title} ==  (performance profile; fraction of cases "
             f"within tau of best)"]
    headers = ["scheme"] + [f"tau={t:g}" for t in taus] + ["best-frac", ""]
    rows = []
    for scheme in profile.ranking():
        per = profile.ratios[scheme]
        fracs = [np.mean([r <= t + 1e-12 for r in per.values()]) for t in taus]
        fb = profile.fraction_best(scheme)
        bar = "#" * int(round(fb * width))
        rows.append([scheme] + [float(f) for f in fracs] + [float(fb), bar])
    lines.append(render_table(headers, rows, floatfmt="{:.2f}"))
    return "\n".join(lines)
