"""Experiment harness: timed runs over algorithm × input grids.

Used by every per-figure script in ``benchmarks/``. Timing follows the
usual micro-benchmark hygiene: one warmup run (JIT-free Python still wants
its allocators and caches warm), then the minimum over ``repeats``
measured runs (minimum, not mean — we estimate the cost of the work, not of
the machine's noise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


def time_callable(fn: Callable[[], object], *, repeats: int = 3,
                  warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class GridResult:
    """times[scheme][case] = seconds, plus free-form per-case metadata."""

    times: dict[str, dict[str, float]] = field(default_factory=dict)
    meta: dict[str, dict] = field(default_factory=dict)

    def record(self, scheme: str, case: str, seconds: float) -> None:
        self.times.setdefault(scheme, {})[case] = seconds

    def schemes(self) -> list[str]:
        return list(self.times)

    def cases(self) -> list[str]:
        return sorted({c for per in self.times.values() for c in per})


def run_grid(
    cases: Iterable[tuple[str, Callable[[str], Callable[[], object]]]],
    schemes: Sequence[str],
    *,
    repeats: int = 3,
    warmup: int = 1,
    on_error: str = "skip",
) -> GridResult:
    """Time every (case, scheme) pair.

    Parameters
    ----------
    cases : iterable of (case_name, make) where ``make(scheme)`` returns the
        zero-arg callable to time (or raises for unsupported combinations).
    schemes : scheme names passed to ``make``.
    on_error : "skip" records nothing for unsupported pairs (Dolan-Moré then
        treats them as failures); "raise" propagates.
    """
    result = GridResult()
    for case_name, make in cases:
        for scheme in schemes:
            try:
                fn = make(scheme)
            except Exception:
                if on_error == "raise":
                    raise
                continue
            try:
                seconds = time_callable(fn, repeats=repeats, warmup=warmup)
            except Exception:
                if on_error == "raise":
                    raise
                continue
            result.record(scheme, case_name, seconds)
    return result
