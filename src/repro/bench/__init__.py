"""Benchmark support: metrics, Dolan-Moré performance profiles, experiment
harness and ASCII reporting.

The modules here are what the per-figure scripts in ``benchmarks/`` share:
:mod:`metrics` defines flops/GFLOPS/TEPS exactly as the paper's figures do,
:mod:`perfprof` computes performance profiles (Dolan & Moré [20], the
paper's Figs. 8/9/12/13/16), :mod:`harness` runs algorithm × input grids
with warmup/repeat timing, and :mod:`reporting` renders the same
rows/series a paper figure plots, as text.
"""

from .metrics import (
    gflops,
    hit_rate,
    latency_percentiles,
    masked_flops,
    mteps,
    spgemm_flops,
    summarize_latencies,
    compression_factor,
    warm_cold_speedup,
)
from .perfprof import PerformanceProfile, performance_profile
from .harness import GridResult, run_grid, time_callable
from .reporting import render_profile, render_series, render_table

__all__ = [
    "spgemm_flops",
    "masked_flops",
    "gflops",
    "mteps",
    "compression_factor",
    "hit_rate",
    "latency_percentiles",
    "summarize_latencies",
    "warm_cold_speedup",
    "performance_profile",
    "PerformanceProfile",
    "time_callable",
    "run_grid",
    "GridResult",
    "render_table",
    "render_series",
    "render_profile",
]
