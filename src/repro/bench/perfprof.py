"""Dolan-Moré performance profiles (the paper's Figs. 8, 9, 12, 13, 16).

"A point (x, y) indicates that the scheme for that point is within x factor
of the best obtained result in y fraction of the test cases. The closer a
scheme's line is to the y axis, the better" (paper §8.2).

Input is a nested mapping ``times[scheme][case] = seconds``. Cases missing
for a scheme (e.g. the scheme does not support that input) are treated as
failures: their ratio is +inf and they never count toward the profile, the
standard Dolan-Moré convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PerformanceProfile:
    """Evaluated profile curves on a shared tau grid."""

    taus: np.ndarray                      # ratio grid (>= 1)
    curves: dict[str, np.ndarray]         # scheme -> fraction at each tau
    ratios: dict[str, dict[str, float]]   # scheme -> case -> ratio-to-best

    def fraction_best(self, scheme: str) -> float:
        """Fraction of cases where ``scheme`` is (tied-)fastest — the y
        intercept of its curve at tau=1."""
        r = self.ratios[scheme]
        if not r:
            return 0.0
        return float(np.mean([v <= 1.0 + 1e-12 for v in r.values()]))

    def area(self, scheme: str) -> float:
        """Area under the curve (higher = better overall)."""
        return float(np.trapezoid(self.curves[scheme], self.taus))

    def ranking(self) -> list[str]:
        """Schemes ordered best-first by (fraction-best, area)."""
        return sorted(self.curves,
                      key=lambda s: (-self.fraction_best(s), -self.area(s)))


def performance_profile(times: dict[str, dict[str, float]],
                        taus: np.ndarray | None = None) -> PerformanceProfile:
    """Compute Dolan-Moré profiles from per-scheme, per-case timings."""
    if not times:
        raise ValueError("no timings given")
    cases = sorted({c for per in times.values() for c in per})
    if not cases:
        raise ValueError("no cases given")
    best: dict[str, float] = {}
    for c in cases:
        vals = [per[c] for per in times.values() if c in per and per[c] > 0]
        if not vals:
            raise ValueError(f"case {c!r} has no valid timings")
        best[c] = min(vals)

    ratios: dict[str, dict[str, float]] = {}
    for scheme, per in times.items():
        ratios[scheme] = {
            c: (per[c] / best[c] if c in per and per[c] > 0 else float("inf"))
            for c in cases
        }

    if taus is None:
        finite = [r for per in ratios.values() for r in per.values()
                  if np.isfinite(r)]
        hi = max(2.5, float(np.quantile(finite, 0.95)) * 1.1) if finite else 2.5
        taus = np.linspace(1.0, hi, 64)
    taus = np.asarray(taus, dtype=np.float64)

    ncases = len(cases)
    curves = {
        scheme: np.array([
            sum(1 for r in per.values() if r <= t + 1e-12) / ncases
            for t in taus
        ])
        for scheme, per in ratios.items()
    }
    return PerformanceProfile(taus, curves, ratios)
