"""Performance metrics matching the paper's figures.

* ``spgemm_flops`` — the standard SpGEMM convention: 2 × Σ_k nnz(A_*k)·nnz(B_k*)
  (one multiply + one add per partial product). The paper's GFLOPS figures
  (10, 14) divide this by wall time regardless of algorithm, so a masked
  kernel that *skips* flops shows a lower rate on the same plot — exactly
  why those figures are rate plots, not time plots.
* ``masked_flops`` — the products that actually land in the mask; useful for
  quantifying how much work masking can save (the Fig. 1 story).
* ``mteps`` — Millions of Traversed Edges Per Second, the Graph500/HPCS
  metric [4] the paper uses for Betweenness Centrality:
  ``batch_size × num_edges / time``.
"""

from __future__ import annotations

import numpy as np

from ..core.expand import expand_row_pattern, total_flops
from ..mask import Mask
from ..sparse.csr import CSRMatrix


def spgemm_flops(A: CSRMatrix, B: CSRMatrix) -> int:
    """2 × (number of partial products of A·B)."""
    return 2 * total_flops(A, B)


def masked_flops(A: CSRMatrix, B: CSRMatrix, mask: Mask) -> int:
    """2 × (number of partial products whose column survives the mask).

    For complemented masks, counts products *outside* the stored pattern.
    """
    count = 0
    for i in range(A.nrows):
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            member = np.zeros(bj.size, dtype=bool)
        else:
            pos = np.searchsorted(m_cols, bj)
            pos[pos == m_cols.size] = 0
            member = m_cols[pos] == bj
        count += int((~member if mask.complemented else member).sum())
    return 2 * count


def gflops(flops: float, seconds: float) -> float:
    """Giga floating-point operations per second."""
    if seconds <= 0:
        return float("inf")
    return flops / seconds / 1e9


def mteps(batch_size: int, num_edges: int, seconds: float) -> float:
    """Millions of traversed edges per second (paper §8.4 metric)."""
    if seconds <= 0:
        return float("inf")
    return batch_size * num_edges / seconds / 1e6


def compression_factor(A: CSRMatrix, B: CSRMatrix, C: CSRMatrix) -> float:
    """flops(AB) / nnz(C): how much merging the accumulator performs — the
    quantity plain-SpGEMM lore uses to justify two-phase execution."""
    nnz = max(C.nnz, 1)
    return total_flops(A, B) / nnz


# ---------------------------------------------------------------------- #
# service-layer metrics (repro.service request telemetry)
# ---------------------------------------------------------------------- #
def hit_rate(hits: int, misses: int) -> float:
    """Cache hit fraction; 0.0 for an untouched cache."""
    total = hits + misses
    return hits / total if total else 0.0


def latency_percentiles(latencies, *, percentiles=(50, 95, 99)) -> dict[int, float]:
    """Request-latency percentiles in seconds (the serving-side view of the
    paper's wall-clock numbers). Empty input → empty dict."""
    arr = np.asarray(list(latencies), dtype=np.float64)
    if arr.size == 0:
        return {}
    return {int(p): float(np.percentile(arr, p)) for p in percentiles}


def summarize_latencies(latencies) -> str:
    """One-line latency summary (count / mean / p50 / p95), empty string for
    no samples. Used by engine reports and ``bench_service_plan_cache``."""
    arr = np.asarray(list(latencies), dtype=np.float64)
    if arr.size == 0:
        return ""
    pct = latency_percentiles(arr, percentiles=(50, 95))
    return (f"n={arr.size}  mean={arr.mean() * 1e3:.2f} ms  "
            f"p50={pct[50] * 1e3:.2f} ms  p95={pct[95] * 1e3:.2f} ms")


def warm_cold_speedup(cold_latencies, warm_latencies) -> float:
    """mean(cold) / mean(warm) — how much a plan-cache hit saves. Returns
    1.0 when either side has no samples (no claim either way)."""
    cold = np.asarray(list(cold_latencies), dtype=np.float64)
    warm = np.asarray(list(warm_latencies), dtype=np.float64)
    if cold.size == 0 or warm.size == 0 or warm.mean() <= 0:
        return 1.0
    return float(cold.mean() / warm.mean())
