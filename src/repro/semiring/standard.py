"""Standard semirings used by the paper's applications.

* ``PLUS_TIMES`` (arithmetic) — the semiring the paper uses in all its
  algorithm descriptions (§2).
* ``PLUS_PAIR`` — multiply is the constant 1 whenever both operands exist;
  the sum then counts pattern intersections. This is the semiring
  SuiteSparse uses for triangle counting and k-truss support counting: the
  (i,j) output entry counts common neighbours of i and j.
* ``PLUS_FIRST`` / ``PLUS_SECOND`` — multiply passes through one operand;
  betweenness centrality's path-count propagation is PLUS_FIRST over the
  frontier.
* ``MIN_PLUS`` (tropical) — shortest-path relaxation.
* ``MAX_TIMES`` — used e.g. in some clustering workloads.
* ``OR_AND`` — boolean reachability (values constrained to {0.0, 1.0}).
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from .semiring import Monoid, Semiring

_PLUS = Monoid(np.add, 0.0, "plus")
_MIN = Monoid(np.minimum, float("inf"), "min")
_MAX = Monoid(np.maximum, float("-inf"), "max")
# Boolean OR over float {0,1} carriers: maximum is OR and supports .at/.reduceat.
_OR = Monoid(np.maximum, 0.0, "or")


def _times(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def _pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.ones(np.broadcast(a, b).shape, dtype=np.float64)


def _first(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.broadcast_to(np.asarray(a, dtype=np.float64),
                           np.broadcast(a, b).shape).copy()


def _second(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.broadcast_to(np.asarray(b, dtype=np.float64),
                           np.broadcast(a, b).shape).copy()


def _plus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def _and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((np.asarray(a) != 0) & (np.asarray(b) != 0)).astype(np.float64)


PLUS_TIMES = Semiring(_PLUS, _times, "plus_times", mul_scalar=lambda a, b: a * b)
#: Alias — the paper calls this "the arithmetic semiring".
ARITHMETIC = PLUS_TIMES

PLUS_PAIR = Semiring(_PLUS, _pair, "plus_pair", mul_scalar=lambda a, b: 1.0)
PLUS_FIRST = Semiring(_PLUS, _first, "plus_first", mul_scalar=lambda a, b: a)
PLUS_SECOND = Semiring(_PLUS, _second, "plus_second", mul_scalar=lambda a, b: b)
MIN_PLUS = Semiring(_MIN, _plus, "min_plus", mul_scalar=lambda a, b: a + b)
MAX_TIMES = Semiring(_MAX, _times, "max_times", mul_scalar=lambda a, b: a * b)
OR_AND = Semiring(
    _OR, _and, "or_and",
    mul_scalar=lambda a, b: 1.0 if (a != 0 and b != 0) else 0.0,
)

_REGISTRY = {
    s.name: s
    for s in (PLUS_TIMES, PLUS_PAIR, PLUS_FIRST, PLUS_SECOND, MIN_PLUS, MAX_TIMES, OR_AND)
}
_REGISTRY["arithmetic"] = PLUS_TIMES


def by_name(name: str) -> Semiring:
    """Look up a standard semiring by name (e.g. ``"plus_pair"``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AlgorithmError(
            f"unknown semiring {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
