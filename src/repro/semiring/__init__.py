"""Semiring abstraction (GraphBLAS-style) over which SpGEMM is generalized.

The paper keeps to the arithmetic semiring "to keep the discussions simple"
(§2) but notes the evaluated graph algorithms use various semirings; the
ones actually needed by the evaluation are provided here: arithmetic
(PLUS_TIMES), PLUS_PAIR (triangle counting / k-truss count common
neighbours), PLUS_FIRST / PLUS_SECOND (betweenness centrality path
accumulation), MIN_PLUS (shortest paths), MAX_TIMES and boolean OR_AND.
"""

from .semiring import Monoid, Semiring
from .standard import (
    ARITHMETIC,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_FIRST,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    by_name,
)

__all__ = [
    "Monoid",
    "Semiring",
    "ARITHMETIC",
    "PLUS_TIMES",
    "PLUS_PAIR",
    "PLUS_FIRST",
    "PLUS_SECOND",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "by_name",
]
