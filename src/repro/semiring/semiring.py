"""Semiring and monoid classes.

A semiring for SpGEMM purposes is an additive commutative monoid
``(add, identity)`` used by the accumulator to merge partial products, plus a
multiplicative binary op ``mul(a_ik, b_kj)`` producing those products.

Design constraint: the vectorized kernels accumulate with
``numpy.ufunc.at`` (scatter-accumulate) and ``numpy.ufunc.reduceat``
(segment reduction), so the additive op must be a *numpy ufunc*
(``np.add``, ``np.minimum``, ...). The multiplicative op only ever runs
element-wise on aligned arrays, so any callable of two arrays works; common
cases (``first``/``second``/``pair``) are expressed without materializing a
multiply at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Monoid:
    """Commutative additive monoid backed by a numpy ufunc.

    Attributes
    ----------
    ufunc : np.ufunc
        Must support ``.at`` and ``.reduceat`` (all arithmetic ufuncs do).
    identity : float
        Identity element (0 for +, +inf for min, -inf for max).
    name : str
    """

    ufunc: np.ufunc
    identity: float
    name: str

    def __post_init__(self):
        if not isinstance(self.ufunc, np.ufunc):
            raise TypeError(f"Monoid requires a numpy ufunc, got {type(self.ufunc)}")

    def reduce(self, values: np.ndarray):
        """Reduce a 1-D array to a scalar, returning identity when empty."""
        if values.size == 0:
            return self.identity
        return self.ufunc.reduce(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


@dataclass(frozen=True)
class Semiring:
    """A (add-monoid, multiply) pair driving SpGEMM.

    ``mul`` takes the expanded, aligned arrays ``(a_vals, b_vals)`` — i.e.
    ``a_vals[p]`` is the A-entry and ``b_vals[p]`` the B-entry of partial
    product p — and returns the products array. ``mul_scalar`` is the scalar
    version used by the reference (pure-Python) tier.
    """

    add: Monoid
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    name: str
    mul_scalar: Callable[[float, float], float] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.mul_scalar is None:
            # element-wise callables usually work on scalars too
            object.__setattr__(self, "mul_scalar", lambda a, b: float(self.mul(
                np.asarray([a]), np.asarray([b]))[0]))

    @property
    def identity(self) -> float:
        return self.add.identity

    def multiply(self, a_vals: np.ndarray, b_vals: np.ndarray) -> np.ndarray:
        """Compute aligned partial products (vectorized tier entry point)."""
        return self.mul(a_vals, b_vals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"
