"""Set-associative LRU cache simulator.

A deliberately small, exact simulator: addresses (in bytes) are mapped to
lines and sets; each set keeps true LRU order. It exists to make the paper's
cache *arguments* measurable — e.g. "the arrays in the MSA accumulator are
too large to fit in L1 … so indexing an element of these arrays usually
incurs a cache miss" (§5.3), and the Haswell-vs-KNL L3 explanation of §8.3 —
on address traces produced by :mod:`repro.perfmodel.trace`.

Traces are replayed sequentially (true LRU is inherently sequential), so
keep them to ~10^5-10^6 accesses.
"""

from __future__ import annotations

import numpy as np


class LRUCache:
    """Set-associative LRU cache over byte addresses.

    Parameters
    ----------
    size_bytes : total capacity (must be divisible by line_bytes * ways)
    line_bytes : cache-line size (default 64)
    ways : associativity (default 8)
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                f"size {size_bytes} not divisible by line*ways = {line_bytes * ways}"
            )
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.nsets = size_bytes // (line_bytes * ways)
        # sets[s] is a list of tags, most recent last
        self._sets: list[list[int]] = [[] for _ in range(self.nsets)]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines (keeps statistics)."""
        self._sets = [[] for _ in range(self.nsets)]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        a = self.accesses
        return self.misses / a if a else 0.0

    # ------------------------------------------------------------------ #
    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = addr // self.line_bytes
        s = line % self.nsets
        tag = line // self.nsets
        ways = self._sets[s]
        try:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        except ValueError:
            ways.append(tag)
            if len(ways) > self.ways:
                ways.pop(0)
            self.misses += 1
            return False

    def access_many(self, addrs: np.ndarray) -> int:
        """Replay a whole trace; returns the number of misses it caused."""
        before = self.misses
        for a in np.asarray(addrs, dtype=np.int64):
            self.access(int(a))
        return self.misses - before
