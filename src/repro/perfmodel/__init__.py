"""Performance models: the paper's §4 memory-traffic analysis as code, plus
a small cache simulator that replays kernel address traces.

The paper argues its algorithm choices from first-principles memory traffic
(pull: ``nnz(A) + nnz(M)(1 + nnz(B)/n)``; push: ``nnz(A) + nnz(A)·L +
flops(AB)`` + an accumulator-dependent term) and from cache behaviour
(MSA's dense arrays miss once they outgrow the cache; Hash/MCA track
``nnz(m)``). Since we have no hardware counters, both mechanisms are made
*measurable*: :mod:`traffic` computes the formulas, :mod:`cachesim` +
:mod:`trace` replay per-row address streams through an LRU cache.
"""

from .traffic import (
    TrafficModel,
    pull_traffic,
    push_traffic,
    accumulator_traffic,
    predicted_best,
)
from .cachesim import LRUCache
from .trace import row_trace, simulate_row_misses

__all__ = [
    "TrafficModel",
    "pull_traffic",
    "push_traffic",
    "accumulator_traffic",
    "predicted_best",
    "LRUCache",
    "row_trace",
    "simulate_row_misses",
]
