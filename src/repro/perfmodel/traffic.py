"""The paper's §4 memory-traffic formulas, implemented as code.

All quantities are in *words* (the paper assumes index and value words are
the same size). ``L`` is the cache-line length in words and ``Z`` the cache
capacity in words, with the paper's standing assumptions
``nnz(A), nnz(B), nnz(M) ≫ Z`` and ``β(A) > Z``.

* Pull (§4.1): ``nnz(A) + nnz(M) · (1 + nnz(B)/n)`` — every unmasked entry
  re-fetches its whole B column because columns are visited in scattered
  order.
* Push (§4.2): pattern 1 costs ``nnz(A)``, pattern 2 ``nnz(A)·L`` (a full
  line per row-pointer lookup), pattern 3 ``flops(AB)``; pattern 4 (the
  accumulator) depends on the data structure; pattern 5 is ``nnz(C)`` —
  bounded here by ``nnz(M)``.
* §4.3 asymptotics: with input density d and mask density d_m, push grows
  ~d², pull ~d·d_m — :func:`predicted_best` reproduces the crossover logic
  behind Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expand import total_flops
from ..mask import Mask
from ..sparse.csr import CSRMatrix

#: default cache-line length in 8-byte words (64-byte lines)
DEFAULT_L = 8
#: default cache capacity in words (a 1 MiB last-level slice)
DEFAULT_Z = 131_072


def pull_traffic(A: CSRMatrix, B: CSRMatrix, mask: Mask, *, L: int = DEFAULT_L
                 ) -> float:
    """§4.1: ``nnz(A) + nnz(M)(1 + nnz(B)/n)`` words."""
    n = max(B.ncols, 1)
    return float(A.nnz + mask.nnz * (1.0 + B.nnz / n))


def push_traffic(A: CSRMatrix, B: CSRMatrix, mask: Mask, *, L: int = DEFAULT_L
                 ) -> float:
    """§4.2 patterns 1-3 and 5 (accumulator term added separately):
    ``nnz(A) + nnz(A)·L + flops(AB) + nnz(M)``."""
    return float(A.nnz + A.nnz * L + total_flops(A, B) + mask.nnz)


def accumulator_traffic(algorithm: str, A: CSRMatrix, B: CSRMatrix, mask: Mask,
                        *, L: int = DEFAULT_L, Z: int = DEFAULT_Z) -> float:
    """Pattern-4 (scatter/accumulate) traffic model per accumulator.

    The discriminating quantity is the accumulator *working set*: when it
    fits in cache the scatter traffic is amortized to the compulsory
    footprint; when it does not, every access is charged a cache line.

    * MSA: working set = 2·ncols words (dense states+values).
    * Hash: = 3·nnz(m̄)/0.25 words per row (keys, states+values at LF 0.25),
      with m̄ the mean mask-row population.
    * MCA: = 2·nnz(m̄) words.
    * Heap / HeapDot: no scatter table at all — the merge is streaming; the
      working set is the iterator heap, nnz(ū) entries.
    """
    flops = total_flops(A, B)
    touches = flops + mask.nnz  # every product + every mask mark/gather
    nrows = max(mask.nrows, 1)
    mean_m = mask.nnz / nrows
    mean_u = A.nnz / max(A.nrows, 1)
    algorithm = algorithm.lower()
    if algorithm == "msa":
        ws = 2.0 * B.ncols
    elif algorithm == "hash":
        ws = 3.0 * mean_m / 0.25
    elif algorithm == "mca":
        ws = 2.0 * mean_m
    elif algorithm in ("heap", "heapdot"):
        ws = 3.0 * mean_u
    elif algorithm == "inner":
        return 0.0  # pull has no accumulator; its cost is in pull_traffic
    else:
        raise ValueError(f"no accumulator-traffic model for {algorithm!r}")
    if ws <= Z:
        return float(touches / L + ws)  # line-amortized + compulsory
    return float(touches)  # every touch misses


@dataclass(frozen=True)
class TrafficModel:
    """Total predicted traffic (words) for one algorithm on one problem."""

    algorithm: str
    words: float

    @property
    def bytes(self) -> float:
        return self.words * 8.0


def total_traffic(algorithm: str, A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  *, L: int = DEFAULT_L, Z: int = DEFAULT_Z) -> TrafficModel:
    """Effective-cost model used for *ranking* algorithms.

    :func:`pull_traffic` / :func:`push_traffic` are the paper's formulas
    verbatim, derived under the standing assumption ``nnz(A), nnz(B),
    nnz(M) ≫ Z``. At laptop scales that assumption often fails, so the
    ranking model adds two calibrations (both mechanical, not fitted):

    * when B fits in cache (``2·nnz(B) ≤ Z``), the push row-pointer term is
      not a full line per lookup (drop the ·L) and pull's column re-fetch
      amortizes after the first pass;
    * per-dot *compute* surcharges that the traffic formulas ignore: the
      pull dot walks ``A_i*`` once per unmasked entry, and the heap pays a
      log₂(nnz(u)) factor per merged element.
    """
    import math

    algorithm = algorithm.lower()
    b_cached = 2.0 * B.nnz <= Z
    mean_a = A.nnz / max(A.nrows, 1)
    if algorithm == "inner":
        n = max(B.ncols, 1)
        refetch = B.nnz / n if not b_cached else 0.0
        words = A.nnz + mask.nnz * (1.0 + refetch)
        words += mask.nnz * mean_a  # two-pointer walk over A's row per dot
        return TrafficModel("inner", words)
    rowptr = A.nnz * (L if not b_cached else 1)
    base = float(A.nnz + rowptr + total_flops(A, B) + mask.nnz)
    acc = accumulator_traffic(algorithm, A, B, mask, L=L, Z=Z)
    extra = 0.0
    if algorithm in ("heap", "heapdot"):
        k = max(2.0, mean_a)
        extra = total_flops(A, B) * (math.log2(k) - 1.0) * 0.25
    return TrafficModel(algorithm, base + acc + max(extra, 0.0))


def predicted_best(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                   candidates: tuple[str, ...] = ("inner", "msa", "hash", "mca",
                                                  "heap", "heapdot"),
                   *, L: int = DEFAULT_L, Z: int = DEFAULT_Z) -> str:
    """Algorithm with the lowest modeled cost — the model's Fig. 7 cell."""
    best, best_words = None, float("inf")
    for alg in candidates:
        w = total_traffic(alg, A, B, mask, L=L, Z=Z).words
        if w < best_words:
            best, best_words = alg, w
    return best
