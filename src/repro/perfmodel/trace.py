"""Address-trace generation for the accumulator step of each algorithm.

For one output row we emit the byte addresses the *accumulator* (memory
access pattern 4 of §4.2) would touch — the other patterns (streams over A,
B and the output) are identical across push algorithms and therefore not
discriminating. Layouts follow the implementations:

* MSA — two dense arrays of ``ncols`` doubles; each product and each mask
  mark touches ``states[j]`` and ``values[j]``.
* Hash — one open-addressing table of ``capacity = nnz(m)/0.25`` 24-byte
  entries; each access touches its hashed slot (probe chains ignored — at
  LF 0.25 they are short).
* MCA — two arrays of ``nnz(m)`` entries indexed by mask rank.
* Heap — the iterator heap: ``nnz(u)`` entries touched per pop/push.

Replaying these traces through :class:`~repro.perfmodel.cachesim.LRUCache`
turns the paper's "MSA misses more as the matrix grows" into a measured
number (see ``benchmarks/bench_ablation_traffic_model.py``).
"""

from __future__ import annotations

import numpy as np

from ..accumulators.hash_acc import table_capacity
from ..core.expand import expand_row_pattern
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from .cachesim import LRUCache

_WORD = 8
_HASH_ENTRY = 24  # key + value + state, padded

#: distinct base offsets so arrays do not alias in the simulated cache
_VALUES_BASE = 1 << 30
_STATES_BASE = 1 << 31


def _hash_slot(keys: np.ndarray, cap: int) -> np.ndarray:
    h = (keys.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(32)
    return (h & np.uint64(cap - 1)).astype(np.int64)


def row_trace(algorithm: str, A: CSRMatrix, B: CSRMatrix, mask: Mask, i: int
              ) -> np.ndarray:
    """Byte-address trace of the accumulator accesses for output row ``i``."""
    m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
    bj = expand_row_pattern(A, B, i)
    algorithm = algorithm.lower()
    if algorithm == "msa":
        keys = np.concatenate([m_cols, bj, m_cols])  # mark, scatter, gather
        return np.concatenate([_STATES_BASE + keys * _WORD,
                               _VALUES_BASE + keys * _WORD])
    if algorithm == "hash":
        cap = table_capacity(m_cols.size)
        keys = np.concatenate([m_cols, bj, m_cols])
        return _hash_slot(keys, cap) * _HASH_ENTRY
    if algorithm == "mca":
        if m_cols.size == 0:
            return np.empty(0, dtype=np.int64)
        ranks = np.searchsorted(m_cols, bj)
        ranks[ranks == m_cols.size] = 0
        hit = m_cols[ranks] == bj
        keys = np.concatenate([ranks[hit], np.arange(m_cols.size)])
        return np.concatenate([_STATES_BASE + keys * _WORD,
                               _VALUES_BASE + keys * _WORD])
    if algorithm in ("heap", "heapdot"):
        nu = int(A.indptr[i + 1] - A.indptr[i])
        if nu == 0:
            return np.empty(0, dtype=np.int64)
        # each of the flops pops touches O(1) heap slots near the root plus
        # its reinsertion slot; model as a uniform touch over the heap array
        rng = np.random.default_rng(i)
        slots = rng.integers(0, nu, size=bj.size * 2)
        return slots * _HASH_ENTRY
    raise ValueError(f"no trace model for algorithm {algorithm!r}")


def simulate_row_misses(algorithm: str, A: CSRMatrix, B: CSRMatrix, mask: Mask,
                        rows, cache: LRUCache | None = None,
                        *, size_bytes: int = 32 * 1024) -> tuple[int, int]:
    """Replay the accumulator traces of ``rows`` through an (L1-sized by
    default) cache. Returns (misses, accesses)."""
    cache = cache or LRUCache(size_bytes)
    cache.reset_stats()
    for i in rows:
        cache.access_many(row_trace(algorithm, A, B, mask, int(i)))
    return cache.misses, cache.accesses


# --------------------------------------------------------------------- #
# fused-chunk model: validates parallel.partition.chunk_budget
# --------------------------------------------------------------------- #
#: distinct stream arrays the fused pipeline sweeps per pass (composite
#: keys, values, sort permutation)
_FUSED_STREAM_WORDS = 3

#: sweeps over the product stream in one fused numeric chunk: expand write,
#: key build, stable sort read, permuted gather, reduceat, mask filter
FUSED_STREAM_PASSES = 6


def fused_stream_trace(nflops: int, *, passes: int = FUSED_STREAM_PASSES,
                       word: int = 8) -> np.ndarray:
    """Byte-address skeleton of one fused chunk: ``passes`` sequential sweeps
    over the chunk's O(flops) stream arrays (keys + values + permutation).

    This is the access-pattern argument behind
    :func:`repro.parallel.partition.chunk_budget`: the first sweep is cold
    either way, but sweeps 2..P hit cache only while the stream is
    cache-resident — so chunks should be sized to the cache, not to the
    worker count. Replay through :class:`~repro.perfmodel.cachesim.LRUCache`
    (see ``tests/test_perfmodel.py``) to measure the cliff.
    """
    span = int(nflops) * _FUSED_STREAM_WORDS * word
    sweep = np.arange(0, max(span, word), word, dtype=np.int64)
    return np.tile(sweep, passes)


def fused_chunk_miss_rate(nflops: int, cache_bytes: int, *,
                          passes: int = FUSED_STREAM_PASSES,
                          line_bytes: int = 64) -> float:
    """Miss rate of the fused-chunk trace on a ``cache_bytes`` LRU cache —
    ≈ 1/passes · line-utilization while the chunk fits, ≈ the per-sweep cold
    rate once it does not."""
    cache = LRUCache(cache_bytes, line_bytes=line_bytes)
    cache.access_many(fused_stream_trace(nflops, passes=passes))
    return cache.miss_rate
