"""Plain (unmasked) SpGEMM — Gustavson row-by-row with a dense SPA.

This is Algorithm 1 of the paper: the computational strawman the masked
kernels are measured against, and the first half of the multiply-then-mask
baseline (:mod:`repro.core.baselines`). It accumulates *every* partial
product — flops(AB) work regardless of how few entries the mask would keep.
"""

from __future__ import annotations

import numpy as np

from ..semiring import PLUS_TIMES, Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from .expand import expand_row, expand_row_pattern, per_row_flops
from .types import RowBlock, stitch_blocks


def numeric_rows(A: CSRMatrix, B: CSRMatrix, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    """Unmasked Gustavson over a dense SPA (values + touched set via sort)."""
    ncols = B.ncols
    values = np.empty(ncols, dtype=np.float64)
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    flops = per_row_flops(A, B)
    bound = int(np.minimum(flops[rows], ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        touched = np.unique(bj)
        values[touched] = identity
        add_at(values, bj, prod)
        k = touched.size
        out_cols[pos: pos + k] = touched
        out_vals[pos: pos + k] = values[touched]
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, rows: np.ndarray) -> np.ndarray:
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for t in range(rows.size):
        i = int(rows[t])
        bj = expand_row_pattern(A, B, i)
        if bj.size:
            sizes[t] = np.unique(bj).size
    return sizes


def plain_spgemm(A: CSRMatrix, B: CSRMatrix,
                 semiring: Semiring = PLUS_TIMES) -> CSRMatrix:
    """Unmasked C = A·B (one-phase, serial)."""
    shape = check_multiplicable(A.shape, B.shape)
    rows = np.arange(shape[0], dtype=INDEX_DTYPE)
    block = numeric_rows(A, B, semiring, rows)
    return stitch_blocks([block], shape[0], shape[1])


def plain_spgemm_scipy(A: CSRMatrix, B: CSRMatrix,
                       semiring: Semiring = PLUS_TIMES) -> CSRMatrix:
    """Unmasked product through scipy's compiled SpGEMM (PLUS_TIMES and
    PLUS_PAIR only — scipy has no semiring support; PLUS_PAIR is emulated by
    multiplying the 0/1 patterns). Used by the ``saxpy-scipy`` baseline."""
    from ..errors import AlgorithmError
    from ..sparse.convert import from_scipy, to_scipy

    if semiring.name == "plus_pair":
        A, B = A.pattern(), B.pattern()
    elif semiring.name == "plus_first":
        B = B.pattern()
    elif semiring.name == "plus_second":
        A = A.pattern()
    elif semiring.name not in ("plus_times", "arithmetic"):
        raise AlgorithmError(
            f"scipy baseline supports plus_times/plus_pair/plus_first/"
            f"plus_second, not {semiring.name!r}"
        )
    return from_scipy(to_scipy(A) @ to_scipy(B))
