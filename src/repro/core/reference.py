"""Reference (faithful pure-Python) Masked SpGEMM implementations.

Each function here mirrors one of the paper's pseudocode listings:

* :func:`spgevm_msa` / :func:`spgevm_hash` — Algorithm 2 shape: mark the
  mask row allowed, insert every partial product (as a lazily-evaluated
  thunk), gather in mask order.
* :func:`spgevm_mca` — Algorithm 3: co-iterate the sorted mask with each
  sorted B row, translating column ids to mask ranks.
* :func:`spgevm_heap` — Algorithms 4+5 via :class:`~repro.accumulators.heap_acc.HeapMerger`.
* :func:`spgevm_inner` — §4.1 pull-based sparse dot products.

:func:`reference_masked_spgemm` assembles output rows into a canonical CSR
matrix and handles complemented masks. These run in O(pure-Python) time —
they exist for correctness, specification and small-input use, not speed.
"""

from __future__ import annotations

import numpy as np

from ..accumulators import (
    HashAccumulator,
    HashComplementAccumulator,
    HeapMerger,
    MCAAccumulator,
    MSAAccumulator,
    MSAComplementAccumulator,
    RowIterator,
)
from ..accumulators.heap_acc import INSPECT_ALL
from ..errors import AlgorithmError, MaskError
from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable


# --------------------------------------------------------------------- #
# per-row (SpGEVM) reference kernels — non-complemented
# --------------------------------------------------------------------- #
def _iter_products(u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    """Yield (j, thunk) for every partial product u_k ⊗ B_kj, in the order a
    sequential Gustavson loop produces them. Thunks keep the paper's
    lazy-evaluation contract observable."""
    for k, uk in zip(u_cols, u_vals):
        lo, hi = B.indptr[k], B.indptr[k + 1]
        for p in range(lo, hi):
            j = int(B.indices[p])
            bkj = float(B.data[p])
            yield j, (lambda a=float(uk), b=bkj: semiring.mul_scalar(a, b))


def spgevm_msa(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring,
               accum: MSAAccumulator | None = None):
    """Algorithm 2 with the MSA accumulator."""
    accum = accum if accum is not None else MSAAccumulator(B.ncols, semiring)
    for j in m_cols:
        accum.set_allowed(int(j))
    for j, thunk in _iter_products(u_cols, u_vals, B, semiring):
        accum.insert(j, thunk)
    out_c: list[int] = []
    out_v: list[float] = []
    for j in m_cols:  # gather in mask order -> stable/sorted output
        v = accum.remove(int(j))
        if v is not None:
            out_c.append(int(j))
            out_v.append(v)
    return out_c, out_v


def spgevm_hash(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    """Algorithm 2 shape with the Hash accumulator (§5.3)."""
    accum = HashAccumulator(len(m_cols), semiring)
    for j in m_cols:
        accum.set_allowed(int(j))
    for j, thunk in _iter_products(u_cols, u_vals, B, semiring):
        accum.insert(j, thunk)
    out_c: list[int] = []
    out_v: list[float] = []
    for j in m_cols:
        v = accum.remove(int(j))
        if v is not None:
            out_c.append(int(j))
            out_v.append(v)
    return out_c, out_v


def spgevm_mca(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    """Algorithm 3: MCA masked SpGEVM (requires sorted mask and B rows)."""
    m = np.asarray(m_cols)
    accum = MCAAccumulator(m.size, semiring)
    for k, uk in zip(u_cols, u_vals):
        lo, hi = int(B.indptr[k]), int(B.indptr[k + 1])
        p = lo  # rowIter
        for idx in range(m.size):  # Enumerate(m)
            j = int(m[idx])
            while p < hi and B.indices[p] < j:
                p += 1
            if p >= hi:
                break
            if B.indices[p] == j:
                accum.insert(idx, semiring.mul_scalar(float(uk), float(B.data[p])))
    out_c: list[int] = []
    out_v: list[float] = []
    for idx in range(m.size):
        v = accum.remove(idx)
        if v is not None:
            out_c.append(int(m[idx]))
            out_v.append(v)
    return out_c, out_v


def spgevm_heap(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring,
                ninspect: float = 1):
    """Algorithms 4+5: heap-merge masked SpGEVM."""
    merger = HeapMerger(semiring, ninspect=ninspect)
    iters = []
    for k, uk in zip(u_cols, u_vals):
        lo, hi = int(B.indptr[k]), int(B.indptr[k + 1])
        iters.append(RowIterator(B.indices[lo:hi], B.data[lo:hi], float(uk), int(k)))
    return merger.merge(np.asarray(m_cols), iters)


def spgevm_inner(m_cols, a_cols, a_vals, B_csc, semiring: Semiring):
    """§4.1 pull-based kernel: one sparse dot product per unmasked entry.

    ``B_csc`` must be a :class:`~repro.sparse.csc.CSCMatrix`; the sorted
    row-id/column-id intersection is a two-pointer merge.
    """
    out_c: list[int] = []
    out_v: list[float] = []
    for j in m_cols:
        b_rows, b_vals = B_csc.col(int(j))
        p, q = 0, 0
        acc = None
        while p < len(a_cols) and q < len(b_rows):
            ak, bk = int(a_cols[p]), int(b_rows[q])
            if ak == bk:
                prod = semiring.mul_scalar(float(a_vals[p]), float(b_vals[q]))
                acc = prod if acc is None else float(semiring.add.ufunc(acc, prod))
                p += 1
                q += 1
            elif ak < bk:
                p += 1
            else:
                q += 1
        if acc is not None:
            out_c.append(int(j))
            out_v.append(acc)
    return out_c, out_v


# --------------------------------------------------------------------- #
# per-row reference kernels — complemented masks
# --------------------------------------------------------------------- #
def spgevm_msa_complement(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    accum = MSAComplementAccumulator(B.ncols, semiring)
    for j in m_cols:
        accum.set_not_allowed(int(j))
    for j, thunk in _iter_products(u_cols, u_vals, B, semiring):
        accum.insert(j, thunk)
    return accum.drain(int(j) for j in m_cols)


def spgevm_hash_complement(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    bound = sum(int(B.indptr[k + 1] - B.indptr[k]) for k in u_cols)
    accum = HashComplementAccumulator([int(j) for j in m_cols], bound, semiring)
    for j, thunk in _iter_products(u_cols, u_vals, B, semiring):
        accum.insert(j, thunk)
    return accum.drain()


def spgevm_heap_complement(m_cols, u_cols, u_vals, B: CSRMatrix, semiring: Semiring):
    merger = HeapMerger(semiring, ninspect=0)
    iters = []
    for k, uk in zip(u_cols, u_vals):
        lo, hi = int(B.indptr[k]), int(B.indptr[k + 1])
        iters.append(RowIterator(B.indices[lo:hi], B.data[lo:hi], float(uk), int(k)))
    return merger.merge_complement(np.asarray(m_cols), iters)


# --------------------------------------------------------------------- #
# matrix-level driver
# --------------------------------------------------------------------- #
_PLAIN = {
    "msa": spgevm_msa,
    "hash": spgevm_hash,
    "mca": spgevm_mca,
    "heap": lambda m, uc, uv, B, s: spgevm_heap(m, uc, uv, B, s, ninspect=1),
    "heapdot": lambda m, uc, uv, B, s: spgevm_heap(m, uc, uv, B, s, ninspect=INSPECT_ALL),
}

_COMPLEMENT = {
    "msa": spgevm_msa_complement,
    "hash": spgevm_hash_complement,
    "heap": spgevm_heap_complement,
    "heapdot": spgevm_heap_complement,  # NInspect forced to 0 either way
}


def reference_masked_spgemm(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: Mask,
    algorithm: str = "msa",
    semiring: Semiring = PLUS_TIMES,
) -> CSRMatrix:
    """Row-by-row Masked SpGEMM over the reference accumulators.

    This is the behavioural specification the vectorized kernels are tested
    against. O(pure-Python); use :func:`repro.core.api.masked_spgemm` for
    real workloads.
    """
    out_shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(out_shape)
    algorithm = algorithm.lower()
    if algorithm == "esc":
        # ESC is a chunk-fused re-organisation of the same masked Gustavson
        # product; its behavioural specification is MSA's row-by-row output.
        algorithm = "msa"

    if algorithm == "inner":
        if mask.complemented:
            raise MaskError("the pull-based Inner algorithm is not defined for "
                            "complemented masks (it would need a dot per absent "
                            "entry, O(n) per row)")
        B_csc = B.to_csc()
        kernel = None
    else:
        if algorithm == "mca" and mask.complemented:
            raise MCAAccumulator.complement_unsupported()
        table = _COMPLEMENT if mask.complemented else _PLAIN
        if algorithm not in table:
            raise AlgorithmError(
                f"unknown or unsupported reference algorithm {algorithm!r} "
                f"(complemented={mask.complemented}); available: {sorted(table)}"
            )
        kernel = table[algorithm]

    indptr = np.zeros(out_shape[0] + 1, dtype=INDEX_DTYPE)
    all_cols: list[list[int]] = []
    all_vals: list[list[float]] = []
    # Reuse one MSA across rows (the whole point of its O(ncols) init being
    # amortized); other accumulators are per-row by design.
    msa = MSAAccumulator(out_shape[1], semiring) if algorithm == "msa" and not mask.complemented else None

    for i in range(out_shape[0]):
        m_cols = mask.row(i)
        u_cols, u_vals = A.row(i)
        if algorithm == "inner":
            c, v = spgevm_inner(m_cols, u_cols, u_vals, B_csc, semiring)
        elif msa is not None:
            c, v = spgevm_msa(m_cols, u_cols, u_vals, B, semiring, accum=msa)
        else:
            c, v = kernel(m_cols, u_cols, u_vals, B, semiring)
        indptr[i + 1] = indptr[i] + len(c)
        all_cols.append(c)
        all_vals.append(v)

    indices = np.array([j for row in all_cols for j in row], dtype=INDEX_DTYPE)
    data = np.array([v for row in all_vals for v in row], dtype=np.float64)
    return CSRMatrix(indptr, indices, data, out_shape, check=False)
