"""Vectorized MCA (Mask Compressed Accumulator) kernel — paper §5.4.

The accumulator arrays have length ``nnz(m)`` and are indexed by *mask
rank*. The reference implementation computes ranks by co-iterating the
sorted mask with each sorted B row (Algorithm 3's two-pointer merge); the
vectorized tier computes the same ranks for a whole row's product stream at
once with ``np.searchsorted`` — a batched binary search that preserves MCA's
defining property (accumulator footprint proportional to nnz(m), not ncols).

MCA has no complement variant (see
:meth:`repro.accumulators.mca.MCAAccumulator.complement_unsupported`).
"""

from __future__ import annotations

import numpy as np

from ..accumulators.mca import MCAAccumulator
from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import expand_row, expand_row_pattern
from .types import RowBlock


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    if mask.complemented:
        raise MCAAccumulator.complement_unsupported()
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    mask_rnnz = np.diff(mask.indptr)
    max_m = int(mask_rnnz[rows].max(initial=0))
    values = np.empty(max_m, dtype=np.float64)
    touched = np.zeros(max_m, dtype=bool)

    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        nm = m_cols.size
        ranks = np.searchsorted(m_cols, bj)
        ranks[ranks == nm] = 0  # clamp; validity re-checked below
        valid = m_cols[ranks] == bj
        r = ranks[valid]
        values[:nm][np.unique(r)] = identity  # init only hit ranks
        add_at(values, r, prod[valid])
        touched[r] = True
        hit = touched[:nm]
        c = m_cols[hit]
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = values[:nm][hit]
        sizes[t] = k
        pos += k
        touched[:nm] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    if mask.complemented:
        raise MCAAccumulator.complement_unsupported()
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        ranks = np.searchsorted(m_cols, bj)
        ranks[ranks == m_cols.size] = 0
        valid = m_cols[ranks] == bj
        sizes[t] = np.unique(ranks[valid]).size
    return sizes
