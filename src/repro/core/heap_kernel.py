"""Vectorized Heap / HeapDot kernels — paper §5.5.

The heap algorithm's essence is: produce the row's partial products *in
sorted column order* via a k-way merge, intersect that stream with the
sorted mask, and collapse equal-column runs by accumulation. The vectorized
tier realizes the merge with an argsort (numpy's sort plays the heap's
role — same O(flops·log) asymptotics, same "no scatter table" memory
profile) followed by a segmented reduction (`ufunc.reduceat`).

Two execution strategies share this module:

**Chunk-fused (default)** — :func:`numeric_rows` / :func:`symbolic_rows`
process an entire chunk of rows with flat numpy passes and zero
Python-per-row work, reusing the ESC machinery: one batched expansion
(:func:`repro.core.expand.expand_rows`), one chunk-wide stable argsort of
composite keys ``t * ncols + col`` (the fused k-way merge — within a row
this is exactly the per-row column sort), one ``searchsorted`` mask
intersection of the sorted stream, and one ``reduceat`` collapse. The
complement variant is the same path with the intersection inverted. Chunks
are pre-split by :func:`repro.core.expand.fused_blocks` so composite keys
fit int64 and peak memory stays bounded.

**Per-row loop** — :func:`numeric_rows_loop` / :func:`symbolic_rows_loop`
keep the original paper-shaped row loop as the benchmark baseline
(``benchmarks/bench_chunk_fusion.py``) and to host the NInspect knob
(Algorithm 5), which decides how much mask inspection happens *before* an
element enters the heap:

* **Heap (NInspect=1)** — products enter the merge first and are filtered
  against the mask after: sort-then-filter. The fused path implements this
  order chunk-wide (filtering by key membership before or after the collapse
  is equivalent: all duplicates of a key share its membership), so fused and
  loop results are bit-identical.
* **HeapDot (NInspect=∞)** — full mask inspection up front means only
  provably-unmasked products enter the merge: filter-then-sort, a smaller
  sort in exchange for more inspection work. (The name: with the whole mask
  inspected per push the control flow approaches a dot-product per entry.)
  HeapDot stays per-row — it exists to measure the NInspect trade-off, which
  fusing away would erase.

The complement variant (NInspect forced to 0) sorts everything and keeps
the set difference S \\ m.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import (
    composite_keys,
    expand_row,
    expand_row_pattern,
    expand_rows,
    expand_rows_pattern,
    fused_blocks,
    mask_membership,
    per_row_flops,
)
from .types import RowBlock, concat_blocks, empty_block, write_rows_into


def _collapse_sorted(bj_sorted: np.ndarray, prod_sorted: np.ndarray,
                     add_ufunc: np.ufunc) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate equal-column runs of an already-sorted product stream —
    the heap algorithm's prevKey trick as a reduceat."""
    boundaries = np.empty(bj_sorted.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(bj_sorted[1:], bj_sorted[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    return bj_sorted[starts], add_ufunc.reduceat(prod_sorted, starts)


def _mask_membership_row(keys: np.ndarray, m_cols: np.ndarray) -> np.ndarray:
    """Boolean membership of each key in the sorted mask row (binary search
    stands in for the reference tier's two-pointer co-iteration)."""
    if m_cols.size == 0:
        return np.zeros(keys.size, dtype=bool)
    pos = np.searchsorted(m_cols, keys)
    pos[pos == m_cols.size] = 0
    return m_cols[pos] == keys


# --------------------------------------------------------------------- #
# chunk-fused passes (default)
# --------------------------------------------------------------------- #
def _fused_numeric(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                   rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, cols, vals = expand_rows(A, B, rows, semiring)
    if cols.size == 0:
        return empty_block(rows.size)
    # fused k-way merge: one stable argsort of composite keys sorts every
    # row's products by column while keeping equal columns in stream order
    keys = composite_keys(seg, cols, ncols)
    order = np.argsort(keys, kind="stable")
    ks, vs = keys[order], vals[order]
    keep = mask_membership(mask, rows, ks, ncols)
    if mask.complemented:
        np.logical_not(keep, out=keep)
    ks, vs = ks[keep], vs[keep]
    if ks.size == 0:
        return empty_block(rows.size)
    uk, uv = _collapse_sorted(ks, vs, semiring.add.ufunc)
    sizes = np.bincount(uk // ncols, minlength=rows.size).astype(INDEX_DTYPE)
    return RowBlock(sizes, (uk % ncols).astype(INDEX_DTYPE, copy=False), uv)


def _fused_symbolic(A: CSRMatrix, B: CSRMatrix, mask: Mask, rows: np.ndarray
                    ) -> np.ndarray:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return np.zeros(rows.size, dtype=INDEX_DTYPE)
    seg, cols = expand_rows_pattern(A, B, rows)
    if cols.size == 0:
        return np.zeros(rows.size, dtype=INDEX_DTYPE)
    ukeys = np.unique(composite_keys(seg, cols, ncols))
    keep = mask_membership(mask, rows, ukeys, ncols)
    if mask.complemented:
        np.logical_not(keep, out=keep)
    return np.bincount(ukeys[keep] // ncols,
                       minlength=rows.size).astype(INDEX_DTYPE)


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    """Chunk-fused Heap numeric pass (plain and complemented masks),
    bit-identical to :func:`numeric_rows_loop`."""
    return concat_blocks([_fused_numeric(A, B, mask, semiring, block)
                          for block in fused_blocks(A, B, rows)])


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Chunk-fused pattern-only pass: exact output nnz per requested row."""
    parts = [_fused_symbolic(A, B, mask, block)
             for block in fused_blocks(A, B, rows)]
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def numeric_rows_into(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray,
                      out_cols: np.ndarray, out_vals: np.ndarray,
                      offsets: np.ndarray) -> None:
    """Direct-write numeric pass (see :mod:`repro.core.types`): the sorted,
    collapsed block stream is row-grouped and column-sorted, so each fused
    block lands in the final CSR arrays with one slice copy."""
    write_rows_into(lambda b: _fused_numeric(A, B, mask, semiring, b),
                    fused_blocks(A, B, rows), offsets, out_cols, out_vals,
                    algorithm="heap")


# --------------------------------------------------------------------- #
# per-row loop (benchmark baseline + the NInspect knob)
# --------------------------------------------------------------------- #
def numeric_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray, *,
                      filter_first: bool = False) -> RowBlock:
    """``filter_first=False`` → Heap (NInspect=1); ``True`` → HeapDot
    (NInspect=∞). Complemented masks ignore the flag (NInspect=0)."""
    if mask.complemented:
        return _numeric_complement_loop(A, B, mask, semiring, rows)
    add_ufunc = semiring.add.ufunc

    mask_rnnz = np.diff(mask.indptr)
    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        if filter_first:
            # HeapDot: inspect the mask for every product, merge survivors.
            keep = _mask_membership_row(bj, m_cols)
            bj, prod = bj[keep], prod[keep]
            if bj.size == 0:
                continue
            order = np.argsort(bj, kind="stable")
            c, v = _collapse_sorted(bj[order], prod[order], add_ufunc)
        else:
            # Heap: merge everything, intersect the sorted stream with the mask.
            order = np.argsort(bj, kind="stable")
            bj_s, prod_s = bj[order], prod[order]
            keep = _mask_membership_row(bj_s, m_cols)
            bj_s, prod_s = bj_s[keep], prod_s[keep]
            if bj_s.size == 0:
                continue
            c, v = _collapse_sorted(bj_s, prod_s, add_ufunc)
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = v
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def numeric_rows_heapdot(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                         rows: np.ndarray) -> RowBlock:
    return numeric_rows_loop(A, B, mask, semiring, rows, filter_first=True)


def _numeric_complement_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                             semiring: Semiring, rows: np.ndarray) -> RowBlock:
    add_ufunc = semiring.add.ufunc
    flops = per_row_flops(A, B)
    bound = int(np.minimum(flops[rows], B.ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        order = np.argsort(bj, kind="stable")
        bj_s, prod_s = bj[order], prod[order]
        keep = ~_mask_membership_row(bj_s, m_cols)
        bj_s, prod_s = bj_s[keep], prod_s[keep]
        if bj_s.size == 0:
            continue
        c, v = _collapse_sorted(bj_s, prod_s, add_ufunc)
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = v
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                       rows: np.ndarray) -> np.ndarray:
    """Per-row pattern-only pass (the pre-fusion baseline)."""
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        member = _mask_membership_row(bj, m_cols)
        keep = ~member if mask.complemented else member
        kept = bj[keep]
        sizes[t] = np.unique(kept).size
    return sizes
