"""Vectorized Heap / HeapDot kernels — paper §5.5.

The heap algorithm's essence is: produce the row's partial products *in
sorted column order* via a k-way merge, intersect that stream with the
sorted mask, and collapse equal-column runs by accumulation. The vectorized
tier realizes the merge with an argsort (numpy's sort plays the heap's
role — same O(flops·log) asymptotics, same "no scatter table" memory
profile) followed by a segmented reduction (`ufunc.reduceat`).

The NInspect knob (Algorithm 5) decides how much mask inspection happens
*before* an element enters the heap:

* **Heap (NInspect=1)** — products enter the merge first and are filtered
  against the mask after: sort-then-filter.
* **HeapDot (NInspect=∞)** — full mask inspection up front means only
  provably-unmasked products enter the merge: filter-then-sort, a smaller
  sort in exchange for more inspection work. (The name: with the whole mask
  inspected per push the control flow approaches a dot-product per entry.)

The complement variant (NInspect forced to 0) sorts everything and keeps
the set difference S \\ m.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import expand_row, expand_row_pattern, per_row_flops
from .types import RowBlock


def _collapse_sorted(bj_sorted: np.ndarray, prod_sorted: np.ndarray,
                     add_ufunc: np.ufunc) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate equal-column runs of an already-sorted product stream —
    the heap algorithm's prevKey trick as a reduceat."""
    boundaries = np.empty(bj_sorted.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(bj_sorted[1:], bj_sorted[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    return bj_sorted[starts], add_ufunc.reduceat(prod_sorted, starts)


def _mask_membership(keys: np.ndarray, m_cols: np.ndarray) -> np.ndarray:
    """Boolean membership of each key in the sorted mask row (binary search
    stands in for the reference tier's two-pointer co-iteration)."""
    if m_cols.size == 0:
        return np.zeros(keys.size, dtype=bool)
    pos = np.searchsorted(m_cols, keys)
    pos[pos == m_cols.size] = 0
    return m_cols[pos] == keys


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray, *, filter_first: bool = False) -> RowBlock:
    """``filter_first=False`` → Heap (NInspect=1); ``True`` → HeapDot
    (NInspect=∞). Complemented masks ignore the flag (NInspect=0)."""
    if mask.complemented:
        return _numeric_complement(A, B, mask, semiring, rows)
    add_ufunc = semiring.add.ufunc

    mask_rnnz = np.diff(mask.indptr)
    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        if filter_first:
            # HeapDot: inspect the mask for every product, merge survivors.
            keep = _mask_membership(bj, m_cols)
            bj, prod = bj[keep], prod[keep]
            if bj.size == 0:
                continue
            order = np.argsort(bj, kind="stable")
            c, v = _collapse_sorted(bj[order], prod[order], add_ufunc)
        else:
            # Heap: merge everything, intersect the sorted stream with the mask.
            order = np.argsort(bj, kind="stable")
            bj_s, prod_s = bj[order], prod[order]
            keep = _mask_membership(bj_s, m_cols)
            bj_s, prod_s = bj_s[keep], prod_s[keep]
            if bj_s.size == 0:
                continue
            c, v = _collapse_sorted(bj_s, prod_s, add_ufunc)
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = v
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def numeric_rows_heapdot(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                         rows: np.ndarray) -> RowBlock:
    return numeric_rows(A, B, mask, semiring, rows, filter_first=True)


def _numeric_complement(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                        rows: np.ndarray) -> RowBlock:
    add_ufunc = semiring.add.ufunc
    flops = per_row_flops(A, B)
    bound = int(np.minimum(flops[rows], B.ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        order = np.argsort(bj, kind="stable")
        bj_s, prod_s = bj[order], prod[order]
        keep = ~_mask_membership(bj_s, m_cols)
        bj_s, prod_s = bj_s[keep], prod_s[keep]
        if bj_s.size == 0:
            continue
        c, v = _collapse_sorted(bj_s, prod_s, add_ufunc)
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = v
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        member = _mask_membership(bj, m_cols)
        keep = ~member if mask.complemented else member
        kept = bj[keep]
        sizes[t] = np.unique(kept).size
    return sizes
