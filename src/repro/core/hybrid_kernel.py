"""Hybrid per-row kernel — the paper's future work, implemented.

§9: "As future work, we will investigate hybrid algorithms that can use
different accumulators in the same Masked SpGEMM depending on the density of
the mask and parts of matrices being processed."

This kernel classifies every output row by its *row-local* densities and
routes it to the cheapest family:

* ``inner`` — when the row's pull cost (one dot per mask entry:
  ``nnz(m_i) · (nnz(A_i*) + d̄_B)``) clearly undercuts its push cost
  (``flops_i``);
* ``heap``  — when the row produces few products relative to its mask
  (sorting a short stream beats preparing any scatter table);
* ``msa``   — everything else (the paper's all-round winner).

Rows are grouped per class and each group runs its sub-kernel *batched*, so
the hybrid keeps the vectorized tier's efficiency; the per-row decisions are
pure integer arithmetic on the CSR metadata (no inspection of values).

Complemented masks route every row to MSA/Hash (the only families with
complement support and robust constants).
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from . import heap_kernel, inner_kernel, msa_kernel
from .expand import per_row_flops
from .types import RowBlock

#: class labels (order fixes the sub-kernel dispatch table)
_CLASSES = ("msa", "heap", "inner")


def classify_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, rows: np.ndarray
                  ) -> np.ndarray:
    """Per-row class index into ``_CLASSES`` for the requested rows."""
    if mask.complemented:
        return np.zeros(rows.size, dtype=np.int8)  # all MSA
    flops = per_row_flops(A, B)[rows].astype(np.float64)
    m_nnz = np.diff(mask.indptr)[rows].astype(np.float64)
    a_nnz = np.diff(A.indptr)[rows].astype(np.float64)
    d_b = B.nnz / max(B.nrows, 1)

    pull_cost = m_nnz * (a_nnz + d_b)
    push_cost = flops + m_nnz
    cls = np.zeros(rows.size, dtype=np.int8)  # default msa
    # heap: product stream much shorter than the mask -> sort it instead of
    # marking the whole mask row in a table
    cls[flops * 4.0 < m_nnz] = 1
    # inner: dots clearly cheaper than the push expansion
    cls[pull_cost * 2.0 < push_cost] = 2
    # rows with no mask (nothing to produce) are free in every class
    cls[m_nnz == 0] = 0
    return cls


def _merge_groups(rows: np.ndarray, group_rows: list[np.ndarray],
                  group_blocks: list[RowBlock]) -> RowBlock:
    """Reassemble per-group RowBlocks into the original row order.

    Fully vectorized: per-row destinations come from a cumsum over scattered
    sizes, and each group's payload moves with one fancy-indexed copy via the
    concat-ranges trick (a Python loop here would erase the hybrid's win).
    """
    from .expand import concat_ranges

    nrows = rows.size
    order = np.argsort(rows, kind="stable")  # rows are usually pre-sorted
    sorted_rows = rows[order]
    inv_positions = order  # position in `rows` of the t-th sorted row

    sizes = np.zeros(nrows, dtype=INDEX_DTYPE)
    group_pos: list[np.ndarray] = []
    for g_rows, block in zip(group_rows, group_blocks):
        p = inv_positions[np.searchsorted(sorted_rows, g_rows)]
        sizes[p] = block.sizes
        group_pos.append(p)
    offsets = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    cols = np.empty(total, dtype=INDEX_DTYPE)
    vals = np.empty(total, dtype=np.float64)
    for p, block in zip(group_pos, group_blocks):
        dst = concat_ranges(offsets[p], block.sizes)
        cols[dst] = block.cols
        vals[dst] = block.vals
    return RowBlock(sizes, cols, vals)


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    cls = classify_rows(A, B, mask, rows)
    kernels = (msa_kernel.numeric_rows, heap_kernel.numeric_rows,
               inner_kernel.numeric_rows)
    group_rows: list[np.ndarray] = []
    group_blocks: list[RowBlock] = []
    b_csc = None
    for c, kern in enumerate(kernels):
        sel = rows[cls == c]
        if sel.size == 0:
            continue
        if c == 2:  # share one CSC conversion across the inner group
            if b_csc is None:
                b_csc = B.to_csc()
            block = inner_kernel.numeric_rows(A, B, mask, semiring, sel,
                                              b_csc=b_csc)
        else:
            block = kern(A, B, mask, semiring, sel)
        group_rows.append(sel)
        group_blocks.append(block)
    if len(group_blocks) == 1 and group_rows[0].size == rows.size:
        return group_blocks[0]  # single class: no reshuffle needed
    return _merge_groups(rows, group_rows, group_blocks)


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    cls = classify_rows(A, B, mask, rows)
    kernels = (msa_kernel.symbolic_rows, heap_kernel.symbolic_rows,
               inner_kernel.symbolic_rows)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for c, kern in enumerate(kernels):
        where = np.flatnonzero(cls == c)
        if where.size == 0:
            continue
        sizes[where] = kern(A, B, mask, rows[where])
    return sizes
