"""Algorithm registry: names, metadata and kernel lookup.

The paper's evaluation names algorithms ``<Alg>-<Phases>`` (e.g. ``MSA-1P``,
``Hash-2P``). Here the algorithm key and phase count are separate arguments
to :func:`repro.core.api.masked_spgemm`; :func:`display_name` produces the
paper-style label, and :func:`parse_name` accepts it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import AlgorithmError
from . import (
    esc_kernel,
    hash_kernel,
    heap_kernel,
    hybrid_kernel,
    inner_kernel,
    mca_kernel,
    msa_kernel,
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata + kernel entry points for one Masked SpGEMM algorithm.

    ``numeric_into`` is the optional direct-write variant of the numeric
    pass (see :mod:`repro.core.types`): given planned per-row offsets it
    scatters straight into preallocated CSR arrays, which is how two-phase
    plans skip the stitch copy. The chunk-fused kernels provide it; per-row
    kernels leave it None and keep the stitch path.

    ``listed=False`` marks routing tiers: keys :func:`auto_select` may
    return and :func:`get_spec` resolves, but that stay out of
    :func:`available_algorithms` (they are alternate execution strategies
    of a listed algorithm, not distinct algorithms).
    """

    key: str
    label: str
    family: str  # "push" or "pull"
    numeric: Callable
    symbolic: Callable
    supports_complement: bool
    description: str
    numeric_into: Optional[Callable] = None
    listed: bool = True


_SPECS: dict[str, AlgorithmSpec] = {
    "msa": AlgorithmSpec(
        "msa", "MSA", "push",
        msa_kernel.numeric_rows, msa_kernel.symbolic_rows, True,
        "Masked Sparse Accumulator (paper §5.2), chunk-fused: one batched "
        "mask test + scatter per chunk (np.bincount fast path for +)",
        numeric_into=msa_kernel.numeric_rows_into,
    ),
    "esc": AlgorithmSpec(
        "esc", "ESC", "push",
        esc_kernel.numeric_rows, esc_kernel.symbolic_rows, True,
        "Chunk-fused expand-sort-compress: batched expansion, composite-key "
        "segmented reduction, chunk-wide mask intersection (no per-row work)",
        numeric_into=esc_kernel.numeric_rows_into,
    ),
    "hash": AlgorithmSpec(
        "hash", "Hash", "push",
        hash_kernel.numeric_rows, hash_kernel.symbolic_rows, True,
        "Open-addressing hash accumulator, LF 0.25 (paper §5.3), chunk-fused: "
        "the probe loop batches across all rows via per-row table offsets",
        numeric_into=hash_kernel.numeric_rows_into,
    ),
    "mca": AlgorithmSpec(
        "mca", "MCA", "push",
        mca_kernel.numeric_rows, mca_kernel.symbolic_rows, False,
        "Mask Compressed Accumulator indexed by mask rank (paper §5.4)",
    ),
    "heap": AlgorithmSpec(
        "heap", "Heap", "push",
        heap_kernel.numeric_rows, heap_kernel.symbolic_rows, True,
        "K-way merge with NInspect=1 mask peeking (paper §5.5), chunk-fused: "
        "one composite-key stable sort + reduceat collapse per chunk",
        numeric_into=heap_kernel.numeric_rows_into,
    ),
    "heapdot": AlgorithmSpec(
        "heapdot", "HeapDot", "push",
        heap_kernel.numeric_rows_heapdot, heap_kernel.symbolic_rows, True,
        "K-way merge with NInspect=∞ full mask inspection (paper §5.5)",
    ),
    "inner": AlgorithmSpec(
        "inner", "Inner", "pull",
        inner_kernel.numeric_rows, inner_kernel.symbolic_rows, False,
        "Pull-based sparse dot products over mask entries (paper §4.1)",
    ),
    "hybrid": AlgorithmSpec(
        "hybrid", "Hybrid", "mixed",
        hybrid_kernel.numeric_rows, hybrid_kernel.symbolic_rows, True,
        "Per-row dispatch between MSA/Heap/Inner by row-local density "
        "(the paper's §9 future-work hybrid, implemented)",
    ),
    "msa-loop": AlgorithmSpec(
        "msa-loop", "MSA(loop)", "push",
        msa_kernel.numeric_rows_loop, msa_kernel.symbolic_rows, True,
        "Per-row MSA loop (paper Alg. 2 verbatim): the routing tier "
        "auto_select picks for long-row mask-reuse regimes where the fused "
        "kernels' chunk-wide intermediates outgrow cache",
        listed=False,
    ),
}


def _native_entry(fn_name: str) -> Callable:
    """Late-bound reference into :mod:`repro.native.kernels` — the native
    package imports kernel modules from this package, so binding at call
    time (instead of importing it here) keeps the import graph acyclic
    regardless of which module loads first. The wrapper never probes: the
    native faces themselves delegate to the fused kernels when the
    compiled tier is unavailable."""
    def call(*args, **kwargs):
        from ..native import kernels as native_kernels

        return getattr(native_kernels, fn_name)(*args, **kwargs)

    call.__name__ = fn_name
    return call


#: the compiled tier (repro.native): execution strategies of msa/hash, not
#: new algorithms — listed=False like msa-loop, resolvable + plan-able, and
#: self-delegating to the fused kernels when no backend compiled
_SPECS["msa-native"] = AlgorithmSpec(
    "msa-native", "MSA(native)", "push",
    _native_entry("msa_numeric_rows"), msa_kernel.symbolic_rows, True,
    "Compiled (numba-JIT or cffi/C) three-state MSA accumulator loop with "
    "nogil chunk calls; auto_select routes msa/msa-loop regimes here when "
    "a native backend probes available, and the faces delegate to the "
    "fused numpy kernel when it does not",
    numeric_into=_native_entry("msa_numeric_rows_into"),
    listed=False,
)
_SPECS["hash-native"] = AlgorithmSpec(
    "hash-native", "Hash(native)", "push",
    _native_entry("hash_numeric_rows"), hash_kernel.symbolic_rows, True,
    "Compiled (numba-JIT or cffi/C) open-addressing hash accumulator "
    "(LF 0.25, Fibonacci slots) with nogil chunk calls; the wide-output "
    "counterpart of msa-native, same fallback contract",
    numeric_into=_native_entry("hash_numeric_rows_into"),
    listed=False,
)


#: base kernel behind each native routing key (degrade ladder + display)
NATIVE_BASE = {"msa-native": "msa", "hash-native": "hash"}

#: native routing key for each base kernel auto_select may pick. msa-loop
#: maps to msa-native too: the compiled loop *is* the per-row dense
#: accumulator that tier exists for, minus the interpreter overhead.
_NATIVE_VARIANT = {"msa": "msa-native", "hash": "hash-native",
                   "msa-loop": "msa-native"}


def native_variant(key: str) -> str:
    """The compiled routing key for ``key`` when the native tier is
    available on this machine, else ``key`` unchanged."""
    mapped = _NATIVE_VARIANT.get(key.lower())
    if mapped is None:
        return key
    from .. import native

    return mapped if native.native_available() else key

#: Baselines are dispatched separately (they are whole-matrix functions, not
#: row kernels) but listed so harnesses can enumerate everything.
BASELINE_KEYS = ("saxpy", "saxpy-scipy", "dot")


def get_spec(key: str) -> AlgorithmSpec:
    try:
        return _SPECS[key.lower()]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {key!r}; kernels: {sorted(_SPECS)}, "
            f"baselines: {list(BASELINE_KEYS)}"
        ) from None


def available_algorithms(*, complemented: bool | None = None,
                         include_baselines: bool = False) -> list[str]:
    """Algorithm keys, optionally filtered by complement support."""
    keys = [k for k, s in _SPECS.items() if s.listed
            and (complemented is None or not complemented
                 or s.supports_complement)]
    if include_baselines:
        keys += list(BASELINE_KEYS)
    return keys


def algorithm_info(key: str) -> AlgorithmSpec:
    return get_spec(key)


def display_name(key: str, phases: int = 1) -> str:
    """Paper-style label, e.g. ``display_name("msa", 2) == "MSA-2P"``."""
    base = {"saxpy": "SS:SAXPY*", "saxpy-scipy": "SS:SAXPY*(scipy)",
            "dot": "SS:DOT*"}.get(key.lower())
    if base is not None:
        return base
    return f"{get_spec(key).label}-{phases}P"


def parse_name(name: str) -> tuple[str, int]:
    """Inverse of :func:`display_name` for kernel algorithms:
    ``"MSA-1P" -> ("msa", 1)``. Bare keys default to one phase."""
    s = name.strip().lower()
    phases = 1
    if s.endswith("-1p"):
        s, phases = s[:-3], 1
    elif s.endswith("-2p"):
        s, phases = s[:-3], 2
    get_spec(s)  # validate
    return s, phases


#: Average partial products per output row below which interpreter overhead
#: (not memory traffic) dominates the per-row kernels, so the chunk-fused
#: ``esc`` kernel wins. Graph workloads (TC, k-truss) sit around ~10.
ESC_FLOPS_CUTOFF = 64.0

#: Total partial products above which the long-row mask-reuse regime
#: (mask about as dense as the inputs, > ESC_FLOPS_CUTOFF flops/row — the
#: k-truss support pattern, where C = E·E masked by E itself) routes to the
#: per-row ``msa-loop`` tier: the fused kernels expand a whole chunk's
#: partial products before masking, and past this much total work that
#: intermediate outgrows cache while the loop's dense accumulator stays
#: resident. Measured crossover on ktruss-support-rmat: s9 ≈ 64k total
#: flops (fused msa wins), s10 ≈ 139k (loop wins); 100k splits them.
LOOP_FLOPS_FLOOR = 100_000.0


def auto_select(A, B, mask, *, plan_free: bool = False) -> str:
    """Mask/input-density heuristic distilled from the paper's Fig. 7:

    * mask much sparser than the inputs → ``inner`` (pull wins),
    * inputs much sparser than the mask → ``heap``,
    * short rows (≲ :data:`ESC_FLOPS_CUTOFF` partial products on average) →
      ``esc`` (chunk-fused: per-row dispatch overhead would dominate),
    * long rows with a mask as dense as the inputs and enough total work
      (≥ :data:`LOOP_FLOPS_FLOOR`) → the per-row ``msa-loop`` tier
      (k-truss support regime: chunk-fused intermediates outgrow cache),
    * comparable densities → ``msa`` on small outputs (dense arrays cheap),
      ``hash`` on large ones (MSA's cache penalty grows with ncols).

    When the compiled tier (:mod:`repro.native`) probes available, the
    ``msa`` / ``hash`` / ``msa-loop`` picks route to their ``*-native``
    variants via :func:`native_variant` — same products bit-identically,
    minus the numpy dispatch overhead (msa-loop folds into msa-native:
    the compiled loop is that tier's per-row accumulator without the
    interpreter cost).

    This hybrid dispatcher is the paper's "future work" hybrid in its
    simplest form.

    ``plan_free=True`` is the dynamic-mask regime ("Masked Matrix
    Multiplication for Emergent Sparsity"): the mask is fresh every request
    and nothing will be cached or replayed, so the ``msa-loop`` routing tier
    — whose payoff assumes the mask-reuse serving pattern — is skipped and
    selection stays among the chunk-fused kernels.
    """
    nrows = max(A.nrows, 1)
    d_a = A.nnz / nrows
    d_b = B.nnz / max(B.nrows, 1)
    d_in = min(d_a, d_b)
    flops_per_row = d_a * d_b  # expected partial products per output row
    msa_cutoff = 1 << 15  # dense accumulator stops paying off past ~32k cols
    if mask.complemented:
        if flops_per_row <= ESC_FLOPS_CUTOFF:
            return "esc"
        return native_variant("msa" if B.ncols <= msa_cutoff else "hash")
    d_m = mask.nnz / max(mask.nrows, 1)
    if d_m * 4 <= d_in:
        return "inner"
    if d_in * 4 <= d_m:
        return "heap"
    if flops_per_row <= ESC_FLOPS_CUTOFF:
        return "esc"
    if (not plan_free and d_m * 2 >= d_in
            and nrows * flops_per_row >= LOOP_FLOPS_FLOOR
            and B.ncols <= msa_cutoff):
        return native_variant("msa-loop")
    return native_variant("msa" if B.ncols <= msa_cutoff else "hash")
