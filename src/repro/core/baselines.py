"""Baseline algorithms standing in for SuiteSparse:GraphBLAS (paper §8).

The paper benchmarks against two SS:GB code paths. We reproduce their
*algorithmic* traits (see DESIGN.md for the substitution argument):

* **SAXPY** (``saxpy``) — push-based multiply-then-mask: a full unmasked
  Gustavson SpGEMM followed by post-hoc mask application. This is the
  Fig. 1 "plain" path; it wastes exactly the flops the masked kernels skip.
  ``saxpy-scipy`` routes the multiply through scipy's compiled kernel —
  a *stronger* baseline in absolute time, same algorithmic shape.
* **DOT** (``dot``) — pull-based dot products like Inner, but paying the
  CSR→CSC transposition of B *inside every call*, the overhead the paper
  calls out for SS:DOT in §8.4 ("the matrix B is transposed in the library
  before each Masked SpGEMM").
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..sparse import ops
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from . import inner_kernel
from .plain import plain_spgemm, plain_spgemm_scipy
from .types import stitch_blocks


def saxpy_masked_spgemm(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                        semiring: Semiring = PLUS_TIMES,
                        *, use_scipy: bool = False) -> CSRMatrix:
    """Multiply-then-mask baseline (SS:SAXPY stand-in)."""
    shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(shape)
    full = (plain_spgemm_scipy if use_scipy else plain_spgemm)(A, B, semiring)
    return ops.apply_mask(full, mask.to_matrix(), complemented=mask.complemented)


def dot_masked_spgemm(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring = PLUS_TIMES) -> CSRMatrix:
    """Pull-based dot baseline (SS:DOT stand-in): Inner's kernel, but the
    CSC conversion of B happens inside the call, every call."""
    shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(shape)
    b_csc = B.to_csc()  # the per-call transposition overhead, by design
    rows = np.arange(shape[0], dtype=INDEX_DTYPE)
    block = inner_kernel.numeric_rows(A, B, mask, semiring, rows, b_csc=b_csc)
    return stitch_blocks([block], shape[0], shape[1])
