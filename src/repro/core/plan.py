"""Symbolic execution plans for Masked SpGEMM.

The paper's two-phase formulation (§6) splits a masked product into a
*symbolic* pass (exact output-row sizes from the patterns alone) and a
*numeric* pass. Both passes depend only on the **patterns** of A, B and the
mask — not on the stored values — so a plan computed once stays valid for
every later product whose operand patterns are unchanged. That invariance is
what :mod:`repro.service` amortizes: iterative algorithms (k-truss, MCL) and
serving workloads repeatedly multiply under the same or slowly-changing
structure, and a cached :class:`SymbolicPlan` lets every warm call skip both
``registry.auto_select`` and the symbolic pass.

:func:`build_plan` is the single place plans are created; consumers hand the
result back to :func:`repro.core.api.masked_spgemm` via its ``plan=``
argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AlgorithmError
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from . import registry


@dataclass(frozen=True)
class SymbolicPlan:
    """Everything the numeric pass needs that pure pattern analysis provides.

    Attributes
    ----------
    algorithm : str
        Resolved kernel key (never ``"auto"`` — resolution happened at plan
        time, so replaying the plan skips the density heuristic).
    phases : int
        The phase mode the plan was built for. ``row_sizes`` is only
        populated for two-phase plans.
    row_sizes : np.ndarray | None
        Exact per-output-row nnz from the symbolic pass (paper §6), or None
        for one-phase plans (nothing symbolic to reuse, but algorithm
        resolution still amortizes).
    shape : (nrows, ncols) of the output the plan describes.
    """

    algorithm: str
    phases: int
    shape: tuple[int, int]
    row_sizes: np.ndarray | None = field(default=None, repr=False)

    @property
    def nnz(self) -> int | None:
        """Planned output nnz (two-phase plans only)."""
        return None if self.row_sizes is None else int(self.row_sizes.sum())

    def check_output_shape(self, out_shape) -> None:
        if tuple(out_shape) != self.shape:
            raise AlgorithmError(
                f"plan was built for output shape {self.shape}, "
                f"got {tuple(out_shape)}"
            )

    # -- persistence ---------------------------------------------------- #
    def to_record(self) -> tuple[dict, np.ndarray | None]:
        """Split the plan into JSON-able metadata + its (optional) row-size
        array — the two halves an ``.npz``-backed store can persist. The
        inverse is :meth:`from_record`; :class:`repro.service.PlanStore`
        is the consumer."""
        meta = {"algorithm": self.algorithm, "phases": int(self.phases),
                "shape": [int(self.shape[0]), int(self.shape[1])]}
        return meta, self.row_sizes

    @classmethod
    def from_record(cls, meta: dict,
                    row_sizes: np.ndarray | None) -> "SymbolicPlan":
        """Rebuild a plan persisted via :meth:`to_record`, re-validating the
        invariants serialization cannot enforce (a 2P plan must carry row
        sizes matching its output row count)."""
        phases = int(meta["phases"])
        shape = (int(meta["shape"][0]), int(meta["shape"][1]))
        if phases == 2:
            if row_sizes is None or len(row_sizes) != shape[0]:
                raise AlgorithmError(
                    f"persisted two-phase plan for shape {shape} carries "
                    f"{'no' if row_sizes is None else len(row_sizes)} row "
                    f"sizes; expected {shape[0]}"
                )
            row_sizes = np.ascontiguousarray(row_sizes, dtype=INDEX_DTYPE)
        else:
            row_sizes = None
        return cls(algorithm=str(meta["algorithm"]), phases=phases,
                   shape=shape, row_sizes=row_sizes)


def build_plan(A: CSRMatrix, B: CSRMatrix, mask: Mask, *,
               algorithm: str = "auto", phases: int = 1) -> SymbolicPlan:
    """Resolve the algorithm and (for two-phase) run the symbolic pass.

    The returned plan is valid for any (A', B', mask') whose *patterns*
    equal those of (A, B, mask) — callers are responsible for that keying;
    :class:`repro.service.PlanCache` does it with pattern fingerprints.
    """
    if phases not in (1, 2):
        raise AlgorithmError(f"phases must be 1 or 2, got {phases!r}")
    out_shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(out_shape)
    algorithm = algorithm.lower()
    if algorithm == "auto":
        algorithm = registry.auto_select(A, B, mask)
    spec = registry.get_spec(algorithm)  # validates kernel name
    row_sizes = None
    if phases == 2:
        rows = np.arange(out_shape[0], dtype=INDEX_DTYPE)
        row_sizes = spec.symbolic(A, B, mask, rows)
    return SymbolicPlan(algorithm=algorithm, phases=phases,
                        shape=out_shape, row_sizes=row_sizes)


def splice_plan(plan: SymbolicPlan, A: CSRMatrix, B: CSRMatrix, mask: Mask,
                dirty_rows: np.ndarray) -> SymbolicPlan:
    """Incrementally revalidate a plan after an operand-pattern delta.

    ``dirty_rows`` is the exact set of output rows whose symbolic sizes may
    have changed (sorted unique; the delta machinery computes it — see
    :meth:`repro.service.Engine.apply_delta`). The symbolic pass re-runs
    over *only those rows* against the post-delta operands, and the fresh
    sizes are spliced into a copy of the plan's row-size array — a k-truss
    iteration that drops 2% of edges re-plans 2% of rows instead of all of
    them. The plan's resolved algorithm is kept as-is: every registered
    kernel computes the same masked product, so replaying the original
    resolution stays bit-identical even where the density heuristic would
    now pick differently.

    An empty dirty set returns ``plan`` itself (object identity — nothing
    ran); one-phase plans carry no symbolic state, so only their algorithm
    resolution is reused (same object, still valid for the new key).
    """
    out_shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(out_shape)
    plan.check_output_shape(out_shape)  # deltas preserve operand shapes
    if plan.row_sizes is None:
        return plan
    dirty = np.asarray(dirty_rows, dtype=INDEX_DTYPE)
    if dirty.size == 0:
        return plan
    if dirty.min() < 0 or dirty.max() >= plan.shape[0]:
        raise AlgorithmError(
            f"dirty rows out of range for plan shape {plan.shape}")
    spec = registry.get_spec(plan.algorithm)
    fresh = spec.symbolic(A, B, mask, dirty)
    row_sizes = plan.row_sizes.copy()
    row_sizes[dirty] = fresh
    return SymbolicPlan(algorithm=plan.algorithm, phases=plan.phases,
                        shape=plan.shape, row_sizes=row_sizes)
