"""Masked SpGEVM: the vector-level operation the paper's §5 is written in.

``v⊺ = m⊺ ⊙ (u⊺ B)`` — one output row of a Masked SpGEMM. The public
:func:`masked_spgevm` reuses the registered row kernels by viewing ``u`` as
a 1×n matrix (zero copy), so the vector API inherits every algorithm,
semiring and complement path of the matrix API, plus the reference tier.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..sparse.csr import CSRMatrix
from ..sparse.vector import SparseVector
from ..validation import INDEX_DTYPE
from .api import masked_spgemm


def _vector_mask(m: SparseVector | Mask | None, ncols: int,
                 complemented: bool) -> Mask:
    if m is None:
        return Mask.full((1, ncols))
    if isinstance(m, Mask):
        if m.shape != (1, ncols):
            raise ShapeError(
                f"mask shape {m.shape} does not match (1, {ncols})")
        return m
    indptr = np.array([0, m.nnz], dtype=INDEX_DTYPE)
    return Mask(indptr, m.indices.copy(), (1, ncols), complemented=complemented)


def masked_spgevm(
    u: SparseVector,
    B: CSRMatrix,
    m: SparseVector | Mask | None = None,
    *,
    algorithm: str = "auto",
    semiring: Semiring = PLUS_TIMES,
    complemented: bool = False,
    tier: str = "vectorized",
) -> SparseVector:
    """Compute ``v = m ⊙ (u·B)`` (or ``¬m ⊙ (u·B)``).

    Parameters
    ----------
    u : SparseVector of length B.nrows
        The input row vector (a row of A in the matrix formulation).
    B : CSRMatrix
    m : SparseVector, Mask or None
        Mask over the output length B.ncols. A SparseVector mask uses its
        pattern; ``complemented`` applies in that case. ``None`` = unmasked.
    algorithm, semiring, tier : as in :func:`repro.core.api.masked_spgemm`.
    """
    if u.n != B.nrows:
        raise ShapeError(
            f"u has length {u.n} but B has {B.nrows} rows")
    mask = _vector_mask(m, B.ncols, complemented)
    out = masked_spgemm(u.as_row_matrix(), B, mask, algorithm=algorithm,
                        semiring=semiring, tier=tier)
    return SparseVector.from_row_matrix(out)
