"""Vectorized helpers shared by the push-based kernels.

The central primitive is *row expansion*: for output row i, gather the
column ids and values of every partial product ``A_ik ⊗ B_kj`` — i.e. the
concatenation of the scaled rows ``{A_ik · B_k* : A_ik ≠ 0}``. This is the
paper's memory-access patterns 1-3 (§4.2: unit-stride read of A's row,
random-like reads of B's row pointers, stanza-like reads of B's nonzeros)
collapsed into numpy gathers. What each algorithm then *does* with the
expanded stream (scatter into MSA/Hash/MCA, or merge/sort for Heap) is what
differentiates the kernels.
"""

from __future__ import annotations

import numpy as np

from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE


def concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat index array enumerating ``[starts[t], starts[t]+lens[t])`` for all t.

    Standard cumsum trick; O(total) with no Python loop. Empty ranges are
    handled (they contribute nothing).
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    nz = lens > 0
    s, l = starts[nz], lens[nz]
    step = np.ones(total, dtype=INDEX_DTYPE)
    step[0] = s[0]
    ends = np.cumsum(l)[:-1]
    step[ends] = s[1:] - (s[:-1] + l[:-1] - 1)
    return np.cumsum(step)


def expand_row(A: CSRMatrix, B: CSRMatrix, i: int, semiring: Semiring
               ) -> tuple[np.ndarray, np.ndarray]:
    """All partial products of output row ``i``: ``(col_ids, values)``.

    Products appear grouped by k (i.e. in B-row order), each group sorted by
    column — the exact order a sequential Gustavson loop would generate them.
    """
    lo, hi = A.indptr[i], A.indptr[i + 1]
    a_cols = A.indices[lo:hi]
    a_vals = A.data[lo:hi]
    starts = B.indptr[a_cols]
    lens = B.indptr[a_cols + 1] - starts
    flat = concat_ranges(starts, lens)
    bj = B.indices[flat]
    bv = B.data[flat]
    av = np.repeat(a_vals, lens)
    return bj, semiring.multiply(av, bv)


def expand_row_pattern(A: CSRMatrix, B: CSRMatrix, i: int) -> np.ndarray:
    """Column ids only — the symbolic-phase version of :func:`expand_row`."""
    lo, hi = A.indptr[i], A.indptr[i + 1]
    a_cols = A.indices[lo:hi]
    starts = B.indptr[a_cols]
    lens = B.indptr[a_cols + 1] - starts
    return B.indices[concat_ranges(starts, lens)]


def per_row_flops(A: CSRMatrix, B: CSRMatrix) -> np.ndarray:
    """Number of partial products per output row:
    ``flops_i = Σ_{k: A_ik ≠ 0} nnz(B_k*)`` (one multiply each; the common
    "2·flops" convention doubles this for the adds — see
    :mod:`repro.bench.metrics`)."""
    lens = np.diff(B.indptr)[A.indices] if A.nnz else np.empty(0, dtype=INDEX_DTYPE)
    csum = np.concatenate([[0], np.cumsum(lens)])
    return (csum[A.indptr[1:]] - csum[A.indptr[:-1]]).astype(INDEX_DTYPE)


def total_flops(A: CSRMatrix, B: CSRMatrix) -> int:
    """``flops(AB)`` — total multiply count of the unmasked product."""
    if A.nnz == 0:
        return 0
    return int(np.diff(B.indptr)[A.indices].sum())
