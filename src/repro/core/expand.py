"""Vectorized helpers shared by the push-based kernels.

The central primitive is *row expansion*: for output row i, gather the
column ids and values of every partial product ``A_ik ⊗ B_kj`` — i.e. the
concatenation of the scaled rows ``{A_ik · B_k* : A_ik ≠ 0}``. This is the
paper's memory-access patterns 1-3 (§4.2: unit-stride read of A's row,
random-like reads of B's row pointers, stanza-like reads of B's nonzeros)
collapsed into numpy gathers. What each algorithm then *does* with the
expanded stream (scatter into MSA/Hash/MCA, or merge/sort for Heap) is what
differentiates the kernels.

Two granularities are provided:

* :func:`expand_row` — one output row (the original per-row kernels);
* :func:`expand_rows` — a whole *chunk* of rows in one batched gather,
  returning a flat partial-product stream plus per-row segment offsets.
  This is the expansion half of the ESC (expand-sort-compress) strategy;
  the chunk-fused kernels (:mod:`repro.core.esc_kernel` and the fused MSA
  passes) build on it to run zero Python-per-row work.
"""

from __future__ import annotations

import numpy as np

from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE

_INT64_MAX = np.iinfo(np.int64).max
#: largest key value the int32 fast path may produce (keys range over
#: ``[0, chunk_rows * ncols)``, so the test is against the max key + 1)
_INT32_MAX = np.iinfo(np.int32).max


def concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat index array enumerating ``[starts[t], starts[t]+lens[t])`` for all t.

    Standard cumsum trick; O(total) with no Python loop. Empty ranges are
    handled (they contribute nothing).

    The step/cumsum arithmetic runs — and the result is returned — in int64
    regardless of ``INDEX_DTYPE``: a narrower dtype would silently wrap once
    the enumerated positions (e.g. ``B.indptr[-1]`` during expansion) exceed
    its range, and the intermediate cumsum can overflow even earlier.
    """
    lens = np.asarray(lens)
    total = int(lens.sum(dtype=np.int64))
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nz = lens > 0
    s = np.asarray(starts)[nz].astype(np.int64, copy=False)
    l = lens[nz].astype(np.int64, copy=False)
    step = np.ones(total, dtype=np.int64)
    step[0] = s[0]
    ends = np.cumsum(l)[:-1]
    step[ends] = s[1:] - (s[:-1] + l[:-1] - 1)
    return np.cumsum(step)


def expand_row(A: CSRMatrix, B: CSRMatrix, i: int, semiring: Semiring
               ) -> tuple[np.ndarray, np.ndarray]:
    """All partial products of output row ``i``: ``(col_ids, values)``.

    Products appear grouped by k (i.e. in B-row order), each group sorted by
    column — the exact order a sequential Gustavson loop would generate them.
    """
    lo, hi = A.indptr[i], A.indptr[i + 1]
    a_cols = A.indices[lo:hi]
    a_vals = A.data[lo:hi]
    starts = B.indptr[a_cols]
    lens = B.indptr[a_cols + 1] - starts
    flat = concat_ranges(starts, lens)
    bj = B.indices[flat]
    bv = B.data[flat]
    av = np.repeat(a_vals, lens)
    return bj, semiring.multiply(av, bv)


def expand_row_pattern(A: CSRMatrix, B: CSRMatrix, i: int) -> np.ndarray:
    """Column ids only — the symbolic-phase version of :func:`expand_row`."""
    lo, hi = A.indptr[i], A.indptr[i + 1]
    a_cols = A.indices[lo:hi]
    starts = B.indptr[a_cols]
    lens = B.indptr[a_cols + 1] - starts
    return B.indices[concat_ranges(starts, lens)]


# --------------------------------------------------------------------- #
# chunk-fused expansion (whole row-chunks, no Python-per-row work)
# --------------------------------------------------------------------- #
def _gather_rows(indptr: np.ndarray, rows: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Flat positions of every stored entry of ``rows`` plus per-row lengths."""
    starts = indptr[rows]
    lens = (indptr[rows + 1] - starts).astype(np.int64, copy=False)
    return concat_ranges(starts, lens), lens


def row_segments(lens: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of per-row lengths: ``seg[t]..seg[t+1]`` brackets
    row t's slice of a flattened chunk stream. Always int64."""
    seg = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(lens, out=seg[1:])
    return seg


def expand_rows(A: CSRMatrix, B: CSRMatrix, rows: np.ndarray,
                semiring: Semiring) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All partial products of an entire chunk of output rows in one batched
    gather: ``(row_seg_offsets, cols, vals)``.

    ``row_seg_offsets`` has ``rows.size + 1`` entries; the products of the
    t-th requested row occupy ``cols[seg[t]:seg[t+1]]`` / ``vals[...]`` in
    exactly the order :func:`expand_row` would produce them (grouped by k,
    each group sorted by column). No per-row Python work: two
    :func:`concat_ranges` passes cover the whole chunk.
    """
    a_sel, a_lens = _gather_rows(A.indptr, rows)
    a_cols = A.indices[a_sel]
    b_starts = B.indptr[a_cols]
    b_lens = (B.indptr[a_cols + 1] - b_starts).astype(np.int64, copy=False)
    flat = concat_ranges(b_starts, b_lens)
    cols = B.indices[flat]
    vals = semiring.multiply(np.repeat(A.data[a_sel], b_lens), B.data[flat])
    # fold per-A-entry product counts into per-row counts via the same
    # prefix-sum trick (b_lens segments delimited by each row's A entries)
    prod_csum = row_segments(b_lens)
    seg = prod_csum[row_segments(a_lens)]
    return seg, cols, vals


def expand_rows_pattern(A: CSRMatrix, B: CSRMatrix, rows: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Column ids only — the symbolic-phase version of :func:`expand_rows`."""
    a_sel, a_lens = _gather_rows(A.indptr, rows)
    a_cols = A.indices[a_sel]
    b_starts = B.indptr[a_cols]
    b_lens = (B.indptr[a_cols + 1] - b_starts).astype(np.int64, copy=False)
    cols = B.indices[concat_ranges(b_starts, b_lens)]
    seg = row_segments(b_lens)[row_segments(a_lens)]
    return seg, cols


def flatten_rows_pattern(indptr: np.ndarray, indices: np.ndarray,
                         rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the selected rows of a CSR pattern (typically the mask) into
    one stream: ``(row_seg_offsets, cols)``."""
    sel, lens = _gather_rows(indptr, rows)
    return row_segments(lens), indices[sel]


def composite_keys(seg: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Fuse (chunk-local row, column) into one sortable key ``t * ncols +
    col``. Callers must have bounded the chunk with :func:`key_safe_blocks`
    so the keys cannot overflow int64.

    Keys are **int32 whenever the chunk's key space fits** (``chunk_rows ×
    ncols < 2^31``) — which the cache-budget chunk sizing guarantees in
    practice — halving the traffic of every downstream sort/searchsorted
    pass; the int64 fallback covers huge chunks. The dtype is a pure
    function of ``(seg.size, ncols)``, so the two key streams every fused
    kernel intersects (products and flattened mask, built over the same
    rows) always agree.
    """
    nrows_chunk = seg.size - 1
    # max(…, 1): a zero-row chunk must not pick int32 for a cast-unsafe
    # ncols (the arrays are empty either way, but np.int32(ncols) is not)
    dtype = (np.int32 if max(nrows_chunk, 1) * int(ncols) <= _INT32_MAX
             else np.int64)
    prow = np.repeat(np.arange(nrows_chunk, dtype=dtype), np.diff(seg))
    return prow * dtype(ncols) + cols.astype(dtype, copy=False)


def sorted_membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``needles`` occur in the *sorted* ``haystack``?

    One ``searchsorted`` with the insertion point clamped to the last slot:
    a needle past the end then compares against the largest haystack entry
    and correctly reads as absent. ``needles`` need not be sorted.
    """
    if haystack.size == 0:
        return np.zeros(needles.size, dtype=bool)
    pos = np.minimum(np.searchsorted(haystack, needles), haystack.size - 1)
    return haystack[pos] == needles


def mask_membership(mask, rows: np.ndarray, keys: np.ndarray, ncols: int
                    ) -> np.ndarray:
    """Boolean membership of composite ``keys`` in the chunk's flattened mask
    keys — one searchsorted for the whole chunk. Shared by every chunk-fused
    kernel (ESC's post-compress filter, heap's sorted-stream intersection)."""
    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size == 0:
        return np.zeros(keys.size, dtype=bool)
    mkeys = composite_keys(mseg, mcols, ncols)
    return sorted_membership(mkeys, keys)


def key_safe_blocks(rows: np.ndarray, ncols: int) -> list[np.ndarray]:
    """Split a chunk so ``chunk_rows * ncols`` composite keys fit in int64.

    In practice one block: the guard only bites at ``rows.size * ncols >
    2^63``, but silent key wraparound would corrupt results, so the fused
    kernels always go through here.
    """
    limit = int(_INT64_MAX // max(ncols, 1))
    if rows.size <= limit:
        return [rows]
    return [rows[i:i + limit] for i in range(0, rows.size, limit)]


#: Partial-product budget per fused block: intermediates are O(stream), so
#: unbounded chunks on long-row inputs would trade the per-row kernels'
#: O(ncols) workspace for gigabytes of keys/values. ~1M products keeps the
#: fused working set in the tens of MB while leaving short-row chunks whole.
FUSE_FLOPS_BUDGET = 1 << 20


def fused_blocks(A: CSRMatrix, B: CSRMatrix, rows: np.ndarray, *,
                 max_flops: int = FUSE_FLOPS_BUDGET) -> list[np.ndarray]:
    """Split a chunk for fused execution: composite keys must fit int64
    (:func:`key_safe_blocks`) and each block's partial-product stream stays
    ≤ ``max_flops`` (single rows may exceed it — a block is never empty), so
    peak memory is bounded no matter how long the rows are.
    """
    out: list[np.ndarray] = []
    for kb in key_safe_blocks(rows, B.ncols):
        if kb.size == 0:
            out.append(kb)
            continue
        if (int(kb[-1]) - int(kb[0]) == kb.size - 1
                and (kb.size == 1 or bool(np.all(np.diff(kb) == 1)))):
            # contiguous chunk (the runner's usual shape): slice A's entries
            # directly instead of re-running the concat_ranges gather that
            # expand_rows will do anyway
            a_cols = A.indices[int(A.indptr[kb[0]]): int(A.indptr[kb[-1] + 1])]
            a_lens = (A.indptr[kb + 1] - A.indptr[kb]).astype(np.int64,
                                                              copy=False)
        else:
            a_sel, a_lens = _gather_rows(A.indptr, kb)
            a_cols = A.indices[a_sel]
        b_lens = (B.indptr[a_cols + 1] - B.indptr[a_cols]).astype(np.int64,
                                                                  copy=False)
        off = row_segments(b_lens)[row_segments(a_lens)]  # flops prefix sum
        if off[-1] <= max_flops:
            out.append(kb)
            continue
        start = 0
        while start < kb.size:
            end = int(np.searchsorted(off, off[start] + max_flops,
                                      side="right")) - 1
            end = min(max(end, start + 1), kb.size)
            out.append(kb[start:end])
            start = end
    return out


def per_row_flops(A: CSRMatrix, B: CSRMatrix) -> np.ndarray:
    """Number of partial products per output row:
    ``flops_i = Σ_{k: A_ik ≠ 0} nnz(B_k*)`` (one multiply each; the common
    "2·flops" convention doubles this for the adds — see
    :mod:`repro.bench.metrics`)."""
    lens = np.diff(B.indptr)[A.indices] if A.nnz else np.empty(0, dtype=INDEX_DTYPE)
    csum = np.concatenate([[0], np.cumsum(lens)])
    return (csum[A.indptr[1:]] - csum[A.indptr[:-1]]).astype(INDEX_DTYPE)


def total_flops(A: CSRMatrix, B: CSRMatrix) -> int:
    """``flops(AB)`` — total multiply count of the unmasked product."""
    if A.nnz == 0:
        return 0
    return int(np.diff(B.indptr)[A.indices].sum())
