"""Chunk-fused ESC (expand–sort–compress) kernel.

The paper's kernels are formulated per output row; this kernel instead
processes a whole *chunk* of rows with a constant number of flat numpy
passes — the ESC strategy of highly-parallel SpGEMM (Buluç & Gilbert) with
the mask intersection batched chunk-wide, in the spirit of Wheatman et
al.'s masked matrix multiplication for emergent sparsity:

1. **expand** — one batched gather produces the chunk's entire partial-
   product stream (:func:`repro.core.expand.expand_rows`);
2. **sort** — products get composite keys ``t * ncols + col`` (t =
   chunk-local row; chunks pre-split by
   :func:`repro.core.expand.fused_blocks` so keys fit int64 *and* the
   stream stays under the flops budget, bounding peak memory) and one
   stable argsort brings duplicates together — the fused equivalent of
   ``np.lexsort((col, row))``;
3. **compress** — ``ufunc.reduceat`` over the sorted stream merges
   duplicates in their original Gustavson order (bit-identical sums);
4. **mask** — one ``searchsorted`` of the compressed keys against the
   mask's flattened keys keeps entries in the mask (or, complemented,
   drops them) for the whole chunk at once.

Because mask application is a post-filter on compressed keys, the
complement variant is the same code path with the filter inverted — ESC
supports complemented masks natively.

On low-degree workloads (TC / k-truss rows average ~10 partial products)
the per-row kernels are bound by Python call overhead, not memory traffic;
ESC's cost is O(flops · log flops) flat numpy work, which wins whenever
rows are small and plentiful. ``registry.auto_select`` routes that regime
here.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import (
    composite_keys,
    expand_rows,
    expand_rows_pattern,
    fused_blocks,
    mask_membership,
)
from .types import RowBlock, concat_blocks, empty_block, write_rows_into


def _compress(keys: np.ndarray, vals: np.ndarray, add: np.ufunc
              ) -> tuple[np.ndarray, np.ndarray]:
    """Sort the product stream by composite key and merge duplicates.

    The stable sort keeps equal keys in stream order, so ``reduceat``
    accumulates each output entry's products in exactly the order a
    sequential Gustavson loop would — float sums are bit-identical to the
    per-row kernels and the reference tier.
    """
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    starts = np.concatenate([[0], np.flatnonzero(ks[1:] != ks[:-1]) + 1])
    return ks[starts], add.reduceat(vals[order], starts)


def _numeric_chunk(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                   rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, cols, vals = expand_rows(A, B, rows, semiring)
    if cols.size == 0:
        return empty_block(rows.size)
    keys = composite_keys(seg, cols, ncols)
    ukeys, uvals = _compress(keys, vals, semiring.add.ufunc)
    keep = mask_membership(mask, rows, ukeys, ncols)
    if mask.complemented:
        np.logical_not(keep, out=keep)
    fk = ukeys[keep]
    sizes = np.bincount(fk // ncols, minlength=rows.size).astype(INDEX_DTYPE)
    return RowBlock(sizes, (fk % ncols).astype(INDEX_DTYPE, copy=False),
                    uvals[keep])


def _symbolic_chunk(A: CSRMatrix, B: CSRMatrix, mask: Mask, rows: np.ndarray
                    ) -> np.ndarray:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return np.zeros(rows.size, dtype=INDEX_DTYPE)
    seg, cols = expand_rows_pattern(A, B, rows)
    if cols.size == 0:
        return np.zeros(rows.size, dtype=INDEX_DTYPE)
    ukeys = np.unique(composite_keys(seg, cols, ncols))
    keep = mask_membership(mask, rows, ukeys, ncols)
    if mask.complemented:
        np.logical_not(keep, out=keep)
    return np.bincount(ukeys[keep] // ncols,
                       minlength=rows.size).astype(INDEX_DTYPE)


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    """Chunk-fused numeric pass (plain and complemented masks)."""
    return concat_blocks([_numeric_chunk(A, B, mask, semiring, block)
                          for block in fused_blocks(A, B, rows)])


def numeric_rows_into(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray,
                      out_cols: np.ndarray, out_vals: np.ndarray,
                      offsets: np.ndarray) -> None:
    """Direct-write numeric pass (see :mod:`repro.core.types`): each fused
    block's compressed stream is already row-grouped and column-sorted, so it
    lands in the final CSR arrays with one slice copy — no per-block concat,
    no stitch."""
    write_rows_into(lambda b: _numeric_chunk(A, B, mask, semiring, b),
                    fused_blocks(A, B, rows), offsets, out_cols, out_vals,
                    algorithm="esc")


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Pattern-only pass: unique compressed keys filtered by the mask."""
    parts = [_symbolic_chunk(A, B, mask, block)
             for block in fused_blocks(A, B, rows)]
    return parts[0] if len(parts) == 1 else np.concatenate(parts)
