"""Shared types for the vectorized kernel tier.

Every vectorized kernel module implements the same two-function protocol so
the dispatcher and the parallel layer can treat algorithms uniformly:

``numeric_rows(A, B, mask, semiring, rows) -> RowBlock``
    Compute output rows ``rows`` (an int64 array of row ids) and return their
    sizes plus concatenated column ids / values.

``symbolic_rows(A, B, mask, rows) -> np.ndarray``
    Pattern-only pass returning the exact nnz of each requested output row —
    the paper's symbolic phase (§6).

The chunk-fused kernels additionally implement the *direct-write* variant of
the numeric pass, which is what the two-phase formulation (§6) exists for —
once the symbolic pass has produced exact row sizes, the numeric pass can
scatter straight into the final CSR arrays with zero stitch copies:

``numeric_rows_into(A, B, mask, semiring, rows, out_cols, out_vals, offsets)``
    Compute output rows ``rows`` and write row t's entries into
    ``out_cols[offsets[t]:offsets[t+1]]`` / ``out_vals[...]``. ``offsets``
    has ``rows.size + 1`` entries with consecutive destinations
    (``offsets[t+1] == offsets[t] + planned_size[t]``) — for contiguous row
    chunks this is simply a slice of the output ``indptr``. The kernel must
    validate its computed row sizes against ``offsets`` (a stale plan fails
    loudly instead of corrupting neighbouring rows); use
    :func:`write_block_into`.

The dispatcher stitches :class:`RowBlock` chunks into a CSR matrix (or, when
a plan provides exact sizes, hands disjoint slices of the preallocated
arrays to ``numeric_rows_into``); chunks are independent, which is exactly
the row-parallelism the paper exploits ("plenty of coarse-grained
parallelism across rows", §3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError
from ..validation import INDEX_DTYPE


@dataclass
class RowBlock:
    """Computed output rows: ``sizes[t]`` entries for the t-th requested row,
    stored consecutively in ``cols`` / ``vals``."""

    sizes: np.ndarray  # int64, len == len(rows)
    cols: np.ndarray   # int64, len == sizes.sum()
    vals: np.ndarray   # float64, len == sizes.sum()

    def __post_init__(self):
        assert self.cols.size == self.vals.size == int(self.sizes.sum())


def empty_block(nrows: int) -> RowBlock:
    """A :class:`RowBlock` covering ``nrows`` rows with no entries."""
    return RowBlock(np.zeros(nrows, dtype=INDEX_DTYPE),
                    np.empty(0, dtype=INDEX_DTYPE),
                    np.empty(0, dtype=np.float64))


def concat_blocks(parts: list[RowBlock]) -> RowBlock:
    """Concatenate consecutive :class:`RowBlock` parts of one chunk."""
    if len(parts) == 1:
        return parts[0]
    return RowBlock(np.concatenate([p.sizes for p in parts]),
                    np.concatenate([p.cols for p in parts]),
                    np.concatenate([p.vals for p in parts]))


def write_block_into(block: RowBlock, offsets: np.ndarray,
                     out_cols: np.ndarray, out_vals: np.ndarray, *,
                     algorithm: str = "") -> None:
    """Write one consecutive-destination :class:`RowBlock` into preallocated
    CSR arrays at the planned ``offsets`` (``block.sizes.size + 1`` entries).

    The fused kernels produce their block streams row-grouped and
    column-sorted, so the whole block lands with one slice copy. Computed
    sizes are validated against the planned ones first: a mismatch means the
    plan's symbolic sizes are stale (operand patterns changed) or the kernel
    diverged, and writing anyway would corrupt neighbouring rows' slices.
    """
    if not np.array_equal(block.sizes, np.diff(offsets)):
        raise AlgorithmError(
            f"{algorithm or 'direct-write'}: computed row sizes differ from "
            f"the planned offsets — stale plan (operand patterns changed "
            f"since the symbolic pass) or kernel divergence"
        )
    lo, hi = int(offsets[0]), int(offsets[-1])
    out_cols[lo:hi] = block.cols
    out_vals[lo:hi] = block.vals


def write_rows_into(chunk_fn, blocks, offsets: np.ndarray,
                    out_cols: np.ndarray, out_vals: np.ndarray, *,
                    algorithm: str = "") -> None:
    """Drive a kernel's ``numeric_rows_into``: run ``chunk_fn`` on each
    fused block (a consecutive slice of the requested rows) and land its
    RowBlock at the planned offsets via :func:`write_block_into`. The four
    chunk-fused kernels are one-line wrappers over this."""
    t = 0
    for block in blocks:
        write_block_into(chunk_fn(block), offsets[t:t + block.size + 1],
                         out_cols, out_vals, algorithm=algorithm)
        t += block.size


def stitch_blocks(blocks: list[RowBlock], nrows: int, ncols: int):
    """Assemble per-chunk :class:`RowBlock` results (in row order) into a
    canonical CSR matrix."""
    from ..sparse.csr import CSRMatrix

    sizes = (np.concatenate([b.sizes for b in blocks])
             if blocks else np.zeros(0, dtype=INDEX_DTYPE))
    if sizes.size != nrows:
        raise ValueError(f"blocks cover {sizes.size} rows, expected {nrows}")
    indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(sizes, out=indptr[1:])
    cols = (np.concatenate([b.cols for b in blocks])
            if blocks else np.empty(0, dtype=INDEX_DTYPE))
    vals = (np.concatenate([b.vals for b in blocks])
            if blocks else np.empty(0, dtype=np.float64))
    return CSRMatrix(indptr, cols, vals, (nrows, ncols), check=False)
