"""Shared types for the vectorized kernel tier.

Every vectorized kernel module implements the same two-function protocol so
the dispatcher and the parallel layer can treat algorithms uniformly:

``numeric_rows(A, B, mask, semiring, rows) -> RowBlock``
    Compute output rows ``rows`` (an int64 array of row ids) and return their
    sizes plus concatenated column ids / values.

``symbolic_rows(A, B, mask, rows) -> np.ndarray``
    Pattern-only pass returning the exact nnz of each requested output row —
    the paper's symbolic phase (§6).

The dispatcher stitches :class:`RowBlock` chunks into a CSR matrix; chunks
are independent, which is exactly the row-parallelism the paper exploits
("plenty of coarse-grained parallelism across rows", §3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..validation import INDEX_DTYPE


@dataclass
class RowBlock:
    """Computed output rows: ``sizes[t]`` entries for the t-th requested row,
    stored consecutively in ``cols`` / ``vals``."""

    sizes: np.ndarray  # int64, len == len(rows)
    cols: np.ndarray   # int64, len == sizes.sum()
    vals: np.ndarray   # float64, len == sizes.sum()

    def __post_init__(self):
        assert self.cols.size == self.vals.size == int(self.sizes.sum())


def empty_block(nrows: int) -> RowBlock:
    """A :class:`RowBlock` covering ``nrows`` rows with no entries."""
    return RowBlock(np.zeros(nrows, dtype=INDEX_DTYPE),
                    np.empty(0, dtype=INDEX_DTYPE),
                    np.empty(0, dtype=np.float64))


def concat_blocks(parts: list[RowBlock]) -> RowBlock:
    """Concatenate consecutive :class:`RowBlock` parts of one chunk."""
    if len(parts) == 1:
        return parts[0]
    return RowBlock(np.concatenate([p.sizes for p in parts]),
                    np.concatenate([p.cols for p in parts]),
                    np.concatenate([p.vals for p in parts]))


def stitch_blocks(blocks: list[RowBlock], nrows: int, ncols: int):
    """Assemble per-chunk :class:`RowBlock` results (in row order) into a
    canonical CSR matrix."""
    from ..sparse.csr import CSRMatrix

    sizes = (np.concatenate([b.sizes for b in blocks])
             if blocks else np.zeros(0, dtype=INDEX_DTYPE))
    if sizes.size != nrows:
        raise ValueError(f"blocks cover {sizes.size} rows, expected {nrows}")
    indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(sizes, out=indptr[1:])
    cols = (np.concatenate([b.cols for b in blocks])
            if blocks else np.empty(0, dtype=INDEX_DTYPE))
    vals = (np.concatenate([b.vals for b in blocks])
            if blocks else np.empty(0, dtype=np.float64))
    return CSRMatrix(indptr, cols, vals, (nrows, ncols), check=False)
