"""Vectorized MSA (Masked Sparse Accumulator) kernel — paper §5.2.

Two execution strategies share this module:

**Chunk-fused (default)** — :func:`numeric_rows` / :func:`symbolic_rows`
process an entire chunk of rows with flat numpy passes and zero
Python-per-row work. The dense per-row ``states``/``values`` workspaces are
replaced by an accumulator indexed by *chunk-wide mask rank*: one batched
expansion (:func:`repro.core.expand.expand_rows`), one ``searchsorted`` of
the products' composite keys ``t * ncols + col`` against the mask's
flattened keys (the MSA "allowed" test for the whole chunk at once), then
one scatter-accumulate of every selected product — ``np.bincount`` when
the additive monoid is ``+`` (``np.add.at`` is notoriously slow), generic
``ufunc.at`` otherwise — and one gather of all mask hits. The complement
variant scatters the surviving (non-banned) products into
``np.unique``-compressed key space instead. Where ESC
(:mod:`repro.core.esc_kernel`) sorts first and masks the compressed
stream, fused MSA masks first and scatters — same flat-pass structure,
opposite order, no sort on the plain-mask path.

Fused intermediates are O(partial products), so chunks are pre-split by
:func:`repro.core.expand.fused_blocks` — composite keys must fit int64 and
each block's product stream stays under ``FUSE_FLOPS_BUDGET``, keeping
peak memory bounded on long-row inputs where the old dense workspaces
were only O(ncols).

**Per-row loop** — :func:`numeric_rows_loop` / :func:`symbolic_rows_loop`
keep the original paper-shaped row loop over Algorithm 2's three MSA steps
(dense states array, scatter, mask-order gather) as the benchmark baseline
(``benchmarks/bench_chunk_fusion.py``) and the faithful rendering of the
paper's pseudocode. Its accumulation also takes the ``np.bincount`` fast
path for ``+``-monoid semirings (PLUS_TIMES, PLUS_PAIR, ...), scattering
into mask-rank space instead of calling ``np.add.at`` on the dense values
array.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import (
    composite_keys,
    expand_row,
    expand_row_pattern,
    expand_rows,
    expand_rows_pattern,
    flatten_rows_pattern,
    fused_blocks,
    per_row_flops,
    sorted_membership,
)
from .types import RowBlock, concat_blocks, empty_block, write_rows_into

_NOTALLOWED, _ALLOWED, _SET = 0, 1, 2


# --------------------------------------------------------------------- #
# chunk-fused passes (default)
# --------------------------------------------------------------------- #
def _fused_numeric(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                   rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, bj, prod = expand_rows(A, B, rows, semiring)
    if bj.size == 0:
        return empty_block(rows.size)
    m_prow = np.repeat(np.arange(rows.size, dtype=np.int64), np.diff(mseg))
    # composite_keys on both streams: same (rows, ncols) → same dtype, so
    # the membership searchsorted runs on int32 whenever the product keys do
    mkeys = composite_keys(mseg, mcols, ncols)
    keys = composite_keys(seg, bj, ncols)
    # chunk-wide ALLOWED test: product key present in the mask stream?
    allowed = sorted_membership(mkeys, keys)
    ranks = np.searchsorted(mkeys, keys[allowed])
    touched = np.zeros(mkeys.size, dtype=bool)
    touched[ranks] = True
    add = semiring.add.ufunc
    if add is np.add:
        acc = np.bincount(ranks, weights=prod[allowed], minlength=mkeys.size)
    else:
        acc = np.full(mkeys.size, semiring.identity)
        add.at(acc, ranks, prod[allowed])
    sizes = np.bincount(m_prow[touched],
                        minlength=rows.size).astype(INDEX_DTYPE)
    # mkeys ascend, so the touched gather is row-grouped and column-sorted
    return RowBlock(sizes, mcols[touched], acc[touched])


def _fused_numeric_complement(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                              semiring: Semiring, rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, bj, prod = expand_rows(A, B, rows, semiring)
    if bj.size == 0:
        return empty_block(rows.size)
    keys = composite_keys(seg, bj, ncols)
    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size:
        mkeys = composite_keys(mseg, mcols, ncols)
        sel = ~sorted_membership(mkeys, keys)  # keep products *outside* the mask
        keys, prod = keys[sel], prod[sel]
    if keys.size == 0:
        return empty_block(rows.size)
    # the inserted-keys set is discovered by compression (np.unique), then
    # everything scatters into rank space in stream (= Gustavson) order
    ukeys, inv = np.unique(keys, return_inverse=True)
    add = semiring.add.ufunc
    if add is np.add:
        acc = np.bincount(inv, weights=prod)
    else:
        acc = np.full(ukeys.size, semiring.identity)
        add.at(acc, inv, prod)
    sizes = np.bincount(ukeys // ncols, minlength=rows.size).astype(INDEX_DTYPE)
    return RowBlock(sizes, (ukeys % ncols).astype(INDEX_DTYPE, copy=False), acc)


def _fused_symbolic(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                    rows: np.ndarray) -> np.ndarray:
    ncols = B.ncols
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    if rows.size == 0 or ncols == 0:
        return sizes
    if mask.complemented:
        seg, bj = expand_rows_pattern(A, B, rows)
        if bj.size == 0:
            return sizes
        keys = np.unique(composite_keys(seg, bj, ncols))
        mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
        if mcols.size:
            mkeys = composite_keys(mseg, mcols, ncols)
            keys = keys[~sorted_membership(mkeys, keys)]
        return np.bincount(keys // ncols, minlength=rows.size).astype(INDEX_DTYPE)

    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size == 0:
        return sizes
    seg, bj = expand_rows_pattern(A, B, rows)
    if bj.size == 0:
        return sizes
    m_prow = np.repeat(np.arange(rows.size, dtype=np.int64), np.diff(mseg))
    mkeys = composite_keys(mseg, mcols, ncols)  # dtype matches `keys`
    keys = composite_keys(seg, bj, ncols)
    allowed = sorted_membership(mkeys, keys)
    touched = np.zeros(mkeys.size, dtype=bool)
    touched[np.searchsorted(mkeys, keys[allowed])] = True
    return np.bincount(m_prow[touched],
                       minlength=rows.size).astype(INDEX_DTYPE)


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    """Chunk-fused MSA numeric pass (per-row semantics preserved exactly)."""
    fn = _fused_numeric_complement if mask.complemented else _fused_numeric
    return concat_blocks([fn(A, B, mask, semiring, block)
                          for block in fused_blocks(A, B, rows)])


def numeric_rows_into(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray,
                      out_cols: np.ndarray, out_vals: np.ndarray,
                      offsets: np.ndarray) -> None:
    """Direct-write numeric pass (see :mod:`repro.core.types`): the fused
    gathers emit each block row-grouped and column-sorted (mask keys ascend;
    the complement's unique-compressed keys ascend), so blocks land in the
    final CSR arrays with one slice copy each."""
    fn = _fused_numeric_complement if mask.complemented else _fused_numeric
    write_rows_into(lambda b: fn(A, B, mask, semiring, b),
                    fused_blocks(A, B, rows), offsets, out_cols, out_vals,
                    algorithm="msa")


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Chunk-fused pattern-only pass: exact output nnz per requested row."""
    parts = [_fused_symbolic(A, B, mask, block)
             for block in fused_blocks(A, B, rows)]
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


# --------------------------------------------------------------------- #
# per-row loop (benchmark baseline + paper-faithful rendering)
# --------------------------------------------------------------------- #
def numeric_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray) -> RowBlock:
    """Original per-row MSA loop: Algorithm 2's three steps per output row.

    ``+``-monoid semirings accumulate via ``np.bincount`` over mask-rank
    space (products mapped by a per-row ``searchsorted``) instead of
    ``np.add.at`` on the dense values array; other monoids keep the dense
    scatter.
    """
    if mask.complemented:
        return _numeric_complement_loop(A, B, mask, semiring, rows)
    ncols = B.ncols
    states = np.zeros(ncols, dtype=np.int8)
    values = np.empty(ncols, dtype=np.float64)
    identity = semiring.identity
    add = semiring.add.ufunc
    fast_add = add is np.add

    mask_rnnz = np.diff(mask.indptr)
    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        states[m_cols] = _ALLOWED
        sel = states[bj] != _NOTALLOWED
        bj_s = bj[sel]
        if fast_add:
            r = np.searchsorted(m_cols, bj_s)  # bj_s ⊆ m_cols by the sel test
            hit = np.bincount(r, minlength=m_cols.size).astype(bool)
            c = m_cols[hit]
            v = np.bincount(r, weights=prod[sel], minlength=m_cols.size)[hit]
        else:
            values[m_cols] = identity
            add.at(values, bj_s, prod[sel])
            states[bj_s] = _SET
            hit = states[m_cols] == _SET
            c = m_cols[hit]
            v = values[c]
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = v
        sizes[t] = k
        pos += k
        states[m_cols] = _NOTALLOWED  # reset only touched entries
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def _numeric_complement_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                             semiring: Semiring, rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    banned = np.zeros(ncols, dtype=bool)
    values = np.empty(ncols, dtype=np.float64)
    identity = semiring.identity
    add = semiring.add.ufunc
    fast_add = add is np.add

    flops = per_row_flops(A, B)
    bound = int(np.minimum(flops[rows], ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        banned[m_cols] = True
        sel = ~banned[bj]
        bj_s = bj[sel]
        if bj_s.size:
            if fast_add:
                touched, inv = np.unique(bj_s, return_inverse=True)
                v = np.bincount(inv, weights=prod[sel])
            else:
                touched = np.unique(bj_s)  # sorted inserted-keys set
                values[touched] = identity
                add.at(values, bj_s, prod[sel])
                v = values[touched]
            k = touched.size
            out_cols[pos: pos + k] = touched
            out_vals[pos: pos + k] = v
            sizes[t] = k
            pos += k
        banned[m_cols] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                       rows: np.ndarray) -> np.ndarray:
    """Per-row pattern-only pass via the same dense state array MSA's numeric
    phase uses (values never touched)."""
    ncols = B.ncols
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    if mask.complemented:
        banned = np.zeros(ncols, dtype=bool)
        for t in range(rows.size):
            i = int(rows[t])
            bj = expand_row_pattern(A, B, i)
            if bj.size == 0:
                continue
            m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
            banned[m_cols] = True
            sizes[t] = np.unique(bj[~banned[bj]]).size
            banned[m_cols] = False
        return sizes

    states = np.zeros(ncols, dtype=np.int8)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        states[m_cols] = _ALLOWED
        sel = states[bj] != _NOTALLOWED
        states[bj[sel]] = _SET
        sizes[t] = int((states[m_cols] == _SET).sum())
        states[m_cols] = _NOTALLOWED
    return sizes
