"""Vectorized MSA (Masked Sparse Accumulator) kernel — paper §5.2.

Per output row the kernel performs exactly the three MSA steps of
Algorithm 2, each as a numpy batch operation over the row's partial
products:

1. mark the mask row ALLOWED in the dense ``states`` array,
2. scatter-accumulate the allowed partial products into the dense
   ``values`` array (``ufunc.at`` = the scatter/accumulate memory access
   pattern 4 of §4.2),
3. gather in mask order (stable, sorted output) and reset the touched
   states.

The dense workspaces are allocated once per call and reused across rows —
the amortized O(ncols) init of the paper's complexity analysis. The
complement variant flips the marking (``banned``) and discovers the touched
column set with a sort (`np.unique`), standing in for the inserted-keys log
of the reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import expand_row, expand_row_pattern, per_row_flops
from .types import RowBlock

_NOTALLOWED, _ALLOWED, _SET = 0, 1, 2


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    if mask.complemented:
        return _numeric_complement(A, B, mask, semiring, rows)
    ncols = B.ncols
    states = np.zeros(ncols, dtype=np.int8)
    values = np.empty(ncols, dtype=np.float64)
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    mask_rnnz = np.diff(mask.indptr)
    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        states[m_cols] = _ALLOWED
        values[m_cols] = identity
        sel = states[bj] != _NOTALLOWED
        bj_s = bj[sel]
        add_at(values, bj_s, prod[sel])
        states[bj_s] = _SET
        hit = states[m_cols] == _SET
        c = m_cols[hit]
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = values[c]
        sizes[t] = k
        pos += k
        states[m_cols] = _NOTALLOWED  # reset only touched entries
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def _numeric_complement(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                        rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    banned = np.zeros(ncols, dtype=bool)
    values = np.empty(ncols, dtype=np.float64)
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    flops = per_row_flops(A, B)
    bound = int(np.minimum(flops[rows], ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        banned[m_cols] = True
        sel = ~banned[bj]
        bj_s = bj[sel]
        if bj_s.size:
            touched = np.unique(bj_s)  # sorted inserted-keys set
            values[touched] = identity
            add_at(values, bj_s, prod[sel])
            k = touched.size
            out_cols[pos: pos + k] = touched
            out_vals[pos: pos + k] = values[touched]
            sizes[t] = k
            pos += k
        banned[m_cols] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Pattern-only pass: exact output nnz per requested row, via the same
    dense state array MSA's numeric phase uses (values never touched)."""
    ncols = B.ncols
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    if mask.complemented:
        banned = np.zeros(ncols, dtype=bool)
        for t in range(rows.size):
            i = int(rows[t])
            bj = expand_row_pattern(A, B, i)
            if bj.size == 0:
                continue
            m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
            banned[m_cols] = True
            sizes[t] = np.unique(bj[~banned[bj]]).size
            banned[m_cols] = False
        return sizes

    states = np.zeros(ncols, dtype=np.int8)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        states[m_cols] = _ALLOWED
        sel = states[bj] != _NOTALLOWED
        states[bj[sel]] = _SET
        sizes[t] = int((states[m_cols] == _SET).sum())
        states[m_cols] = _NOTALLOWED
    return sizes
