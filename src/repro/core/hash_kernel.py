"""Vectorized Hash-accumulator kernel — paper §5.3.

A real open-addressing hash table (linear probing, load factor 0.25, no
mid-row resizing) operated in numpy batches: probe loops iterate over the
*unresolved remainder* of the batch, so the expected number of passes is the
expected probe length (≈1.1 at LF 0.25) rather than the batch size.

Two execution strategies share this module:

**Chunk-fused (default)** — :func:`numeric_rows` / :func:`symbolic_rows`
batch the probe loop across *all rows of a chunk* via per-row table
offsets: each row owns a region ``[bases[t], bases[t] + caps[t])`` of one
flat table (``caps[t]`` the row's power-of-two capacity at LF 0.25), and
every probe carries its row's base and capacity mask, so a single batched
probe loop resolves the whole chunk's inserts/lookups in ~probe-length
passes total instead of ~probe-length passes *per row*. Accumulation is one
scatter over the chunk's product stream (``np.bincount`` for ``+`` monoids,
generic ``ufunc.at`` otherwise) — per-slot accumulation order equals stream
(Gustavson) order either way, so results are bit-identical to the per-row
loop and the reference tier. Chunks are pre-split by
:func:`repro.core.expand.fused_blocks`, bounding the table and stream
working set.

**Per-row loop** — :func:`numeric_rows_loop` / :func:`symbolic_rows_loop`
keep the original row loop (one table prefix per row, reset between rows)
as the benchmark baseline (``benchmarks/bench_chunk_fusion.py``) and the
faithful rendering of the paper's per-row formulation.

The table arrays give hash the "smaller memory footprint than MSA" the
paper credits it with — O(nnz(mask)) per chunk rather than O(ncols) —
in exchange for hashing on every access.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from ..accumulators.hash_acc import table_capacity
from .expand import (
    expand_row,
    expand_row_pattern,
    expand_rows,
    expand_rows_pattern,
    flatten_rows_pattern,
    fused_blocks,
    per_row_flops,
    row_segments,
)
from .types import RowBlock, concat_blocks, empty_block, write_rows_into

_EMPTY = np.int64(-1)
_HASH_SCAL = np.uint64(0x9E3779B97F4A7C15)


def _hash_slots(keys: np.ndarray, cap_mask: int) -> np.ndarray:
    """Multiplicative (Fibonacci) hash of int64 keys into [0, cap)."""
    h = (keys.astype(np.uint64) * _HASH_SCAL) >> np.uint64(32)
    return (h & np.uint64(cap_mask)).astype(np.int64)


def _hash_values(keys: np.ndarray) -> np.ndarray:
    """Pre-mask hash values; callers apply per-row capacity masks."""
    return ((keys.astype(np.uint64) * _HASH_SCAL) >> np.uint64(32)
            ).astype(np.int64)


# --------------------------------------------------------------------- #
# chunk-fused passes (default): one flat table, per-row regions
# --------------------------------------------------------------------- #
def _row_capacities(nkeys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.accumulators.hash_acc.table_capacity`:
    power-of-two region capacity at LF 0.25 per row; rows with no keys own
    no region (capacity 0) and must be filtered by the caller."""
    caps = np.zeros(nkeys.size, dtype=np.int64)
    nz = np.asarray(nkeys) > 0
    if not nz.any():
        return caps
    need = np.asarray(nkeys)[nz].astype(np.int64) * 4  # LF 0.25, min 4
    c = np.int64(1) << np.ceil(np.log2(need)).astype(np.int64)
    c[c < need] <<= 1  # guard against float-log rounding
    caps[nz] = c
    return caps


def _insert_distinct_batch(keys: np.ndarray, bases: np.ndarray,
                           cap_masks: np.ndarray, table_keys: np.ndarray
                           ) -> np.ndarray:
    """Insert keys (distinct within each row's region) into the flat table;
    return each key's slot. One batched linear-probe loop for the whole
    chunk: each pass claims the first contender per empty slot and advances
    the rest within their own regions."""
    n = keys.size
    slots = bases + (_hash_values(keys) & cap_masks)
    result = np.empty(n, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            table_keys[uniq_slots] = keys[winners]
            result[winners] = uniq_slots
            lost = np.ones(f_idx.size, dtype=bool)
            lost[first] = False
            losers = f_idx[lost]
        else:
            losers = pending[:0]
        occupied = pending[~free]
        nxt = np.concatenate([losers, occupied])
        slots[nxt] = bases[nxt] + ((slots[nxt] - bases[nxt] + 1)
                                   & cap_masks[nxt])
        pending = nxt
    return result


def _lookup_batch(keys: np.ndarray, bases: np.ndarray, cap_masks: np.ndarray,
                  table_keys: np.ndarray) -> np.ndarray:
    """Slot of each key within its row's region, or -1 when the probe chain
    hits an empty slot (key not in the table — i.e. masked out)."""
    n = keys.size
    slots = bases + (_hash_values(keys) & cap_masks)
    found = np.full(n, -1, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        hit = occupant == keys[pending]
        found[pending[hit]] = s[hit]
        cont = ~hit & (occupant != _EMPTY)
        nxt = pending[cont]
        slots[nxt] = bases[nxt] + ((slots[nxt] - bases[nxt] + 1)
                                   & cap_masks[nxt])
        pending = nxt
    return found


def _insert_or_accumulate_batch(keys: np.ndarray, vals: np.ndarray,
                                bases: np.ndarray, cap_masks: np.ndarray,
                                t_keys: np.ndarray, t_vals: np.ndarray,
                                t_banned: np.ndarray, add_ufunc: np.ufunc,
                                identity: float) -> np.ndarray:
    """Complement-mask product insertion, batched across the chunk:
    accumulate into existing slots, claim empty slots (first contender in
    stream order wins; the rest retry and then match), drop keys landing on
    banned (mask) slots. Same-key products always travel in the same pending
    subset, so per-slot accumulation stays in stream order — bit-identical
    to the per-row loop. Returns the slots claimed by products."""
    n = keys.size
    slots = bases + (_hash_values(keys) & cap_masks)
    pending = np.arange(n, dtype=np.int64)
    claimed_all: list[np.ndarray] = []
    while pending.size:
        s = slots[pending]
        occupant = t_keys[s]
        match = occupant == keys[pending]
        if match.any():
            ms = s[match]
            keep = ~t_banned[ms]
            add_ufunc.at(t_vals, ms[keep], vals[pending[match][keep]])
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            t_keys[uniq_slots] = keys[winners]
            t_vals[uniq_slots] = identity
            claimed_all.append(uniq_slots)
            # winners stay pending: next pass they match their own slot and
            # accumulate their value; losers re-probe the now-claimed slot.
            still = pending[free]
        else:
            still = pending[:0]
        advance = pending[~match & ~free]
        slots[advance] = bases[advance] + ((slots[advance] - bases[advance]
                                            + 1) & cap_masks[advance])
        pending = np.concatenate([still, advance])
    return (np.concatenate(claimed_all) if claimed_all
            else np.empty(0, dtype=np.int64))


def _insert_batch(keys: np.ndarray, bases: np.ndarray, cap_masks: np.ndarray,
                  table_keys: np.ndarray) -> np.ndarray:
    """Insert possibly-duplicate keys, pattern-only (the complement
    symbolic pass): claim empty slots, drop keys whose value is already in
    the table (pre-inserted mask keys or an earlier duplicate) — no value
    array, no accumulation. Returns the slots claimed."""
    n = keys.size
    slots = bases + (_hash_values(keys) & cap_masks)
    pending = np.arange(n, dtype=np.int64)
    claimed_all: list[np.ndarray] = []
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        match = occupant == keys[pending]  # already present: drop
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            table_keys[uniq_slots] = keys[f_idx[first]]
            claimed_all.append(uniq_slots)
            lost = np.ones(f_idx.size, dtype=bool)
            lost[first] = False
            # losers re-probe the now-claimed slot: a duplicate of the
            # winner matches and drops, a collider advances next pass
            losers = f_idx[lost]
        else:
            losers = pending[:0]
        advance = pending[~match & ~free]
        slots[advance] = bases[advance] + ((slots[advance] - bases[advance]
                                            + 1) & cap_masks[advance])
        pending = np.concatenate([losers, advance])
    return (np.concatenate(claimed_all) if claimed_all
            else np.empty(0, dtype=np.int64))


def _fused_numeric(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                   rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, bj, prod = expand_rows(A, B, rows, semiring)
    if bj.size == 0:
        return empty_block(rows.size)
    m_lens = np.diff(mseg)
    caps = _row_capacities(m_lens)
    bases = row_segments(caps)
    tsize = int(bases[-1])
    t_keys = np.full(tsize, _EMPTY, dtype=np.int64)
    t_set = np.zeros(tsize, dtype=bool)

    m_row = np.repeat(np.arange(rows.size, dtype=np.int64), m_lens)
    m_slots = _insert_distinct_batch(mcols, bases[m_row], caps[m_row] - 1,
                                     t_keys)
    p_row = np.repeat(np.arange(rows.size, dtype=np.int64), np.diff(seg))
    live = caps[p_row] > 0  # drop products of mask-empty rows up front
    if not live.all():
        bj, prod, p_row = bj[live], prod[live], p_row[live]
    f_slots = _lookup_batch(bj, bases[p_row], caps[p_row] - 1, t_keys)
    ok = f_slots >= 0
    hit_slots = f_slots[ok]
    add = semiring.add.ufunc
    if add is np.add:
        t_vals = np.bincount(hit_slots, weights=prod[ok], minlength=tsize)
    else:
        t_vals = np.empty(tsize, dtype=np.float64)
        t_vals[m_slots] = semiring.identity
        add.at(t_vals, hit_slots, prod[ok])
    t_set[hit_slots] = True
    present = t_set[m_slots]  # aligned with the flat mask stream
    sizes = np.bincount(m_row[present],
                        minlength=rows.size).astype(INDEX_DTYPE)
    # mask order == sorted order, so the gather is row-grouped column-sorted
    return RowBlock(sizes, mcols[present], t_vals[m_slots[present]])


def _fused_numeric_complement(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                              semiring: Semiring, rows: np.ndarray) -> RowBlock:
    ncols = B.ncols
    if rows.size == 0 or ncols == 0:
        return empty_block(rows.size)
    seg, bj, prod = expand_rows(A, B, rows, semiring)
    if bj.size == 0:
        return empty_block(rows.size)
    p_lens = np.diff(seg)
    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    m_lens = np.diff(mseg)
    # only rows that produce products need a region (mask + distinct products)
    nkeys = np.where(p_lens > 0,
                     m_lens + np.minimum(p_lens, np.int64(ncols)), 0)
    caps = _row_capacities(nkeys)
    bases = row_segments(caps)
    tsize = int(bases[-1])
    t_keys = np.full(tsize, _EMPTY, dtype=np.int64)
    t_vals = np.empty(tsize, dtype=np.float64)
    t_banned = np.zeros(tsize, dtype=bool)

    m_row = np.repeat(np.arange(rows.size, dtype=np.int64), m_lens)
    m_live = caps[m_row] > 0
    m_slots = _insert_distinct_batch(mcols[m_live], bases[m_row[m_live]],
                                     caps[m_row[m_live]] - 1, t_keys)
    t_banned[m_slots] = True
    p_row = np.repeat(np.arange(rows.size, dtype=np.int64), p_lens)
    claimed = _insert_or_accumulate_batch(
        bj, prod, bases[p_row], caps[p_row] - 1, t_keys, t_vals, t_banned,
        semiring.add.ufunc, semiring.identity)
    if claimed.size == 0:
        return empty_block(rows.size)
    c_row = np.searchsorted(bases, claimed, side="right") - 1
    okeys = c_row * np.int64(ncols) + t_keys[claimed]
    order = np.argsort(okeys, kind="stable")
    uk = okeys[order]
    sizes = np.bincount(uk // ncols, minlength=rows.size).astype(INDEX_DTYPE)
    return RowBlock(sizes, (uk % ncols).astype(INDEX_DTYPE, copy=False),
                    t_vals[claimed[order]])


def _fused_symbolic(A: CSRMatrix, B: CSRMatrix, mask: Mask, rows: np.ndarray
                    ) -> np.ndarray:
    ncols = B.ncols
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    if rows.size == 0 or ncols == 0:
        return sizes
    if mask.complemented:
        seg, bj = expand_rows_pattern(A, B, rows)
        if bj.size == 0:
            return sizes
        p_lens = np.diff(seg)
        mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
        m_lens = np.diff(mseg)
        nkeys = np.where(p_lens > 0,
                         m_lens + np.minimum(p_lens, np.int64(ncols)), 0)
        caps = _row_capacities(nkeys)
        bases = row_segments(caps)
        tsize = int(bases[-1])
        t_keys = np.full(tsize, _EMPTY, dtype=np.int64)
        m_row = np.repeat(np.arange(rows.size, dtype=np.int64), m_lens)
        m_live = caps[m_row] > 0
        # mask keys pre-inserted: a product matching one drops in the
        # pattern-only insert below, no banned flags or values needed
        _insert_distinct_batch(mcols[m_live], bases[m_row[m_live]],
                               caps[m_row[m_live]] - 1, t_keys)
        p_row = np.repeat(np.arange(rows.size, dtype=np.int64), p_lens)
        claimed = _insert_batch(bj, bases[p_row], caps[p_row] - 1, t_keys)
        if claimed.size == 0:
            return sizes
        c_row = np.searchsorted(bases, claimed, side="right") - 1
        return np.bincount(c_row, minlength=rows.size).astype(INDEX_DTYPE)

    mseg, mcols = flatten_rows_pattern(mask.indptr, mask.indices, rows)
    if mcols.size == 0:
        return sizes
    seg, bj = expand_rows_pattern(A, B, rows)
    if bj.size == 0:
        return sizes
    m_lens = np.diff(mseg)
    caps = _row_capacities(m_lens)
    bases = row_segments(caps)
    tsize = int(bases[-1])
    t_keys = np.full(tsize, _EMPTY, dtype=np.int64)
    t_set = np.zeros(tsize, dtype=bool)
    m_row = np.repeat(np.arange(rows.size, dtype=np.int64), m_lens)
    m_slots = _insert_distinct_batch(mcols, bases[m_row], caps[m_row] - 1,
                                     t_keys)
    p_row = np.repeat(np.arange(rows.size, dtype=np.int64), np.diff(seg))
    live = caps[p_row] > 0
    if not live.all():
        bj, p_row = bj[live], p_row[live]
    f_slots = _lookup_batch(bj, bases[p_row], caps[p_row] - 1, t_keys)
    t_set[f_slots[f_slots >= 0]] = True
    present = t_set[m_slots]
    return np.bincount(m_row[present],
                       minlength=rows.size).astype(INDEX_DTYPE)


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    """Chunk-fused Hash numeric pass (plain and complemented masks),
    bit-identical to :func:`numeric_rows_loop`."""
    fn = _fused_numeric_complement if mask.complemented else _fused_numeric
    return concat_blocks([fn(A, B, mask, semiring, block)
                          for block in fused_blocks(A, B, rows)])


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Chunk-fused pattern-only pass using the same batched table, values
    untouched."""
    parts = [_fused_symbolic(A, B, mask, block)
             for block in fused_blocks(A, B, rows)]
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def numeric_rows_into(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray,
                      out_cols: np.ndarray, out_vals: np.ndarray,
                      offsets: np.ndarray) -> None:
    """Direct-write numeric pass (see :mod:`repro.core.types`): the plain
    path's mask-stream gather and the complement's key-sorted gather are both
    row-grouped and column-sorted, so each fused block lands in the final
    CSR arrays with one slice copy."""
    fn = _fused_numeric_complement if mask.complemented else _fused_numeric
    write_rows_into(lambda b: fn(A, B, mask, semiring, b),
                    fused_blocks(A, B, rows), offsets, out_cols, out_vals,
                    algorithm="hash")


# --------------------------------------------------------------------- #
# per-row loop (benchmark baseline + paper-faithful rendering)
# --------------------------------------------------------------------- #
def _insert_distinct(keys: np.ndarray, table_keys: np.ndarray, cap_mask: int
                     ) -> np.ndarray:
    """Insert *distinct* keys into the (prefix of the) table; return each
    key's slot. Batch linear probing: each pass claims the first contender
    per empty slot and advances the rest."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    result = np.empty(n, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            table_keys[uniq_slots] = keys[winners]
            result[winners] = uniq_slots
            lost = np.ones(f_idx.size, dtype=bool)
            lost[first] = False
            losers = f_idx[lost]
        else:
            losers = pending[:0]
        occupied = pending[~free]
        nxt = np.concatenate([losers, occupied])
        slots[nxt] = (slots[nxt] + 1) & cap_mask
        pending = nxt
    return result


def _lookup(keys: np.ndarray, table_keys: np.ndarray, cap_mask: int) -> np.ndarray:
    """Slot of each key, or -1 when the probe chain hits an empty slot
    (key not in the table — i.e. masked out)."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    found = np.full(n, -1, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        hit = occupant == keys[pending]
        found[pending[hit]] = s[hit]
        cont = ~hit & (occupant != _EMPTY)
        nxt = pending[cont]
        slots[nxt] = (slots[nxt] + 1) & cap_mask
        pending = nxt
    return found


def numeric_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                      semiring: Semiring, rows: np.ndarray) -> RowBlock:
    """Original per-row hash loop: one table prefix per row, reset between
    rows — the pre-fusion baseline."""
    if mask.complemented:
        return _numeric_complement_loop(A, B, mask, semiring, rows)
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    mask_rnnz = np.diff(mask.indptr)
    max_cap = table_capacity(int(mask_rnnz[rows].max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_vals = np.empty(max_cap, dtype=np.float64)
    t_set = np.zeros(max_cap, dtype=bool)

    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        cap = table_capacity(m_cols.size)
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask)
        t_vals[m_slots] = identity
        f_slots = _lookup(bj, tk, cap_mask)
        ok = f_slots >= 0
        hit_slots = f_slots[ok]
        add_at(t_vals, hit_slots, prod[ok])
        t_set[hit_slots] = True
        present = t_set[m_slots]
        c = m_cols[present]  # mask order == sorted order
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = t_vals[m_slots[present]]
        sizes[t] = k
        pos += k
        # reset the row's table prefix
        tk[m_slots] = _EMPTY
        t_set[m_slots] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def _insert_or_accumulate(keys: np.ndarray, vals: np.ndarray, t_keys: np.ndarray,
                          t_vals: np.ndarray, t_banned: np.ndarray, cap_mask: int,
                          add_ufunc: np.ufunc, identity: float) -> np.ndarray:
    """Complement-mask product insertion: accumulate into existing slots,
    claim empty slots (first contender wins, the rest retry and then match),
    drop keys that land on banned (mask) slots. Returns the array of slots
    claimed by products, for the gather pass."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    pending = np.arange(n, dtype=np.int64)
    claimed_all: list[np.ndarray] = []
    while pending.size:
        s = slots[pending]
        occupant = t_keys[s]
        match = occupant == keys[pending]
        if match.any():
            ms = s[match]
            keep = ~t_banned[ms]
            add_ufunc.at(t_vals, ms[keep], vals[pending[match][keep]])
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            t_keys[uniq_slots] = keys[winners]
            t_vals[uniq_slots] = identity
            claimed_all.append(uniq_slots)
            # winners stay pending: next pass they match their own slot and
            # accumulate their value; losers re-probe the now-claimed slot.
            still = pending[free]
        else:
            still = pending[:0]
        advance = pending[~match & ~free]
        slots[advance] = (slots[advance] + 1) & cap_mask
        pending = np.concatenate([still, advance])
    return (np.concatenate(claimed_all) if claimed_all
            else np.empty(0, dtype=np.int64))


def _numeric_complement_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                             semiring: Semiring, rows: np.ndarray) -> RowBlock:
    identity = semiring.identity
    add_ufunc = semiring.add.ufunc

    flops = per_row_flops(A, B)
    mask_rnnz = np.diff(mask.indptr)
    max_cap = table_capacity(int((mask_rnnz[rows] + np.minimum(flops[rows], B.ncols)
                                  ).max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_vals = np.empty(max_cap, dtype=np.float64)
    t_banned = np.zeros(max_cap, dtype=bool)

    bound = int(np.minimum(flops[rows], B.ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        cap = table_capacity(m_cols.size + min(int(flops[i]), B.ncols))
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask) if m_cols.size else \
            np.empty(0, dtype=np.int64)
        t_banned[m_slots] = True
        claimed = _insert_or_accumulate(bj, prod, tk, t_vals, t_banned, cap_mask,
                                        add_ufunc, identity)
        # claimed slots that are banned hold discarded mask-colliding keys?
        # No: banned slots were claimed by _insert_distinct, not here. Every
        # claimed slot holds a real output entry.
        c = t_keys[claimed]
        order = np.argsort(c, kind="stable")
        k = c.size
        out_cols[pos: pos + k] = c[order]
        out_vals[pos: pos + k] = t_vals[claimed[order]]
        sizes[t] = k
        pos += k
        tk[m_slots] = _EMPTY
        tk[claimed] = _EMPTY
        t_banned[m_slots] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows_loop(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                       rows: np.ndarray) -> np.ndarray:
    """Per-row pattern-only pass using the same hash table, values untouched."""
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    mask_rnnz = np.diff(mask.indptr)
    if mask.complemented:
        flops = per_row_flops(A, B)
        max_cap = table_capacity(int((mask_rnnz[rows]
                                      + np.minimum(flops[rows], B.ncols)).max(initial=0)))
        t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
        t_banned = np.zeros(max_cap, dtype=bool)
        t_vals = np.empty(max_cap, dtype=np.float64)  # untouched semantically
        for t in range(rows.size):
            i = int(rows[t])
            bj = expand_row_pattern(A, B, i)
            if bj.size == 0:
                continue
            m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
            cap = table_capacity(m_cols.size + min(int(flops[i]), B.ncols))
            cap_mask = cap - 1
            tk = t_keys[:cap]
            m_slots = (_insert_distinct(m_cols, tk, cap_mask) if m_cols.size
                       else np.empty(0, dtype=np.int64))
            t_banned[m_slots] = True
            claimed = _insert_or_accumulate(
                bj, np.zeros(bj.size), tk, t_vals, t_banned, cap_mask, np.add, 0.0)
            sizes[t] = claimed.size
            tk[m_slots] = _EMPTY
            tk[claimed] = _EMPTY
            t_banned[m_slots] = False
        return sizes

    max_cap = table_capacity(int(mask_rnnz[rows].max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_set = np.zeros(max_cap, dtype=bool)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        cap = table_capacity(m_cols.size)
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask)
        f_slots = _lookup(bj, tk, cap_mask)
        hit = f_slots[f_slots >= 0]
        t_set[hit] = True
        sizes[t] = int(t_set[m_slots].sum())
        tk[m_slots] = _EMPTY
        t_set[m_slots] = False
    return sizes
