"""Vectorized Hash-accumulator kernel — paper §5.3.

A real open-addressing hash table (linear probing, load factor 0.25, no
mid-row resizing) operated in numpy batches: probe loops iterate over the
*unresolved remainder* of the batch, so the expected number of passes is the
expected probe length (≈1.1 at LF 0.25) rather than the batch size.

The table arrays are allocated once per call at the largest capacity any
requested row needs, and each row uses a prefix ``[:cap]``; resetting costs
O(cap) per row — the "smaller memory footprint than MSA" the paper credits
hash with, in exchange for hashing on every access.
"""

from __future__ import annotations

import numpy as np

from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from ..accumulators.hash_acc import table_capacity
from .expand import expand_row, expand_row_pattern, per_row_flops
from .types import RowBlock

_EMPTY = np.int64(-1)
_HASH_SCAL = np.uint64(0x9E3779B97F4A7C15)


def _hash_slots(keys: np.ndarray, cap_mask: int) -> np.ndarray:
    """Multiplicative (Fibonacci) hash of int64 keys into [0, cap)."""
    h = (keys.astype(np.uint64) * _HASH_SCAL) >> np.uint64(32)
    return (h & np.uint64(cap_mask)).astype(np.int64)


def _insert_distinct(keys: np.ndarray, table_keys: np.ndarray, cap_mask: int
                     ) -> np.ndarray:
    """Insert *distinct* keys into the (prefix of the) table; return each
    key's slot. Batch linear probing: each pass claims the first contender
    per empty slot and advances the rest."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    result = np.empty(n, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            table_keys[uniq_slots] = keys[winners]
            result[winners] = uniq_slots
            lost = np.ones(f_idx.size, dtype=bool)
            lost[first] = False
            losers = f_idx[lost]
        else:
            losers = pending[:0]
        occupied = pending[~free]
        nxt = np.concatenate([losers, occupied])
        slots[nxt] = (slots[nxt] + 1) & cap_mask
        pending = nxt
    return result


def _lookup(keys: np.ndarray, table_keys: np.ndarray, cap_mask: int) -> np.ndarray:
    """Slot of each key, or -1 when the probe chain hits an empty slot
    (key not in the table — i.e. masked out)."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    found = np.full(n, -1, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        s = slots[pending]
        occupant = table_keys[s]
        hit = occupant == keys[pending]
        found[pending[hit]] = s[hit]
        cont = ~hit & (occupant != _EMPTY)
        nxt = pending[cont]
        slots[nxt] = (slots[nxt] + 1) & cap_mask
        pending = nxt
    return found


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray) -> RowBlock:
    if mask.complemented:
        return _numeric_complement(A, B, mask, semiring, rows)
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    mask_rnnz = np.diff(mask.indptr)
    max_cap = table_capacity(int(mask_rnnz[rows].max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_vals = np.empty(max_cap, dtype=np.float64)
    t_set = np.zeros(max_cap, dtype=bool)

    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        cap = table_capacity(m_cols.size)
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask)
        t_vals[m_slots] = identity
        f_slots = _lookup(bj, tk, cap_mask)
        ok = f_slots >= 0
        hit_slots = f_slots[ok]
        add_at(t_vals, hit_slots, prod[ok])
        t_set[hit_slots] = True
        present = t_set[m_slots]
        c = m_cols[present]  # mask order == sorted order
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = t_vals[m_slots[present]]
        sizes[t] = k
        pos += k
        # reset the row's table prefix
        tk[m_slots] = _EMPTY
        t_set[m_slots] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def _insert_or_accumulate(keys: np.ndarray, vals: np.ndarray, t_keys: np.ndarray,
                          t_vals: np.ndarray, t_banned: np.ndarray, cap_mask: int,
                          add_ufunc: np.ufunc, identity: float) -> np.ndarray:
    """Complement-mask product insertion: accumulate into existing slots,
    claim empty slots (first contender wins, the rest retry and then match),
    drop keys that land on banned (mask) slots. Returns the array of slots
    claimed by products, for the gather pass."""
    n = keys.size
    slots = _hash_slots(keys, cap_mask)
    pending = np.arange(n, dtype=np.int64)
    claimed_all: list[np.ndarray] = []
    while pending.size:
        s = slots[pending]
        occupant = t_keys[s]
        match = occupant == keys[pending]
        if match.any():
            ms = s[match]
            keep = ~t_banned[ms]
            add_ufunc.at(t_vals, ms[keep], vals[pending[match][keep]])
        free = occupant == _EMPTY
        if free.any():
            f_idx = pending[free]
            f_slots = s[free]
            uniq_slots, first = np.unique(f_slots, return_index=True)
            winners = f_idx[first]
            t_keys[uniq_slots] = keys[winners]
            t_vals[uniq_slots] = identity
            claimed_all.append(uniq_slots)
            # winners stay pending: next pass they match their own slot and
            # accumulate their value; losers re-probe the now-claimed slot.
            still = pending[free]
        else:
            still = pending[:0]
        advance = pending[~match & ~free]
        slots[advance] = (slots[advance] + 1) & cap_mask
        pending = np.concatenate([still, advance])
    return (np.concatenate(claimed_all) if claimed_all
            else np.empty(0, dtype=np.int64))


def _numeric_complement(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                        rows: np.ndarray) -> RowBlock:
    identity = semiring.identity
    add_ufunc = semiring.add.ufunc

    flops = per_row_flops(A, B)
    mask_rnnz = np.diff(mask.indptr)
    max_cap = table_capacity(int((mask_rnnz[rows] + np.minimum(flops[rows], B.ncols)
                                  ).max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_vals = np.empty(max_cap, dtype=np.float64)
    t_banned = np.zeros(max_cap, dtype=bool)

    bound = int(np.minimum(flops[rows], B.ncols).sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        bj, prod = expand_row(A, B, i, semiring)
        if bj.size == 0:
            continue
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        cap = table_capacity(m_cols.size + min(int(flops[i]), B.ncols))
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask) if m_cols.size else \
            np.empty(0, dtype=np.int64)
        t_banned[m_slots] = True
        claimed = _insert_or_accumulate(bj, prod, tk, t_vals, t_banned, cap_mask,
                                        add_ufunc, identity)
        # claimed slots that are banned hold discarded mask-colliding keys?
        # No: banned slots were claimed by _insert_distinct, not here. Every
        # claimed slot holds a real output entry.
        c = t_keys[claimed]
        order = np.argsort(c, kind="stable")
        k = c.size
        out_cols[pos: pos + k] = c[order]
        out_vals[pos: pos + k] = t_vals[claimed[order]]
        sizes[t] = k
        pos += k
        tk[m_slots] = _EMPTY
        tk[claimed] = _EMPTY
        t_banned[m_slots] = False
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                  rows: np.ndarray) -> np.ndarray:
    """Pattern-only pass using the same hash table, values untouched."""
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    mask_rnnz = np.diff(mask.indptr)
    if mask.complemented:
        flops = per_row_flops(A, B)
        max_cap = table_capacity(int((mask_rnnz[rows]
                                      + np.minimum(flops[rows], B.ncols)).max(initial=0)))
        t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
        t_banned = np.zeros(max_cap, dtype=bool)
        t_vals = np.empty(max_cap, dtype=np.float64)  # untouched semantically
        for t in range(rows.size):
            i = int(rows[t])
            bj = expand_row_pattern(A, B, i)
            if bj.size == 0:
                continue
            m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
            cap = table_capacity(m_cols.size + min(int(flops[i]), B.ncols))
            cap_mask = cap - 1
            tk = t_keys[:cap]
            m_slots = (_insert_distinct(m_cols, tk, cap_mask) if m_cols.size
                       else np.empty(0, dtype=np.int64))
            t_banned[m_slots] = True
            claimed = _insert_or_accumulate(
                bj, np.zeros(bj.size), tk, t_vals, t_banned, cap_mask, np.add, 0.0)
            sizes[t] = claimed.size
            tk[m_slots] = _EMPTY
            tk[claimed] = _EMPTY
            t_banned[m_slots] = False
        return sizes

    max_cap = table_capacity(int(mask_rnnz[rows].max(initial=0)))
    t_keys = np.full(max_cap, _EMPTY, dtype=np.int64)
    t_set = np.zeros(max_cap, dtype=bool)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        bj = expand_row_pattern(A, B, i)
        if bj.size == 0:
            continue
        cap = table_capacity(m_cols.size)
        cap_mask = cap - 1
        tk = t_keys[:cap]
        m_slots = _insert_distinct(m_cols, tk, cap_mask)
        f_slots = _lookup(bj, tk, cap_mask)
        hit = f_slots[f_slots >= 0]
        t_set[hit] = True
        sizes[t] = int(t_set[m_slots].sum())
        tk[m_slots] = _EMPTY
        t_set[m_slots] = False
    return sizes
