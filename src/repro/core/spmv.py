"""Masked sparse matrix-vector products with push/pull direction choice.

§4 of the paper grounds its algorithm classification in SpMV history: "the
concept of masking has been first applied to sparse-matrix-vector
multiplication to implement the direction-optimized graph traversal [38]",
with push = frontier-driven scatter and pull = mask-driven gather. This
module provides that primitive: ``y = m ⊙ (x·A)`` for a sparse row-vector
``x`` (the frontier) —

* **push**: expand the A-rows selected by x's nonzeros and scatter-
  accumulate (work ∝ Σ_{k∈x} nnz(A_k*), good for small frontiers);
* **pull**: for each unmasked output entry j, gather the dot of x with
  A's column j (work ∝ Σ_{j∈m} nnz(A_*j), good when the mask — the
  undiscovered set — is small);
* **auto**: the Beamer-style direction switch, comparing the two work
  estimates exactly as direction-optimizing BFS does.

Both directions are fully vectorized (no per-row Python loop — there is
only one output row).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..semiring import PLUS_TIMES, Semiring
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..sparse.vector import SparseVector
from ..validation import INDEX_DTYPE
from .expand import concat_ranges


def _push(x: SparseVector, A: CSRMatrix, allowed: np.ndarray | None,
          banned: np.ndarray | None, semiring: Semiring) -> SparseVector:
    """Frontier-driven: scatter the scaled A-rows of x's nonzeros."""
    starts = A.indptr[x.indices]
    lens = A.indptr[x.indices + 1] - starts
    flat = concat_ranges(starts, lens)
    cols = A.indices[flat]
    prod = semiring.multiply(np.repeat(x.data, lens), A.data[flat])
    if allowed is not None:
        keep = allowed[cols]
        cols, prod = cols[keep], prod[keep]
    if banned is not None:
        keep = ~banned[cols]
        cols, prod = cols[keep], prod[keep]
    if cols.size == 0:
        return SparseVector.empty(A.ncols)
    out_idx = np.unique(cols)
    buf = np.full(A.ncols, semiring.identity)
    semiring.add.ufunc.at(buf, cols, prod)
    return SparseVector(out_idx, buf[out_idx], A.ncols, check=False)


def _pull(x: SparseVector, a_csc: CSCMatrix, m_idx: np.ndarray,
          semiring: Semiring) -> SparseVector:
    """Mask-driven: one gathered dot per unmasked output entry."""
    n = a_csc.ncols
    if m_idx.size == 0 or x.nnz == 0:
        return SparseVector.empty(n)
    starts = a_csc.indptr[m_idx]
    lens = a_csc.indptr[m_idx + 1] - starts
    flat = concat_ranges(starts, lens)
    rows = a_csc.indices[flat]
    seg = np.repeat(np.arange(m_idx.size, dtype=INDEX_DTYPE), lens)
    # membership of each A-entry's row in x (x sorted): binary search
    pos = np.searchsorted(x.indices, rows)
    pos[pos == x.nnz] = 0
    hit = x.indices[pos] == rows
    contrib = semiring.multiply(x.data[pos[hit]], a_csc.data[flat][hit])
    acc = np.full(m_idx.size, semiring.identity)
    semiring.add.ufunc.at(acc, seg[hit], contrib)
    hits = np.zeros(m_idx.size, dtype=np.int64)
    np.add.at(hits, seg[hit], 1)
    produced = hits > 0
    return SparseVector(m_idx[produced], acc[produced], n, check=False)


def push_work_estimate(x: SparseVector, A: CSRMatrix) -> int:
    """Σ_{k: x_k≠0} nnz(A_k*) — products a push step would generate."""
    return int((A.indptr[x.indices + 1] - A.indptr[x.indices]).sum())


def pull_work_estimate(m_idx: np.ndarray, a_csc: CSCMatrix) -> int:
    """Σ_{j∈mask} nnz(A_*j) — entries a pull step would inspect."""
    return int((a_csc.indptr[m_idx + 1] - a_csc.indptr[m_idx]).sum())


def masked_spmv(
    x: SparseVector,
    A: CSRMatrix,
    mask: SparseVector | None = None,
    *,
    complemented: bool = False,
    direction: str = "auto",
    semiring: Semiring = PLUS_TIMES,
    a_csc: CSCMatrix | None = None,
) -> SparseVector:
    """Compute ``y = m ⊙ (x·A)`` (row-vector times matrix).

    Parameters
    ----------
    x : frontier vector, length A.nrows.
    mask : pattern vector over the output (length A.ncols) or None.
    complemented : mask selects entries NOT in the pattern (the
        ¬visited filter of graph traversals).
    direction : "push", "pull" or "auto". Pull requires a non-complemented
        mask (it iterates the mask); auto falls back to push when pull is
        not applicable or the mask is absent/complemented.
    a_csc : optional precomputed CSC of A for the pull side (amortize
        across BFS levels).
    """
    if x.n != A.nrows:
        raise ShapeError(f"x has length {x.n}, A has {A.nrows} rows")
    if mask is not None and mask.n != A.ncols:
        raise ShapeError(f"mask has length {mask.n}, A has {A.ncols} cols")
    if direction not in ("push", "pull", "auto"):
        raise ValueError(f"unknown direction {direction!r}")

    pull_possible = mask is not None and not complemented
    if direction == "pull" and not pull_possible:
        raise ValueError("pull direction requires a non-complemented mask")

    if direction == "auto":
        if pull_possible:
            csc = a_csc if a_csc is not None else A.to_csc()
            direction = ("pull" if pull_work_estimate(mask.indices, csc)
                         < push_work_estimate(x, A) else "push")
            a_csc = csc
        else:
            direction = "push"

    if direction == "pull":
        csc = a_csc if a_csc is not None else A.to_csc()
        return _pull(x, csc, mask.indices, semiring)

    allowed = banned = None
    if mask is not None:
        pat = np.zeros(A.ncols, dtype=bool)
        pat[mask.indices] = True
        if complemented:
            banned = pat
        else:
            allowed = pat
    return _push(x, A, allowed, banned, semiring)
