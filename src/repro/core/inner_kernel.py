"""Vectorized pull-based Inner kernel — paper §4.1.

For every unmasked output entry ``(i, j)`` compute the sparse dot product
``A_i* · B_*j`` — "most efficiently implemented when A is stored in CSR and
B is stored in CSC". The vectorized tier batches all of row i's dots at
once: it concatenates the CSC columns selected by the mask row, intersects
the whole stream with the sorted ``A_i*`` via one binary-search pass, and
segment-sums the matching products per mask entry.

An output entry is produced only when at least one index pair matched —
a zero-term dot yields *no* stored entry (the mask "may contain entries for
which the multiplication does not produce an output", Fig. 1).

Complemented masks are rejected: a pull algorithm would need a dot per
*absent* entry, O(ncols) dots per row. The paper likewise never runs Inner
with complemented masks (it is excluded from Betweenness Centrality).
"""

from __future__ import annotations

import numpy as np

from ..errors import MaskError
from ..mask import Mask
from ..semiring import Semiring
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .expand import concat_ranges
from .types import RowBlock


def _check_not_complemented(mask: Mask) -> None:
    if mask.complemented:
        raise MaskError(
            "the pull-based Inner algorithm does not support complemented "
            "masks (it would require a dot product per absent output entry)"
        )


def numeric_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, semiring: Semiring,
                 rows: np.ndarray, *, b_csc: CSCMatrix | None = None) -> RowBlock:
    """``b_csc`` lets callers amortize the CSR→CSC conversion across calls;
    when omitted it is performed here (and its cost belongs to the caller's
    timing — the paper counts B's transposition against the dot algorithms)."""
    _check_not_complemented(mask)
    if b_csc is None:
        b_csc = B.to_csc()
    identity = semiring.identity
    add_at = semiring.add.ufunc.at

    mask_rnnz = np.diff(mask.indptr)
    max_m = int(mask_rnnz[rows].max(initial=0))
    acc = np.empty(max_m, dtype=np.float64)
    hits = np.zeros(max_m, dtype=np.int64)

    bound = int(mask_rnnz[rows].sum())
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    pos = 0

    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        lo, hi = A.indptr[i], A.indptr[i + 1]
        a_cols = A.indices[lo:hi]
        a_vals = A.data[lo:hi]
        if a_cols.size == 0:
            continue
        nm = m_cols.size
        # concatenate the mask-selected CSC columns of B
        starts = b_csc.indptr[m_cols]
        lens = b_csc.indptr[m_cols + 1] - starts
        flat = concat_ranges(starts, lens)
        seg_rows = b_csc.indices[flat]      # row ids within each column
        seg_vals = b_csc.data[flat]
        seg_ids = np.repeat(np.arange(nm, dtype=np.int64), lens)
        # one binary-search intersection of the whole stream with A_i*
        p = np.searchsorted(a_cols, seg_rows)
        p[p == a_cols.size] = 0
        match = a_cols[p] == seg_rows
        contrib = semiring.multiply(a_vals[p[match]], seg_vals[match])
        acc[:nm] = identity
        hits[:nm] = 0
        ids = seg_ids[match]
        add_at(acc, ids, contrib)
        np.add.at(hits, ids, 1)
        produced = hits[:nm] > 0
        c = m_cols[produced]
        k = c.size
        out_cols[pos: pos + k] = c
        out_vals[pos: pos + k] = acc[:nm][produced]
        sizes[t] = k
        pos += k
    return RowBlock(sizes, out_cols[:pos].copy(), out_vals[:pos].copy())


def symbolic_rows(A: CSRMatrix, B: CSRMatrix, mask: Mask, rows: np.ndarray,
                  *, b_csc: CSCMatrix | None = None) -> np.ndarray:
    """Pattern-only pass: count mask entries whose dot has ≥ 1 term."""
    _check_not_complemented(mask)
    if b_csc is None:
        b_csc = B.to_csc()
    sizes = np.zeros(rows.size, dtype=INDEX_DTYPE)
    for t in range(rows.size):
        i = int(rows[t])
        m_cols = mask.indices[mask.indptr[i]: mask.indptr[i + 1]]
        if m_cols.size == 0:
            continue
        lo, hi = A.indptr[i], A.indptr[i + 1]
        a_cols = A.indices[lo:hi]
        if a_cols.size == 0:
            continue
        nm = m_cols.size
        starts = b_csc.indptr[m_cols]
        lens = b_csc.indptr[m_cols + 1] - starts
        flat = concat_ranges(starts, lens)
        seg_rows = b_csc.indices[flat]
        seg_ids = np.repeat(np.arange(nm, dtype=np.int64), lens)
        p = np.searchsorted(a_cols, seg_rows)
        p[p == a_cols.size] = 0
        match = a_cols[p] == seg_rows
        sizes[t] = np.unique(seg_ids[match]).size
    return sizes
