"""Public entry points: :func:`masked_spgemm` and :func:`spgemm`.

``masked_spgemm`` dispatches over

* **algorithm** — ``msa | hash | mca | heap | heapdot | inner`` (the paper's
  kernels), ``esc`` (chunk-fused expand-sort-compress), the baselines
  ``saxpy | saxpy-scipy | dot`` (SS:GB stand-ins), or ``auto`` (Fig.
  7-derived density heuristic, routing short-row regimes to ``esc``);
* **phases** — 1 (one-phase) or 2 (symbolic + numeric, paper §6);
* **tier** — ``vectorized`` (numpy kernels) or ``reference`` (pure-Python,
  faithful to the pseudocode);
* **executor** — optional :mod:`repro.parallel` executor for row-parallel
  execution.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from . import baselines, registry
from .plain import plain_spgemm
from .reference import reference_masked_spgemm
from .types import stitch_blocks


def spgemm(A: CSRMatrix, B: CSRMatrix, semiring: Semiring = PLUS_TIMES) -> CSRMatrix:
    """Plain (unmasked) sparse matrix-matrix product, C = A·B."""
    return plain_spgemm(A, B, semiring)


def masked_spgemm(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: Mask | CSRMatrix | None = None,
    *,
    algorithm: str = "auto",
    semiring: Semiring = PLUS_TIMES,
    phases: int = 1,
    tier: str = "vectorized",
    executor=None,
    verify_symbolic: bool = True,
    plan=None,
    plan_sink: list | None = None,
) -> CSRMatrix:
    """Compute ``C = M ⊙ (A·B)`` (or ``¬M ⊙ (A·B)`` for complemented masks).

    Parameters
    ----------
    A, B : CSRMatrix
        Operands; ``A`` is m×k, ``B`` is k×n.
    mask : Mask, CSRMatrix or None
        The structural mask. A CSRMatrix is interpreted as a
        non-complemented mask over its stored pattern. ``None`` means "no
        mask" (the full complemented-empty mask), i.e. plain SpGEMM through
        the masked machinery.
    algorithm : str
        Kernel or baseline name (see module docstring). ``auto`` picks by
        mask/input density, the paper's hybrid-dispatch future-work idea.
    phases : int
        1 = one-phase (numeric only, upper-bound temp buffers);
        2 = two-phase (symbolic pass computes the exact output pattern size
        before the numeric pass — paper §6).
    tier : str
        ``vectorized`` (default) or ``reference``.
    executor : optional
        A :mod:`repro.parallel` executor; ``None`` runs serially.
    verify_symbolic : bool
        In two-phase mode, cross-check the symbolic row sizes against the
        numeric result (cheap; catches kernel divergence). Disable for
        benchmarking. Note: the direct-write path (fused kernels, two-phase)
        *always* validates computed sizes against the planned offsets before
        writing — scattering through stale sizes would corrupt neighbouring
        rows — so a stale plan raises there regardless of this flag; the
        flag only governs the redundant final cross-check and the non-fused
        serial path.
    plan : SymbolicPlan, optional
        A precomputed plan from :func:`repro.core.plan.build_plan` (usually
        via :class:`repro.service.Engine`). Supplying one skips algorithm
        auto-selection and — in two-phase mode — the symbolic pass, using the
        plan's cached row sizes instead. The plan must have been built for
        operands with the *same patterns* (values may differ); with
        ``verify_symbolic`` the numeric result is still cross-checked against
        the planned sizes, so a stale plan fails loudly. Two-phase requests
        with known row sizes (cached or freshly computed) and a chunk-fused
        kernel run the *direct-write* numeric pass: the output CSR arrays are
        preallocated from the row sizes and chunks scatter into disjoint
        slices with zero stitch copies (process executors keep the stitch
        path — children cannot write parent memory).
    plan_sink : list, optional
        When given and no ``plan`` was supplied, the implied
        :class:`~repro.core.plan.SymbolicPlan` of this call (resolved
        algorithm; for two-phase, the computed symbolic row sizes) is
        appended — so callers get plan reuse for free instead of the
        symbolic results being thrown away.

    Returns
    -------
    CSRMatrix
        Canonical CSR output. Entries where the (semiring) sum produced the
        additive identity are kept if the accumulator was touched — matching
        GraphBLAS, which distinguishes stored zeros from absent entries.
    """
    out_shape = check_multiplicable(A.shape, B.shape)
    if mask is None:
        mask = Mask.full(out_shape)
    elif isinstance(mask, CSRMatrix):
        mask = Mask.from_matrix(mask)
    mask.check_output_shape(out_shape)

    algorithm = algorithm.lower()
    if plan is not None:
        plan.check_output_shape(out_shape)
        if algorithm not in ("auto", plan.algorithm):
            raise AlgorithmError(
                f"plan was built for algorithm {plan.algorithm!r}, "
                f"got algorithm={algorithm!r}"
            )
        algorithm = plan.algorithm
    elif algorithm == "auto":
        algorithm = registry.auto_select(A, B, mask)

    if phases not in (1, 2):
        raise AlgorithmError(f"phases must be 1 or 2, got {phases!r}")

    # ----- baselines (whole-matrix code paths) ------------------------- #
    if algorithm == "saxpy":
        return baselines.saxpy_masked_spgemm(A, B, mask, semiring)
    if algorithm == "saxpy-scipy":
        return baselines.saxpy_masked_spgemm(A, B, mask, semiring, use_scipy=True)
    if algorithm == "dot":
        return baselines.dot_masked_spgemm(A, B, mask, semiring)

    # ----- reference tier ---------------------------------------------- #
    if tier == "reference":
        return reference_masked_spgemm(A, B, mask, algorithm, semiring)
    if tier != "vectorized":
        raise AlgorithmError(f"unknown tier {tier!r}; use 'vectorized' or 'reference'")

    spec = registry.get_spec(algorithm)
    if mask.complemented and not spec.supports_complement:
        # kernels raise their own specific error; call numeric to surface it
        spec.numeric(A, B, mask, semiring, np.empty(0, dtype=INDEX_DTYPE))

    # ----- parallel / direct-write path ---------------------------------- #
    # two-phase requests on a chunk-fused kernel also route serial execution
    # through the runner: it preallocates the output from the (cached or
    # captured) row sizes and scatters chunks directly, with cache-budget
    # chunk sizing — the warm-serving hot path
    if executor is not None or (phases == 2 and spec.numeric_into is not None):
        from ..parallel.runner import parallel_masked_spgemm, uses_direct_write

        C = parallel_masked_spgemm(
            A, B, mask, algorithm=algorithm, semiring=semiring,
            phases=phases, executor=executor, plan=plan, plan_sink=plan_sink,
        )
        # the cross-check only means something on the stitch path: direct
        # write builds indptr *from* the plan and validated computed sizes
        # per chunk already, so re-deriving row sizes would compare the plan
        # with itself on every warm request
        if (phases == 2 and verify_symbolic and plan is not None
                and plan.row_sizes is not None
                and not uses_direct_write(algorithm, phases, executor)
                and not np.array_equal(plan.row_sizes, np.diff(C.indptr))):
            raise AlgorithmError(
                f"{algorithm}: planned row sizes differ from the numeric "
                f"result — stale plan (operand patterns changed since it "
                f"was built)"
            )
        return C

    # ----- serial vectorized path ---------------------------------------- #
    rows = np.arange(out_shape[0], dtype=INDEX_DTYPE)
    symbolic_sizes = None
    if phases == 2:
        if plan is not None and plan.row_sizes is not None:
            symbolic_sizes = plan.row_sizes  # cached symbolic pass
        else:
            symbolic_sizes = spec.symbolic(A, B, mask, rows)
            if plan_sink is not None:
                from .plan import SymbolicPlan

                plan_sink.append(SymbolicPlan(
                    algorithm=algorithm, phases=2, shape=out_shape,
                    row_sizes=symbolic_sizes))
    block = spec.numeric(A, B, mask, semiring, rows)
    if symbolic_sizes is not None and verify_symbolic:
        if not np.array_equal(symbolic_sizes, block.sizes):
            raise AlgorithmError(
                f"{algorithm}: symbolic phase predicted row sizes that differ "
                f"from the numeric result — "
                + ("stale plan (operand patterns changed since it was built)"
                   if plan is not None else "kernel bug")
            )
    return stitch_blocks([block], out_shape[0], out_shape[1])
