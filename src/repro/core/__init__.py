"""Core Masked SpGEMM algorithms — the paper's primary contribution.

Two tiers:

* **reference** (:mod:`repro.core.reference`) — pure-Python row-by-row
  implementations that drive the accumulator objects exactly as the paper's
  pseudocode does (Algorithms 2-5). Used for correctness and as the
  behavioural specification.
* **vectorized** (``*_kernel`` modules) — numpy batch kernels with the same
  per-row work decomposition, used by benchmarks and the parallel layer.

Entry point: :func:`repro.core.api.masked_spgemm`.
"""

from .api import masked_spgemm, spgemm
from .plan import SymbolicPlan, build_plan
from .registry import available_algorithms, algorithm_info, display_name
from .spgevm import masked_spgevm
from .spmv import masked_spmv

__all__ = [
    "masked_spgemm",
    "masked_spgevm",
    "masked_spmv",
    "spgemm",
    "SymbolicPlan",
    "build_plan",
    "available_algorithms",
    "algorithm_info",
    "display_name",
]
