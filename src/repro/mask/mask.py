"""Structural mask for ``C = M ⊙ (A·B)`` and ``C = ¬M ⊙ (A·B)``.

Per the paper (§2): "we only utilize the pattern of the mask …, hence the
values in the mask are not evaluated and the type of the mask elements does
not matter." A :class:`Mask` therefore wraps only the CSR *pattern* (indptr +
indices) of the masking matrix plus a ``complemented`` flag. The mask is
stored in CSR (paper §2.1: "We use CSR format for storing the mask") with
sorted row indices, which MCA and Heap depend on.
"""

from __future__ import annotations

import numpy as np

from ..errors import MaskError
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_shape


class Mask:
    """Structural mask over an (nrows x ncols) output space.

    Parameters
    ----------
    indptr, indices : CSR pattern arrays (values are irrelevant and not kept)
    shape : (nrows, ncols)
    complemented : bool
        When True the mask selects entries *not* present in the pattern
        (``C = ¬M ⊙ (A·B)``), the form graph traversals use to avoid
        re-visiting vertices.
    """

    __slots__ = ("indptr", "indices", "shape", "complemented")

    def __init__(self, indptr, indices, shape, *, complemented: bool = False):
        self.shape = check_shape(shape)
        # reuse CSRMatrix validation by building a throwaway pattern matrix
        pat = CSRMatrix(indptr, indices, np.ones(len(indices)), self.shape)
        self.indptr = pat.indptr
        self.indices = pat.indices
        self.complemented = bool(complemented)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_matrix(cls, m: CSRMatrix, *, complemented: bool = False) -> "Mask":
        """Build a mask from the stored pattern of a CSR matrix.

        Note: *stored* pattern — explicit zeros count as present, matching
        GraphBLAS structural-mask semantics.
        """
        return cls(m.indptr.copy(), m.indices.copy(), m.shape,
                   complemented=complemented)

    @classmethod
    def full(cls, shape) -> "Mask":
        """A no-op mask (complement of the empty pattern): every output entry
        is allowed. Lets plain SpGEMM be expressed as Masked SpGEMM."""
        nrows, _ = check_shape(shape)
        return cls(np.zeros(nrows + 1, dtype=INDEX_DTYPE),
                   np.empty(0, dtype=INDEX_DTYPE), shape, complemented=True)

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Stored pattern entries — nnz(M) in the paper's cost formulas."""
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def row(self, i: int) -> np.ndarray:
        """Sorted column ids allowed (or disallowed, if complemented) in row i."""
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def complement(self) -> "Mask":
        """The same pattern with the complemented flag flipped."""
        return Mask(self.indptr.copy(), self.indices.copy(), self.shape,
                    complemented=not self.complemented)

    def to_matrix(self) -> CSRMatrix:
        """Materialize the pattern as an all-ones CSR matrix."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(),
                         np.ones(self.nnz), self.shape, check=False)

    def check_output_shape(self, out_shape) -> None:
        if tuple(out_shape) != self.shape:
            raise MaskError(
                f"mask shape {self.shape} does not match output shape {tuple(out_shape)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = "¬" if self.complemented else ""
        return f"<Mask {c}M shape={self.shape} nnz={self.nnz}>"
