"""Mask abstraction for Masked SpGEMM."""

from .mask import Mask

__all__ = ["Mask"]
