"""Command-line interface: run the paper's applications on Matrix Market
files or generated graphs.

Examples
--------
::

    python -m repro tc graph.mtx --algorithm msa
    python -m repro ktruss --rmat 10 --k 5 --algorithm inner
    python -m repro bc graph.mtx --batch 64
    python -m repro spgemm A.mtx B.mtx --mask M.mtx --algorithm auto -o C.mtx
    python -m repro batch workload.json  # replay a service workload spec
    python -m repro serve workload.json --plans plans.npz  # async front end
    python -m repro serve --smoke        # CI smoke: warm serving + restart
    python -m repro serve workload.json --metrics-port 9100  # live /metrics
    python -m repro serve --smoke --chaos --shards 2  # CI chaos: inject kills
    python -m repro serve --smoke --slo p99=50ms:0.99  # burn-rate SLO gate
    python -m repro trace workload.json -o trace.json  # offline flame trace
    python -m repro bundle --smoke --chaos -o bundle.json  # debug bundle
    python -m repro profile workload.json -o prof.txt  # collapsed stacks
    python -m repro gc-shm               # unlink orphaned repro_* segments
    python -m repro suite                # list the built-in input suite
    python -m repro info                 # algorithms and semirings

The CLI exists so a downstream user with real SuiteSparse ``.mtx`` files can
reproduce the paper's workloads without writing Python.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _load_graph_arg(args) -> "object":
    from .graphs import rmat, erdos_renyi
    from .sparse import read_matrix_market

    if getattr(args, "rmat", None) is not None:
        return rmat(args.rmat, args.edge_factor, rng=args.seed)
    if getattr(args, "er", None) is not None:
        return erdos_renyi(args.er, args.degree, rng=args.seed,
                           symmetrize=True)
    if getattr(args, "path", None):
        return read_matrix_market(args.path)
    raise SystemExit("provide a .mtx path or --rmat/--er")


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("path", nargs="?", help="MatrixMarket (.mtx) file")
    p.add_argument("--rmat", type=int, metavar="SCALE",
                   help="generate an R-MAT graph of 2^SCALE vertices instead")
    p.add_argument("--er", type=int, metavar="N",
                   help="generate an Erdős-Rényi graph with N vertices")
    p.add_argument("--edge-factor", type=int, default=8)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithm", "-a", default="auto",
                   help="masked kernel (msa/hash/mca/heap/heapdot/inner/"
                        "hybrid/auto or a baseline)")
    p.add_argument("--phases", type=int, choices=(1, 2), default=1)


def cmd_tc(args) -> int:
    from .algorithms import triangle_count

    g = _load_graph_arg(args)
    t0 = time.perf_counter()
    n = triangle_count(g, algorithm=args.algorithm, phases=args.phases)
    dt = time.perf_counter() - t0
    print(f"triangles: {n}   ({dt * 1e3:.1f} ms, algorithm={args.algorithm})")
    return 0


def cmd_ktruss(args) -> int:
    from .algorithms import ktruss

    g = _load_graph_arg(args)
    t0 = time.perf_counter()
    res = ktruss(g, args.k, algorithm=args.algorithm, phases=args.phases)
    dt = time.perf_counter() - t0
    print(f"{args.k}-truss: {res.subgraph.nnz // 2} edges survive "
          f"({res.iterations} iterations, {dt * 1e3:.1f} ms)")
    if args.output:
        from .sparse import write_matrix_market

        write_matrix_market(res.subgraph, args.output, field="pattern")
        print(f"wrote {args.output}")
    return 0


def cmd_delta(args) -> int:
    """Streaming-graph demo: k-truss iterated via edge deltas against the
    same decomposition re-planned from scratch every iteration. The delta
    path registers the support matrix once, applies each iteration's pruned
    edges as a delete batch, and serves the next product from spliced plans
    and dirty-row-patched results — bit-identical output, warm-path
    economics."""
    from .algorithms import ktruss, ktruss_delta
    from .service import Engine

    g = _load_graph_arg(args)
    engine = Engine(result_cache_bytes=512 << 20)
    t0 = time.perf_counter()
    inc = ktruss_delta(g, args.k, algorithm=args.algorithm, engine=engine)
    t_delta = time.perf_counter() - t0
    t0 = time.perf_counter()
    full = ktruss(g, args.k, algorithm=args.algorithm, phases=2)
    t_full = time.perf_counter() - t0

    identical = (np.array_equal(inc.subgraph.indptr, full.subgraph.indptr)
                 and np.array_equal(inc.subgraph.indices,
                                    full.subgraph.indices)
                 and np.array_equal(inc.subgraph.data, full.subgraph.data))
    from .obs import parse_exposition

    families = parse_exposition(engine.metrics.render())
    patched = sum(families.get("repro_delta_results_patched_total",
                               {}).values())
    spliced = families.get("repro_delta_plans_total", {}).get(
        (("outcome", "spliced"),), 0.0)
    print(f"{args.k}-truss, {inc.subgraph.nnz // 2} edges survive "
          f"({inc.iterations} iterations)")
    print(f"  delta serving : {t_delta * 1e3:8.1f} ms  "
          f"(plan hits {inc.plan_hits}/{inc.iterations}, "
          f"{spliced:.0f} plans spliced, {patched:.0f} results patched)")
    print(f"  full re-plan  : {t_full * 1e3:8.1f} ms  "
          f"(every iteration pays selection + symbolic + numeric)")
    print(f"  speedup       : {t_full / max(t_delta, 1e-9):8.2f}x   "
          f"bit-identical: {'yes' if identical else 'NO'}")
    return 0 if identical else 1


def cmd_bc(args) -> int:
    from .algorithms import betweenness_centrality

    g = _load_graph_arg(args)
    rng = np.random.default_rng(args.seed)
    batch = min(args.batch, g.nrows)
    sources = rng.choice(g.nrows, size=batch, replace=False)
    t0 = time.perf_counter()
    res = betweenness_centrality(g, sources, algorithm=args.algorithm,
                                 phases=args.phases)
    dt = time.perf_counter() - t0
    top = np.argsort(res.centrality)[::-1][: args.top]
    print(f"betweenness centrality from {batch} sources "
          f"(depth {res.depth}, {dt * 1e3:.1f} ms)")
    for v in top:
        print(f"  vertex {int(v):8d}  score {res.centrality[v]:.3f}")
    return 0


def cmd_spgemm(args) -> int:
    from .core import masked_spgemm
    from .mask import Mask
    from .sparse import read_matrix_market, write_matrix_market

    A = read_matrix_market(args.a)
    B = read_matrix_market(args.b)
    mask = None
    if args.mask:
        mask = Mask.from_matrix(read_matrix_market(args.mask),
                                complemented=args.complement)
    t0 = time.perf_counter()
    C = masked_spgemm(A, B, mask, algorithm=args.algorithm,
                      phases=args.phases)
    dt = time.perf_counter() - t0
    print(f"C: {C.nrows}x{C.ncols}, nnz={C.nnz}  ({dt * 1e3:.1f} ms, "
          f"algorithm={args.algorithm})")
    if args.output:
        write_matrix_market(C, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_batch(args) -> int:
    import json

    from .service import load_workload, render_report, replay

    try:
        spec = load_workload(args.workload)
    except FileNotFoundError:
        raise SystemExit(f"workload file not found: {args.workload}")
    except (json.JSONDecodeError, ValueError) as e:
        raise SystemExit(f"bad workload spec {args.workload}: {e}")
    from .service import StoreError

    executor = None
    if args.threads:
        from .parallel import ThreadExecutor

        executor = ThreadExecutor(args.threads)
    try:
        engine, result = replay(spec, executor=executor)
    except (ValueError, StoreError) as e:
        # malformed spec contents (unknown request field / matrix key / prep)
        raise SystemExit(f"bad workload spec {args.workload}: {e}")
    finally:
        if executor is not None:
            executor.close()
    print(render_report(engine, result))
    return 0


_SMOKE_SPEC = {
    # built-in repeated-mask TC workload for `serve --smoke` (CI-sized)
    "matrices": {
        "G": {"generator": "er", "n": 400, "degree": 8, "seed": 0,
              "prep": "triangle"},
    },
    "requests": [
        {"a": "G", "b": "G", "mask": "G", "algorithm": "auto",
         "semiring": "plus_pair", "phases": 2, "repeat": 12, "tag": "tc"},
    ],
}


def _serve_once(spec, args, *, engine):
    """Register matrices (if absent), run the request stream through an
    AsyncServer, and return (responses, failures, server, wall seconds).

    Failures are isolated per request (a bad request must not discard its
    stream-mates' responses, nor the warm plans the stream built)."""
    import asyncio

    from .service import AsyncServer, expand_requests, register_matrices

    if not len(engine.store):
        register_matrices(engine, spec)
    requests = expand_requests(spec)

    async def run():
        t0 = time.perf_counter()
        async with AsyncServer(
                engine, workers=args.workers,
                max_inflight=args.max_inflight,
                max_queued_flops=(int(args.max_queued_mflops * 1e6)
                                  if args.max_queued_mflops else None),
                max_batch=args.max_batch) as server:
            results = await asyncio.gather(
                *[server.submit(r) for r in requests],
                return_exceptions=True)
        return results, server, time.perf_counter() - t0

    results, server, seconds = asyncio.run(run())
    responses = [r for r in results if not isinstance(r, BaseException)]
    failures = [(req.tag, r) for req, r in zip(requests, results)
                if isinstance(r, BaseException)]
    return responses, failures, server, seconds


#: chaos default when ``--chaos`` is given but $REPRO_FAULTS is unset: kill
#: a shard worker on the first numeric scatter AND on its retry, so the
#: request walks the whole ladder (retry → degrade to in-process) and the
#: gate can assert repro_degraded_total > 0.
_CHAOS_DEFAULT = "shard.numeric:kill:2"


def cmd_serve(args) -> int:
    import json

    from .resilience import sweep_orphans
    from .service import (Engine, PlanStoreError, load_workload,
                          render_serve_report)

    if args.smoke:
        spec = _SMOKE_SPEC
    elif args.workload:
        try:
            spec = load_workload(args.workload)
        except FileNotFoundError:
            raise SystemExit(f"workload file not found: {args.workload}")
        except (json.JSONDecodeError, ValueError) as e:
            raise SystemExit(f"bad workload spec {args.workload}: {e}")
    else:
        raise SystemExit("provide a workload.json or --smoke")

    # a previous crashed run must not starve this one of shm space
    swept = sweep_orphans()
    if swept:
        print(f"gc-shm: unlinked {len(swept)} orphaned repro_* segment(s) "
              f"from dead processes")

    faults = None
    if getattr(args, "chaos", False):
        from .resilience import FaultPlan

        if not args.shards:
            args.shards = 2  # shard-site faults need a pool to kill
        faults = FaultPlan.from_env() or FaultPlan.parse(_CHAOS_DEFAULT)
        print(f"chaos: injecting {faults!r}")

    slos = None
    if getattr(args, "slo", None):
        from .obs import parse_slo

        try:
            slos = [parse_slo(s) for s in args.slo]
        except ValueError as e:
            raise SystemExit(f"bad --slo spec: {e}")
        print("slo: " + ", ".join(
            f"{o.name} ({o.kind}, target {o.target:g}"
            + (f", ≤ {o.threshold * 1e3:g} ms" if o.kind == "latency" else "")
            + ")" for o in slos))

    engine = Engine(result_cache_bytes=(int(args.result_cache_mb * 2**20)
                                        if args.result_cache_mb else None),
                    shards=(args.shards or None), faults=faults, slos=slos)
    if args.shards and engine.shard_degraded:
        print(f"shards: --shards {args.shards} requested but shared memory "
              f"is unavailable; serving in-process instead")
    obs = None
    if args.metrics_port is not None:
        from .obs import ObsHTTPServer

        obs = ObsHTTPServer(engine.metrics, engine.tracer,
                            port=args.metrics_port,
                            ready=engine.ready, slo=engine.slo,
                            flight=engine.flight).start()
        print(f"observability: {obs.url}/metrics  {obs.url}/slo  "
              f"{obs.url}/trace/<request_id>.json  {obs.url}/debug/bundles")
    try:
        if args.plans:
            try:
                n = engine.load_plans(args.plans)
                print(f"warm start: restored {n} plans from {args.plans}")
            except PlanStoreError:
                print(f"cold start: no usable plan store at {args.plans} "
                      f"(will be written on shutdown)")

        responses, failures, server, seconds = _serve_once(spec, args,
                                                           engine=engine)
        print(render_serve_report(engine, server, responses, seconds))
        for tag, exc in failures[:5]:
            print(f"FAILED request {tag!r}: {type(exc).__name__}: {exc}")
        if len(failures) > 5:
            print(f"... and {len(failures) - 5} more failures")

        # persist even after partial failure: the successful requests' warm
        # plans are exactly what the next start should not have to rebuild
        if args.plans:
            n = engine.save_plans(args.plans)
            print(f"persisted {n} plans to {args.plans}")

        if args.smoke:
            return _check_smoke(engine, server, responses, args, obs=obs,
                                failures=failures)
        return 1 if failures else 0
    finally:
        # shard pools and shared segments must not outlive the serve run —
        # the one place `/dev/shm` space could otherwise leak
        if obs is not None:
            obs.close()
        engine.close()


def _check_smoke(engine, server, responses, args, obs=None,
                 failures=()) -> int:
    """CI gate: the repeated-mask smoke stream must serve warm — via a plan
    hit, a result hit, or by coalescing onto an identical in-flight request
    (strictly cheaper than warm: no execution at all) — and a restarted
    engine restored from the persisted plans must never miss. With
    ``--metrics-port`` the gate also requires a live, parseable ``/metrics``
    with non-zero request counters and a Chrome-trace export for a served
    request. With ``--chaos`` the gate additionally requires that the
    injected faults actually fired, every request still completed with the
    bit-identical in-process answer, the degrade ladder was observed in
    ``repro_degraded_total``, and no shm segments leaked."""
    import tempfile
    from pathlib import Path

    from .service import Engine

    n = len(responses)
    warm = sum(1 for r in responses
               if r.stats.plan_cache_hit or r.stats.result_cache_hit
               or r.stats.coalesced)
    coalesced = sum(1 for r in responses if r.stats.coalesced)
    executed = n - coalesced
    ok = server.stats.completed == executed and warm >= n - 1
    print(f"\nsmoke: {warm}/{n} requests served warm "
          f"({coalesced} coalesced; need ≥ {n - 1}) → "
          f"{'PASS' if ok else 'FAIL'}")
    ok_obs = True
    if obs is not None:
        ok_obs = _check_metrics_smoke(obs, responses, executed)
    ok_slo = True
    if getattr(args, "slo", None):
        ok_slo = _check_slo_smoke(engine, obs)
    ok_bundle = True
    if getattr(args, "chaos", False):
        ok_bundle = _check_bundle_smoke(engine, obs)
    if engine.shards is not None:
        print(f"smoke shards: {engine.stats.sharded}/{executed} executed "
              f"requests ran on the {engine.shards.nshards}-worker pool")
    tiers = engine.stats.kernel_tiers
    if tiers:
        # which kernel tier actually served the numeric passes — a degraded
        # run shows fused/loop counts here even though plans named native
        print("smoke kernel tiers: "
              + ", ".join(f"{t}={c}" for t, c in tiers.items()))

    # restart leg: persist plans, restore into a fresh engine (result cache
    # off so every request exercises the plan path), expect zero misses
    ok3 = True
    with tempfile.TemporaryDirectory() as tmp:
        plan_path = Path(tmp) / "plans.npz"
        saved = engine.save_plans(plan_path)
        # reuse the (spent) fault plan so a chaos run's restart leg does
        # not re-arm $REPRO_FAULTS via FaultPlan.from_env()
        restarted = Engine(shards=(args.shards or None),
                           faults=engine.faults)
        try:
            restored = restarted.load_plans(plan_path)
            responses2, _, _, _ = _serve_once(_SMOKE_SPEC, args,
                                              engine=restarted)
        finally:
            restarted.close()
    misses = restarted.stats.plan_misses
    executed2 = sum(1 for r in responses2 if not r.stats.coalesced)
    ok2 = (restored == saved and misses == 0
           and restarted.stats.plan_hits == executed2)
    print(f"smoke restart: {restored} plans restored, "
          f"{restarted.stats.plan_hits} hits / {misses} misses after warm "
          f"start → {'PASS' if ok2 else 'FAIL'}")
    if args.shards and engine.shards is not None:
        # shutdown hygiene gate: close() must verifiably unlink every
        # segment the serve run created
        names = engine.shards.store.live_segment_names()
        engine.close()
        shm_dir = Path("/dev/shm")
        leaked = [nm for nm in names
                  if shm_dir.is_dir()
                  and (shm_dir / nm.lstrip("/")).exists()]
        ok3 = not leaked
        print(f"smoke shard shutdown: {len(names)} segments unlinked"
              f"{'' if ok3 else f', LEAKED {leaked}'} → "
              f"{'PASS' if ok3 else 'FAIL'}")
    ok4 = True
    if getattr(args, "chaos", False):
        ok4 = _check_chaos_smoke(engine, responses, failures)
    return (0 if ok and ok2 and ok3 and ok4 and ok_obs and ok_slo
            and ok_bundle else 1)


def _check_chaos_smoke(engine, responses, failures) -> bool:
    """Chaos gate: with faults injected, every request must still complete,
    the degrade ladder must be visible in ``repro_degraded_total``, every
    response must be bit-identical to the plain in-process answer, and the
    injected kills must leak no shared-memory segments."""
    import os

    from .obs import parse_exposition
    from .resilience import list_repro_segments
    from .service import Engine, expand_requests, register_matrices

    ok_complete = not failures and len(responses) > 0
    fired = engine.faults.fired_total() if engine.faults is not None else 0
    families = parse_exposition(engine.metrics.render())
    degraded = sum(families.get("repro_degraded_total", {}).values())
    retried = sum(families.get("repro_retries_total", {}).values())
    ok_degraded = fired > 0 and degraded > 0

    # bit-identical: a fresh fault-free in-process engine is the oracle
    ref_engine = Engine()
    try:
        register_matrices(ref_engine, _SMOKE_SPEC)
        ref = ref_engine.submit(expand_requests(_SMOKE_SPEC)[0]).result
    finally:
        ref_engine.close()
    ok_identical = all(
        np.array_equal(r.result.indptr, ref.indptr)
        and np.array_equal(r.result.indices, ref.indices)
        and np.array_equal(r.result.data, ref.data)
        for r in responses)

    # hygiene: after close, none of this process's segments may survive
    # the injected worker kills (close is idempotent — the shard-shutdown
    # gate may already have run it)
    engine.close()
    mine = [s for s in list_repro_segments() if s.owner_pid == os.getpid()]
    ok_shm = not mine

    ok = ok_complete and ok_degraded and ok_identical and ok_shm
    print(f"smoke chaos: {len(responses)} responses / {len(failures)} "
          f"failures, {fired} faults fired, retries={retried:.0f}, "
          f"degraded={degraded:.0f}, "
          f"bit-identical={'yes' if ok_identical else 'NO'}, "
          f"shm leaks={len(mine)} → {'PASS' if ok else 'FAIL'}")
    return ok


def _check_metrics_smoke(obs, responses, executed: int) -> bool:
    """Fetch ``/metrics`` and one ``/trace/<id>.json`` over real HTTP and
    check they describe the smoke stream: the engine-request counter must
    cover every executed request, and the trace must contain the serving
    span taxonomy (queue → numeric at minimum) as valid Chrome-trace JSON."""
    import json
    import urllib.request

    from .obs import parse_exposition

    with urllib.request.urlopen(f"{obs.url}/metrics", timeout=10) as resp:
        families = parse_exposition(resp.read().decode())
    served = sum(families.get("repro_engine_requests_total", {}).values())
    completed = families.get("repro_server_requests_total", {}).get(
        (("outcome", "completed"),), 0.0)
    ok_metrics = served >= executed > 0 and completed >= executed

    traced = [r for r in responses if r.stats.trace_id]
    ok_trace = False
    names: set = set()
    if traced:
        trace_id = traced[-1].stats.trace_id
        with urllib.request.urlopen(f"{obs.url}/trace/{trace_id}.json",
                                    timeout=10) as resp:
            doc = json.loads(resp.read().decode())
        names = {ev.get("name") for ev in doc.get("traceEvents", [])
                 if ev.get("ph") == "X"}
        ok_trace = {"queue", "numeric"} <= names
    ok_obs = ok_metrics and ok_trace
    print(f"smoke metrics: /metrics served {served:.0f} engine requests "
          f"(≥ {executed} executed), trace spans {sorted(names)} → "
          f"{'PASS' if ok_obs else 'FAIL'}")
    return ok_obs


def _check_slo_smoke(engine, obs) -> bool:
    """SLO gate (``--smoke --slo ...``): every configured objective must
    evaluate, at least one must be *alerting* on both burn-rate windows
    (pick a threshold the smoke stream breaches — the CI leg uses
    ``p99=100us:0.99``), and each alerting latency objective must surface
    ≥ 1 exemplar whose trace id resolves to a retained trace (over real
    HTTP when ``--metrics-port`` is live)."""
    import json
    import urllib.request

    if engine.slo is None:
        print("smoke slo: FAIL (no evaluator attached)")
        return False
    if obs is not None:
        with urllib.request.urlopen(f"{obs.url}/slo", timeout=10) as resp:
            payload = json.loads(resp.read().decode())["slos"]
    else:
        payload = engine.slo.evaluate(force=True)
    alerting = [o for o in payload if o["alerting"]]
    ok_alert = bool(alerting)
    need_exemplar = [o for o in alerting if o["kind"] == "latency"]
    resolved = 0
    for o in need_exemplar:
        for ex in o.get("exemplars", []):
            if obs is not None:
                try:
                    url = f"{obs.url}/trace/{ex['trace_id']}.json"
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        doc = json.loads(resp.read().decode())
                    hit = bool(doc.get("traceEvents"))
                except urllib.error.HTTPError:
                    hit = False
            else:
                hit = engine.tracer.get(ex["trace_id"]) is not None
            if hit:
                resolved += 1
                break
    ok_exemplar = resolved == len(need_exemplar)
    burns = ", ".join(
        f"{o['slo']}: fast={o['windows']['fast']['burn_rate']:.1f}x "
        f"slow={o['windows']['slow']['burn_rate']:.1f}x"
        f"{' ALERT' if o['alerting'] else ''}" for o in payload)
    ok_slo = ok_alert and ok_exemplar
    print(f"smoke slo: {burns}; {resolved}/{len(need_exemplar)} alerting "
          f"objectives with a resolvable exemplar trace → "
          f"{'PASS' if ok_slo else 'FAIL'}")
    return ok_slo


def _check_bundle_smoke(engine, obs) -> bool:
    """Flight-recorder gate (``--smoke --chaos``): the injected fault's
    degrade must have captured a debug bundle, downloadable (over real HTTP
    when the sidecar is live) with the trace, metrics snapshot, and live
    context intact."""
    import json
    import urllib.request

    flight = engine.flight
    ids = flight.bundle_ids() if flight is not None else []
    degrade = [i for i in ids if "degrade" in i]
    ok = bool(degrade)
    if ok:
        bid = degrade[-1]
        if obs is not None:
            with urllib.request.urlopen(f"{obs.url}/debug/bundle/{bid}",
                                        timeout=10) as resp:
                doc = json.loads(resp.read().decode())
        else:
            doc = flight.bundle(bid)
        ok = (doc is not None and doc.get("reason") == "degrade"
              and bool(doc.get("metrics")) and "context" in doc)
    print(f"smoke flightrec: {len(ids)} bundle(s) "
          f"({', '.join(ids) if ids else 'none'}); degrade bundle "
          f"{'downloaded and parsed' if ok else 'MISSING'} → "
          f"{'PASS' if ok else 'FAIL'}")
    return ok


def cmd_trace(args) -> int:
    """Offline capture: serve a workload once and write one request's trace
    as Chrome-trace JSON (open in Perfetto or ``chrome://tracing``)."""
    import json

    from .service import Engine, load_workload

    if args.smoke:
        spec = _SMOKE_SPEC
    elif args.workload:
        try:
            spec = load_workload(args.workload)
        except FileNotFoundError:
            raise SystemExit(f"workload file not found: {args.workload}")
        except (json.JSONDecodeError, ValueError) as e:
            raise SystemExit(f"bad workload spec {args.workload}: {e}")
    else:
        raise SystemExit("provide a workload.json or --smoke")

    engine = Engine(shards=(args.shards or None))
    try:
        responses, failures, _, _ = _serve_once(spec, args, engine=engine)
        traced = [r for r in responses if r.stats.trace_id]
        if not traced:
            raise SystemExit("no traces captured (every request failed?)")
        # default index 0 = the stream's first request: the cold one, whose
        # flame view shows the full symbolic→numeric story
        try:
            resp = traced[args.index]
        except IndexError:
            raise SystemExit(f"--index {args.index} out of range: only "
                             f"{len(traced)} traced requests")
        rec = engine.tracer.get(resp.stats.trace_id)
        if rec is None:
            raise SystemExit(f"trace {resp.stats.trace_id} aged out of the "
                             f"tracer ring (capacity {engine.tracer.capacity})"
                             f" — pick a later --index")
        doc = rec.chrome()
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        pids = {ev.get("pid") for ev in doc["traceEvents"]}
        print(f"wrote {args.output}: request {rec.trace_id} "
              f"({len(rec.spans)} spans across {len(pids)} processes) — "
              f"open in Perfetto or chrome://tracing")
        for tag, exc in failures[:5]:
            print(f"FAILED request {tag!r}: {type(exc).__name__}: {exc}")
        return 1 if failures else 0
    finally:
        engine.close()


def cmd_bundle(args) -> int:
    """Offline flight-recorder capture: serve a workload once, force a
    manual debug bundle (trace + metrics snapshot + request ring + live
    engine context), and copy it to ``--output`` for attachment to a bug
    report. Any bundles captured *during* the run (resilience edges under
    ``--chaos`` / ``$REPRO_FAULTS``) are listed too."""
    import json
    import shutil

    from .service import Engine, load_workload

    if args.smoke:
        spec = _SMOKE_SPEC
    elif args.workload:
        try:
            spec = load_workload(args.workload)
        except FileNotFoundError:
            raise SystemExit(f"workload file not found: {args.workload}")
        except (json.JSONDecodeError, ValueError) as e:
            raise SystemExit(f"bad workload spec {args.workload}: {e}")
    else:
        raise SystemExit("provide a workload.json or --smoke")

    faults = None
    if getattr(args, "chaos", False):
        from .resilience import FaultPlan

        if not args.shards:
            args.shards = 2
        faults = FaultPlan.from_env() or FaultPlan.parse(_CHAOS_DEFAULT)
        print(f"chaos: injecting {faults!r}")

    engine = Engine(shards=(args.shards or None), faults=faults)
    try:
        responses, failures, _, _ = _serve_once(spec, args, engine=engine)
        edge_ids = engine.flight.bundle_ids()
        bid = engine.flight.capture(
            "manual", detail=f"repro bundle ({len(responses)} responses, "
                             f"{len(failures)} failures)", force=True)
        if bid is None:
            raise SystemExit("bundle capture failed (spool unwritable?)")
        shutil.copyfile(engine.flight.bundle_path(bid), args.output)
        doc = engine.flight.bundle(bid)
        print(f"wrote {args.output}: bundle {bid} "
              f"({len(doc.get('ring', []))} ring entries, "
              f"{len(doc.get('metrics', ''))} metric bytes)")
        for eid in edge_ids:
            edge = engine.flight.bundle(eid) or {}
            print(f"  also captured during run: {eid} "
                  f"({edge.get('detail', '')})")
        return 1 if failures else 0
    finally:
        engine.close()


def cmd_profile(args) -> int:
    """Run a workload under the sampling profiler and write collapsed
    stacks (``stack;frames count`` lines). Feed the output to
    ``flamegraph.pl`` or drag it into https://speedscope.app (Import →
    collapsed stacks). By default samples are kept only while a numeric or
    cold-symbolic span is open, so the profile answers "where does kernel
    time go" rather than "where does the interpreter idle"."""
    import json

    from .obs import SamplingProfiler
    from .service import Engine, load_workload

    if args.smoke:
        spec = _SMOKE_SPEC
    elif args.workload:
        try:
            spec = load_workload(args.workload)
        except FileNotFoundError:
            raise SystemExit(f"workload file not found: {args.workload}")
        except (json.JSONDecodeError, ValueError) as e:
            raise SystemExit(f"bad workload spec {args.workload}: {e}")
    else:
        raise SystemExit("provide a workload.json or --smoke")

    spans = None
    if args.spans != "all":
        spans = [s.strip() for s in args.spans.split(",") if s.strip()]
        if not spans:
            raise SystemExit("--spans needs span names or 'all'")

    engine = Engine(shards=(args.shards or None))
    try:
        prof = SamplingProfiler(interval=args.interval, spans=spans)
        with prof:
            responses, failures, _, seconds = _serve_once(spec, args,
                                                          engine=engine)
        text = prof.collapsed()
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        nstacks = len(text.splitlines())
        scope = "all threads" if spans is None else f"spans {spans}"
        print(f"wrote {args.output}: {nstacks} distinct stacks from "
              f"{prof.samples} wake-ups over {seconds * 1e3:.0f} ms "
              f"({scope}, interval {args.interval * 1e3:g} ms) — "
              f"flamegraph.pl or speedscope.app can render it")
        if not nstacks:
            print("note: no samples landed inside the selected spans — "
                  "try a larger workload, a smaller --interval, or "
                  "--spans all")
        for tag, exc in failures[:5]:
            print(f"FAILED request {tag!r}: {type(exc).__name__}: {exc}")
        return 1 if failures else 0
    finally:
        engine.close()


def cmd_gc_shm(args) -> int:
    """List ``repro_*`` shared-memory segments and unlink the orphans —
    segments whose owner pid (encoded in the name) is dead. The same sweep
    runs automatically on ``repro serve`` startup; this subcommand is for
    operators cleaning up after a crashed run by hand."""
    from .resilience import list_repro_segments, sweep_orphans

    segments = list_repro_segments(args.shm_dir)
    if not segments:
        print(f"no repro_* segments in {args.shm_dir}")
        return 0
    for seg in segments:
        state = "live" if seg.owner_alive else "ORPHAN"
        print(f"  {seg.name:32s} {seg.size:>12d} bytes  "
              f"owner pid {seg.owner_pid or '?'} ({state})")
    orphans = sweep_orphans(args.shm_dir, dry_run=args.dry_run)
    verb = "would unlink" if args.dry_run else "unlinked"
    print(f"{verb} {len(orphans)} orphaned segment(s), "
          f"{sum(s.size for s in orphans)} bytes")
    return 0


def cmd_suite(args) -> int:
    from .graphs import SUITE_SPECS, load_graph

    print(f"{'name':15s} {'n':>7s} {'nnz':>9s}  description")
    for name, (desc, _) in SUITE_SPECS.items():
        g = load_graph(name)
        print(f"{name:15s} {g.nrows:7d} {g.nnz:9d}  {desc}")
    return 0


def cmd_info(args) -> int:
    from . import __version__
    from .core import algorithm_info, available_algorithms, display_name
    from .core.registry import BASELINE_KEYS
    from .semiring.standard import _REGISTRY

    print(f"repro {__version__} — Masked SpGEMM (Milaković et al., PPoPP'22)")
    print("\nkernels:")
    for key in available_algorithms():
        spec = algorithm_info(key)
        compl = "±mask" if spec.supports_complement else "mask only"
        print(f"  {display_name(key):12s} [{spec.family:5s}, {compl:9s}] "
              f"{spec.description}")
    print(f"\nbaselines: {', '.join(BASELINE_KEYS)}")
    print(f"semirings: {', '.join(sorted(set(_REGISTRY)))}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Masked SpGEMM reproduction — paper workloads from the "
                    "command line")
    sub = p.add_subparsers(dest="command", required=True)

    tc = sub.add_parser("tc", help="triangle counting")
    _add_graph_args(tc)
    tc.set_defaults(fn=cmd_tc)

    kt = sub.add_parser("ktruss", help="k-truss decomposition")
    _add_graph_args(kt)
    kt.add_argument("--k", type=int, default=5)
    kt.add_argument("--output", "-o", help="write surviving edges as .mtx")
    kt.set_defaults(fn=cmd_ktruss)

    dl = sub.add_parser(
        "delta",
        help="streaming demo: k-truss via edge deltas (spliced plans + "
             "patched results) vs full re-plan per iteration")
    _add_graph_args(dl)
    dl.add_argument("--k", type=int, default=5)
    dl.set_defaults(fn=cmd_delta)

    bc = sub.add_parser("bc", help="betweenness centrality (batch)")
    _add_graph_args(bc)
    bc.add_argument("--batch", type=int, default=32)
    bc.add_argument("--top", type=int, default=5)
    bc.set_defaults(fn=cmd_bc)

    sp = sub.add_parser("spgemm", help="masked product of two .mtx files")
    sp.add_argument("a")
    sp.add_argument("b")
    sp.add_argument("--mask", "-m")
    sp.add_argument("--complement", action="store_true")
    sp.add_argument("--algorithm", "-a", dest="algorithm", default="auto")
    sp.add_argument("--phases", type=int, choices=(1, 2), default=1)
    sp.add_argument("--output", "-o")
    sp.set_defaults(fn=cmd_spgemm)

    ba = sub.add_parser(
        "batch",
        help="replay a JSON workload through the service engine "
             "(plan-cache + batching stats)")
    ba.add_argument("workload", help="JSON workload spec "
                                     "(see repro.service.workload)")
    ba.add_argument("--threads", type=int, default=0,
                    help="fan requests across N threads (0 = serial)")
    ba.set_defaults(fn=cmd_batch)

    def _add_pool_flags(sp_: argparse.ArgumentParser) -> None:
        sp_.add_argument("workload", nargs="?",
                         help="JSON workload spec (see repro.service."
                              "workload)")
        sp_.add_argument("--smoke", action="store_true",
                         help="use the built-in repeated-mask TC workload")
        sp_.add_argument("--workers", type=int, default=2,
                         help="async worker pool size (default 2)")
        sp_.add_argument("--shards", type=int, default=0,
                         help="shard-worker processes for the numeric pass "
                              "(shared-memory direct write; 0 = in-process). "
                              "Degrades to in-process execution when shared "
                              "memory is unavailable")
        sp_.add_argument("--max-inflight", type=int, default=64,
                         help="admission bound: admitted-but-unfinished "
                              "requests")
        sp_.add_argument("--max-queued-mflops", type=float, default=0,
                         help="admission bound: estimated queued partial "
                              "products in millions (0 = unbounded)")
        sp_.add_argument("--max-batch", type=int, default=16,
                         help="max group-compatible requests per drained "
                              "batch")

    sv = sub.add_parser(
        "serve",
        help="serve a JSON workload through the async front end "
             "(admission + backpressure + plan/result caches + persistence)")
    _add_pool_flags(sv)
    sv.add_argument("--plans", metavar="PLANS.npz",
                    help="plan store path: restored at startup (if present), "
                         "persisted at shutdown")
    sv.add_argument("--result-cache-mb", type=float, default=256,
                    help="result-cache budget in MiB (0 disables the tier)")
    sv.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                    help="serve /metrics (Prometheus) and /trace/<id>.json "
                         "(Chrome trace) on 127.0.0.1:PORT while the run is "
                         "live (0 = ephemeral port; with --smoke the gate "
                         "also asserts the endpoints)")
    sv.add_argument("--chaos", action="store_true",
                    help="inject faults from $REPRO_FAULTS (default: kill a "
                         "shard worker on the first numeric scatter and its "
                         "retry); with --smoke the gate asserts completion, "
                         "bit-identical degraded results, and shm hygiene")
    sv.add_argument("--slo", action="append", metavar="SPEC",
                    help="declare a service objective, e.g. p99=50ms:0.99 "
                         "(99%% of requests under 50 ms) or "
                         "availability=0.999; "
                         "repeatable. Burn rates are served at /slo and "
                         "exported as repro_slo_*; with --smoke the gate "
                         "requires an alerting objective with a resolvable "
                         "exemplar trace (use a breaching threshold such as "
                         "p99=100us:0.99)")
    sv.set_defaults(fn=cmd_serve)

    tr = sub.add_parser(
        "trace",
        help="serve a workload once and export one request's phase trace "
             "as Chrome-trace JSON (Perfetto / chrome://tracing)")
    _add_pool_flags(tr)
    tr.add_argument("--output", "-o", default="trace.json",
                    help="output path for the Chrome-trace JSON "
                         "(default trace.json)")
    tr.add_argument("--index", type=int, default=0,
                    help="which traced request to export (0 = the stream's "
                         "first/cold request; negative indexes from the end)")
    tr.set_defaults(fn=cmd_trace)

    bu = sub.add_parser(
        "bundle",
        help="serve a workload once and capture a flight-recorder debug "
             "bundle (trace + metrics + request ring + engine context) "
             "for attachment to a bug report")
    _add_pool_flags(bu)
    bu.add_argument("--output", "-o", default="bundle.json",
                    help="output path for the bundle JSON "
                         "(default bundle.json)")
    bu.add_argument("--chaos", action="store_true",
                    help="inject faults from $REPRO_FAULTS (default: "
                         f"{_CHAOS_DEFAULT}) so resilience-edge bundles "
                         "are captured during the run too")
    bu.set_defaults(fn=cmd_bundle)

    pr = sub.add_parser(
        "profile",
        help="run a workload under the sampling profiler and write "
             "collapsed stacks (flamegraph.pl / speedscope.app)")
    _add_pool_flags(pr)
    pr.add_argument("--output", "-o", default="profile.txt",
                    help="output path for collapsed stacks "
                         "(default profile.txt)")
    pr.add_argument("--interval", type=float, default=0.001,
                    help="sampling interval in seconds (default 0.001)")
    pr.add_argument("--spans", default="numeric,symbolic.cold",
                    help="comma-separated span names to scope samples to, "
                         "or 'all' for whole-process profiling (default "
                         "numeric,symbolic.cold: kernel time only)")
    pr.set_defaults(fn=cmd_profile)

    gc = sub.add_parser(
        "gc-shm",
        help="list repro_* shared-memory segments and unlink orphans "
             "(segments whose owner process is dead)")
    gc.add_argument("--dry-run", action="store_true",
                    help="list orphans without unlinking")
    gc.add_argument("--shm-dir", default="/dev/shm",
                    help=argparse.SUPPRESS)  # test seam
    gc.set_defaults(fn=cmd_gc_shm)

    su = sub.add_parser("suite", help="list the built-in input suite")
    su.set_defaults(fn=cmd_suite)

    info = sub.add_parser("info", help="algorithms, baselines, semirings")
    info.set_defaults(fn=cmd_info)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
