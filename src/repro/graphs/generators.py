"""Synthetic graph/matrix generators.

* :func:`erdos_renyi` — the paper's controlled-density experiments (Fig. 7)
  vary ER degree for mask and inputs independently.
* :func:`rmat` — Recursive MATrix generator (Chakrabarti et al.) "with
  parameters identical to those used in the Graph500 benchmark"
  (a, b, c, d) = (0.57, 0.19, 0.19, 0.05); used for the scaling figures.
* The remaining generators diversify the stand-in suite: small-world rings
  (:func:`watts_strogatz`), meshes (:func:`grid_graph`), banded matrices
  (:func:`banded_matrix`) and skewed-degree Chung-Lu graphs
  (:func:`chung_lu`).

All return canonical :class:`~repro.sparse.csr.CSRMatrix` adjacency
patterns; duplicate sampled edges collapse, so realized nnz can land
slightly under the request (Graph500 has the same property).
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix

#: Graph500 R-MAT quadrant probabilities (paper §7).
GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)


def _rng(rng) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def _edges_to_csr(rows, cols, n, *, symmetrize: bool, remove_self_loops: bool,
                  values: np.ndarray | None = None) -> CSRMatrix:
    if remove_self_loops:
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        values = values[keep] if values is not None else None
    if symmetrize:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        values = np.concatenate([values, values]) if values is not None else None
    vals = values if values is not None else np.ones(rows.size)
    m = COOMatrix(rows, cols, vals, (n, n)).to_csr()
    # collapse duplicate-edge sums back to a 0/1 pattern
    return m.pattern() if values is None else m


def erdos_renyi(n: int, degree: float, *, rng=None, symmetrize: bool = False,
                remove_self_loops: bool = True) -> CSRMatrix:
    """G(n, m)-style Erdős-Rényi pattern with expected row degree ``degree``.

    Samples ``round(n*degree)`` directed edges uniformly (with replacement,
    duplicates collapsed). ``symmetrize=True`` mirrors edges for an
    undirected graph (realized degree then approaches ``2*degree`` before
    duplicate collapse — callers wanting a target undirected degree should
    halve).
    """
    gen = _rng(rng)
    nedges = int(round(n * degree))
    if nedges == 0 or n == 0:
        return CSRMatrix.empty((n, n))
    rows = gen.integers(0, n, size=nedges, dtype=np.int64)
    cols = gen.integers(0, n, size=nedges, dtype=np.int64)
    return _edges_to_csr(rows, cols, n, symmetrize=symmetrize,
                         remove_self_loops=remove_self_loops)


def rmat(scale: int, edge_factor: int = 16, *, params=GRAPH500_PARAMS, rng=None,
         symmetrize: bool = True, remove_self_loops: bool = True) -> CSRMatrix:
    """R-MAT graph: n = 2^scale vertices, ~edge_factor·n sampled edges.

    Each edge picks one quadrant per bit level according to ``params``;
    the Graph500 defaults produce the skewed power-law-ish degree
    distributions the paper's scaling experiments use.
    """
    gen = _rng(rng)
    n = 1 << scale
    nedges = edge_factor * n
    a, b, c, d = params
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError(f"R-MAT params must sum to 1, got {params}")
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    for _level in range(scale):
        r = gen.random(nedges)
        # quadrants: a=(0,0) b=(0,1) c=(1,0) d=(1,1)
        row_bit = r >= a + b
        col_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    return _edges_to_csr(rows, cols, n, symmetrize=symmetrize,
                         remove_self_loops=remove_self_loops)


def watts_strogatz(n: int, k: int, p: float, *, rng=None) -> CSRMatrix:
    """Small-world ring: each vertex connects to its k nearest ring
    neighbours on each side; each edge rewires its endpoint with
    probability p. Undirected simple pattern."""
    gen = _rng(rng)
    if n == 0:
        return CSRMatrix.empty((0, 0))
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    rewire = gen.random(src.size) < p
    dst[rewire] = gen.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    return _edges_to_csr(src, dst, n, symmetrize=True, remove_self_loops=True)


def grid_graph(side: int) -> CSRMatrix:
    """2-D mesh (side×side vertices, 4-neighbour connectivity) — the
    high-locality, low-degree end of the suite."""
    n = side * side
    ids = np.arange(n, dtype=np.int64).reshape(side, side)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    e = np.concatenate([right, down])
    return _edges_to_csr(e[:, 0], e[:, 1], n, symmetrize=True,
                         remove_self_loops=True)


def banded_matrix(n: int, bandwidth: int, *, rng=None, fill: float = 0.6) -> CSRMatrix:
    """Random pattern confined to ``|i-j| <= bandwidth`` — exercises the
    paper's matrix-bandwidth assumption (§4.2, β(A) vs cache size)."""
    gen = _rng(rng)
    nnz_target = int(n * bandwidth * fill)
    rows = gen.integers(0, n, size=nnz_target, dtype=np.int64)
    span = gen.integers(-bandwidth, bandwidth + 1, size=nnz_target)
    cols = np.clip(rows + span, 0, n - 1)
    return _edges_to_csr(rows, cols, n, symmetrize=True, remove_self_loops=True)


def chung_lu(n: int, avg_degree: float, exponent: float = 2.5, *, rng=None
             ) -> CSRMatrix:
    """Chung-Lu random graph with power-law expected degrees
    (P(deg) ~ deg^-exponent): heavy-tailed like web/social graphs, which is
    where load imbalance and hub rows stress the accumulators."""
    gen = _rng(rng)
    if n == 0:
        return CSRMatrix.empty((0, 0))
    # expected-degree weights w_i ∝ (i+1)^{-1/(exponent-1)}
    w = (np.arange(1, n + 1, dtype=np.float64)) ** (-1.0 / (exponent - 1.0))
    p = w / w.sum()
    nedges = int(round(n * avg_degree / 2))
    rows = gen.choice(n, size=nedges, p=p).astype(np.int64)
    cols = gen.choice(n, size=nedges, p=p).astype(np.int64)
    return _edges_to_csr(rows, cols, n, symmetrize=True, remove_self_loops=True)
