"""Graph preparation for the benchmark applications.

Triangle counting wants vertices "sorted in non-increasing order of their
degrees" before taking the lower triangle (paper §8.2, citing [29]); k-truss
and BC want simple undirected patterns. These helpers do exactly that and
nothing more.
"""

from __future__ import annotations

import numpy as np

from ..sparse import ops
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix


def to_undirected_simple(g: CSRMatrix) -> CSRMatrix:
    """Symmetrize the pattern and drop self-loops: the canonical 'simple
    undirected graph' adjacency the benchmark apps expect."""
    return ops.remove_diagonal(ops.symmetrize(g))


def relabel_by_degree(g: CSRMatrix, *, ascending: bool = False) -> CSRMatrix:
    """Permute vertices by degree (default non-increasing), symmetrically.

    Uses a stable sort so equal-degree vertices keep their relative order —
    deterministic output matters for test reproducibility.
    """
    deg = g.row_nnz()
    order = np.argsort(-deg if not ascending else deg, kind="stable")
    # perm[v] = new id of old vertex v
    perm = np.empty_like(order)
    perm[order] = np.arange(order.size)
    coo = g.to_coo()
    return COOMatrix(perm[coo.rows], perm[coo.cols], coo.data, g.shape).to_csr()


def tril_lower(g: CSRMatrix) -> CSRMatrix:
    """Strictly-lower-triangular part (the ``L`` in sum(L .* (L·L)))."""
    return ops.tril(g, -1)


def triangle_prep(g: CSRMatrix) -> CSRMatrix:
    """Full TC preparation: simple undirected → degree-sorted → tril."""
    return tril_lower(relabel_by_degree(to_undirected_simple(g)))
