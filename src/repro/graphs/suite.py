"""The input suite: 26 seeded synthetic graphs standing in for the paper's
26 SuiteSparse real-world matrices (Nagasaka et al.'s set).

We cannot ship the real collection (offline environment, 100M-nnz inputs),
so the suite is constructed to span the axes the paper shows decide which
algorithm wins: density (average degree 2-32), degree skew (ER → R-MAT →
Chung-Lu power law), and locality (grids/banded vs scrambled small-world).
Sizes are laptop-scale (2^8-2^12 vertices); every graph is a simple
undirected pattern. Entries are generated lazily and cached per process.

``suite_graphs(limit=...)`` is what the performance-profile benchmarks
iterate over, mirroring "tested on all real graphs" in §8.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterator

from ..errors import ReproError
from ..sparse.csr import CSRMatrix
from . import generators as gen
from .prep import to_undirected_simple


def _make(fn: Callable[[], CSRMatrix]) -> Callable[[], CSRMatrix]:
    return fn


#: name -> (description, zero-arg constructor). Seeds are fixed: the suite is
#: deterministic across runs and machines.
SUITE_SPECS: dict[str, tuple[str, Callable[[], CSRMatrix]]] = {
    # --- R-MAT family: skewed degrees, the Graph500 shape ---------------- #
    "rmat-s8-e4":   ("R-MAT scale 8, edge factor 4",
                     _make(lambda: gen.rmat(8, 4, rng=801))),
    "rmat-s8-e16":  ("R-MAT scale 8, edge factor 16",
                     _make(lambda: gen.rmat(8, 16, rng=802))),
    "rmat-s9-e8":   ("R-MAT scale 9, edge factor 8",
                     _make(lambda: gen.rmat(9, 8, rng=901))),
    "rmat-s10-e4":  ("R-MAT scale 10, edge factor 4",
                     _make(lambda: gen.rmat(10, 4, rng=1001))),
    "rmat-s10-e8":  ("R-MAT scale 10, edge factor 8",
                     _make(lambda: gen.rmat(10, 8, rng=1002))),
    "rmat-s10-e16": ("R-MAT scale 10, edge factor 16",
                     _make(lambda: gen.rmat(10, 16, rng=1003))),
    "rmat-s11-e8":  ("R-MAT scale 11, edge factor 8",
                     _make(lambda: gen.rmat(11, 8, rng=1101))),
    "rmat-s11-e16": ("R-MAT scale 11, edge factor 16",
                     _make(lambda: gen.rmat(11, 16, rng=1102))),
    "rmat-s12-e4":  ("R-MAT scale 12, edge factor 4",
                     _make(lambda: gen.rmat(12, 4, rng=1201))),
    "rmat-s12-e8":  ("R-MAT scale 12, edge factor 8 (largest of the suite)",
                     _make(lambda: gen.rmat(12, 8, rng=1202))),
    # --- Erdős-Rényi family: flat degrees ------------------------------- #
    "er-s8-d4":     ("ER n=2^8, degree 4",
                     _make(lambda: gen.erdos_renyi(1 << 8, 4, rng=81, symmetrize=True))),
    "er-s9-d8":     ("ER n=2^9, degree 8",
                     _make(lambda: gen.erdos_renyi(1 << 9, 8, rng=91, symmetrize=True))),
    "er-s10-d4":    ("ER n=2^10, degree 4",
                     _make(lambda: gen.erdos_renyi(1 << 10, 4, rng=101, symmetrize=True))),
    "er-s10-d16":   ("ER n=2^10, degree 16",
                     _make(lambda: gen.erdos_renyi(1 << 10, 16, rng=102, symmetrize=True))),
    "er-s11-d8":    ("ER n=2^11, degree 8",
                     _make(lambda: gen.erdos_renyi(1 << 11, 8, rng=111, symmetrize=True))),
    "er-s12-d4":    ("ER n=2^12, degree 4",
                     _make(lambda: gen.erdos_renyi(1 << 12, 4, rng=121, symmetrize=True))),
    # --- small-world: high clustering, many triangles -------------------- #
    "ws-s9-k6":     ("Watts-Strogatz n=2^9, k=6, p=0.05",
                     _make(lambda: gen.watts_strogatz(1 << 9, 6, 0.05, rng=92))),
    "ws-s10-k4":    ("Watts-Strogatz n=2^10, k=4, p=0.1",
                     _make(lambda: gen.watts_strogatz(1 << 10, 4, 0.1, rng=103))),
    "ws-s11-k8":    ("Watts-Strogatz n=2^11, k=8, p=0.02",
                     _make(lambda: gen.watts_strogatz(1 << 11, 8, 0.02, rng=112))),
    # --- meshes / banded: locality, tiny bandwidth ----------------------- #
    "grid-24":      ("24x24 2-D mesh", _make(lambda: gen.grid_graph(24))),
    "grid-48":      ("48x48 2-D mesh", _make(lambda: gen.grid_graph(48))),
    "band-s10-b8":  ("banded n=2^10, bandwidth 8",
                     _make(lambda: gen.banded_matrix(1 << 10, 8, rng=104))),
    "band-s11-b16": ("banded n=2^11, bandwidth 16",
                     _make(lambda: gen.banded_matrix(1 << 11, 16, rng=113))),
    # --- power-law (Chung-Lu): hub-dominated ----------------------------- #
    "cl-s9-d8":     ("Chung-Lu n=2^9, avg degree 8, exp 2.5",
                     _make(lambda: gen.chung_lu(1 << 9, 8, rng=93))),
    "cl-s10-d12":   ("Chung-Lu n=2^10, avg degree 12, exp 2.3",
                     _make(lambda: gen.chung_lu(1 << 10, 12, 2.3, rng=105))),
    "cl-s11-d6":    ("Chung-Lu n=2^11, avg degree 6, exp 2.7",
                     _make(lambda: gen.chung_lu(1 << 11, 6, 2.7, rng=114))),
}

#: Graphs the paper excludes from some benchmarks for runtime; we mirror the
#: mechanism by letting harnesses drop the largest entries.
LARGEST = ("rmat-s12-e8", "rmat-s12-e4", "er-s12-d4")


def suite_names(*, exclude_largest: bool = False) -> list[str]:
    names = list(SUITE_SPECS)
    if exclude_largest:
        names = [n for n in names if n not in LARGEST]
    return names


@lru_cache(maxsize=None)
def load_graph(name: str) -> CSRMatrix:
    """Build (or fetch cached) suite graph by name, as a simple undirected
    pattern."""
    try:
        _, ctor = SUITE_SPECS[name]
    except KeyError:
        raise ReproError(
            f"unknown suite graph {name!r}; names: {sorted(SUITE_SPECS)}"
        ) from None
    return to_undirected_simple(ctor())


def suite_graphs(*, exclude_largest: bool = False, limit: int | None = None
                 ) -> Iterator[tuple[str, CSRMatrix]]:
    """Iterate (name, graph) over the suite in declaration order."""
    names = suite_names(exclude_largest=exclude_largest)
    if limit is not None:
        names = names[:limit]
    for n in names:
        yield n, load_graph(n)
