"""Graph substrate: generators, preparation helpers and the input suite.

The paper evaluates on Erdős-Rényi and R-MAT synthetic graphs plus 26
real-world SuiteSparse matrices. This package provides the two synthetic
generators with the paper's parameters (R-MAT uses the Graph500 constants)
and a seeded, laptop-scale stand-in suite spanning the same structural axes
as the real collection (see DESIGN.md §2 for the substitution rationale).
"""

from .generators import (
    banded_matrix,
    chung_lu,
    erdos_renyi,
    grid_graph,
    rmat,
    watts_strogatz,
)
from .prep import (
    relabel_by_degree,
    to_undirected_simple,
    tril_lower,
)
from .suite import SUITE_SPECS, load_graph, suite_graphs, suite_names

__all__ = [
    "erdos_renyi",
    "rmat",
    "watts_strogatz",
    "grid_graph",
    "banded_matrix",
    "chung_lu",
    "relabel_by_degree",
    "to_undirected_simple",
    "tril_lower",
    "SUITE_SPECS",
    "suite_names",
    "suite_graphs",
    "load_graph",
]
