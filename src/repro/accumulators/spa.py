"""Plain (unmasked) Sparse Accumulator — Gilbert/Moler/Schreiber SPA.

This is the classic dense-array accumulator used by plain Gustavson SpGEMM
(paper Algorithm 1 and §2.2). The library needs it for the multiply-then-mask
baseline (SS:SAXPY stand-in): it accumulates *every* partial product with no
mask filtering — the wasted work the masked accumulators exist to avoid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..semiring import PLUS_TIMES, Semiring
from .base import _force, ValueOrThunk


class SPAAccumulator:
    """Dense values + occupancy flags + touched-key log, reusable across rows."""

    def __init__(self, ncols: int, semiring: Semiring = PLUS_TIMES):
        self.semiring = semiring
        self.ncols = int(ncols)
        self.values = np.zeros(self.ncols, dtype=np.float64)
        self.occupied = np.zeros(self.ncols, dtype=bool)
        self._touched: list[int] = []

    def insert(self, key: int, value: ValueOrThunk) -> None:
        if self.occupied[key]:
            self.values[key] = float(self.semiring.add.ufunc(
                self.values[key], _force(value)))
        else:
            self.occupied[key] = True
            self.values[key] = _force(value)
            self._touched.append(key)

    def get(self, key: int) -> Optional[float]:
        return float(self.values[key]) if self.occupied[key] else None

    def drain(self) -> tuple[list[int], list[float]]:
        """Gather (key, value) pairs in sorted-key order and reset."""
        keys = sorted(self._touched)
        vals = [float(self.values[k]) for k in keys]
        for k in keys:
            self.occupied[k] = False
        self._touched.clear()
        return keys, vals
