"""Accumulators for Masked SpGEMM — the reference (faithful) tier.

The paper's §5.1 defines the accumulator as "a data structure to merge scaled
rows … the key differentiating feature between our proposed algorithms", with
a three-procedure interface:

* ``set_allowed(key)`` — mark keys that may appear in the output,
* ``insert(key, value)`` — add a partial product (``value`` may be a thunk,
  evaluated only if the product will not be discarded),
* ``remove(key)`` — return the accumulated value (or ``None``) and clear it.

Four masked implementations are provided — :class:`MSAAccumulator`,
:class:`HashAccumulator`, :class:`MCAAccumulator` plus the heap-based merger
:class:`HeapMerger` (the heap algorithm does not fit the 3-call interface;
see its docstring) — together with complement-mask variants and the plain
(unmasked) :class:`SPAAccumulator` used by the multiply-then-mask baseline.

These classes are *reference implementations*: statement-for-statement
faithful to the paper's pseudocode and state automata, used for correctness
testing and small inputs. The benchmark-grade vectorized kernels live in
:mod:`repro.core` and are tested for equivalence against these.
"""

from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator
from .msa import MSAAccumulator, MSAComplementAccumulator
from .hash_acc import HashAccumulator, HashComplementAccumulator
from .mca import MCAAccumulator
from .heap_acc import HeapMerger, RowIterator
from .spa import SPAAccumulator

__all__ = [
    "NOTALLOWED",
    "ALLOWED",
    "SET",
    "MaskedAccumulator",
    "MSAAccumulator",
    "MSAComplementAccumulator",
    "HashAccumulator",
    "HashComplementAccumulator",
    "MCAAccumulator",
    "HeapMerger",
    "RowIterator",
    "SPAAccumulator",
]
