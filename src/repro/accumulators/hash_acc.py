"""Hash accumulator — paper §5.3.

Rationale (paper): MSA's dense arrays rarely fit in L1 even though they hold
few nonzeros, so indexing them misses cache; a hash table sized by the row's
mask population ``nnz(m)`` trades cheaper misses for per-access hashing.

Faithful details implemented here:

* open addressing with **linear probing**;
* **no resizing** for the non-complemented case — the table holds at most
  ``nnz(m)`` keys, known up front;
* **load factor 0.25** — capacity is the next power of two ≥ 4·nnz(m);
* value and state stored **as a pair in one table** ("we store both the
  accumulated value and its state as a pair in one single hash map").

The complement variant cannot bound occupancy by ``nnz(m)`` (any product key
outside the mask may land in the table), so it takes a capacity hint — the
caller passes the row's flops bound — and mask keys are pre-inserted in the
NOTALLOWED state so membership tests share the same probe loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AccumulatorError
from ..semiring import PLUS_TIMES, Semiring
from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator, ValueOrThunk, _force

#: Fibonacci-style multiplicative hash constant (Knuth); spreads consecutive
#: column ids across the table, which matters because graph rows are runs.
HASH_SCAL = 0x9E3779B97F4A7C15
_EMPTY = -1

#: Paper §5.3: "a load factor of 0.25 to reduce collisions".
LOAD_FACTOR = 0.25


def table_capacity(nkeys: int, load_factor: float = LOAD_FACTOR) -> int:
    """Power-of-two capacity giving at most ``load_factor`` occupancy."""
    need = max(4, int(np.ceil(max(nkeys, 1) / load_factor)))
    return 1 << int(need - 1).bit_length()


def _hash_slot(key: int, mask: int) -> int:
    return ((key * HASH_SCAL) & 0xFFFFFFFFFFFFFFFF) >> 32 & mask


class HashAccumulator(MaskedAccumulator):
    """Open-addressing masked accumulator for non-complemented masks.

    Parameters
    ----------
    nkeys : number of keys that will be ``set_allowed`` (= nnz of mask row).
        Fixes the capacity; inserting more *allowed* keys than this raises.
    """

    def __init__(self, nkeys: int, semiring: Semiring = PLUS_TIMES,
                 load_factor: float = LOAD_FACTOR):
        super().__init__(semiring)
        self.capacity = table_capacity(nkeys, load_factor)
        self._mask = self.capacity - 1
        self.keys = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self.states = np.full(self.capacity, NOTALLOWED, dtype=np.int8)
        self.values = np.zeros(self.capacity, dtype=np.float64)
        self._max_keys = int(nkeys)
        self._nkeys = 0

    # -- probing -------------------------------------------------------- #
    def _find_slot(self, key: int) -> int:
        """Slot holding ``key``, or the first empty slot of its probe chain."""
        slot = _hash_slot(key, self._mask)
        while True:
            k = self.keys[slot]
            if k == key or k == _EMPTY:
                return slot
            slot = (slot + 1) & self._mask

    # -- interface ------------------------------------------------------ #
    def set_allowed(self, key: int) -> None:
        slot = self._find_slot(key)
        if self.keys[slot] == _EMPTY:
            if self._nkeys >= self._max_keys:
                raise AccumulatorError(
                    f"hash accumulator sized for {self._max_keys} keys; "
                    f"set_allowed called with more distinct keys"
                )
            self.keys[slot] = key
            self.states[slot] = ALLOWED
            self._nkeys += 1
        elif self.states[slot] == NOTALLOWED:
            # removed earlier: the key stays resident (open addressing must
            # not punch probe-chain holes), so re-allowing transitions the
            # state instead of inserting — without this, a removed key could
            # never be re-admitted (the Fig. 3 automaton allows it)
            self.states[slot] = ALLOWED
        # ALLOWED/SET: idempotent

    def insert(self, key: int, value: ValueOrThunk) -> None:
        slot = self._find_slot(key)
        if self.keys[slot] == _EMPTY:
            return  # not in mask: discard, thunk not evaluated
        state = self.states[slot]
        if state == NOTALLOWED:
            return  # removed and not re-allowed: discard
        if state == ALLOWED:
            self.states[slot] = SET
            self.values[slot] = _force(value)
        else:
            self.values[slot] = self._accumulate(self.values[slot], _force(value))

    def remove(self, key: int) -> Optional[float]:
        slot = self._find_slot(key)
        if self.keys[slot] == _EMPTY:
            return None
        out = float(self.values[slot]) if self.states[slot] == SET else None
        # Do NOT empty the slot: open addressing with linear probing must not
        # punch holes in probe chains mid-gather. Marking the state NOTALLOWED
        # is enough — a second remove of the same key returns None, and the
        # table is per-row (fresh instance each row), so no global reset is
        # needed.
        self.states[slot] = NOTALLOWED
        return out


class HashComplementAccumulator(MaskedAccumulator):
    """Hash accumulator for complemented masks.

    Mask keys are inserted up front in the NOTALLOWED state; any other key is
    implicitly allowed and gets created on first ``insert``. Capacity is
    sized by ``nnz(mask row) + products_bound`` (the caller's flops bound for
    the row), so no resizing happens mid-row — keeping the kernel's "no
    rehash" property.
    """

    def __init__(self, mask_keys, products_bound: int,
                 semiring: Semiring = PLUS_TIMES,
                 load_factor: float = LOAD_FACTOR):
        super().__init__(semiring)
        nkeys = len(mask_keys) + int(products_bound)
        self.capacity = table_capacity(nkeys, load_factor)
        self._mask = self.capacity - 1
        self.keys = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self.states = np.full(self.capacity, NOTALLOWED, dtype=np.int8)
        self.values = np.zeros(self.capacity, dtype=np.float64)
        self._inserted: list[int] = []
        for k in mask_keys:
            slot = self._find_slot(int(k))
            if self.keys[slot] == _EMPTY:
                self.keys[slot] = int(k)
                self.states[slot] = NOTALLOWED

    def _find_slot(self, key: int) -> int:
        slot = _hash_slot(key, self._mask)
        while True:
            k = self.keys[slot]
            if k == key or k == _EMPTY:
                return slot
            slot = (slot + 1) & self._mask

    def set_allowed(self, key: int) -> None:  # pragma: no cover - interface parity
        raise NotImplementedError("complemented hash pre-marks mask keys instead")

    def insert(self, key: int, value: ValueOrThunk) -> None:
        slot = self._find_slot(key)
        if self.keys[slot] == _EMPTY:
            # implicitly allowed: first touch creates the entry
            self.keys[slot] = key
            self.states[slot] = SET
            self.values[slot] = _force(value)
            self._inserted.append(key)
            return
        state = self.states[slot]
        if state == NOTALLOWED:
            return  # in the mask: masked out under complement
        if state == SET:
            self.values[slot] = self._accumulate(self.values[slot], _force(value))

    def remove(self, key: int) -> Optional[float]:
        slot = self._find_slot(key)
        if self.keys[slot] == _EMPTY or self.states[slot] != SET:
            return None
        out = float(self.values[slot])
        self.states[slot] = NOTALLOWED  # consumed
        return out

    def drain(self) -> tuple[list[int], list[float]]:
        """Gather inserted (key, value) pairs in sorted-key order."""
        out_k: list[int] = []
        out_v: list[float] = []
        for k in sorted(set(self._inserted)):
            v = self.remove(k)
            if v is not None:
                out_k.append(k)
                out_v.append(v)
        self._inserted.clear()
        return out_k, out_v
