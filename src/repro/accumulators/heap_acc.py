"""Heap-based masked merger — paper §5.5 (Algorithms 4 and 5).

The heap algorithm differs structurally from MSA/Hash/MCA: instead of
scattering partial products into a table, it performs a k-way merge of the
(sorted) B rows selected by u via a min-heap of row iterators, intersecting
the merged stream with the (sorted) mask on the fly. Same-column products
arrive consecutively, so accumulation needs only the previous output key
("if the last inserted product has the same column index …, the result of
the current product is added to the last product").

``NInspect`` (Algorithm 5) bounds how many mask positions the insert
procedure may inspect before giving up and pushing the iterator anyway:

* ``NInspect = 0`` — push unconditionally (the base algorithm; also the
  mandatory setting for complemented masks),
* ``NInspect = 1`` — peek at a single mask element (the paper's **Heap**),
* ``NInspect = ∞`` — scan until certainty (the paper's **HeapDot**).

The mask iterator handed to the insert procedure is a *local copy* (pass by
value): inspection must not consume mask positions other heap entries with
smaller column ids may still need.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence

import numpy as np

from ..semiring import PLUS_TIMES, Semiring

#: Sentinel for "scan the whole mask" (HeapDot).
INSPECT_ALL = math.inf


class RowIterator:
    """Cursor over one scaled row ``u_k * B_k*`` in sorted column order."""

    __slots__ = ("cols", "vals", "scale", "row_id", "pos")

    def __init__(self, cols: np.ndarray, vals: np.ndarray, scale: float, row_id: int):
        self.cols = cols
        self.vals = vals
        self.scale = float(scale)
        self.row_id = int(row_id)
        self.pos = 0

    def is_valid(self) -> bool:
        return self.pos < len(self.cols)

    @property
    def col_id(self) -> int:
        return int(self.cols[self.pos])

    def value(self, semiring: Semiring) -> float:
        """The partial product ``u_k ⊗ B_kj`` at the cursor."""
        return semiring.mul_scalar(self.scale, float(self.vals[self.pos]))

    def advance(self) -> "RowIterator":
        """Increment the cursor in place (returns self for chaining)."""
        self.pos += 1
        return self


class _MaskCursor:
    """Monotone cursor over the sorted mask column ids of one output row."""

    __slots__ = ("cols", "pos")

    def __init__(self, cols: np.ndarray, pos: int = 0):
        self.cols = cols
        self.pos = pos

    def is_valid(self) -> bool:
        return self.pos < len(self.cols)

    @property
    def col_id(self) -> int:
        return int(self.cols[self.pos])

    def advance(self) -> None:
        self.pos += 1

    def copy(self) -> "_MaskCursor":
        return _MaskCursor(self.cols, self.pos)


class HeapMerger:
    """K-way-merge masked SpGEVM engine (one instance is reusable across rows)."""

    def __init__(self, semiring: Semiring = PLUS_TIMES, ninspect: float = 1):
        if not (ninspect == INSPECT_ALL or (isinstance(ninspect, (int, float))
                                            and ninspect >= 0 and ninspect == int(ninspect))):
            raise ValueError(f"ninspect must be a non-negative integer or INSPECT_ALL, "
                             f"got {ninspect!r}")
        self.semiring = semiring
        self.ninspect = ninspect
        self._seq = 0  # heap tie-breaker (iterators are not orderable)

    # ------------------------------------------------------------------ #
    def _push(self, pq: list, row_iter: RowIterator, m_cursor: _MaskCursor) -> None:
        """Algorithm 5: Insert(PQ, rowIter, mIter, NInspect).

        Inspects up to ``ninspect`` mask positions (on a local cursor copy)
        looking for evidence the iterator's current column can intersect the
        mask; skips heap pushes for provably-masked-out prefixes by advancing
        the row iterator instead.
        """
        if not row_iter.is_valid():
            return
        if self.ninspect == 0:
            self._heap_insert(pq, row_iter)
            return
        to_inspect = self.ninspect
        cursor = m_cursor.copy()  # pass-by-value semantics
        while row_iter.is_valid() and cursor.is_valid():
            rc, mc = row_iter.col_id, cursor.col_id
            if rc == mc:
                self._heap_insert(pq, row_iter)
                return
            if rc < mc:
                row_iter.advance()  # this product can never match the mask
            else:
                cursor.advance()
                to_inspect -= 1
                if to_inspect <= 0:
                    # inspection budget exhausted: push and let the main loop
                    # sort it out (matches Algorithm 5 line 17-19)
                    if row_iter.is_valid():
                        self._heap_insert(pq, row_iter)
                    return
        # Either the row ran out (nothing to push) or the mask ran out (no
        # remaining product can be unmasked): drop the iterator.

    def _heap_insert(self, pq: list, row_iter: RowIterator) -> None:
        self._seq += 1
        heapq.heappush(pq, (row_iter.col_id, self._seq, row_iter))

    # ------------------------------------------------------------------ #
    def merge(self, m_cols: np.ndarray, row_iters: Sequence[RowIterator]
              ) -> tuple[list[int], list[float]]:
        """Algorithm 4: masked k-way merge, C-row = intersection(m, S)."""
        sem = self.semiring
        pq: list = []
        m_cursor = _MaskCursor(np.asarray(m_cols))
        for it in row_iters:
            self._push(pq, it, m_cursor)

        out_cols: list[int] = []
        out_vals: list[float] = []
        prev_key: Optional[int] = None
        while pq:
            _, _, min_iter = heapq.heappop(pq)
            # advance the shared mask cursor to the popped column
            while m_cursor.is_valid() and m_cursor.col_id < min_iter.col_id:
                m_cursor.advance()
            if not m_cursor.is_valid():
                break  # mask exhausted; nothing further can be produced
            if m_cursor.col_id == min_iter.col_id:
                j = min_iter.col_id
                v = min_iter.value(sem)
                if prev_key == j:
                    out_vals[-1] = float(sem.add.ufunc(out_vals[-1], v))
                else:
                    prev_key = j
                    out_cols.append(j)
                    out_vals.append(v)
            self._push(pq, min_iter.advance(), m_cursor)
        return out_cols, out_vals

    def merge_complement(self, m_cols: np.ndarray, row_iters: Sequence[RowIterator]
                         ) -> tuple[list[int], list[float]]:
        """Complemented variant: C-row = S \\ m (paper §5.5 last paragraph;
        NInspect is forced to 0 because inspection can only *confirm*
        membership, which under complement proves nothing useful)."""
        sem = self.semiring
        pq: list = []
        for it in row_iters:
            if it.is_valid():
                self._heap_insert(pq, it)

        m = np.asarray(m_cols)
        m_pos = 0
        out_cols: list[int] = []
        out_vals: list[float] = []
        prev_key: Optional[int] = None
        while pq:
            _, _, min_iter = heapq.heappop(pq)
            j = min_iter.col_id
            while m_pos < len(m) and m[m_pos] < j:
                m_pos += 1
            masked_out = m_pos < len(m) and m[m_pos] == j
            if not masked_out:
                v = min_iter.value(sem)
                if prev_key == j:
                    out_vals[-1] = float(sem.add.ufunc(out_vals[-1], v))
                else:
                    prev_key = j
                    out_cols.append(j)
                    out_vals.append(v)
            it = min_iter.advance()
            if it.is_valid():
                self._heap_insert(pq, it)
        return out_cols, out_vals
