"""Mask Compressed Accumulator (MCA) — paper §5.4, the novel structure.

Key observation: the accumulator can never hold more than ``nnz(m)`` entries,
so MCA allocates ``values``/``states`` of exactly that length and indexes
them by **mask rank** — the number of mask nonzeros with column index smaller
than j — rather than by column id. Because only mask positions are
addressable, NOTALLOWED cannot occur; the automaton has just ALLOWED and SET
(paper Fig. 5).

Consequence the paper leans on: the *caller* must translate column ids to
mask ranks, which is why the MCA SpGEVM (Algorithm 3) co-iterates the sorted
mask with each sorted B row — and why MCA fundamentally **cannot support
complemented masks** (the complement of the mask has no compact rank space).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AccumulatorError, MaskError
from ..semiring import PLUS_TIMES, Semiring
from .base import ALLOWED, SET, MaskedAccumulator, ValueOrThunk, _force


class MCAAccumulator(MaskedAccumulator):
    """Mask-rank-indexed accumulator of fixed size ``nnz(m)``.

    Keys passed to :meth:`insert` / :meth:`remove` are **mask ranks** in
    ``[0, nnz(m))``, not column ids. :meth:`set_allowed` exists for interface
    parity but every rank is allowed by construction.
    """

    def __init__(self, mask_nnz: int, semiring: Semiring = PLUS_TIMES):
        super().__init__(semiring)
        self.size = int(mask_nnz)
        self.values = np.zeros(self.size, dtype=np.float64)
        self.states = np.full(self.size, ALLOWED, dtype=np.int8)

    @staticmethod
    def complement_unsupported() -> MaskError:
        """The error every MCA entry point raises for complemented masks."""
        return MaskError(
            "MCA cannot be used with a complemented mask: its accumulator is "
            "indexed by mask rank, which does not exist for the complement "
            "(paper §8.4 excludes MCA from Betweenness Centrality for this reason)"
        )

    def set_allowed(self, key: int) -> None:
        # All ranks are allowed by construction; validate the range anyway so
        # misuse fails fast.
        self._check_key(key, self.size)

    def insert(self, key: int, value: ValueOrThunk) -> None:
        self._check_key(key, self.size)
        if self.states[key] == ALLOWED:
            self.states[key] = SET
            self.values[key] = _force(value)
        else:
            self.values[key] = self._accumulate(self.values[key], _force(value))

    def remove(self, key: int) -> Optional[float]:
        self._check_key(key, self.size)
        if self.states[key] != SET:
            return None
        out = float(self.values[key])
        self.states[key] = ALLOWED
        return out

    def _check_key(self, key: int, upper: int) -> None:
        if not 0 <= key < upper:
            raise AccumulatorError(
                f"MCA key must be a mask rank in [0, {upper}), got {key}"
            )
