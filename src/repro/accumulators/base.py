"""Accumulator state machine constants and abstract interface.

Paper §5.1: "an accumulator for Masked SpGEVM needs to be able to
differentiate between three states: SET, ALLOWED, and NOTALLOWED", with the
MSA automaton (Fig. 3):

.. code-block:: text

    INIT -> NOTALLOWED --setAllowed()--> ALLOWED --insert()--> SET
                                            ^                   |  insert() loops
                                            +----- remove() ----+  back on SET

MCA (Fig. 5) uses only ALLOWED/SET because its indexing scheme guarantees
no NOTALLOWED key can ever be addressed.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..errors import AccumulatorError
from ..semiring import PLUS_TIMES, Semiring

#: State encodings, shared by reference and vectorized tiers.
NOTALLOWED = 0
ALLOWED = 1
SET = 2

#: ``insert`` accepts either a concrete value or a zero-argument thunk that is
#: only evaluated if the key is not discarded (paper: "the insert procedure
#: allows the second argument to be a lambda function that will only be
#: evaluated if the value it computes will not be discarded").
ValueOrThunk = Union[float, Callable[[], float]]


def _force(value: ValueOrThunk) -> float:
    return value() if callable(value) else value


class MaskedAccumulator:
    """Abstract three-state masked accumulator (paper §5.1 interface).

    Concrete subclasses decide the storage layout (dense arrays for MSA,
    open-addressing table for Hash, mask-rank arrays for MCA); the semantics
    of the three procedures are fixed here.

    Subclasses accumulate with the semiring's additive monoid so the same
    machinery serves plus_times, plus_pair, min_plus, …
    """

    def __init__(self, semiring: Semiring = PLUS_TIMES):
        self.semiring = semiring

    # -- interface ------------------------------------------------------ #
    def set_allowed(self, key: int) -> None:
        """Mark ``key`` as potentially present in the output (NOTALLOWED→ALLOWED)."""
        raise NotImplementedError

    def insert(self, key: int, value: ValueOrThunk) -> None:
        """Insert/accumulate a partial product for ``key``.

        Must be a no-op (and must *not* evaluate a thunk) when the key is in
        the NOTALLOWED state — that skipped evaluation is precisely the saved
        work that makes masked push algorithms beat multiply-then-mask.
        """
        raise NotImplementedError

    def remove(self, key: int) -> Optional[float]:
        """Return the accumulated value for ``key`` and reset it, or ``None``
        if nothing was inserted (or the key was never allowed)."""
        raise NotImplementedError

    # -- common helpers -------------------------------------------------- #
    def _accumulate(self, current: float, value: float) -> float:
        return float(self.semiring.add.ufunc(current, value))

    def _check_key(self, key: int, upper: int) -> None:
        if not 0 <= key < upper:
            raise AccumulatorError(f"key {key} out of range [0, {upper})")
