"""Masked Sparse Accumulator (MSA) — paper §5.2.

MSA keeps two dense, ``ncols``-long arrays: ``values`` (accumulated partial
products) and ``states`` (the NOTALLOWED/ALLOWED/SET automaton of Fig. 3).
Initialization is O(ncols) *once*; between rows only the touched entries are
reset (``remove`` resets as it gathers), so per-row cost is
O(nnz(m) + flops(uB)) and the whole SpGEVM is
O(ncols(v) + nnz(m) + flops(uB)) exactly as derived in the paper.

The complement variant (``C = ¬M ⊙ (A·B)``) flips the default state to
ALLOWED, marks mask entries NOTALLOWED, and — because the output pattern is
no longer bounded by the mask — keeps an explicit list of inserted keys so
gathering does not need to scan the whole dense array ("Similar strategy was
used by Gustavson", §5.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..semiring import PLUS_TIMES, Semiring
from .base import ALLOWED, NOTALLOWED, SET, MaskedAccumulator, ValueOrThunk, _force


class MSAAccumulator(MaskedAccumulator):
    """Dense-array masked accumulator (non-complemented masks).

    Parameters
    ----------
    ncols : length of the dense arrays, i.e. ``ncols(v)``.
    semiring : additive monoid used for accumulation.
    """

    def __init__(self, ncols: int, semiring: Semiring = PLUS_TIMES):
        super().__init__(semiring)
        self.ncols = int(ncols)
        self.values = np.zeros(self.ncols, dtype=np.float64)
        self.states = np.full(self.ncols, NOTALLOWED, dtype=np.int8)

    def set_allowed(self, key: int) -> None:
        self._check_key(key, self.ncols)
        # Only valid transition out of NOTALLOWED (Fig. 3). Re-allowing an
        # already-allowed/set key is a no-op, which makes duplicate mask
        # entries harmless.
        if self.states[key] == NOTALLOWED:
            self.states[key] = ALLOWED

    def insert(self, key: int, value: ValueOrThunk) -> None:
        self._check_key(key, self.ncols)
        state = self.states[key]
        if state == NOTALLOWED:
            return  # masked out: discard WITHOUT evaluating the thunk
        if state == ALLOWED:
            self.states[key] = SET
            self.values[key] = _force(value)
        else:  # SET: accumulate
            self.values[key] = self._accumulate(self.values[key], _force(value))

    def remove(self, key: int) -> Optional[float]:
        self._check_key(key, self.ncols)
        if self.states[key] != SET:
            # never inserted, or never allowed -> none; also resets ALLOWED
            # marks so the accumulator is clean for the next row.
            self.states[key] = NOTALLOWED
            return None
        out = float(self.values[key])
        self.states[key] = NOTALLOWED
        return out


class MSAComplementAccumulator(MaskedAccumulator):
    """MSA for complemented masks: default-ALLOWED with an inserted-keys log.

    ``set_not_allowed`` replaces ``set_allowed`` (§5.2: "for each element in
    the mask we invoke setNotAllowed instead of setAllowed").
    """

    def __init__(self, ncols: int, semiring: Semiring = PLUS_TIMES):
        super().__init__(semiring)
        self.ncols = int(ncols)
        self.values = np.zeros(self.ncols, dtype=np.float64)
        # Default state is ALLOWED for the complemented mask.
        self.states = np.full(self.ncols, ALLOWED, dtype=np.int8)
        self._inserted: list[int] = []

    def set_not_allowed(self, key: int) -> None:
        self._check_key(key, self.ncols)
        if self.states[key] == ALLOWED:
            self.states[key] = NOTALLOWED

    def set_allowed(self, key: int) -> None:  # pragma: no cover - interface parity
        raise NotImplementedError("complemented MSA marks disallowed keys instead")

    def insert(self, key: int, value: ValueOrThunk) -> None:
        self._check_key(key, self.ncols)
        state = self.states[key]
        if state == NOTALLOWED:
            return
        if state == ALLOWED:
            self.states[key] = SET
            self.values[key] = _force(value)
            self._inserted.append(key)
        else:
            self.values[key] = self._accumulate(self.values[key], _force(value))

    def remove(self, key: int) -> Optional[float]:
        self._check_key(key, self.ncols)
        if self.states[key] != SET:
            return None
        out = float(self.values[key])
        self.states[key] = ALLOWED
        return out

    def inserted_keys(self) -> list[int]:
        """Keys inserted since construction/``drain`` — the gather set.

        Sorted so output rows come out canonical (CSR requires sorted
        column ids)."""
        return sorted(set(self._inserted))

    def drain(self, disallowed: Iterable[int]) -> tuple[list[int], list[float]]:
        """Gather all accumulated (key, value) pairs in sorted-key order and
        fully reset the accumulator (including the mask markings, which the
        caller passes back in as ``disallowed``)."""
        keys = self.inserted_keys()
        out_k: list[int] = []
        out_v: list[float] = []
        for k in keys:
            v = self.remove(k)
            if v is not None:
                out_k.append(k)
                out_v.append(v)
        self._inserted.clear()
        for k in disallowed:
            self.states[k] = ALLOWED
        return out_k, out_v
