"""Shared-memory operand store for sharded execution.

``ShardedMatrixStore`` is the multi-process sibling of
:class:`repro.service.store.MatrixStore`: the same key → matrix namespace,
but entries live in named shared-memory segments
(:func:`repro.shard.memory.share_matrix`) so shard workers map them
zero-copy instead of receiving pickled arrays. The physical layout is one
segment per matrix; the *row partition* is logical — each shard's plan
(:class:`repro.shard.planner.ShardPlan`) restricts workers to their
contiguous row range of A and the mask, while B is read shared by all
shards, the standard 1D SpGEMM decomposition (workers only fault the pages
their row range actually touches).

Registration semantics mirror the in-process store: re-registering a key
replaces its segment (the old one is unlinked immediately — workers attach
per task by name, so they can never see a torn update), and eviction
unlinks. :meth:`close` unlinks everything and is idempotent; the engine
calls it from both graceful shutdown and exception paths.
"""

from __future__ import annotations

from ..mask import Mask
from ..sparse.csr import CSRMatrix
from .memory import (MatrixHandle, SegmentMissing, SegmentRegistry,
                     ShardError, share_matrix)


class ShardedMatrixStore:
    """Key → shared-segment registry for shard-worker operands."""

    def __init__(self):
        self._handles: dict[str, MatrixHandle] = {}
        self._registry = SegmentRegistry()
        self.shared_bytes = 0

    # ------------------------------------------------------------------ #
    def register(self, key: str, value: CSRMatrix | Mask) -> MatrixHandle:
        """Copy ``value`` into a fresh segment under ``key`` (replacing and
        unlinking any previous segment for the key)."""
        if not isinstance(value, (CSRMatrix, Mask)):
            raise ShardError(
                f"shard store values must be CSRMatrix or Mask, "
                f"got {type(value).__name__}"
            )
        handle, seg = share_matrix(value)
        self._registry.track(seg)
        old = self._handles.get(key)
        self._handles[key] = handle
        if old is not None:
            self.shared_bytes -= old.nbytes
            self._registry.unlink(old.name)
        self.shared_bytes += handle.nbytes
        return handle

    def handle(self, key: str) -> MatrixHandle:
        try:
            return self._handles[key]
        except KeyError:
            # SegmentMissing (not plain ShardError): a per-request operand
            # problem that should degrade immediately without counting
            # against the circuit breaker or triggering a pool respawn
            raise SegmentMissing(
                f"no shared matrix under {key!r}; "
                f"known keys: {sorted(self._handles)}"
            ) from None

    def evict(self, key: str) -> bool:
        handle = self._handles.pop(key, None)
        if handle is None:
            return False
        self.shared_bytes -= handle.nbytes
        self._registry.unlink(handle.name)
        return True

    def __contains__(self, key: str) -> bool:
        return key in self._handles

    def __len__(self) -> int:
        return len(self._handles)

    def keys(self) -> list[str]:
        return list(self._handles)

    # ------------------------------------------------------------------ #
    @property
    def registry(self) -> SegmentRegistry:
        """The creator-side segment tracker (the coordinator also parks its
        transient output segments here so one ``close`` covers everything)."""
        return self._registry

    def live_segment_names(self) -> list[str]:
        """Names of every segment this store still owns — the hook the
        lifecycle tests use to verify nothing leaks past ``close()``."""
        return self._registry.live_names()

    def close(self) -> None:
        """Unlink every owned segment. Idempotent; safe on exception paths."""
        self._handles.clear()
        self.shared_bytes = 0
        self._registry.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedMatrixStore {len(self._handles)} entries, "
                f"{self.shared_bytes} shared bytes>")
