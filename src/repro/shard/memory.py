"""Shared-memory segments for zero-copy operand exchange between processes.

The sharded execution layer (:mod:`repro.shard`) moves CSR arrays between
the coordinator and its worker processes through POSIX shared memory
(:mod:`multiprocessing.shared_memory`) instead of pickling them over pipes.
One matrix becomes one segment laid out as::

    [ indptr : int64 ] [ indices : int64 ] [ data : float64 (matrices only) ]

and the only thing that ever crosses a pipe is a :class:`MatrixHandle` — a
few ints plus the segment name. Workers attach by name and build zero-copy
:class:`~repro.sparse.csr.CSRMatrix` / :class:`~repro.mask.Mask` views over
the mapping; the coordinator likewise maps worker-written output segments
straight into the final result arrays, so a sharded product is assembled
without a single stitch copy on either side.

Lifecycle rules (the part that makes shared memory safe to operate):

* every segment a process *creates* is tracked until it is explicitly
  unlinked — :class:`SegmentRegistry` owns that bookkeeping and its
  :meth:`~SegmentRegistry.close` is idempotent, so shutdown and crash paths
  can both call it;
* *attachments* never own the name: :func:`attach` unregisters the mapping
  from this process's ``resource_tracker`` so a worker exiting can never
  unlink a segment the coordinator still serves from (the stdlib registers
  attachments exactly like creations, which is wrong for our topology);
* result arrays handed to callers keep their mapping alive through
  :func:`adopt_arrays` finalizers — the segment *name* is unlinked eagerly
  (freeing it for reuse and for crash cleanup), while the memory itself
  lives until the last array viewing it is garbage collected.

:func:`shared_memory_available` is the degradation probe: callers that
cannot get a segment (no ``/dev/shm``, no headroom, sealed sandbox) fall
back to the in-process path instead of failing.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ReproError
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE

VALUE_DTYPE = np.float64
_ITEM = 8  # bytes per element for both int64 and float64


class ShardError(ReproError):
    """Sharded-execution failure: segment allocation, worker dispatch, or
    lifecycle misuse."""


class SegmentMissing(ShardError):
    """An operand has no shared segment (never registered, or evicted).

    A *benign* per-request condition: the caller should degrade to the
    in-process tier immediately — it says nothing about pool health, so it
    must not trip the circuit breaker or trigger a pool respawn."""


class WorkerDied(ShardError):
    """A pool worker process died while (or before) running our tasks.

    The pool-health failure: the coordinator breaks the pool so the next
    dispatch respawns it, and the engine counts this against the circuit
    breaker before retrying or degrading."""


_SEGMENT_SEQ = itertools.count()


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh segment named ``repro_{pid}_{seq}``.

    Encoding the creator pid in the name is what makes crash hygiene
    possible without any registry file: ``repro gc-shm``
    (:func:`repro.resilience.shm.sweep_orphans`) can tell an orphan from a
    live server's segment by probing the pid baked into the filename. The
    sequence keeps names unique within a process; a collision with a stale
    name from a *recycled* pid is resolved by skipping to the next sequence
    number.
    """
    size = max(nbytes, 1)
    while True:
        name = f"repro_{os.getpid()}_{next(_SEGMENT_SEQ)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError:
            continue


def shared_memory_available(nbytes: int = 4096) -> bool:
    """Can this process create (and immediately release) a shared segment?

    The probe is how :class:`~repro.service.engine.Engine` and the CI smoke
    decide between sharded and in-process execution — environments without
    ``/dev/shm`` headroom degrade gracefully instead of erroring per request.
    """
    try:
        seg = _new_segment(nbytes)
    except (OSError, ValueError):
        return False
    try:
        seg.close()
        seg.unlink()
    except OSError:  # pragma: no cover - probe segment vanished underneath us
        pass
    return True


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* taking ownership of its name.

    The stdlib registers every mapping with the ``resource_tracker``, which
    is wrong for attachers twice over: a *spawned* worker's own tracker
    would unlink coordinator-owned segments when the worker exits, and a
    *forked* worker shares the coordinator's tracker, so an attach-side
    register/unregister pair races the creator's (the tracker logs KeyError
    tracebacks when an unregister arrives twice). Suppress the registration
    at the source instead: attachments are pure views, creators own names.
    """
    saved = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = saved


def _close_quietly(seg: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating still-exported views.

    When two arrays view one segment and the first is collected, the mapping
    must stay open for the second; its finalizer closes for real once the
    last view is gone.
    """
    try:
        seg.close()
    except BufferError:
        pass


class _AdoptedSegment(shared_memory.SharedMemory):
    """A mapping whose lifetime belongs to the arrays viewing it.

    ``close`` tolerates still-exported views (arrays outliving the segment
    object, e.g. results alive at interpreter shutdown) so neither the
    finalizers nor ``__del__`` can raise — the OS reclaims the pages when
    the process exits regardless.
    """

    def close(self):  # noqa: D102 - behaviour documented in class docstring
        try:
            super().close()
        except BufferError:
            pass


def adopt_arrays(seg: shared_memory.SharedMemory, *arrays: np.ndarray,
                 on_release=None) -> None:
    """Tie a mapping's lifetime to the arrays viewing it.

    Without ``on_release`` each array gets a finalizer holding a strong
    reference to ``seg``; the mapping is closed when the last viewing array
    is garbage collected. The caller is expected to have unlinked (or to
    later unlink) the *name* separately — names and mappings have
    independent lifetimes by design.

    With ``on_release`` (a callable taking the segment — in practice
    :meth:`SegmentPool.release`), the finalizers instead *refcount* the
    arrays: when the last one is collected the still-open segment is handed
    to ``on_release`` exactly once, so the pool can recycle the mapping and
    its name instead of retiring them. Views derived from the adopted
    arrays keep their base array alive, so the refcount cannot reach zero
    while any NumPy view of the buffer exists.
    """
    seg.__class__ = _AdoptedSegment  # make every later close() tolerant
    if on_release is None:
        for arr in arrays:
            weakref.finalize(arr, _close_quietly, seg)
        return
    if not arrays:
        on_release(seg)
        return
    remaining = [len(arrays)]
    lock = threading.Lock()

    def _drop():
        with lock:
            remaining[0] -= 1
            if remaining[0]:
                return
        on_release(seg)

    for arr in arrays:
        weakref.finalize(arr, _drop)


# --------------------------------------------------------------------- #
# matrix <-> segment layout
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatrixHandle:
    """Picklable description of one matrix/mask living in a shared segment.

    ``kind`` is ``"csr"`` (indptr + indices + data) or ``"mask"`` (pattern
    only — the mask's ``complemented`` flag travels with the *request*, not
    the segment, so one stored pattern serves both polarities).
    """

    name: str
    kind: str                 # "csr" | "mask"
    shape: tuple[int, int]
    nnz: int

    @property
    def nbytes(self) -> int:
        n = (self.shape[0] + 1 + self.nnz) * _ITEM
        if self.kind == "csr":
            n += self.nnz * _ITEM
        return n


def _layout(handle: MatrixHandle, buf) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    nrows = handle.shape[0]
    indptr = np.frombuffer(buf, dtype=INDEX_DTYPE, count=nrows + 1, offset=0)
    off = (nrows + 1) * _ITEM
    indices = np.frombuffer(buf, dtype=INDEX_DTYPE, count=handle.nnz, offset=off)
    data = None
    if handle.kind == "csr":
        off += handle.nnz * _ITEM
        data = np.frombuffer(buf, dtype=VALUE_DTYPE, count=handle.nnz, offset=off)
    return indptr, indices, data


def share_matrix(value: CSRMatrix | Mask) -> tuple[MatrixHandle, shared_memory.SharedMemory]:
    """Copy a matrix/mask into a fresh shared segment; returns its handle and
    the owning :class:`SharedMemory` (the caller tracks + eventually unlinks).

    This is the one copy in the sharded pipeline — paid once per
    registration, after which every worker maps the same pages zero-copy.
    """
    kind = "csr" if isinstance(value, CSRMatrix) else "mask"
    handle = MatrixHandle(name="", kind=kind, shape=tuple(value.shape),
                          nnz=int(value.indices.size))
    try:
        seg = _new_segment(handle.nbytes)
    except (OSError, ValueError) as e:
        raise ShardError(f"cannot allocate {handle.nbytes}-byte shared "
                         f"segment: {e}") from e
    handle = MatrixHandle(name=seg.name, kind=kind, shape=handle.shape,
                          nnz=handle.nnz)
    indptr, indices, data = _layout(handle, seg.buf)
    indptr[:] = value.indptr
    indices[:] = value.indices
    if data is not None:
        data[:] = value.data
    # drop our temporary views so seg.close() later cannot hit BufferError
    del indptr, indices, data
    return handle, seg


def attach_matrix(handle: MatrixHandle,
                  seg: shared_memory.SharedMemory) -> CSRMatrix:
    """Zero-copy :class:`CSRMatrix` over an attached segment (``check=False``:
    the creator validated; re-validating per task would be O(nnz))."""
    indptr, indices, data = _layout(handle, seg.buf)
    return CSRMatrix(indptr, indices, data, handle.shape, check=False)


def attach_mask(handle: MatrixHandle, seg: shared_memory.SharedMemory, *,
                complemented: bool) -> Mask:
    """Zero-copy :class:`Mask` over an attached segment.

    Built via ``__new__`` to skip ``Mask.__init__``'s validation round trip
    (it materializes a throwaway all-ones CSR, O(nnz) per call — the creator
    already validated this pattern once).
    """
    indptr, indices, _ = _layout(handle, seg.buf)
    m = Mask.__new__(Mask)
    m.shape = handle.shape
    m.indptr = indptr
    m.indices = indices
    m.complemented = bool(complemented)
    return m


# --------------------------------------------------------------------- #
# output segments
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutputHandle:
    """One sharded product's shared output CSR, laid out as
    ``[indptr : int64 (nrows+1)] [cols : int64 (nnz)] [vals : float64 (nnz)]``.

    The coordinator writes ``indptr`` (one cumsum of the plan's row sizes)
    before dispatch; workers slice their absolute destination offsets
    straight out of the mapping, so task messages carry only a row range —
    no per-shard offset arrays cross a pipe, and the assembled result views
    all three arrays zero-copy.
    """

    name: str
    nrows: int
    nnz: int


def create_output(nrows: int, nnz: int
                  ) -> tuple[OutputHandle, shared_memory.SharedMemory]:
    """Allocate the shared ``indptr``/``cols``/``vals`` arrays for one
    sharded product."""
    nbytes = (nrows + 1 + 2 * nnz) * _ITEM
    try:
        seg = _new_segment(nbytes)
    except (OSError, ValueError) as e:
        raise ShardError(f"cannot allocate {nbytes}-byte shared "
                         f"output segment: {e}") from e
    return OutputHandle(name=seg.name, nrows=nrows, nnz=nnz), seg


def acquire_output(pool: "SegmentPool", nrows: int, nnz: int
                   ) -> tuple[OutputHandle, shared_memory.SharedMemory]:
    """Pool-recycling variant of :func:`create_output`: the segment comes
    from (and, when the result dies, returns to) a :class:`SegmentPool`, so
    warm sharded serving reuses mappings instead of paying a
    ``shm_open``/``ftruncate``/``mmap`` round trip per request. The handle
    describes the *logical* CSR extent; the underlying segment is the
    size class's power of two, and the slack is never read."""
    nbytes = (nrows + 1 + 2 * nnz) * _ITEM
    try:
        seg = pool.acquire(nbytes)
    except (OSError, ValueError) as e:
        raise ShardError(f"cannot allocate {nbytes}-byte shared "
                        f"output segment: {e}") from e
    return OutputHandle(name=seg.name, nrows=nrows, nnz=nnz), seg


def output_arrays(handle: OutputHandle, seg: shared_memory.SharedMemory
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    indptr = np.frombuffer(seg.buf, dtype=INDEX_DTYPE,
                           count=handle.nrows + 1, offset=0)
    off = (handle.nrows + 1) * _ITEM
    cols = np.frombuffer(seg.buf, dtype=INDEX_DTYPE, count=handle.nnz,
                         offset=off)
    vals = np.frombuffer(seg.buf, dtype=VALUE_DTYPE, count=handle.nnz,
                         offset=off + handle.nnz * _ITEM)
    return indptr, cols, vals


# --------------------------------------------------------------------- #
# creator-side bookkeeping
# --------------------------------------------------------------------- #
class SegmentRegistry:
    """Tracks every segment this process created so shutdown (or a crash
    handler) can unlink all of them exactly once. ``unlink`` and ``close``
    are idempotent — exception paths and normal teardown may both run."""

    def __init__(self):
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def track(self, seg: shared_memory.SharedMemory) -> None:
        self._segments[seg.name] = seg

    def unlink(self, name: str) -> bool:
        """Unlink one segment by name; returns whether it was tracked."""
        seg = self._segments.pop(name, None)
        if seg is None:
            return False
        _close_quietly(seg)
        try:
            seg.unlink()
        except OSError:  # pragma: no cover - already gone (crashed worker etc.)
            pass
        return True

    def live_names(self) -> list[str]:
        return list(self._segments)

    def close(self) -> None:
        for name in list(self._segments):
            self.unlink(name)

    def __len__(self) -> int:
        return len(self._segments)


# --------------------------------------------------------------------- #
# output-segment recycling
# --------------------------------------------------------------------- #
#: smallest pooled size class — one page; anything smaller rounds up
_MIN_CLASS = 4096


def _size_class(nbytes: int) -> int:
    """Power-of-two size class ≥ ``max(nbytes, _MIN_CLASS)``."""
    n = max(int(nbytes), _MIN_CLASS)
    return 1 << (n - 1).bit_length()


class SegmentPool:
    """Size-classed free lists of output segments, refcount-recycled.

    Warm sharded serving used to allocate (and immediately unlink) a fresh
    shared segment per request even though consecutive products on the
    same plan need identically-sized outputs. The pool keeps retired
    segments alive instead: :func:`acquire_output` rounds each request up
    to a power-of-two size class and pops a free segment when one fits;
    :func:`adopt_arrays`' ``on_release`` refcount hands the segment back
    here once the last result array viewing it is collected. Pooled
    segments keep their *names* (workers attach by name on reuse), stay
    tracked in the owning :class:`SegmentRegistry` (so ``close`` and the
    leak checks still see them, and ``repro gc-shm`` hygiene is
    unchanged — the creator pid in the name is live), and are bounded per
    class and in total so a burst of large products cannot pin unbounded
    shm.

    Error/deadline paths must **not** release into the pool: an abandoned
    scatter's workers may still be writing those pages, so the caller
    unlinks the name outright and lets the mappings die (exactly the
    pre-pool behaviour).
    """

    def __init__(self, registry: SegmentRegistry, *, max_per_class: int = 4,
                 max_total: int = 16):
        self.registry = registry
        self.max_per_class = int(max_per_class)
        self.max_total = int(max_total)
        self._free: dict[int, list] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._held = 0
        self.hits = 0
        self.misses = 0
        self.returned = 0
        self.dropped = 0

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes`` — recycled when the size class
        has a free one, freshly created (and registry-tracked) otherwise."""
        cls = _size_class(nbytes)
        with self._lock:
            free = self._free.get(cls)
            if free:
                seg = free.pop()
                self._held -= 1
                self.hits += 1
                return seg
            self.misses += 1
        seg = _new_segment(cls)
        self.registry.track(seg)
        return seg

    def release(self, seg: shared_memory.SharedMemory) -> bool:
        """Return a segment to its free list; retires it instead (unlink via
        the registry) when the pool is closed or at capacity. Returns
        whether the segment was pooled for reuse."""
        with self._lock:
            if not self._closed and self._held < self.max_total:
                free = self._free.setdefault(_size_class(seg.size), [])
                if len(free) < self.max_per_class:
                    free.append(seg)
                    self._held += 1
                    self.returned += 1
                    return True
            self.dropped += 1
        if not self.registry.unlink(seg.name):
            # registry already closed (it unlinked the name underneath this
            # late release); just drop our mapping
            _close_quietly(seg)
        return False

    @property
    def stats(self) -> dict:
        """Counters + current residency (drives the pool gauges)."""
        with self._lock:
            held_bytes = sum(cls * len(free)
                             for cls, free in self._free.items())
            return {"hits": self.hits, "misses": self.misses,
                    "returned": self.returned, "dropped": self.dropped,
                    "held": self._held, "held_bytes": held_bytes}

    def close(self) -> None:
        """Unlink every pooled segment and refuse further pooling (late
        releases from still-alive results retire their segments directly).
        Idempotent; call before the owning registry's ``close`` so the
        free lists do not hide mappings from it (double unlink is safe
        either way — the registry pops on unlink)."""
        with self._lock:
            self._closed = True
            segs = [seg for free in self._free.values() for seg in free]
            self._free.clear()
            self._held = 0
        for seg in segs:
            self.registry.unlink(seg.name)
