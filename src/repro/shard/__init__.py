"""Sharded multi-process execution: shared-memory operand stores and
row-partitioned plans.

This package scales masked SpGEMM past one interpreter without giving up
the direct-write numeric path PR 4 built. The pieces:

* :mod:`~repro.shard.memory` — shared-memory segment layout, attach-by-name
  plumbing, and lifecycle bookkeeping (creators own names, attachments are
  pure views, result mappings die with the arrays viewing them);
* :class:`ShardedMatrixStore` — key → shared-segment operand registry
  (the multi-process face of :class:`repro.service.store.MatrixStore`);
* :class:`ShardPlanner` / :class:`ShardPlan` — deterministic balanced row
  partitioning of :class:`~repro.core.plan.SymbolicPlan` row sizes (the 1D
  decomposition of Buluç–Gilbert), memoized under the same
  fingerprint-based keys the plan cache uses, so shard plans stay
  location-independent and persistence rides the existing
  :class:`~repro.service.plan.PlanStore`;
* :class:`ShardCoordinator` — persistent worker pool dispatching per-shard
  ``numeric_rows_into`` scatters straight into a shared output CSR;
* :func:`shard_masked_spgemm` — the one-shot face
  (``parallel_masked_spgemm(backend="shard")`` routes here);
* :func:`shared_memory_available` — the degradation probe: no usable
  shared memory means callers fall back to in-process execution.

Results are bit-identical to the in-process tiers — the same kernels run
on the same contiguous row ranges; only the memory they scatter into is a
shared mapping instead of a private allocation.

Quickstart (service-level; see ``Engine(shards=N)`` for the usual entry)::

    from repro import csr_random
    from repro.shard import shard_masked_spgemm

    A = csr_random(500, 500, density=0.02, rng=0)
    M = csr_random(500, 500, density=0.05, rng=1)
    C = shard_masked_spgemm(A, A, M, algorithm="esc", nshards=2)
"""

from .coordinator import ShardCoordinator, shard_masked_spgemm
from .memory import (
    MatrixHandle,
    SegmentMissing,
    SegmentPool,
    SegmentRegistry,
    ShardError,
    WorkerDied,
    shared_memory_available,
)
from .planner import ShardPlan, ShardPlanner, split_row_sizes, split_rows
from .store import ShardedMatrixStore

__all__ = [
    "ShardCoordinator",
    "shard_masked_spgemm",
    "ShardedMatrixStore",
    "ShardPlan",
    "ShardPlanner",
    "split_row_sizes",
    "split_rows",
    "MatrixHandle",
    "SegmentMissing",
    "SegmentPool",
    "SegmentRegistry",
    "ShardError",
    "WorkerDied",
    "shared_memory_available",
]
