"""Shard-worker process side: attach-by-name caches and task entry points.

Each worker in the coordinator's persistent pool runs these top-level
(picklable) functions. A task message carries only handles and a row range;
the worker attaches the named segments (memoized per process, LRU-bounded),
builds zero-copy CSR/Mask views, and

* for a **numeric** task, runs the kernel's ``numeric_rows_into`` to scatter
  its shard's rows *directly into the shared output arrays* at the plan's
  absolute offsets — the multi-process completion of the direct-write path
  (PR 4 left process pools on the stitch path because children cannot write
  parent memory; a shared mapping is exactly how they can);
* for a **symbolic** task, returns its row range's exact output sizes (the
  cold-path half of plan building, parallelized the same 1D way).

The attachment cache makes the warm path allocation-free: a repeated-mask
request stream attaches each operand segment once per worker and thereafter
pays only the kernel. Replaced segments (operand re-registration) get fresh
names, so stale cache entries are never *wrong* — merely unused until the
LRU evicts them.

Everything here must stay import-light and fork-safe: tasks run under a
``fork`` (or ``spawn``) pool, exceptions propagate back to the coordinator
pickled, and attachments never own segment names (see
:func:`repro.shard.memory.attach`).
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from ..core import registry
from ..mask import Mask
from ..obs.trace import capture, span
from ..resilience.faults import apply_fault
from ..semiring.standard import _REGISTRY as _SEMIRING_REGISTRY
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .memory import (
    MatrixHandle,
    OutputHandle,
    attach,
    attach_mask,
    attach_matrix,
    output_arrays,
)

#: most distinct segments one worker keeps mapped; evictions close mappings
#: (replaced operands age out here instead of pinning freed memory forever)
ATTACH_CACHE_CAP = 64

_MATRICES: OrderedDict[str, tuple] = OrderedDict()   # name -> (seg, CSRMatrix)
_MASKS: OrderedDict[tuple, tuple] = OrderedDict()    # (name, compl) -> (seg, Mask)
#: (operand names, algorithm, row range) -> [(lo, hi), ...] chunk boundaries
_CHUNKS: OrderedDict[tuple, list] = OrderedDict()


def reset_caches() -> None:
    """Drop every cached attachment (pool initializer: a forked worker must
    not inherit the parent's mappings bookkeeping as its own)."""
    for cache in (_MATRICES, _MASKS):
        for seg, _ in cache.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        cache.clear()
    _CHUNKS.clear()


def _evict_lru(cache: OrderedDict) -> None:
    while len(cache) > ATTACH_CACHE_CAP:
        _, (seg, _) = cache.popitem(last=False)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view still in flight
            pass


def _matrix(handle: MatrixHandle) -> CSRMatrix:
    hit = _MATRICES.get(handle.name)
    if hit is not None:
        _MATRICES.move_to_end(handle.name)
        return hit[1]
    seg = attach(handle.name)
    m = attach_matrix(handle, seg)
    _MATRICES[handle.name] = (seg, m)
    _evict_lru(_MATRICES)
    return m


def _mask(handle: MatrixHandle | None, complemented: bool,
          shape: tuple[int, int]) -> Mask:
    if handle is None:
        return Mask.full(shape)
    key = (handle.name, bool(complemented))
    hit = _MASKS.get(key)
    if hit is not None:
        _MASKS.move_to_end(key)
        return hit[1]
    seg = attach(handle.name)
    m = attach_mask(handle, seg, complemented=complemented)
    _MASKS[key] = (seg, m)
    _evict_lru(_MASKS)
    return m


def _shard_chunks(A, B, mask, algorithm: str, row_lo: int, row_hi: int,
                  cache_key: tuple) -> list[tuple[int, int]]:
    """Cache-budget chunk boundaries for one shard's row range.

    A shard processed as a single fused call streams its whole partial-
    product working set through cache at once; the serial runner already
    learned (PR 4) that cutting rows into :func:`~repro.parallel.partition.
    chunk_budget`-sized pieces is measurably faster. Workers apply the same
    sizing to their own range — memoized per (operand segments, algorithm,
    range), so warm serving pays the O(nnz) weight estimate once.
    """
    hit = _CHUNKS.get(cache_key)
    if hit is not None:
        _CHUNKS.move_to_end(cache_key)
        return hit
    from ..parallel.partition import balanced_partition, budget_chunk_count

    # the push-kernel estimate (flops_i + nnz(m_i)) restricted to this
    # shard's rows — the full-matrix estimate_row_weights would redo the
    # whole O(nnz) pass in every worker (only direct-write push kernels
    # reach here, so the pull/inner branch is not needed)
    a_lo, a_hi = int(A.indptr[row_lo]), int(A.indptr[row_hi])
    lens = np.diff(B.indptr)[A.indices[a_lo:a_hi]]
    csum = np.concatenate([[0], np.cumsum(lens)])
    flops = (csum[A.indptr[row_lo + 1:row_hi + 1] - a_lo]
             - csum[A.indptr[row_lo:row_hi] - a_lo]).astype(np.float64)
    weights = flops + np.diff(mask.indptr[row_lo:row_hi + 1])
    nchunks = budget_chunk_count(weights, 1)
    bounds = [(row_lo + int(c[0]), row_lo + int(c[-1]) + 1)
              for c in balanced_partition(weights, nchunks)]
    _CHUNKS[cache_key] = bounds
    while len(_CHUNKS) > ATTACH_CACHE_CAP:
        _CHUNKS.popitem(last=False)
    return bounds


# --------------------------------------------------------------------- #
# task entry points (top-level: must pickle under fork *and* spawn)
# --------------------------------------------------------------------- #
def numeric_task(args) -> tuple[int, list | None, list[float]]:
    """Compute one shard's rows straight into the shared output arrays.

    Returns ``(nnz, spans, chunk_seconds)``: the shard's nnz (cheap
    progress telemetry), — when the coordinator asked for span collection —
    the worker's trace spans as a picklable payload the coordinator merges
    into the request's record (``perf_counter`` is CLOCK_MONOTONIC, shared
    across forked children, so the timestamps land on the parent's axis),
    and the per-chunk kernel wall times. Chunks are *always* timed — the
    coordinator feeds them to the engine's ``repro_chunk_seconds`` sink
    parent-side, so the histogram populates with tracing off; with tracing
    on each timing is the chunk span's own measurement, bit-identical to
    the trace. Size validation happens inside ``numeric_rows_into`` (via
    ``write_block_into``), so a stale plan raises *here*, before any
    out-of-slice write, and the error propagates to the coordinator pickled.
    """
    (a_handle, b_handle, mask_handle, complemented, out_shape, algorithm,
     semiring_name, row_lo, row_hi, out_handle, collect_spans, fault) = args
    # fault-injection seam: the coordinator does the counting (one process,
    # deterministic) and ships the fired spec on exactly one task; applying
    # it here makes the failure happen where a real one would — inside a
    # worker, mid-scatter (kill → dead process, error → pickled exception)
    apply_fault(fault)
    if not collect_spans:
        nnz, chunk_secs = _numeric_shard(
            a_handle, b_handle, mask_handle, complemented, out_shape,
            algorithm, semiring_name, row_lo, row_hi, out_handle)
        return nnz, None, chunk_secs
    with capture("shard") as rec:
        with span("shard.task", phase="numeric", kernel=algorithm,
                  row_lo=row_lo, row_hi=row_hi):
            nnz, chunk_secs = _numeric_shard(
                a_handle, b_handle, mask_handle, complemented, out_shape,
                algorithm, semiring_name, row_lo, row_hi, out_handle)
    return nnz, rec.payload(), chunk_secs


def _numeric_shard(a_handle, b_handle, mask_handle, complemented, out_shape,
                   algorithm, semiring_name, row_lo, row_hi,
                   out_handle) -> tuple[int, list[float]]:
    A = _matrix(a_handle)
    B = _matrix(b_handle)
    mask = _mask(mask_handle, complemented, out_shape)
    spec = registry.get_spec(algorithm)
    semiring = _SEMIRING_REGISTRY[semiring_name]
    chunk_key = (a_handle.name, b_handle.name,
                 mask_handle.name if mask_handle else None, complemented,
                 algorithm, row_lo, row_hi)
    chunks = _shard_chunks(A, B, mask, algorithm, row_lo, row_hi, chunk_key)
    chunk_secs: list[float] = []
    out_seg = attach(out_handle.name)
    try:
        # absolute destination offsets are a zero-copy slice of the shared
        # indptr the coordinator wrote before dispatch
        indptr, out_cols, out_vals = output_arrays(out_handle, out_seg)
        for lo, hi in chunks:
            t0 = time.perf_counter()
            with span("chunk", kernel=algorithm, phase="numeric",
                      rows=hi - lo) as sp:
                spec.numeric_into(A, B, mask, semiring,
                                  np.arange(lo, hi, dtype=INDEX_DTYPE),
                                  out_cols, out_vals, indptr[lo:hi + 1])
            t1 = time.perf_counter()
            # the span's measurement when tracing (so metric == trace);
            # our own perf_counter pair otherwise
            chunk_secs.append(sp.seconds if sp is not None else t1 - t0)
        nnz = int(indptr[row_hi] - indptr[row_lo])
        del indptr, out_cols, out_vals  # release buffer exports
    finally:
        # output segments are per-request; caching their mappings would pin
        # every past result's memory in every worker
        try:
            out_seg.close()
        except BufferError:  # pragma: no cover - exports above always freed
            pass
    return nnz, chunk_secs


def symbolic_task(args) -> tuple[np.ndarray, list | None]:
    """Exact output sizes for one shard's row range (cold-path plan build).

    Returns ``(sizes, spans)`` — span payload collected and shipped back
    exactly like :func:`numeric_task`.
    """
    (a_handle, b_handle, mask_handle, complemented, out_shape, algorithm,
     row_lo, row_hi, collect_spans, fault) = args
    apply_fault(fault)  # same seam as numeric_task

    def run() -> np.ndarray:
        A = _matrix(a_handle)
        B = _matrix(b_handle)
        mask = _mask(mask_handle, complemented, out_shape)
        spec = registry.get_spec(algorithm)
        rows = np.arange(row_lo, row_hi, dtype=INDEX_DTYPE)
        return spec.symbolic(A, B, mask, rows)

    if not collect_spans:
        return run(), None
    with capture("shard") as rec:
        with span("shard.task", phase="symbolic", kernel=algorithm,
                  row_lo=row_lo, row_hi=row_hi):
            sizes = run()
    return sizes, rec.payload()
