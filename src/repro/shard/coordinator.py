"""Shard coordinator: a persistent worker pool executing row-partitioned
masked SpGEMM through shared memory.

``ShardCoordinator`` is the execution half of :mod:`repro.shard`. It owns

* a :class:`~repro.shard.store.ShardedMatrixStore` of operand segments,
* a :class:`~repro.shard.planner.ShardPlanner` memoizing row partitions,
* a **persistent** process pool of ``nshards`` workers (created lazily on
  first dispatch, reused across requests — unlike
  :class:`repro.parallel.executor.ProcessExecutor`, which forks a fresh
  pool per call and pays the fork + teardown on every product).

One product (:meth:`multiply`) runs as:

1. split the two-phase plan's row sizes into balanced contiguous shard
   plans (memoized per plan key);
2. allocate one shared output segment sized to the plan's exact nnz and
   compute the output ``indptr`` coordinator-side (one cumsum);
3. dispatch one :func:`repro.shard.worker.numeric_task` per shard — each
   worker scatters its rows straight into the shared ``cols``/``vals`` via
   the kernel's ``numeric_rows_into``, closing the "process pools keep the
   stitch path" gap from PR 4: children *can* write the final arrays when
   the arrays are a shared mapping;
4. assemble the result **without copying**: the returned
   :class:`~repro.sparse.csr.CSRMatrix` views the shared segment, whose
   name is unlinked immediately (crash hygiene) while the memory lives
   until the last view is garbage collected
   (:func:`repro.shard.memory.adopt_arrays`).

Failure and lifecycle behaviour is deliberately boring: any worker error
unlinks the request's output segment before propagating; :meth:`close`
terminates the pool and unlinks every owned segment, is idempotent, and is
also registered via ``weakref.finalize`` so an abandoned coordinator cannot
leak ``/dev/shm`` space for the life of the process.

:func:`shard_masked_spgemm` is the one-shot functional face (what
``parallel_masked_spgemm(backend="shard")`` routes to); long-lived services
use the coordinator through :class:`repro.service.engine.Engine`
(``Engine(shards=N)``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import weakref

import numpy as np

from ..core import registry
from ..core.plan import SymbolicPlan
from ..errors import AlgorithmError
from ..mask import Mask
from ..obs.trace import current_record, span
from ..resilience.faults import wire_format
from ..semiring import PLUS_TIMES, Semiring
from ..semiring.standard import _REGISTRY as _SEMIRING_REGISTRY
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from . import worker as worker_mod
from .memory import (
    MatrixHandle,
    SegmentPool,
    ShardError,
    WorkerDied,
    acquire_output,
    adopt_arrays,
    attach,
    output_arrays,
    shared_memory_available,
)
from .planner import ShardPlanner, split_rows
from .store import ShardedMatrixStore

_ADHOC_KEYS = itertools.count()


def _pool_context():
    """Prefer ``fork`` (workers inherit the import state; startup is
    milliseconds); fall back to ``spawn`` where fork is unavailable. Both
    work — segments are attached by *name*, never inherited."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ShardCoordinator:
    """Row-partitioned masked-SpGEMM execution across a persistent pool.

    Parameters
    ----------
    nshards : worker-pool size = number of row partitions per product.
    store : optional pre-built :class:`ShardedMatrixStore` (a fresh one by
        default; :class:`~repro.service.engine.Engine` shares its own).
    faults : optional :class:`~repro.resilience.faults.FaultPlan` — the
        chaos seam. The coordinator does the fault *counting* here in one
        process and ships each fired spec on exactly one task's arguments,
        so "kill one worker" kills exactly one, deterministically.
    chunk_observer : optional ``fn(seconds, kernel, phase, trace_id)`` sink
        fed each worker-timed chunk parent-side after a scatter — the
        engine wires ``repro_chunk_seconds`` in, so per-chunk timings
        populate even with tracing disabled.
    scatter_observer : optional ``fn(seconds, phase, trace_id)`` sink fed
        the coordinator-side fan-out wall time of each scatter
        (``repro_shard_scatter_seconds``), measured at this call site.
    """

    def __init__(self, nshards: int, *, store: ShardedMatrixStore | None = None,
                 faults=None, chunk_observer=None, scatter_observer=None):
        if nshards <= 0:
            raise ShardError(f"nshards must be positive, got {nshards}")
        self.nshards = int(nshards)
        self.store = store if store is not None else ShardedMatrixStore()
        #: recycles output segments across requests (warm serving reuses a
        #: same-size-class mapping instead of shm_open/mmap per product)
        self.segment_pool = SegmentPool(self.store.registry)
        self.planner = ShardPlanner(self.nshards)
        self.faults = faults
        self._chunk_observer = chunk_observer
        self._scatter_observer = scatter_observer
        self._pool = None
        self._pool_lock = threading.Lock()
        self._closed = False
        #: requests executed / shard tasks dispatched (engine telemetry)
        self.products = 0
        self.tasks = 0
        #: times a broken pool was torn down for respawn (self-healing)
        self.respawns = 0
        self._finalizer = weakref.finalize(self, ShardCoordinator._cleanup,
                                           self.store)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        if self._closed:
            raise ShardError("coordinator is closed")
        if self._pool is None:
            # locked: concurrent first dispatches (async-server worker
            # threads) must not each fork a pool and orphan all but one
            with self._pool_lock:
                if self._pool is None and not self._closed:
                    ctx = _pool_context()
                    self._pool = ctx.Pool(processes=self.nshards,
                                          initializer=worker_mod.reset_caches)
        if self._pool is None:  # pragma: no cover - closed during the race
            raise ShardError("coordinator is closed")
        return self._pool

    @staticmethod
    def _cleanup(store: ShardedMatrixStore) -> None:
        store.close()

    def _break_pool(self) -> None:
        """Tear down a pool with a dead worker so the next dispatch
        respawns a fresh one (the self-healing half of
        :class:`~repro.shard.memory.WorkerDied`). Safe under concurrent
        scatters: their polls see the dead processes and fail the same way.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
            self.respawns += 1

    def quiesce(self) -> bool:
        """Park the pool while a circuit breaker holds the shard tier out
        of rotation.

        An idle pool is not free: its support threads contend for the GIL
        with the in-process kernels the degraded engine is now serving
        from (one switch-interval stall per request). Terminating the
        workers and those threads makes degraded serving cost what plain
        in-process serving costs; the breaker's half-open probe respawns
        everything through the lazy :meth:`_ensure_pool`. Returns True if
        there was a pool to park. Unlike :meth:`_break_pool` this is not a
        failure-driven respawn, so it does not count in :attr:`respawns`.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
            return True
        return False

    def heal(self) -> list[str]:
        """Make the shard tier dispatchable again after a worker death.

        Respawns the pool if it was broken and verifies every operand
        segment is still attachable; returns the store keys whose segments
        are gone (callers holding the original matrices — the engine's
        in-process :class:`~repro.service.store.MatrixStore` — re-share
        those before retrying).
        """
        if self._closed:
            return []
        self._ensure_pool()
        return self.verify_segments()

    def verify_segments(self) -> list[str]:
        """Store keys whose shared segments can no longer be attached."""
        missing = []
        for key in self.store.keys():
            try:
                handle = self.store.handle(key)
                seg = attach(handle.name)
            except (ShardError, OSError):
                missing.append(key)
            else:
                seg.close()
        return missing

    # ------------------------------------------------------------------ #
    # scatter: dispatch + bounded wait
    # ------------------------------------------------------------------ #
    _POLL_SECONDS = 0.05

    def _scatter(self, func, tasks, *, deadline=None) -> list:
        """Dispatch ``tasks`` across the pool and wait — without the
        stdlib's failure mode.

        ``Pool.map`` blocks forever when a worker dies mid-task (its tasks
        are simply lost; the pool respawns processes but never completes
        the map). This replaces it with ``map_async`` plus a poll loop
        that, each tick, (a) enforces the request deadline — raising
        :class:`~repro.resilience.deadline.DeadlineExceeded` and
        *abandoning* the in-flight map (workers finish writing into a
        mapping whose name the caller unlinks; the pages die with the last
        mapping) — and (b) checks a snapshot of the pool's worker
        processes for deaths, raising
        :class:`~repro.shard.memory.WorkerDied` after breaking the pool so
        the next dispatch respawns it.
        """
        pool = self._ensure_pool()
        procs = list(getattr(pool, "_pool", None) or [])
        result = pool.map_async(func, tasks)
        while True:
            timeout = self._POLL_SECONDS
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0 and not result.ready():
                    deadline.check(
                        "scatter", f"{len(tasks)} shard tasks in flight")
                timeout = min(timeout, max(remaining, 1e-3))
            result.wait(timeout)
            if result.ready():
                return result.get()  # re-raises pickled worker exceptions
            if procs and any(not p.is_alive() for p in procs):
                # a short grace: the map may have completed concurrently
                result.wait(self._POLL_SECONDS)
                if result.ready():
                    return result.get()
                self._break_pool()
                raise WorkerDied(
                    f"shard worker died mid-scatter "
                    f"({len(tasks)} tasks lost); pool broken for respawn")

    def close(self) -> None:
        """Terminate the pool and unlink every owned segment. Idempotent —
        called from engine shutdown, ``with`` exits, and error paths alike.

        The pool swap happens under ``_pool_lock`` so a concurrent first
        dispatch cannot fork a pool *after* close() checked and found none
        (the orphaned-workers race)."""
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        # pool before registry: drain the free lists so close sees every
        # segment exactly once (late releases after this retire directly)
        self.segment_pool.close()
        self.store.close()
        self._finalizer.detach()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # eligibility
    # ------------------------------------------------------------------ #
    @staticmethod
    def eligible(algorithm: str, semiring: Semiring) -> bool:
        """Can this request run sharded? Requires a direct-write kernel
        (``numeric_rows_into``) and a registered semiring (task messages
        carry semirings by name — same constraint as the process executor).
        """
        if semiring.name not in _SEMIRING_REGISTRY:
            return False
        try:
            spec = registry.get_spec(algorithm)
        except AlgorithmError:
            return False
        return spec.numeric_into is not None

    # ------------------------------------------------------------------ #
    # operand plumbing
    # ------------------------------------------------------------------ #
    def share(self, key: str, value: CSRMatrix | Mask) -> MatrixHandle:
        """Register (or replace) an operand segment under a store key."""
        return self.store.register(key, value)

    def evict(self, key: str) -> bool:
        return self.store.evict(key)

    def _adhoc_handle(self, value) -> tuple[str, MatrixHandle]:
        key = f"__adhoc_{next(_ADHOC_KEYS)}"
        return key, self.store.register(key, value)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def symbolic(self, a_key: str, b_key: str, mask_key: str | None,
                 mask: Mask, out_shape, algorithm: str,
                 weights: np.ndarray | None = None,
                 deadline=None) -> np.ndarray:
        """Sharded symbolic pass: exact per-row output sizes (cold path)."""
        a_h = self.store.handle(a_key)
        b_h = self.store.handle(b_key)
        m_h = self.store.handle(mask_key) if mask_key is not None else None
        ranges = split_rows(out_shape[0], self.nshards, weights)
        if not ranges:
            return np.zeros(0, dtype=INDEX_DTYPE)
        # when the caller is tracing, workers collect their own spans and
        # ship them back with the result for merging into the request trace
        rec = current_record()
        fault = wire_format(self.faults.check("shard.symbolic")
                            if self.faults else None)
        tasks = [(a_h, b_h, m_h, mask.complemented, tuple(out_shape),
                  algorithm, lo, hi, rec is not None,
                  fault if i == 0 else None)
                 for i, (lo, hi) in enumerate(ranges)]
        t0 = time.perf_counter()
        with span("shard.scatter", phase="symbolic", nshards=len(tasks),
                  kernel=algorithm) as scatter:
            results = self._scatter(worker_mod.symbolic_task, tasks,
                                    deadline=deadline)
        t1 = time.perf_counter()
        if self._scatter_observer is not None:
            # span measurement when tracing (metric == trace), our own
            # perf_counter pair otherwise
            self._scatter_observer(
                scatter.seconds if scatter is not None else t1 - t0,
                "symbolic", rec.trace_id if rec is not None else None)
        self.tasks += len(tasks)
        parts = [sizes for sizes, _ in results]
        if rec is not None:
            for _, payload in results:
                if payload:
                    rec.merge(payload, parent_id=(scatter.span_id
                                                  if scatter else None))
        return np.concatenate(parts).astype(INDEX_DTYPE, copy=False)

    def multiply(self, a_key: str, b_key: str, mask_key: str | None,
                 mask: Mask, plan: SymbolicPlan, semiring: Semiring, *,
                 plan_cache_key: tuple | None = None,
                 weights: np.ndarray | None = None,
                 deadline=None) -> CSRMatrix:
        """Execute one two-phase product across the shard pool.

        ``plan`` must carry row sizes (the engine always has them by numeric
        time); ``plan_cache_key`` keys the partition memo so warm serving
        splits each plan exactly once.
        """
        if plan.row_sizes is None:
            raise ShardError("sharded numeric execution needs a two-phase "
                             "plan with row sizes")
        if not self.eligible(plan.algorithm, semiring):
            raise ShardError(
                f"algorithm {plan.algorithm!r} / semiring {semiring.name!r} "
                f"cannot run sharded (needs numeric_rows_into and a "
                f"registered semiring)"
            )
        a_h = self.store.handle(a_key)
        b_h = self.store.handle(b_key)
        m_h = self.store.handle(mask_key) if mask_key is not None else None
        out_shape = plan.shape
        nrows = out_shape[0]
        nnz = plan.nnz
        if nnz == 0 or nrows == 0:
            indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
            self.products += 1
            return CSRMatrix(indptr, np.empty(0, dtype=INDEX_DTYPE),
                             np.empty(0, dtype=np.float64), out_shape,
                             check=False)

        shard_plans = self.planner.split(plan, key=plan_cache_key,
                                         weights=weights)
        out_handle, out_seg = acquire_output(self.segment_pool, nrows, nnz)
        indptr, cols, vals = output_arrays(out_handle, out_seg)
        # the shared indptr comes from *this* plan's row sizes, not the
        # memoized shard plans: the memo may only reuse partition
        # boundaries, or a poisoned cache entry with the right key could
        # smuggle stale offsets past the kernels' size validation
        indptr[0] = 0
        np.cumsum(plan.row_sizes, out=indptr[1:])
        rec = current_record()
        try:
            # one fault check per dispatch, fired spec on the first task
            # only (shard.attach shares the seam: the worker applies the
            # spec before attaching, modelling an attach-time failure)
            fired = None
            if self.faults:
                fired = (self.faults.check("shard.numeric")
                         or self.faults.check("shard.attach"))
            fault = wire_format(fired)
            tasks = [(a_h, b_h, m_h, mask.complemented, tuple(out_shape),
                      plan.algorithm, semiring.name, sp.row_lo, sp.row_hi,
                      out_handle, rec is not None,
                      fault if i == 0 else None)
                     for i, sp in enumerate(shard_plans)]
            t0 = time.perf_counter()
            with span("shard.scatter", phase="numeric", nshards=len(tasks),
                      kernel=plan.algorithm) as scatter:
                results = self._scatter(worker_mod.numeric_task, tasks,
                                        deadline=deadline)
            t1 = time.perf_counter()
        except BaseException:
            # worker failure (stale plan, kernel error, dead pool): the
            # output segment must not outlive the request it belonged to —
            # and it must NOT go back to the pool, because an abandoned
            # scatter's workers may still be writing these pages (recycling
            # them under the next request would corrupt its output)
            del indptr, cols, vals
            self.store.registry.unlink(out_handle.name)
            raise
        self.tasks += len(tasks)
        self.products += 1
        trace_id = rec.trace_id if rec is not None else None
        if self._scatter_observer is not None:
            self._scatter_observer(
                scatter.seconds if scatter is not None else t1 - t0,
                "numeric", trace_id)
        if self._chunk_observer is not None:
            # workers time their chunks unconditionally; feeding the sink
            # parent-side keeps repro_chunk_seconds populated with tracing
            # off (the engine used to harvest these from merged spans)
            for _, _, chunk_secs in results:
                for secs in chunk_secs:
                    self._chunk_observer(secs, plan.algorithm, "numeric",
                                         trace_id)
        if rec is not None:
            # fold the workers' span payloads into the request trace,
            # nesting them under the scatter span that dispatched them
            for _, payload, _ in results:
                if payload:
                    rec.merge(payload, parent_id=(scatter.span_id
                                                  if scatter else None))

        # hand the mapping's lifetime to the result arrays; when the last
        # one is collected the segment returns to the pool (name intact, so
        # the next same-class product's workers attach right back to it)
        # instead of being unlinked — the registry keeps tracking it, so
        # shutdown hygiene is unchanged
        adopt_arrays(out_seg, indptr, cols, vals,
                     on_release=self.segment_pool.release)
        return CSRMatrix(indptr, cols, vals, out_shape, check=False)


# --------------------------------------------------------------------- #
# one-shot functional face
# --------------------------------------------------------------------- #
def shard_masked_spgemm(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: Mask | CSRMatrix | None = None,
    *,
    algorithm: str = "auto",
    semiring: Semiring = PLUS_TIMES,
    phases: int = 2,
    nshards: int = 2,
    plan: SymbolicPlan | None = None,
    plan_sink: list | None = None,
    coordinator: ShardCoordinator | None = None,
    executor=None,
    direct_write: bool = True,
) -> CSRMatrix:
    """One-shot sharded ``C = M ⊙ (A·B)`` — the ``backend="shard"`` face of
    :func:`repro.parallel.runner.parallel_masked_spgemm`.

    Shares the operands, runs the (sharded) symbolic pass when no plan is
    supplied, executes the numeric pass across the pool, and tears the
    transient coordinator down. Requests the shard layer cannot take
    (one-phase, non-direct-write kernels, unregistered semirings, no shared
    memory) fall back to the in-process runner — graceful degradation, same
    results. ``executor`` and ``direct_write`` exist *for* that fallback
    (forwarded untouched, so a degraded ``backend="shard"`` call is never
    slower than ``backend="local"`` would have been); the sharded path
    itself uses neither.
    """
    out_shape = check_multiplicable(A.shape, B.shape)
    if mask is None:
        mask = Mask.full(out_shape)
    elif isinstance(mask, CSRMatrix):
        mask = Mask.from_matrix(mask)
    mask.check_output_shape(out_shape)
    algorithm = algorithm.lower()
    if plan is not None:
        plan.check_output_shape(out_shape)
        if algorithm not in ("auto", plan.algorithm):
            raise AlgorithmError(
                f"plan was built for algorithm {plan.algorithm!r}, "
                f"got algorithm={algorithm!r}"
            )
        algorithm = plan.algorithm
    elif algorithm == "auto":
        algorithm = registry.auto_select(A, B, mask)

    degrade = (phases != 2
               or not ShardCoordinator.eligible(algorithm, semiring)
               or not shared_memory_available())
    if degrade:
        from ..parallel.runner import parallel_masked_spgemm

        return parallel_masked_spgemm(
            A, B, mask, algorithm=algorithm, semiring=semiring,
            phases=phases, executor=executor, plan=plan,
            plan_sink=plan_sink, direct_write=direct_write)

    own = coordinator is None
    coord = coordinator if coordinator is not None \
        else ShardCoordinator(nshards)
    shared_keys: list[str] = []
    try:
        a_key, _ = coord._adhoc_handle(A)
        shared_keys.append(a_key)
        if B is A:
            b_key = a_key
        else:
            b_key, _ = coord._adhoc_handle(B)
            shared_keys.append(b_key)
        mask_key = None
        # the "full" mask (empty pattern, complemented) needs no segment —
        # workers rebuild it locally from the shape
        if mask.nnz or not mask.complemented:
            mask_key, _ = coord._adhoc_handle(mask)
            shared_keys.append(mask_key)
        if plan is None or plan.row_sizes is None:
            row_sizes = coord.symbolic(a_key, b_key, mask_key, mask,
                                       out_shape, algorithm)
            plan = SymbolicPlan(algorithm=algorithm, phases=2,
                                shape=out_shape, row_sizes=row_sizes)
            if plan_sink is not None:
                plan_sink.append(plan)
        # the result adopts its output segment's mapping, so tearing the
        # transient coordinator down below only unlinks the *name* — the
        # pages live until the result is garbage collected
        return coord.multiply(a_key, b_key, mask_key, mask, plan, semiring)
    finally:
        if own:
            coord.close()
        else:
            for key in shared_keys:
                coord.evict(key)
