"""Row partitioning of symbolic plans across shard workers.

The sharded layer uses the classic 1D row decomposition of parallel SpGEMM
(Buluç & Gilbert): output rows are split into contiguous ranges, shard *s*
computes ``C[lo_s:hi_s, :]`` from its rows of A and the mask against all of
B. A :class:`~repro.core.plan.SymbolicPlan` already carries everything the
decomposition needs — exact per-row output sizes — so a :class:`ShardPlan`
is just a *view* of the full plan restricted to one row range, plus the
global nnz offsets that make its slice of the output CSR arrays disjoint
from every other shard's.

Two properties matter for the service layer:

* **determinism** — the split is a pure function of ``(row_sizes, weights,
  nshards)``, so the same persisted plan always shards the same way on any
  host. Shard plans therefore need no persistence of their own: the full
  plan rides the existing fingerprint-keyed
  :class:`~repro.service.plan.PlanStore`, and the split is recomputed (and
  memoized) per process. Location independence falls out of the same
  fingerprint keying the plan cache already uses.
* **balance** — ranges are cut by :func:`repro.parallel.partition.
  balanced_partition` over per-row *work* estimates (flops when the caller
  has them, planned output sizes otherwise), not equal row counts: skewed
  degree distributions would otherwise starve most shards (the paper's
  challenge (iv)).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.plan import SymbolicPlan
from ..parallel.partition import balanced_partition
from ..validation import INDEX_DTYPE


@dataclass(frozen=True)
class ShardPlan:
    """One shard's share of a two-phase plan: a contiguous row range plus
    the absolute output nnz interval its rows occupy.

    Only scalars are carried — the destination *offsets* a worker needs are
    a slice of the output ``indptr`` the coordinator writes into the shared
    output segment per request (deriving them from the executing plan, not
    from this memoized split, is what keeps the kernels' stale-plan
    validation airtight; see ``ShardCoordinator.multiply``).
    """

    shard: int
    row_lo: int
    row_hi: int               # exclusive
    nnz_lo: int
    nnz_hi: int               # exclusive

    @property
    def nrows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def nnz(self) -> int:
        return self.nnz_hi - self.nnz_lo


def split_row_sizes(row_sizes: np.ndarray, nshards: int,
                    weights: np.ndarray | None = None) -> list[ShardPlan]:
    """Cut exact per-row output sizes into ≤ ``nshards`` balanced contiguous
    shard plans (fewer when there are fewer rows than shards; never zero for
    a non-empty output space)."""
    if nshards <= 0:
        raise ValueError(f"nshards must be positive, got {nshards}")
    row_sizes = np.asarray(row_sizes)
    indptr = np.zeros(row_sizes.size + 1, dtype=INDEX_DTYPE)
    np.cumsum(row_sizes, out=indptr[1:])
    w = np.asarray(weights, dtype=np.float64) if weights is not None \
        else row_sizes.astype(np.float64)
    chunks = balanced_partition(w, nshards)
    plans = []
    for s, chunk in enumerate(chunks):
        lo, hi = int(chunk[0]), int(chunk[-1]) + 1
        plans.append(ShardPlan(shard=s, row_lo=lo, row_hi=hi,
                               nnz_lo=int(indptr[lo]), nnz_hi=int(indptr[hi])))
    return plans


def split_rows(nrows: int, nshards: int,
               weights: np.ndarray | None = None) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` row ranges for plan-less (symbolic) dispatch."""
    if nrows == 0:
        return []
    w = (np.asarray(weights, dtype=np.float64) if weights is not None
         else np.ones(nrows))
    return [(int(c[0]), int(c[-1]) + 1)
            for c in balanced_partition(w, nshards)]


class ShardPlanner:
    """Memoizing splitter: ``(plan identity, nshards) → [ShardPlan]``.

    The memo is keyed on the *plan cache key* (content fingerprints — see
    :func:`repro.service.plan.plan_key`) when the caller has one; ad-hoc
    plans without a key are split fresh every call — an object-identity
    fallback would hand a recycled ``id()`` another plan's stale partition.
    Splitting is cheap (one cumsum + one partition), so the memo is a small
    LRU purely to keep the warm serving path free of per-request work.
    """

    def __init__(self, nshards: int, *, capacity: int = 128):
        if nshards <= 0:
            raise ValueError(f"nshards must be positive, got {nshards}")
        self.nshards = int(nshards)
        self.capacity = int(capacity)
        self._memo: OrderedDict[tuple, list[ShardPlan]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def split(self, plan: SymbolicPlan, *, key: tuple | None = None,
              weights: np.ndarray | None = None) -> list[ShardPlan]:
        if plan.row_sizes is None:
            raise ValueError("only two-phase plans (with row sizes) shard; "
                             "run the symbolic pass first")
        if key is None or weights is not None:
            # no key → an id()-based memo could hand a recycled object
            # another plan's stale partition; explicit weights → the memo
            # key doesn't capture them, so a cached split could silently
            # carry a different weighting's balance. Both split fresh.
            return split_row_sizes(plan.row_sizes, self.nshards, weights)
        memo_key = (key, self.nshards)
        cached = self._memo.get(memo_key)
        if cached is not None:
            self._memo.move_to_end(memo_key)
            self.hits += 1
            return cached
        self.misses += 1
        plans = split_row_sizes(plan.row_sizes, self.nshards)
        self._store(memo_key, plans)
        return plans

    def resplit(self, old_key: tuple, new_key: tuple,
                plan: SymbolicPlan) -> list[ShardPlan] | None:
        """Derive a *spliced* plan's partition from its predecessor's.

        After a pattern delta re-keys a plan (see ``Engine.apply_delta``),
        the balanced row boundaries of the old partition are still a good
        cut — a few percent of rows changed size — so instead of a fresh
        ``balanced_partition`` this reuses the memoized boundaries verbatim
        and recomputes only the nnz offsets from the new row sizes (one
        cumsum). Safe by construction: the coordinator always derives the
        output ``indptr`` from the *executing* plan's row sizes, never from
        the memoized offsets, so a drifting balance costs at most skew,
        never correctness. Returns None (caller splits fresh) when the old
        key was never split here.
        """
        if plan.row_sizes is None:
            return None
        cached = self._memo.get((old_key, self.nshards))
        if cached is None:
            return None
        indptr = np.zeros(plan.row_sizes.size + 1, dtype=INDEX_DTYPE)
        np.cumsum(plan.row_sizes, out=indptr[1:])
        plans = [ShardPlan(shard=s.shard, row_lo=s.row_lo, row_hi=s.row_hi,
                           nnz_lo=int(indptr[s.row_lo]),
                           nnz_hi=int(indptr[s.row_hi]))
                 for s in cached]
        self._store((new_key, self.nshards), plans)
        return plans

    def _store(self, memo_key: tuple, plans: list[ShardPlan]) -> None:
        self._memo[memo_key] = plans
        self._memo.move_to_end(memo_key)
        while len(self._memo) > self.capacity:
            self._memo.popitem(last=False)
