"""Matrix Market (.mtx) reader/writer.

The paper's real-world inputs come from the SuiteSparse Matrix Collection,
which distributes Matrix Market files; this module lets users of the library
load those files directly. Supported: ``matrix coordinate
real|integer|pattern general|symmetric`` (the variants graph matrices use).
Array (dense) format and complex/hermitian/skew fields are rejected with a
clear error.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..errors import IOFormatError
from ..validation import INDEX_DTYPE, VALUE_DTYPE
from .coo import COOMatrix
from .csr import CSRMatrix


def read_matrix_market(path_or_file) -> CSRMatrix:
    """Parse a Matrix Market coordinate file into a canonical CSR matrix.

    ``symmetric`` storage is expanded (off-diagonal entries mirrored);
    ``pattern`` fields get all-ones values. 1-based indices are converted
    to 0-based. Duplicates are summed.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
        if isinstance(text, bytes):
            text = text.decode("utf-8")
    else:
        text = Path(path_or_file).read_text()
    lines = io.StringIO(text)

    header = lines.readline().strip()
    parts = header.lower().split()
    if len(parts) != 5 or parts[0] not in ("%%matrixmarket", "%matrixmarket"):
        raise IOFormatError(f"not a MatrixMarket header: {header!r}")
    _, obj, fmt, field, symmetry = parts
    if obj != "matrix":
        raise IOFormatError(f"unsupported object {obj!r} (only 'matrix')")
    if fmt != "coordinate":
        raise IOFormatError(f"unsupported format {fmt!r} (only 'coordinate')")
    if field not in ("real", "integer", "pattern"):
        raise IOFormatError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise IOFormatError(f"unsupported symmetry {symmetry!r}")

    # skip comments
    line = lines.readline()
    while line and line.lstrip().startswith("%"):
        line = lines.readline()
    if not line:
        raise IOFormatError("missing size line")
    try:
        nrows, ncols, nnz = (int(tok) for tok in line.split())
    except ValueError as exc:
        raise IOFormatError(f"bad size line: {line!r}") from exc

    rows = np.empty(nnz, dtype=INDEX_DTYPE)
    cols = np.empty(nnz, dtype=INDEX_DTYPE)
    vals = np.ones(nnz, dtype=VALUE_DTYPE)
    count = 0
    for line in lines:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        toks = s.split()
        if count >= nnz:
            raise IOFormatError(f"more than the declared {nnz} entries")
        try:
            rows[count] = int(toks[0]) - 1
            cols[count] = int(toks[1]) - 1
            if field != "pattern":
                vals[count] = float(toks[2])
        except (ValueError, IndexError) as exc:
            raise IOFormatError(f"bad entry line: {line!r}") from exc
        count += 1
    if count != nnz:
        raise IOFormatError(f"declared {nnz} entries but found {count}")

    if symmetry == "symmetric":
        off = rows != cols  # diagonal entries must not be duplicated
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[:count][off]]),
            np.concatenate([vals, vals[off]]),
        )

    return COOMatrix(rows, cols, vals, (nrows, ncols)).to_csr()


def write_matrix_market(matrix: CSRMatrix, path_or_file, *, field: str = "real") -> None:
    """Write a CSR matrix as ``matrix coordinate <field> general``.

    ``field='pattern'`` writes coordinates only (values dropped).
    """
    if field not in ("real", "pattern"):
        raise IOFormatError(f"unsupported field {field!r}")
    coo = matrix.to_coo()
    buf = io.StringIO()
    buf.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    buf.write("% written by repro (Masked SpGEMM reproduction)\n")
    buf.write(f"{matrix.nrows} {matrix.ncols} {matrix.nnz}\n")
    if field == "pattern":
        for r, c in zip(coo.rows, coo.cols):
            buf.write(f"{r + 1} {c + 1}\n")
    else:
        for r, c, v in zip(coo.rows, coo.cols, coo.data):
            buf.write(f"{r + 1} {c + 1} {float(v):.17g}\n")
    text = buf.getvalue()
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        Path(path_or_file).write_text(text)
