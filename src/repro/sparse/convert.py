"""Format conversions: COO <-> CSR <-> CSC, plus an optional scipy bridge.

All conversions are implemented from scratch with numpy primitives
(`lexsort`, `bincount`, `cumsum`, stable `argsort`) — ``scipy`` is imported
lazily and only by :func:`from_scipy` / :func:`to_scipy`, which exist solely
so the test-suite can compare against the scipy oracle.
"""

from __future__ import annotations

import numpy as np

from ..validation import INDEX_DTYPE
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Canonicalize a COO matrix (sort row-major, sum duplicates) into CSR."""
    canon = coo.canonicalize()
    counts = np.bincount(canon.rows, minlength=canon.shape[0])
    indptr = np.zeros(canon.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, canon.cols, canon.data, canon.shape, check=False)


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    rows = np.repeat(np.arange(csr.nrows, dtype=INDEX_DTYPE), csr.row_nnz())
    return COOMatrix(rows, csr.indices.copy(), csr.data.copy(), csr.shape)


def _transpose_arrays(indptr, indices, data, nrows, ncols):
    """Core transpose: given CSR arrays of an (nrows x ncols) matrix, return
    the CSR arrays of its (ncols x nrows) transpose, rows sorted+unique.

    Uses a stable argsort on column ids: stability preserves ascending row
    order within each output row, so the result is canonical by construction.
    """
    row_ids = np.repeat(np.arange(nrows, dtype=INDEX_DTYPE), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    t_indices = row_ids[order]
    t_data = data[order]
    counts = np.bincount(indices, minlength=ncols)
    t_indptr = np.zeros(ncols + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=t_indptr[1:])
    return t_indptr, t_indices, t_data


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Convert CSR to CSC via one stable argsort over column ids.

    This materializes the same data compressed along the other axis; it is
    the explicit transpose work SuiteSparse performs before its dot-product
    kernel (paper §8.4 notes this per-call overhead for SS:DOT).
    """
    t_indptr, t_indices, t_data = _transpose_arrays(
        csr.indptr, csr.indices, csr.data, csr.nrows, csr.ncols
    )
    return CSCMatrix(t_indptr, t_indices, t_data, csr.shape, check=False)


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    t_indptr, t_indices, t_data = _transpose_arrays(
        csc.indptr, csc.indices, csc.data, csc.ncols, csc.nrows
    )
    return CSRMatrix(t_indptr, t_indices, t_data, csc.shape, check=False)


# ---------------------------------------------------------------------- #
# scipy bridge — test oracle only
# ---------------------------------------------------------------------- #
def to_scipy(csr: CSRMatrix):
    """Convert to ``scipy.sparse.csr_matrix`` (test oracle / interop)."""
    import scipy.sparse as sp

    return sp.csr_matrix(
        (csr.data.copy(), csr.indices.copy(), csr.indptr.copy()), shape=csr.shape
    )


def from_scipy(mat) -> CSRMatrix:
    """Convert any scipy sparse matrix to our canonical CSRMatrix."""
    import scipy.sparse as sp

    m = sp.csr_matrix(mat)
    m.sort_indices()
    m.sum_duplicates()
    return CSRMatrix(
        m.indptr.astype(INDEX_DTYPE),
        m.indices.astype(INDEX_DTYPE),
        m.data.astype(np.float64),
        m.shape,
        check=False,
    )
