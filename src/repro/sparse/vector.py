"""Sparse vectors — first-class citizens for the SpGEVM-level API.

The paper describes every algorithm at the vector level (§5): "calculation
of each row can be seen as a row vector-matrix multiplication (SpGEVM)
followed by mask operation v⊺ = m⊺ ⊙ (u⊺B)". This module provides the
:class:`SparseVector` those signatures want, stored as sorted (indices,
values) pairs — exactly one CSR row.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..validation import INDEX_DTYPE, VALUE_DTYPE, as_index_array, as_value_array
from .csr import CSRMatrix


class SparseVector:
    """Sparse vector of logical length ``n`` with sorted unique indices."""

    __slots__ = ("indices", "data", "n")

    def __init__(self, indices, data, n, *, check: bool = True):
        self.n = int(n)
        self.indices = as_index_array(indices, "indices")
        self.data = as_value_array(data, "data")
        if check:
            if self.indices.size != self.data.size:
                raise FormatError(
                    f"indices/data length mismatch: {self.indices.size} vs "
                    f"{self.data.size}")
            if self.indices.size:
                if self.indices.min() < 0 or self.indices.max() >= self.n:
                    raise FormatError(
                        f"indices out of range [0, {self.n})")
                if np.any(np.diff(self.indices) <= 0):
                    raise FormatError(
                        "indices must be strictly increasing; use "
                        "SparseVector.from_pairs for unsorted input")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, indices, values, n) -> "SparseVector":
        """Build from unsorted (possibly duplicated) pairs; duplicates sum."""
        idx = as_index_array(indices, "indices")
        val = as_value_array(values, "values")
        if idx.size == 0:
            return cls.empty(n)
        order = np.argsort(idx, kind="stable")
        idx, val = idx[order], val[order]
        boundary = np.empty(idx.size, dtype=bool)
        boundary[0] = True
        np.not_equal(idx[1:], idx[:-1], out=boundary[1:])
        groups = np.cumsum(boundary) - 1
        out_idx = idx[boundary]
        out_val = np.zeros(out_idx.size, dtype=VALUE_DTYPE)
        np.add.at(out_val, groups, val)
        return cls(out_idx, out_val, n, check=False)

    @classmethod
    def from_dense(cls, arr) -> "SparseVector":
        a = np.asarray(arr, dtype=VALUE_DTYPE).ravel()
        nz = np.flatnonzero(a)
        return cls(nz.astype(INDEX_DTYPE), a[nz], a.size, check=False)

    @classmethod
    def empty(cls, n) -> "SparseVector":
        return cls(np.empty(0, dtype=INDEX_DTYPE), np.empty(0), n, check=False)

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=self.data.dtype)
        out[self.indices] = self.data
        return out

    def copy(self) -> "SparseVector":
        return SparseVector(self.indices.copy(), self.data.copy(), self.n,
                            check=False)

    # ------------------------------------------------------------------ #
    def as_row_matrix(self) -> CSRMatrix:
        """View as a 1×n CSR matrix (the kernels' native shape)."""
        indptr = np.array([0, self.nnz], dtype=INDEX_DTYPE)
        return CSRMatrix(indptr, self.indices, self.data, (1, self.n),
                         check=False)

    @classmethod
    def from_row_matrix(cls, m: CSRMatrix) -> "SparseVector":
        if m.nrows != 1:
            raise FormatError(f"expected a 1-row matrix, got {m.nrows} rows")
        return cls(m.indices.copy(), m.data.copy(), m.ncols, check=False)

    def equals(self, other: "SparseVector", *, rtol=1e-10, atol=1e-12) -> bool:
        return (self.n == other.n
                and np.array_equal(self.indices, other.indices)
                and np.allclose(self.data, other.data, rtol=rtol, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SparseVector n={self.n} nnz={self.nnz}>"
