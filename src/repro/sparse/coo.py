"""COO (coordinate / triplet) sparse format.

COO is the builder and interchange format: generators emit edge lists as COO,
Matrix Market files parse into COO, and COO canonicalization (sort + duplicate
summation) is the single place where messy input becomes a clean compressed
matrix. The compute kernels never operate on COO directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from ..validation import (
    INDEX_DTYPE,
    as_index_array,
    as_value_array,
    check_indices_in_range,
    check_shape,
)


@dataclass
class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Attributes
    ----------
    rows, cols : int64 arrays of equal length
        Row/column index of each stored entry.
    data : 1-D array of values, same length as ``rows``
    shape : (nrows, ncols)

    Entries may be unsorted and may contain duplicates until
    :meth:`canonicalize` is called; duplicate (i, j) pairs are *summed*
    (GraphBLAS "dup op = plus" convention, also what Matrix Market implies).
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __init__(self, rows, cols, data, shape):
        self.shape = check_shape(shape)
        self.rows = as_index_array(rows, "rows")
        self.cols = as_index_array(cols, "cols")
        self.data = as_value_array(data, "data", dtype=np.asarray(data).dtype)
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise FormatError(
                f"rows/cols/data length mismatch: "
                f"{self.rows.size}/{self.cols.size}/{self.data.size}"
            )
        check_indices_in_range(self.rows, self.shape[0], "rows")
        check_indices_in_range(self.cols, self.shape[1], "cols")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of *stored* entries (duplicates counted separately)."""
        return int(self.rows.size)

    @property
    def dtype(self):
        return self.data.dtype

    def copy(self) -> "COOMatrix":
        return COOMatrix(self.rows.copy(), self.cols.copy(), self.data.copy(), self.shape)

    # ------------------------------------------------------------------ #
    def canonicalize(self) -> "COOMatrix":
        """Return an equivalent COO with row-major sorted, duplicate-free
        entries (duplicates summed) and explicit zeros *retained*.

        Explicit zeros are kept because GraphBLAS masks are structural: an
        explicitly stored zero is part of the pattern. Use :meth:`prune` to
        drop them.
        """
        if self.nnz == 0:
            return self.copy()
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        d = self.data[order]
        # boundary[i] is True where entry i starts a new (row, col) group
        boundary = np.empty(r.size, dtype=bool)
        boundary[0] = True
        np.not_equal(r[1:], r[:-1], out=boundary[1:])
        boundary[1:] |= c[1:] != c[:-1]
        group_ids = np.cumsum(boundary) - 1
        ngroups = int(group_ids[-1]) + 1
        out_r = r[boundary]
        out_c = c[boundary]
        out_d = np.zeros(ngroups, dtype=d.dtype)
        np.add.at(out_d, group_ids, d)
        return COOMatrix(out_r, out_c, out_d, self.shape)

    def prune(self, tol: float = 0.0) -> "COOMatrix":
        """Drop stored entries with ``|value| <= tol`` (default: exact zeros)."""
        keep = np.abs(self.data) > tol
        return COOMatrix(self.rows[keep], self.cols[keep], self.data[keep], self.shape)

    # ------------------------------------------------------------------ #
    def to_csr(self):
        """Convert to CSR (canonicalizing on the way)."""
        from .convert import coo_to_csr

        return coo_to_csr(self)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D numpy array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.data.copy(),
                         (self.shape[1], self.shape[0]))

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, shape, dtype=np.float64) -> "COOMatrix":
        z = np.empty(0, dtype=INDEX_DTYPE)
        return cls(z, z.copy(), np.empty(0, dtype=dtype), shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<COOMatrix shape={self.shape} nnz={self.nnz} dtype={self.data.dtype}>"
        )
