"""Structural and element-wise operations on CSR matrices.

These are the GraphBLAS-flavoured helper operations the paper's applications
need around the masked product itself: ``tril`` for triangle counting's
``L``, element-wise multiply/add/divide for betweenness centrality's
dependency updates, pattern extraction for masks, and mask application (the
"multiply then mask" strawman of the paper's Fig. 1 needs ``apply_mask``).

Row-major (row, col) pairs are encoded as scalar keys ``row * ncols + col``
so set operations (union / intersection / difference) become 1-D sorted-array
operations — a standard trick that keeps everything vectorized.
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from ..errors import ShapeError
from ..validation import INDEX_DTYPE, VALUE_DTYPE, check_same_shape
from .csr import CSRMatrix


# ---------------------------------------------------------------------- #
# pattern fingerprinting
# ---------------------------------------------------------------------- #
def pattern_fingerprint(indptr: np.ndarray, indices: np.ndarray,
                        shape: tuple[int, int]) -> str:
    """Stable content hash of a CSR *pattern* (indptr + indices + shape).

    Two patterns collide only if blake2b collides: the digest covers the
    shape, the row pointer array and the column ids, each canonicalized to
    little-endian int64 so the result is independent of platform byte order
    and of the (validated-equivalent) input dtype. Values are deliberately
    excluded — a matrix whose numbers change but whose sparsity structure
    does not keeps its fingerprint, which is exactly the invariance the
    service layer's :class:`~repro.service.PlanCache` needs.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(shape, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(indptr, dtype="<i8").tobytes())
    h.update(b"|")  # guard against indptr/indices boundary ambiguity
    h.update(np.ascontiguousarray(indices, dtype="<i8").tobytes())
    return h.hexdigest()


def matrix_fingerprint(m: CSRMatrix) -> str:
    """:func:`pattern_fingerprint` of a matrix's stored pattern."""
    return pattern_fingerprint(m.indptr, m.indices, m.shape)


def value_fingerprint(data: np.ndarray) -> str:
    """Stable content hash of a CSR *value* array.

    The complement of :func:`pattern_fingerprint`: it digests only the stored
    numbers (canonicalized to little-endian float64, the library's value
    dtype), so ``(pattern_fingerprint, value_fingerprint)`` together identify
    a matrix's full content. That pair is the key primitive of
    :class:`repro.service.ResultCache` — two operands with equal pattern and
    value fingerprints produce bit-identical products, so the numeric pass
    itself can be memoized. NaNs hash by their bit patterns, which is the
    right behavior for a cache key (NaN-carrying inputs never alias non-NaN
    ones, and identical bits keep aliasing each other).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(data, dtype="<f8").tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------- #
# key encoding
# ---------------------------------------------------------------------- #
def _keys(m: CSRMatrix) -> np.ndarray:
    """Encode stored coordinates as sorted unique int64 scalar keys."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return rows * m.ncols + m.indices


def _from_keys(keys: np.ndarray, values: np.ndarray, shape) -> CSRMatrix:
    """Rebuild a canonical CSR from sorted unique keys + aligned values."""
    nrows, ncols = shape
    rows = keys // ncols
    cols = keys - rows * ncols
    counts = np.bincount(rows, minlength=nrows)
    indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, cols, values, shape, check=False)


# ---------------------------------------------------------------------- #
# structural ops
# ---------------------------------------------------------------------- #
def transpose_csr(m: CSRMatrix) -> CSRMatrix:
    from .convert import _transpose_arrays

    t_indptr, t_indices, t_data = _transpose_arrays(
        m.indptr, m.indices, m.data, m.nrows, m.ncols
    )
    return CSRMatrix(t_indptr, t_indices, t_data, (m.ncols, m.nrows), check=False)


def _select(m: CSRMatrix, keep: np.ndarray) -> CSRMatrix:
    """Filter stored entries by boolean mask ``keep`` (aligned with data)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    counts = np.bincount(rows[keep], minlength=m.nrows)
    indptr = np.zeros(m.nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, m.indices[keep], m.data[keep], m.shape, check=False)


def tril(m: CSRMatrix, k: int = -1) -> CSRMatrix:
    """Entries on/below the k-th diagonal (default strictly-lower, the ``L``
    of the paper's triangle-counting formulation ``sum(L .* (L·L))``)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, m.indices - rows <= k)


def triu(m: CSRMatrix, k: int = 1) -> CSRMatrix:
    """Entries on/above the k-th diagonal (default strictly-upper)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, m.indices - rows >= k)


def diagonal(m: CSRMatrix) -> np.ndarray:
    """Dense main diagonal (zeros where unstored)."""
    out = np.zeros(min(m.shape), dtype=m.dtype)
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    on_diag = rows == m.indices
    out[rows[on_diag]] = m.data[on_diag]
    return out


def prune(m: CSRMatrix, tol: float = 0.0) -> CSRMatrix:
    """Drop stored entries with ``|value| <= tol``."""
    return _select(m, np.abs(m.data) > tol)


def remove_diagonal(m: CSRMatrix) -> CSRMatrix:
    """Drop stored entries on the main diagonal (self-loops in graph terms)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, rows != m.indices)


# ---------------------------------------------------------------------- #
# element-wise ops
# ---------------------------------------------------------------------- #
def ewise_mult(
    a: CSRMatrix, b: CSRMatrix, op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.multiply
) -> CSRMatrix:
    """Element-wise op on the *intersection* of patterns (GraphBLAS eWiseMult)."""
    check_same_shape(a.shape, b.shape, "ewise_mult operands")
    ka, kb = _keys(a), _keys(b)
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=True, return_indices=True)
    vals = op(a.data[ia], b.data[ib]).astype(VALUE_DTYPE, copy=False)
    return _from_keys(common, vals, a.shape)


def ewise_add(
    a: CSRMatrix, b: CSRMatrix, op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add
) -> CSRMatrix:
    """Element-wise op on the *union* of patterns (GraphBLAS eWiseAdd):
    where only one operand stores a value, that value passes through."""
    check_same_shape(a.shape, b.shape, "ewise_add operands")
    ka, kb = _keys(a), _keys(b)
    union = np.union1d(ka, kb)
    vals = np.zeros(union.size, dtype=VALUE_DTYPE)
    pa = np.searchsorted(union, ka)
    pb = np.searchsorted(union, kb)
    in_a = np.zeros(union.size, dtype=bool)
    in_b = np.zeros(union.size, dtype=bool)
    in_a[pa] = True
    in_b[pb] = True
    va = np.zeros(union.size, dtype=VALUE_DTYPE)
    vb = np.zeros(union.size, dtype=VALUE_DTYPE)
    va[pa] = a.data
    vb[pb] = b.data
    both = in_a & in_b
    vals[both] = op(va[both], vb[both])
    only_a = in_a & ~in_b
    only_b = in_b & ~in_a
    vals[only_a] = va[only_a]
    vals[only_b] = vb[only_b]
    return _from_keys(union, vals, a.shape)


def ewise_div(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Element-wise a/b on the pattern intersection. Entries of ``a`` with no
    matching ``b`` entry are dropped (consistent with eWiseMult semantics);
    betweenness centrality only divides where the divisor exists."""
    return ewise_mult(a, b, op=lambda x, y: x / y)


def apply_mask(c: CSRMatrix, mask: CSRMatrix, *, complemented: bool = False) -> CSRMatrix:
    """Keep entries of ``c`` whose coordinates lie in (resp. outside, when
    complemented) the stored pattern of ``mask``. This is the *post-hoc*
    masking of the paper's Fig. 1 "plain" path — the thing the masked
    kernels exist to avoid."""
    check_same_shape(c.shape, mask.shape, "matrix and mask")
    kc, km = _keys(c), _keys(mask)
    member = np.isin(kc, km, assume_unique=True)
    keep = ~member if complemented else member
    return _select(c, keep)


def scale_values(m: CSRMatrix, fn: Callable[[np.ndarray], np.ndarray]) -> CSRMatrix:
    """Apply a value-wise function to stored values (GraphBLAS apply)."""
    return CSRMatrix(m.indptr.copy(), m.indices.copy(),
                     fn(m.data).astype(VALUE_DTYPE, copy=False), m.shape, check=False)


def pattern_union(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Union of patterns with all-ones values."""
    check_same_shape(a.shape, b.shape, "pattern_union operands")
    union = np.union1d(_keys(a), _keys(b))
    return _from_keys(union, np.ones(union.size, dtype=VALUE_DTYPE), a.shape)


def pattern_difference(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Entries of ``a`` whose coordinates are NOT stored in ``b`` (values kept)."""
    check_same_shape(a.shape, b.shape, "pattern_difference operands")
    ka, kb = _keys(a), _keys(b)
    keep = ~np.isin(ka, kb, assume_unique=True)
    return _select(a, keep)


def symmetrize(m: CSRMatrix) -> CSRMatrix:
    """Pattern-symmetrize: return a matrix with entries on union(P, P^T) and
    all-ones values — the standard "make the graph undirected" prep step."""
    if m.nrows != m.ncols:
        raise ShapeError("symmetrize requires a square matrix")
    return pattern_union(m.pattern(), transpose_csr(m).pattern())
