"""Structural and element-wise operations on CSR matrices.

These are the GraphBLAS-flavoured helper operations the paper's applications
need around the masked product itself: ``tril`` for triangle counting's
``L``, element-wise multiply/add/divide for betweenness centrality's
dependency updates, pattern extraction for masks, and mask application (the
"multiply then mask" strawman of the paper's Fig. 1 needs ``apply_mask``).

Row-major (row, col) pairs are encoded as scalar keys ``row * ncols + col``
so set operations (union / intersection / difference) become 1-D sorted-array
operations — a standard trick that keeps everything vectorized.
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from ..errors import ShapeError
from ..validation import INDEX_DTYPE, VALUE_DTYPE, check_same_shape
from .csr import CSRMatrix


# ---------------------------------------------------------------------- #
# pattern fingerprinting
# ---------------------------------------------------------------------- #
def pattern_fingerprint(indptr: np.ndarray, indices: np.ndarray,
                        shape: tuple[int, int]) -> str:
    """Stable content hash of a CSR *pattern* (indptr + indices + shape).

    Two patterns collide only if blake2b collides: the digest covers the
    shape, the row pointer array and the column ids, each canonicalized to
    little-endian int64 so the result is independent of platform byte order
    and of the (validated-equivalent) input dtype. Values are deliberately
    excluded — a matrix whose numbers change but whose sparsity structure
    does not keeps its fingerprint, which is exactly the invariance the
    service layer's :class:`~repro.service.PlanCache` needs.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(shape, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(indptr, dtype="<i8").tobytes())
    h.update(b"|")  # guard against indptr/indices boundary ambiguity
    h.update(np.ascontiguousarray(indices, dtype="<i8").tobytes())
    return h.hexdigest()


def matrix_fingerprint(m: CSRMatrix) -> str:
    """:func:`pattern_fingerprint` of a matrix's stored pattern."""
    return pattern_fingerprint(m.indptr, m.indices, m.shape)


def value_fingerprint(data: np.ndarray) -> str:
    """Stable content hash of a CSR *value* array.

    The complement of :func:`pattern_fingerprint`: it digests only the stored
    numbers (canonicalized to little-endian float64, the library's value
    dtype), so ``(pattern_fingerprint, value_fingerprint)`` together identify
    a matrix's full content. That pair is the key primitive of
    :class:`repro.service.ResultCache` — two operands with equal pattern and
    value fingerprints produce bit-identical products, so the numeric pass
    itself can be memoized. NaNs hash by their bit patterns, which is the
    right behavior for a cache key (NaN-carrying inputs never alias non-NaN
    ones, and identical bits keep aliasing each other).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(data, dtype="<f8").tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------- #
# key encoding
# ---------------------------------------------------------------------- #
def _keys(m: CSRMatrix) -> np.ndarray:
    """Encode stored coordinates as sorted unique int64 scalar keys."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return rows * m.ncols + m.indices


def _from_keys(keys: np.ndarray, values: np.ndarray, shape) -> CSRMatrix:
    """Rebuild a canonical CSR from sorted unique keys + aligned values."""
    nrows, ncols = shape
    rows = keys // ncols
    cols = keys - rows * ncols
    counts = np.bincount(rows, minlength=nrows)
    indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, cols, values, shape, check=False)


# ---------------------------------------------------------------------- #
# coordinate deltas (streaming-graph mutations; see repro.delta)
# ---------------------------------------------------------------------- #
def coord_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) coordinate arrays as the scalar int64 keys the set
    operations above use. Inverse of the row/col split in :func:`_from_keys`."""
    return (np.asarray(rows, dtype=INDEX_DTYPE) * ncols
            + np.asarray(cols, dtype=INDEX_DTYPE))


def apply_coordinate_delta(
    m: CSRMatrix,
    delete_keys: np.ndarray,
    insert_keys: np.ndarray,
    insert_values: np.ndarray,
    update_keys: np.ndarray,
    update_values: np.ndarray,
) -> tuple[CSRMatrix, np.ndarray, np.ndarray, bool]:
    """Apply one edge-delta batch to ``m``; the primitive under
    :meth:`repro.delta.DeltaBatch.apply`.

    Key arrays are sorted unique scalar keys (:func:`coord_keys`), values
    aligned with their key arrays. Within the batch, deletes apply first,
    then inserts, then updates:

    * deleting an unstored coordinate is a no-op;
    * inserting at a coordinate the (post-delete) matrix stores overwrites
      its value — no pattern change;
    * updates are strict: every update key must exist after deletes+inserts,
      else ``ValueError`` (an update is a claim the edge is present).

    Returns ``(new_matrix, dirty_rows, changed_keys, value_touched)`` where
    ``dirty_rows`` are the rows whose *pattern* changed (sorted unique),
    ``changed_keys`` is the exact symmetric difference of the stored
    coordinate sets (sorted :func:`coord_keys` — the input to B-side dirty
    sharpening, :func:`rows_affected_through`) and ``value_touched`` reports
    whether any stored value was (re)assigned without a pattern change
    backing it. A value-only batch returns a matrix sharing
    ``indptr``/``indices`` with ``m`` (copy-on-write values), which is what
    lets the service layer carry the pattern fingerprint forward unchanged —
    the "incremental fingerprint" of the delta path.
    """
    old_keys = _keys(m)
    keys, vals = old_keys, m.data
    if delete_keys.size:
        keep = ~np.isin(keys, delete_keys, assume_unique=True)
        keys, vals = keys[keep], vals[keep]
    overwrote = False
    if insert_keys.size:
        union = np.union1d(keys, insert_keys)
        new_vals = np.empty(union.size, dtype=VALUE_DTYPE)
        new_vals[np.searchsorted(union, keys)] = vals
        new_vals[np.searchsorted(union, insert_keys)] = insert_values
        # an insert landing on a coordinate stored in the *old* pattern is a
        # value overwrite (incl. delete-then-reinsert within this batch):
        # no pattern change, but the stored numbers moved
        overwrote = bool(np.isin(insert_keys, old_keys,
                                 assume_unique=True).any())
        keys, vals = union, new_vals
    if update_keys.size:
        pos = np.searchsorted(keys, update_keys)
        ok = ((pos < keys.size)
              & (keys[np.clip(pos, 0, max(keys.size - 1, 0))] == update_keys)
              if keys.size else np.zeros(update_keys.size, dtype=bool))
        if not bool(np.all(ok)):
            missing = update_keys[~ok]
            rows = missing // m.ncols
            cols = missing - rows * m.ncols
            raise ValueError(
                f"delta update targets unstored coordinates: "
                f"{list(zip(rows[:5].tolist(), cols[:5].tolist()))}"
                f"{'…' if missing.size > 5 else ''}"
            )
        if vals is m.data:
            vals = vals.copy()
        vals[pos] = update_values
    changed = np.setxor1d(old_keys, keys, assume_unique=True)
    dirty_rows = np.unique(changed // m.ncols).astype(INDEX_DTYPE, copy=False)
    value_touched = overwrote or bool(update_keys.size)
    if dirty_rows.size == 0:
        if not value_touched:
            # pure no-op: same object, same bits
            return m, dirty_rows, changed, False
        # value-only: share the pattern arrays, swap in the new values
        new = CSRMatrix(m.indptr, m.indices,
                        np.ascontiguousarray(vals, dtype=VALUE_DTYPE),
                        m.shape, check=False)
        return new, dirty_rows, changed, True
    new = _from_keys(keys, np.ascontiguousarray(vals, dtype=VALUE_DTYPE),
                     m.shape)
    return new, dirty_rows, changed, value_touched


def rows_touching(m: CSRMatrix, cols: np.ndarray) -> np.ndarray:
    """Rows of ``m`` storing at least one column in ``cols`` (sorted unique).

    This is the B-side dirty-row propagation of the delta subsystem: when the
    *right* operand of ``C = M ⊙ (A·B)`` changes rows ``cols``, the output
    rows that can change are exactly the rows of A reading those B rows.
    """
    if cols.size == 0 or m.nnz == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    hit = np.isin(m.indices, cols)
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return np.unique(rows[hit]).astype(INDEX_DTYPE, copy=False)


def _range_positions(starts: np.ndarray, cnt: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[k], starts[k] + cnt[k])`` for every k
    (vectorized; no Python loop)."""
    cnt = cnt.astype(np.int64)
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.cumsum(cnt) - cnt
    within = np.arange(total, dtype=np.int64) - np.repeat(offs, cnt)
    return np.repeat(starts.astype(np.int64), cnt) + within


def _concat_slices(values: np.ndarray, lo: np.ndarray,
                   hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather ``values[lo[k]:hi[k]]`` for every k, concatenated, plus the
    per-slice lengths (vectorized; no Python loop)."""
    cnt = (hi - lo).astype(np.int64)
    if int(cnt.sum()) == 0:
        return np.empty(0, dtype=values.dtype), cnt
    return values[_range_positions(lo, cnt)], cnt


def splice_result_rows(m: CSRMatrix, dirty: np.ndarray, sizes: np.ndarray,
                       cols: np.ndarray, vals: np.ndarray) -> CSRMatrix:
    """Replace rows ``dirty`` (sorted unique) of ``m`` with the given row
    block (``sizes`` per dirty row; ``cols``/``vals`` concatenated in dirty
    order), keeping every other row's arrays bit-identical.

    This is the delta path's *result* splice: after a pattern delta, a
    cached product is patched by recomputing only the dirty output rows
    (the numeric kernel runs over that subset) and copying the rest.
    """
    old_sizes = np.diff(m.indptr).astype(np.int64)
    row_sizes = old_sizes.copy()
    row_sizes[dirty] = sizes
    indptr = np.concatenate(([0], np.cumsum(row_sizes)))
    out_cols = np.empty(indptr[-1], dtype=m.indices.dtype)
    out_vals = np.empty(indptr[-1], dtype=m.data.dtype)
    dmask = np.zeros(old_sizes.size, dtype=bool)
    dmask[dirty] = True
    clean = np.flatnonzero(~dmask)
    src_cols, cnt = _concat_slices(m.indices, m.indptr[clean],
                                   m.indptr[clean + 1])
    pos = _range_positions(indptr[clean], cnt)
    out_cols[pos] = src_cols
    out_vals[pos] = _concat_slices(m.data, m.indptr[clean],
                                   m.indptr[clean + 1])[0]
    pos_d = _range_positions(indptr[dirty], sizes)
    out_cols[pos_d] = cols
    out_vals[pos_d] = vals
    return CSRMatrix(indptr.astype(INDEX_DTYPE, copy=False), out_cols,
                     out_vals, m.shape, check=False)


def rows_affected_through(a: CSRMatrix, mask_indptr: np.ndarray,
                          mask_indices: np.ndarray, changed_keys: np.ndarray,
                          ncols: int) -> np.ndarray:
    """Output rows of ``C = M ⊙ (A·B)`` whose *pattern* can change when B's
    stored coordinate set changes by exactly ``changed_keys``
    (sorted :func:`coord_keys` over B's shape; B has ``ncols`` columns, as
    does the mask).

    Sharper than ``rows_touching(a, changed_rows)``: a product through a
    changed B entry ``(j, c)`` lands in output row ``i`` *at column c only*,
    so row ``i`` is affected iff ``A[i, j]`` is stored **and** the mask
    admits ``c`` in row ``i``. For triangle-style self-products (k-truss)
    this is the common-neighbor set of each changed edge — typically orders
    of magnitude smaller than the full neighborhood ``rows_touching`` gives.
    Only valid for non-complemented masks (``mask_indices`` = admitted
    columns); complemented plans must fall back to :func:`rows_touching`.
    """
    if changed_keys.size == 0 or a.nnz == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    ch_j = changed_keys // ncols  # sorted keys ⇒ grouped by changed B row
    ch_c = changed_keys - ch_j * ncols
    sel = np.flatnonzero(np.isin(a.indices, np.unique(ch_j)))
    if sel.size == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # stored A entries (i, j) reading a changed B row j
    ent_i = (np.searchsorted(a.indptr, sel, side="right") - 1).astype(np.int64)
    ent_j = a.indices[sel]
    # candidate (i, c) pairs: each entry crossed with its j's changed columns
    lo = np.searchsorted(ch_j, ent_j, side="left")
    hi = np.searchsorted(ch_j, ent_j, side="right")
    cand_c, cnt = _concat_slices(ch_c, lo, hi)
    cand_i = np.repeat(ent_i, cnt)
    # keep candidates the mask admits: (i, c) stored in the mask pattern
    mrows = np.unique(cand_i)
    mcols, mcnt = _concat_slices(mask_indices,
                                 mask_indptr[mrows], mask_indptr[mrows + 1])
    if mcols.size == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # mrows ascend and in-row columns ascend ⇒ composite keys are sorted
    mkeys = np.repeat(mrows, mcnt) * np.int64(ncols) + mcols
    cand_keys = cand_i * np.int64(ncols) + cand_c
    pos = np.searchsorted(mkeys, cand_keys)
    ok = ((pos < mkeys.size)
          & (mkeys[np.minimum(pos, mkeys.size - 1)] == cand_keys))
    return np.unique(cand_i[ok]).astype(INDEX_DTYPE, copy=False)


# ---------------------------------------------------------------------- #
# structural ops
# ---------------------------------------------------------------------- #
def transpose_csr(m: CSRMatrix) -> CSRMatrix:
    from .convert import _transpose_arrays

    t_indptr, t_indices, t_data = _transpose_arrays(
        m.indptr, m.indices, m.data, m.nrows, m.ncols
    )
    return CSRMatrix(t_indptr, t_indices, t_data, (m.ncols, m.nrows), check=False)


def _select(m: CSRMatrix, keep: np.ndarray) -> CSRMatrix:
    """Filter stored entries by boolean mask ``keep`` (aligned with data)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    counts = np.bincount(rows[keep], minlength=m.nrows)
    indptr = np.zeros(m.nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr, m.indices[keep], m.data[keep], m.shape, check=False)


def tril(m: CSRMatrix, k: int = -1) -> CSRMatrix:
    """Entries on/below the k-th diagonal (default strictly-lower, the ``L``
    of the paper's triangle-counting formulation ``sum(L .* (L·L))``)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, m.indices - rows <= k)


def triu(m: CSRMatrix, k: int = 1) -> CSRMatrix:
    """Entries on/above the k-th diagonal (default strictly-upper)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, m.indices - rows >= k)


def diagonal(m: CSRMatrix) -> np.ndarray:
    """Dense main diagonal (zeros where unstored)."""
    out = np.zeros(min(m.shape), dtype=m.dtype)
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    on_diag = rows == m.indices
    out[rows[on_diag]] = m.data[on_diag]
    return out


def prune(m: CSRMatrix, tol: float = 0.0) -> CSRMatrix:
    """Drop stored entries with ``|value| <= tol``."""
    return _select(m, np.abs(m.data) > tol)


def remove_diagonal(m: CSRMatrix) -> CSRMatrix:
    """Drop stored entries on the main diagonal (self-loops in graph terms)."""
    rows = np.repeat(np.arange(m.nrows, dtype=INDEX_DTYPE), m.row_nnz())
    return _select(m, rows != m.indices)


# ---------------------------------------------------------------------- #
# element-wise ops
# ---------------------------------------------------------------------- #
def ewise_mult(
    a: CSRMatrix, b: CSRMatrix, op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.multiply
) -> CSRMatrix:
    """Element-wise op on the *intersection* of patterns (GraphBLAS eWiseMult)."""
    check_same_shape(a.shape, b.shape, "ewise_mult operands")
    ka, kb = _keys(a), _keys(b)
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=True, return_indices=True)
    vals = op(a.data[ia], b.data[ib]).astype(VALUE_DTYPE, copy=False)
    return _from_keys(common, vals, a.shape)


def ewise_add(
    a: CSRMatrix, b: CSRMatrix, op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add
) -> CSRMatrix:
    """Element-wise op on the *union* of patterns (GraphBLAS eWiseAdd):
    where only one operand stores a value, that value passes through."""
    check_same_shape(a.shape, b.shape, "ewise_add operands")
    ka, kb = _keys(a), _keys(b)
    union = np.union1d(ka, kb)
    vals = np.zeros(union.size, dtype=VALUE_DTYPE)
    pa = np.searchsorted(union, ka)
    pb = np.searchsorted(union, kb)
    in_a = np.zeros(union.size, dtype=bool)
    in_b = np.zeros(union.size, dtype=bool)
    in_a[pa] = True
    in_b[pb] = True
    va = np.zeros(union.size, dtype=VALUE_DTYPE)
    vb = np.zeros(union.size, dtype=VALUE_DTYPE)
    va[pa] = a.data
    vb[pb] = b.data
    both = in_a & in_b
    vals[both] = op(va[both], vb[both])
    only_a = in_a & ~in_b
    only_b = in_b & ~in_a
    vals[only_a] = va[only_a]
    vals[only_b] = vb[only_b]
    return _from_keys(union, vals, a.shape)


def ewise_div(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Element-wise a/b on the pattern intersection. Entries of ``a`` with no
    matching ``b`` entry are dropped (consistent with eWiseMult semantics);
    betweenness centrality only divides where the divisor exists."""
    return ewise_mult(a, b, op=lambda x, y: x / y)


def apply_mask(c: CSRMatrix, mask: CSRMatrix, *, complemented: bool = False) -> CSRMatrix:
    """Keep entries of ``c`` whose coordinates lie in (resp. outside, when
    complemented) the stored pattern of ``mask``. This is the *post-hoc*
    masking of the paper's Fig. 1 "plain" path — the thing the masked
    kernels exist to avoid."""
    check_same_shape(c.shape, mask.shape, "matrix and mask")
    kc, km = _keys(c), _keys(mask)
    member = np.isin(kc, km, assume_unique=True)
    keep = ~member if complemented else member
    return _select(c, keep)


def scale_values(m: CSRMatrix, fn: Callable[[np.ndarray], np.ndarray]) -> CSRMatrix:
    """Apply a value-wise function to stored values (GraphBLAS apply)."""
    return CSRMatrix(m.indptr.copy(), m.indices.copy(),
                     fn(m.data).astype(VALUE_DTYPE, copy=False), m.shape, check=False)


def pattern_union(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Union of patterns with all-ones values."""
    check_same_shape(a.shape, b.shape, "pattern_union operands")
    union = np.union1d(_keys(a), _keys(b))
    return _from_keys(union, np.ones(union.size, dtype=VALUE_DTYPE), a.shape)


def pattern_difference(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Entries of ``a`` whose coordinates are NOT stored in ``b`` (values kept)."""
    check_same_shape(a.shape, b.shape, "pattern_difference operands")
    ka, kb = _keys(a), _keys(b)
    keep = ~np.isin(ka, kb, assume_unique=True)
    return _select(a, keep)


def symmetrize(m: CSRMatrix) -> CSRMatrix:
    """Pattern-symmetrize: return a matrix with entries on union(P, P^T) and
    all-ones values — the standard "make the graph undirected" prep step."""
    if m.nrows != m.ncols:
        raise ShapeError("symmetrize requires a square matrix")
    return pattern_union(m.pattern(), transpose_csr(m).pattern())
