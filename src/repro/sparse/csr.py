"""CSR (Compressed Sparse Row) — the library's primary sparse format.

The paper's algorithms are row-by-row (Gustavson form), so every kernel
consumes CSR operands: ``indptr`` (row pointers, length nrows+1), ``indices``
(column ids of nonzeros) and ``data`` (values), exactly the three arrays the
paper describes in §2.1.

Invariants maintained by all constructors in this library:

* ``indptr`` is non-decreasing with ``indptr[0] == 0`` and
  ``indptr[-1] == nnz``;
* within each row, column indices are strictly increasing (sorted, no
  duplicates). Sortedness matters: MCA and Heap *require* it (paper §5.4,
  §5.5), and the mask-stable output ordering of MSA relies on it.

Explicit zeros are allowed (structural pattern ≠ numeric value), mirroring
GraphBLAS semantics where a stored zero participates in masks.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..validation import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    as_index_array,
    as_value_array,
    check_indices_in_range,
    check_indptr,
    check_shape,
    rows_sorted_unique,
)


class CSRMatrix:
    """Compressed sparse row matrix backed by three numpy arrays.

    Parameters
    ----------
    indptr, indices, data : array-like
        The standard CSR triple.
    shape : (nrows, ncols)
    check : bool, default True
        Validate format invariants. Kernels constructing outputs they know to
        be valid pass ``check=False`` to skip the O(nnz) verification.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape, *, check: bool = True):
        self.shape = check_shape(shape)
        self.indptr = as_index_array(indptr, "indptr")
        self.indices = as_index_array(indices, "indices")
        self.data = as_value_array(data, "data", dtype=np.asarray(data).dtype)
        if check:
            check_indptr(self.indptr, self.shape[0], self.indices.size)
            if self.indices.size != self.data.size:
                raise FormatError(
                    f"indices/data length mismatch: {self.indices.size} vs {self.data.size}"
                )
            check_indices_in_range(self.indices, self.shape[1], "column indices")
            if not rows_sorted_unique(self.indptr, self.indices):
                raise FormatError(
                    "column indices must be strictly increasing within each row; "
                    "build via COOMatrix.canonicalize() / coo_to_csr()"
                )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def dtype(self):
        return self.data.dtype

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts, ``nnz(A_i*)`` for all i (length nrows)."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (column indices, values) of row ``i`` — zero copy."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape,
            check=False,
        )

    def astype(self, dtype) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.astype(dtype),
            self.shape, check=False,
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_coo(self):
        from .convert import csr_to_coo

        return csr_to_coo(self)

    def to_csc(self):
        from .convert import csr_to_csc

        return csr_to_csc(self)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------ #
    # structural operations (delegating to ops.py for the heavy lifting)
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRMatrix":
        """Return A^T as a new, canonical CSR matrix (O(nnz log nnz))."""
        from .ops import transpose_csr

        return transpose_csr(self)

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def pattern(self, value: float = 1.0) -> "CSRMatrix":
        """Structural pattern with every stored value replaced by ``value``."""
        return CSRMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            np.full(self.nnz, value, dtype=VALUE_DTYPE),
            self.shape,
            check=False,
        )

    def tril(self, k: int = -1) -> "CSRMatrix":
        from .ops import tril

        return tril(self, k)

    def triu(self, k: int = 1) -> "CSRMatrix":
        from .ops import triu

        return triu(self, k)

    def diagonal(self) -> np.ndarray:
        from .ops import diagonal

        return diagonal(self)

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with ``|value| <= tol``."""
        from .ops import prune

        return prune(self, tol)

    def sum(self) -> float:
        """Sum of all stored values (the GraphBLAS reduce-to-scalar with +)."""
        return float(self.data.sum())

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values (reduce-to-vector with +)."""
        out = np.zeros(self.nrows, dtype=self.data.dtype)
        if self.nnz:
            rows = np.repeat(np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_nnz())
            np.add.at(out, rows, self.data)
        return out

    # ------------------------------------------------------------------ #
    # comparison helpers (used heavily by tests)
    # ------------------------------------------------------------------ #
    def same_pattern(self, other: "CSRMatrix") -> bool:
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def equals(self, other: "CSRMatrix", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Structural and numeric equality (same pattern, close values)."""
        return self.same_pattern(other) and bool(
            np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )

    def allclose_values(self, other: "CSRMatrix", *, rtol: float = 1e-9,
                        atol: float = 1e-11) -> bool:
        """Numeric equality ignoring pattern differences caused by explicit
        zeros: compares the dense renderings. Intended for small test inputs.
        """
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol))

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, shape, dtype=VALUE_DTYPE) -> "CSRMatrix":
        m, _ = check_shape(shape)
        return cls(
            np.zeros(m + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=dtype),
            shape,
            check=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CSRMatrix shape={self.shape} nnz={self.nnz} dtype={self.data.dtype}>"
