"""Sparse-matrix substrate: storage formats and structural operations.

The paper (§2.1) works almost exclusively with CSR — "We use the CSR format
in most cases, with CSC only being used in a single case to improve
performance of the inner product" — so :class:`~repro.sparse.csr.CSRMatrix`
is the primary citizen here, with :class:`~repro.sparse.csc.CSCMatrix` kept
for the pull-based (Inner) algorithm and :class:`~repro.sparse.coo.COOMatrix`
as the interchange/builder format.

Everything is implemented from scratch on top of numpy arrays (lexsort,
bincount, cumsum); ``scipy.sparse`` appears only in the optional test-oracle
bridge in :mod:`repro.sparse.convert`.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .csc import CSCMatrix
from .vector import SparseVector
from .dcsr import DCSRMatrix
from .construct import (
    csr_eye,
    csr_diag,
    csr_from_dense,
    csr_from_edges,
    csr_random,
)
from .convert import coo_to_csr, csr_to_coo, csr_to_csc, csc_to_csr, from_scipy, to_scipy
from . import ops
from .ops import matrix_fingerprint, pattern_fingerprint, value_fingerprint
from .io_mm import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "SparseVector",
    "DCSRMatrix",
    "csr_eye",
    "csr_diag",
    "csr_from_dense",
    "csr_from_edges",
    "csr_random",
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "from_scipy",
    "to_scipy",
    "ops",
    "matrix_fingerprint",
    "pattern_fingerprint",
    "value_fingerprint",
    "read_matrix_market",
    "write_matrix_market",
]
