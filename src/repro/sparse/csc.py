"""CSC (Compressed Sparse Column) format.

The paper uses CSC in exactly one place (§4.1): the pull-based Inner
algorithm reads ``B`` column-by-column, "most efficiently implemented when A
is stored in CSR and B is stored in CSC". We represent a CSC matrix as the
CSR arrays of its transpose plus the logical shape, which makes the
column-access path (``col(j)``) a zero-copy slice.
"""

from __future__ import annotations

import numpy as np

from ..validation import INDEX_DTYPE, VALUE_DTYPE, check_shape
from .csr import CSRMatrix


class CSCMatrix:
    """Compressed sparse column matrix.

    Internally stores ``indptr`` over *columns*, ``indices`` holding *row*
    ids (sorted, unique within a column) and ``data``. Equivalently this is
    the CSR representation of the transpose.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape, *, check: bool = True):
        self.shape = check_shape(shape)
        # Validate by viewing as CSR of the transpose.
        as_csr = CSRMatrix(indptr, indices, data, (self.shape[1], self.shape[0]),
                           check=check)
        self.indptr = as_csr.indptr
        self.indices = as_csr.indices
        self.data = as_csr.data

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def dtype(self):
        return self.data.dtype

    def col_nnz(self) -> np.ndarray:
        """Per-column nonzero counts, ``nnz(B_*j)`` for all j."""
        return np.diff(self.indptr)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (row indices, values) of column ``j`` — zero copy.

        This is the access pattern the Inner algorithm performs for every
        unmasked output entry (paper §4.1).
        """
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(self.indptr.copy(), self.indices.copy(), self.data.copy(),
                         self.shape, check=False)

    # ------------------------------------------------------------------ #
    def to_csr(self) -> CSRMatrix:
        from .convert import csc_to_csr

        return csc_to_csr(self)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        cols = np.repeat(np.arange(self.ncols, dtype=INDEX_DTYPE), self.col_nnz())
        out[self.indices, cols] = self.data
        return out

    def transpose_view_csr(self) -> CSRMatrix:
        """Reinterpret the same arrays as the CSR matrix B^T (zero copy)."""
        return CSRMatrix(self.indptr, self.indices, self.data,
                         (self.shape[1], self.shape[0]), check=False)

    @classmethod
    def empty(cls, shape, dtype=VALUE_DTYPE) -> "CSCMatrix":
        m, n = check_shape(shape)
        return cls(
            np.zeros(n + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=dtype),
            shape,
            check=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CSCMatrix shape={self.shape} nnz={self.nnz} dtype={self.data.dtype}>"
