"""DCSR (doubly-compressed sparse row) — the hypersparse format.

The paper (§3) notes SuiteSparse's hypersparse case "uses either DCSR or
DCSC [10]" (Buluç & Gilbert). DCSR compresses the row-pointer axis too:
only rows with at least one nonzero are materialized, so storage is
O(nnz + nrows_nonempty) instead of O(nnz + nrows). That matters exactly
where the paper's applications produce hypersparse intermediates — e.g.
betweenness-centrality frontiers, where a handful of batch rows remain
active in late BFS levels.

This implementation interoperates with CSR (lossless round-trip) and offers
the row-access API the kernels' reference tier needs. The vectorized matrix
kernels stay CSR-only, matching the paper's stated scope ("Our work is
focused on the CSR format"); DCSR here is substrate for storage-sensitive
callers.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..validation import (
    INDEX_DTYPE,
    as_index_array,
    as_value_array,
    check_indices_in_range,
    check_shape,
)
from .csr import CSRMatrix


class DCSRMatrix:
    """Doubly-compressed sparse row matrix.

    Attributes
    ----------
    row_ids : sorted unique ids of the non-empty rows (length nzr)
    indptr : length nzr+1; ``indptr[t]:indptr[t+1]`` slices row ``row_ids[t]``
    indices, data : column ids / values, rows sorted internally
    shape : logical (nrows, ncols)
    """

    __slots__ = ("row_ids", "indptr", "indices", "data", "shape")

    def __init__(self, row_ids, indptr, indices, data, shape, *,
                 check: bool = True):
        self.shape = check_shape(shape)
        self.row_ids = as_index_array(row_ids, "row_ids")
        self.indptr = as_index_array(indptr, "indptr")
        self.indices = as_index_array(indices, "indices")
        self.data = as_value_array(data, "data")
        if check:
            if self.indptr.shape != (self.row_ids.size + 1,):
                raise FormatError(
                    f"indptr length {self.indptr.size} != nzr+1 "
                    f"{self.row_ids.size + 1}")
            if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
                raise FormatError("indptr must span [0, nnz]")
            if np.any(np.diff(self.indptr) <= 0):
                raise FormatError(
                    "DCSR rows must be non-empty (that is the point of "
                    "double compression); empty rows simply do not appear")
            if self.row_ids.size:
                check_indices_in_range(self.row_ids, self.shape[0], "row_ids")
                if np.any(np.diff(self.row_ids) <= 0):
                    raise FormatError("row_ids must be strictly increasing")
            check_indices_in_range(self.indices, self.shape[1], "indices")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nzr(self) -> int:
        """Number of non-empty rows — the quantity DCSR compresses over."""
        return int(self.row_ids.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def storage_words(self) -> int:
        """Index-array words used (the DCSR-vs-CSR saving is visible here)."""
        return self.row_ids.size + self.indptr.size + self.indices.size

    # ------------------------------------------------------------------ #
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(cols, vals) of logical row i; empty views when i has no entries.

        Binary search over ``row_ids`` — O(log nzr), the access-cost tax
        DCSR pays for its storage saving.
        """
        t = int(np.searchsorted(self.row_ids, i))
        if t == self.row_ids.size or self.row_ids[t] != i:
            return (np.empty(0, dtype=INDEX_DTYPE),
                    np.empty(0, dtype=np.float64))
        lo, hi = self.indptr[t], self.indptr[t + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self):
        """Yield (row_id, cols, vals) over non-empty rows only — the
        iteration pattern hypersparse algorithms rely on."""
        for t in range(self.nzr):
            lo, hi = self.indptr[t], self.indptr[t + 1]
            yield int(self.row_ids[t]), self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr(cls, m: CSRMatrix) -> "DCSRMatrix":
        rnnz = m.row_nnz()
        nonempty = np.flatnonzero(rnnz > 0).astype(INDEX_DTYPE)
        indptr = np.zeros(nonempty.size + 1, dtype=INDEX_DTYPE)
        np.cumsum(rnnz[nonempty], out=indptr[1:])
        return cls(nonempty, indptr, m.indices.copy(), m.data.copy(),
                   m.shape, check=False)

    def to_csr(self) -> CSRMatrix:
        rnnz = np.zeros(self.nrows, dtype=INDEX_DTYPE)
        rnnz[self.row_ids] = np.diff(self.indptr)
        indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(rnnz, out=indptr[1:])
        return CSRMatrix(indptr, self.indices.copy(), self.data.copy(),
                         self.shape, check=False)

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    @classmethod
    def empty(cls, shape) -> "DCSRMatrix":
        z = np.empty(0, dtype=INDEX_DTYPE)
        return cls(z, np.zeros(1, dtype=INDEX_DTYPE), z.copy(),
                   np.empty(0), shape, check=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DCSRMatrix shape={self.shape} nnz={self.nnz} "
                f"nzr={self.nzr}/{self.nrows}>")
