"""Constructors for common sparse matrices.

These are substrate utilities used by generators, tests and examples:
identity/diagonal, dense conversion, edge-list ingestion and uniform random
(Erdős-Rényi-style) patterns. Graph-specific generators (R-MAT etc.) live in
:mod:`repro.graphs.generators`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..validation import INDEX_DTYPE, VALUE_DTYPE, check_shape
from .coo import COOMatrix
from .csr import CSRMatrix


def csr_eye(n: int, dtype=VALUE_DTYPE) -> CSRMatrix:
    """n-by-n identity matrix in CSR."""
    idx = np.arange(n, dtype=INDEX_DTYPE)
    indptr = np.arange(n + 1, dtype=INDEX_DTYPE)
    return CSRMatrix(indptr, idx, np.ones(n, dtype=dtype), (n, n), check=False)


def csr_diag(values, k: int = 0) -> CSRMatrix:
    """Square matrix with ``values`` on the k-th diagonal."""
    v = np.asarray(values, dtype=VALUE_DTYPE)
    n = v.size + abs(k)
    rows = np.arange(v.size, dtype=INDEX_DTYPE) + max(0, -k)
    cols = np.arange(v.size, dtype=INDEX_DTYPE) + max(0, k)
    return COOMatrix(rows, cols, v, (n, n)).to_csr()


def csr_from_dense(arr, *, keep_explicit_zeros: bool = False) -> CSRMatrix:
    """Build a CSR matrix from a dense 2-D array, dropping zeros by default."""
    a = np.asarray(arr)
    if a.ndim != 2:
        raise ShapeError(f"expected 2-D array, got ndim={a.ndim}")
    if keep_explicit_zeros:
        rows, cols = np.indices(a.shape)
        rows, cols = rows.ravel(), cols.ravel()
    else:
        rows, cols = np.nonzero(a)
    return COOMatrix(
        rows.astype(INDEX_DTYPE), cols.astype(INDEX_DTYPE),
        a[rows, cols].astype(VALUE_DTYPE), a.shape,
    ).to_csr()


def csr_from_edges(edges, shape, *, values=None, symmetrize: bool = False) -> CSRMatrix:
    """Build a CSR adjacency matrix from an iterable/array of (u, v) edges.

    Parameters
    ----------
    edges : (m, 2) array-like of vertex pairs
    shape : matrix shape (usually (n, n))
    values : optional per-edge values; default all-ones
    symmetrize : also insert (v, u) for every (u, v) — undirected graphs.
        Duplicate edges collapse (summed) via COO canonicalization; callers
        wanting a pure 0/1 pattern should call ``.pattern()`` afterwards.
    """
    e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                   dtype=INDEX_DTYPE)
    if e.size == 0:
        return CSRMatrix.empty(shape)
    if e.ndim != 2 or e.shape[1] != 2:
        raise ShapeError(f"edges must be (m, 2)-shaped, got {e.shape}")
    rows, cols = e[:, 0], e[:, 1]
    vals = (np.ones(rows.size, dtype=VALUE_DTYPE) if values is None
            else np.asarray(values, dtype=VALUE_DTYPE))
    if symmetrize:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    return COOMatrix(rows, cols, vals, shape).to_csr()


def csr_random(
    nrows: int,
    ncols: int,
    density: float | None = None,
    *,
    nnz: int | None = None,
    rng: np.random.Generator | int | None = None,
    values: str = "uniform",
) -> CSRMatrix:
    """Uniformly random sparse matrix (each cell independently, ER-style).

    Exactly one of ``density`` / ``nnz`` must be given. Sampling draws
    ``nnz`` cell ids with replacement then dedupes, so the realized nnz can
    be slightly below the request for dense targets — the same convention
    scipy.sparse.random and the Graph500 generator use.

    Parameters
    ----------
    values : "uniform" (U[0,1)), "ones", or "randint" (1..9, nice to read)
    """
    check_shape((nrows, ncols))
    if (density is None) == (nnz is None):
        raise ValueError("specify exactly one of density / nnz")
    if nnz is None:
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        nnz = int(round(density * nrows * ncols))
    if nnz < 0:
        raise ValueError(f"nnz must be non-negative, got {nnz}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if nnz == 0 or nrows == 0 or ncols == 0:
        return CSRMatrix.empty((nrows, ncols))
    flat = gen.integers(0, nrows * ncols, size=nnz, dtype=np.int64)
    flat = np.unique(flat)
    rows, cols = flat // ncols, flat % ncols
    if values == "uniform":
        vals = gen.random(rows.size)
    elif values == "ones":
        vals = np.ones(rows.size)
    elif values == "randint":
        vals = gen.integers(1, 10, size=rows.size).astype(VALUE_DTYPE)
    else:
        raise ValueError(f"unknown values kind {values!r}")
    return COOMatrix(rows, cols, vals, (nrows, ncols)).to_csr()
