"""Lightweight argument/invariant validation helpers.

Kernels validate *once* at the API boundary (``repro.core.api``) and then
trust their inputs; these helpers centralize the checks so error messages stay
consistent. All helpers raise subclasses of :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

import numpy as np

from .errors import FormatError, ShapeError

#: Index dtype used throughout the library. int64 avoids overflow when
#: computing flops on large synthetic inputs and matches numpy's default
#: on Linux.
INDEX_DTYPE = np.int64

#: Default value dtype (the arithmetic semiring's natural carrier).
VALUE_DTYPE = np.float64


def as_index_array(a, name: str = "indices") -> np.ndarray:
    """Coerce ``a`` to a contiguous int64 numpy array (copying only if needed)."""
    arr = np.ascontiguousarray(a, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def as_value_array(a, name: str = "data", dtype=None) -> np.ndarray:
    """Coerce ``a`` to a contiguous 1-D value array."""
    arr = np.ascontiguousarray(a, dtype=dtype if dtype is not None else VALUE_DTYPE)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_shape(shape, name: str = "shape") -> tuple[int, int]:
    """Validate a 2-tuple matrix shape with non-negative dimensions."""
    try:
        m, n = shape
    except (TypeError, ValueError) as exc:  # not a 2-sequence
        raise ShapeError(f"{name} must be a (rows, cols) pair, got {shape!r}") from exc
    m, n = int(m), int(n)
    if m < 0 or n < 0:
        raise ShapeError(f"{name} dimensions must be non-negative, got {(m, n)}")
    return m, n


def check_multiplicable(a_shape, b_shape) -> tuple[int, int]:
    """Return the output shape of ``A @ B`` or raise :class:`ShapeError`."""
    if a_shape[1] != b_shape[0]:
        raise ShapeError(
            f"inner dimensions do not match: A is {a_shape[0]}x{a_shape[1]}, "
            f"B is {b_shape[0]}x{b_shape[1]}"
        )
    return (a_shape[0], b_shape[1])


def check_same_shape(a_shape, b_shape, what: str = "operands") -> None:
    if tuple(a_shape) != tuple(b_shape):
        raise ShapeError(f"{what} must have identical shapes: {a_shape} vs {b_shape}")


def check_indptr(indptr: np.ndarray, nrows: int, nnz: int) -> None:
    """Validate a CSR/CSC row-pointer array."""
    if indptr.shape != (nrows + 1,):
        raise FormatError(
            f"indptr must have length nrows+1={nrows + 1}, got {indptr.shape[0]}"
        )
    if indptr[0] != 0:
        raise FormatError(f"indptr[0] must be 0, got {indptr[0]}")
    if indptr[-1] != nnz:
        raise FormatError(f"indptr[-1] must equal nnz={nnz}, got {indptr[-1]}")
    if np.any(np.diff(indptr) < 0):
        raise FormatError("indptr must be non-decreasing")


def check_indices_in_range(indices: np.ndarray, upper: int, name: str = "indices") -> None:
    if indices.size and (indices.min() < 0 or indices.max() >= upper):
        raise FormatError(
            f"{name} out of range: expected [0, {upper}), "
            f"got [{indices.min()}, {indices.max()}]"
        )


def rows_sorted_unique(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """True when every compressed row has strictly increasing indices."""
    if indices.size == 0:
        return True
    d = np.diff(indices)
    # Positions where a new row starts (these diffs may legitimately decrease).
    row_starts = indptr[1:-1]
    ok = d > 0
    if row_starts.size:
        # diff positions are between consecutive nnz; a diff at position p
        # crosses a row boundary iff p+1 is a row start.
        boundary = np.zeros(indices.size - 1, dtype=bool)
        starts = row_starts[(row_starts > 0) & (row_starts < indices.size)]
        boundary[starts - 1] = True
        ok = ok | boundary
    return bool(np.all(ok))
