"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing shape problems from format problems etc.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible (e.g. A is m-by-k, B is not k-by-n)."""


class FormatError(ReproError, ValueError):
    """A sparse structure violates its format invariants (indptr monotonicity,
    out-of-range indices, unsorted/duplicate columns where sortedness is
    required, dtype problems)."""


class MaskError(ReproError, ValueError):
    """Mask is malformed or unsupported for the requested operation
    (e.g. MCA with a complemented mask)."""


class AlgorithmError(ReproError, ValueError):
    """Unknown algorithm name or unsupported algorithm/option combination."""


class AccumulatorError(ReproError, RuntimeError):
    """An accumulator's state-machine contract was violated (e.g. ``insert``
    before ``setAllowed`` in strict mode, ``remove`` of an unknown key)."""


class IOFormatError(ReproError, ValueError):
    """A Matrix Market (or other external) file could not be parsed."""
