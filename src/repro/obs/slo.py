"""Declarative SLOs with multi-window burn-rate alerting.

The registry answers "what happened"; this module answers "is that OK".
An :class:`SLObjective` states a target over one of the existing metric
families:

* **latency** — ``p99=50ms:0.99`` reads "99% of requests complete within
  50 ms", measured against the ``repro_request_seconds`` histogram. The
  threshold snaps to the smallest bucket bound ≥ the requested value
  (histogram state is all the evaluator keeps — no raw samples), and the
  snapped bound is reported so the objective is honest about what it
  measures.
* **availability** — ``availability=0.999`` reads "99.9% of admitted
  requests complete", measured against ``repro_server_requests_total``
  (good = ``completed``; total = ``completed`` + ``failed`` + ``shed``).

:class:`SLOEvaluator` keeps a ring of timestamped cumulative (good, total)
snapshots per objective and evaluates **burn rates** over a fast and a slow
window (5 m / 1 h by default): the fraction of the error budget consumed in
the window, normalized so burn = 1.0 means "spending budget exactly as fast
as the objective allows". An alert requires *both* windows to burn above
``alert_burn_rate`` (the classic multi-window rule: the fast window catches
the current spike, the slow window proves it is sustained — a lone warm-up
blip ages out of the fast window and clears). Windows clamp to the history
actually available, so a fresh server evaluates honestly from its first
minute.

Everything is exported twice: as ``repro_slo_*`` gauges/counters on the
same registry (so ``/metrics`` scrapes alert state like any other family)
and as the ``/slo`` JSON endpoint on the sidecar — which also surfaces the
**trace exemplars** retained by the histogram buckets *above* a latency
threshold: a burn-rate breach names the exact retained traces to open in
Perfetto.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from .metrics import Histogram, MetricsRegistry
from .trace import Tracer

__all__ = ["SLObjective", "SLOEvaluator", "parse_slo"]

#: multi-window defaults: fast catches the spike, slow proves it sustained
FAST_WINDOW_SECONDS = 300.0
SLOW_WINDOW_SECONDS = 3600.0

#: default alert threshold — with a 5m/1h window pair this is the standard
#: "page now" burn (the whole 30-day budget would be gone in ~2 days)
ALERT_BURN_RATE = 14.4

_DURATION_RE = re.compile(
    r"^(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>us|µs|ms|s)?$")
_UNIT_SECONDS = {"us": 1e-6, "µs": 1e-6, "ms": 1e-3, "s": 1.0, None: 1.0}


def _parse_duration(text: str) -> float:
    m = _DURATION_RE.match(text.strip())
    if not m:
        raise ValueError(f"bad duration {text!r} (want e.g. 50ms, 0.5s)")
    return float(m.group("num")) * _UNIT_SECONDS[m.group("unit")]


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective. ``threshold`` is in seconds and only
    meaningful for ``kind="latency"``; ``target`` is the good-event
    fraction (strictly between 0 and 1 — the error budget is ``1 -
    target``, and a target of exactly 1 has no budget to burn)."""

    name: str
    kind: str  # "latency" | "availability"
    target: float
    threshold: float = 0.0

    def __post_init__(self):
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target!r}")
        if self.kind == "latency" and self.threshold <= 0.0:
            raise ValueError("latency SLO needs a positive threshold")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


def parse_slo(spec: str) -> SLObjective:
    """Parse one ``serve --slo`` objective spec.

    * ``p99=50ms:0.99`` — latency: name, threshold (us/ms/s), target;
    * ``availability=0.999`` — availability: target only.
    """
    text = spec.strip()
    name, sep, rest = text.partition("=")
    name = name.strip()
    if not sep or not name:
        raise ValueError(
            f"bad --slo spec {spec!r} (want name=<dur>:<target> "
            f"or availability=<target>)")
    if name in ("availability", "avail"):
        return SLObjective("availability", "availability",
                           target=float(rest))
    thresh, sep, target = rest.partition(":")
    if not sep:
        raise ValueError(
            f"bad --slo spec {spec!r}: latency objectives need "
            f"<duration>:<target>, e.g. {name}=50ms:0.99")
    return SLObjective(name, "latency", target=float(target),
                       threshold=_parse_duration(thresh))


class SLOEvaluator:
    """Evaluate objectives against a registry; export burn rates + alerts.

    ``evaluate()`` is cheap (reads cumulative counters under their own
    locks, appends one snapshot) and idempotent within ``min_interval`` —
    the sidecar calls it on every ``/metrics`` and ``/slo`` hit, and the
    smoke gates call it directly. ``clock`` is injectable so tests can
    replay a synthetic timeline.
    """

    def __init__(self, registry: MetricsRegistry,
                 objectives: list[SLObjective], *,
                 tracer: Tracer | None = None,
                 fast_window: float = FAST_WINDOW_SECONDS,
                 slow_window: float = SLOW_WINDOW_SECONDS,
                 alert_burn_rate: float = ALERT_BURN_RATE,
                 min_interval: float = 0.25,
                 max_exemplars: int = 5,
                 clock: Callable[[], float] = time.monotonic):
        if len({o.name for o in objectives}) != len(objectives):
            raise ValueError("duplicate SLO names")
        self.registry = registry
        self.objectives = list(objectives)
        self.tracer = tracer
        self.fast_window = float(fast_window)
        self.slow_window = float(slow_window)
        self.alert_burn_rate = float(alert_burn_rate)
        self.min_interval = float(min_interval)
        self.max_exemplars = int(max_exemplars)
        self._clock = clock
        self._lock = threading.Lock()
        #: per-objective deque of (t, good, total) cumulative snapshots
        self._history: dict[str, deque] = {o.name: deque()
                                           for o in objectives}
        self._alerting: dict[str, bool] = {o.name: False for o in objectives}

        self._g_target = registry.gauge(
            "repro_slo_target", "configured SLO good-event target",
            labels=("slo",))
        self._g_burn = registry.gauge(
            "repro_slo_burn_rate",
            "error-budget burn rate per evaluation window "
            "(1.0 = spending budget exactly at the sustainable rate)",
            labels=("slo", "window"))
        self._g_budget = registry.gauge(
            "repro_slo_error_budget_remaining",
            "lifetime error budget left (1.0 = untouched, <0 = overspent)",
            labels=("slo",))
        self._g_alerting = registry.gauge(
            "repro_slo_alerting",
            "1 while the multi-window burn-rate alert for this SLO fires",
            labels=("slo",))
        self._c_alerts = registry.counter(
            "repro_slo_alerts_total",
            "burn-rate alert activations (rising edges)", labels=("slo",))
        for o in objectives:
            self._g_target.set(o.target, slo=o.name)
            self._g_budget.set(1.0, slo=o.name)
            self._g_alerting.set(0.0, slo=o.name)
            self._c_alerts.inc(0.0, slo=o.name)
            for window in ("fast", "slow"):
                self._g_burn.set(0.0, slo=o.name, window=window)

    # -- cumulative good/total from the registry ------------------------ #
    def _counts(self, obj: SLObjective) -> tuple[float, float]:
        if obj.kind == "latency":
            hist = self.registry.get("repro_request_seconds")
            if not isinstance(hist, Histogram):
                return 0.0, 0.0
            return float(hist.count_le(obj.threshold)), \
                float(hist.total_count())
        ctr = self.registry.get("repro_server_requests_total")
        if ctr is None:
            return 0.0, 0.0
        good = ctr.value(outcome="completed")
        total = good + ctr.value(outcome="failed") + \
            ctr.value(outcome="shed")
        return good, total

    @staticmethod
    def _window_delta(history: deque, t: float, window: float,
                      good: float, total: float) -> tuple[float, float]:
        """(Δgood, Δtotal) against the newest snapshot at least ``window``
        old. When none is (server younger than the window), the baseline is
        process start — the counters are cumulative from zero, so the
        window honestly covers the whole lifetime instead of silently
        dropping events that landed before the first evaluation."""
        base_g = base_t = 0.0
        for snap in history:
            if snap[0] > t - window:
                break
            base_g, base_t = snap[1], snap[2]
        return good - base_g, total - base_t

    def _burn(self, obj: SLObjective, dgood: float,
              dtotal: float) -> float:
        if dtotal <= 0:
            return 0.0
        return ((dtotal - dgood) / dtotal) / obj.budget

    def _exemplars(self, obj: SLObjective) -> list[dict[str, Any]]:
        """Retained trace exemplars from the buckets above a latency
        threshold — the concrete requests that burned the budget —
        filtered to traces still resolvable at ``/trace/<id>.json``."""
        if obj.kind != "latency":
            return []
        hist = self.registry.get("repro_request_seconds")
        if not isinstance(hist, Histogram):
            return []
        out = []
        for trace_id, value, ts in hist.exemplars_above(obj.threshold):
            if self.tracer is not None and \
                    self.tracer.get(trace_id) is None:
                continue
            out.append({"trace_id": trace_id,
                        "seconds": round(value, 6),
                        "unix_time": round(ts, 3)})
            if len(out) >= self.max_exemplars:
                break
        return out

    # -- the evaluation pass -------------------------------------------- #
    def evaluate(self, now: float | None = None, *,
                 force: bool = False) -> list[dict[str, Any]]:
        """Snapshot the registry, compute window burn rates, update the
        ``repro_slo_*`` families, and return the ``/slo`` payload."""
        t = self._clock() if now is None else float(now)
        statuses: list[dict[str, Any]] = []
        with self._lock:
            for obj in self.objectives:
                good, total = self._counts(obj)
                history = self._history[obj.name]
                fresh = (force or not history
                         or t - history[-1][0] >= self.min_interval)
                windows: dict[str, dict[str, Any]] = {}
                burns: dict[str, float] = {}
                for window_name, window in (("fast", self.fast_window),
                                            ("slow", self.slow_window)):
                    dg, dt = self._window_delta(history, t, window,
                                                good, total)
                    burn = self._burn(obj, dg, dt)
                    burns[window_name] = burn
                    windows[window_name] = {
                        "seconds": window,
                        "good": dg, "total": dt,
                        "burn_rate": round(burn, 4),
                    }
                    self._g_burn.set(burn, slo=obj.name, window=window_name)
                if fresh:
                    history.append((t, good, total))
                    # retain one snapshot older than the slow window so its
                    # delta stays full-width; prune the rest
                    while len(history) >= 2 and \
                            history[1][0] <= t - self.slow_window:
                        history.popleft()

                budget_left = 1.0
                if total > 0:
                    budget_left = 1.0 - ((total - good) / total) / obj.budget
                alerting = (windows["fast"]["total"] > 0
                            and burns["fast"] >= self.alert_burn_rate
                            and burns["slow"] >= self.alert_burn_rate)
                if alerting and not self._alerting[obj.name]:
                    self._c_alerts.inc(slo=obj.name)
                self._alerting[obj.name] = alerting
                self._g_budget.set(budget_left, slo=obj.name)
                self._g_alerting.set(float(alerting), slo=obj.name)

                status: dict[str, Any] = {
                    "slo": obj.name,
                    "kind": obj.kind,
                    "target": obj.target,
                    "good": good,
                    "total": total,
                    "error_budget_remaining": round(budget_left, 4),
                    "windows": windows,
                    "alert_burn_rate": self.alert_burn_rate,
                    "alerting": alerting,
                    "exemplars": self._exemplars(obj),
                }
                if obj.kind == "latency":
                    hist = self.registry.get("repro_request_seconds")
                    snapped = (hist.le_bound(obj.threshold)
                               if isinstance(hist, Histogram)
                               else obj.threshold)
                    status["threshold_seconds"] = obj.threshold
                    status["threshold_bucket"] = (
                        None if snapped == math.inf else snapped)
                statuses.append(status)
        return statuses

    def alerting(self) -> list[dict[str, Any]]:
        """Evaluate and return only the objectives currently alerting."""
        return [s for s in self.evaluate() if s["alerting"]]
