"""Dependency-free metrics registry with Prometheus text exposition.

The serving stack needs one place where counts and timings accumulate —
request totals, per-phase seconds, cache hit/miss outcomes, queue depth,
shard scatter times, /dev/shm segment bytes — and one wire format to get
them out. This module provides exactly three instrument kinds, modelled on
the Prometheus client data model but with no third-party dependency:

* :class:`Counter` — monotonically increasing totals, optionally labelled
  (``registry.counter("repro_cache_requests_total", ..., labels=("cache",
  "outcome"))`` then ``c.inc(cache="plan", outcome="hit")``);
* :class:`Gauge` — a value that goes up and down (queue depth, shm bytes).
  A gauge may instead be constructed with a zero-argument ``callback``
  that is sampled at render time, so "current /dev/shm usage" never needs
  an update hook threaded through the store;
* :class:`Histogram` — fixed cumulative buckets plus ``_sum``/``_count``,
  for latencies and per-chunk kernel timings.

:meth:`MetricsRegistry.render` emits the standard Prometheus text format
(``# HELP`` / ``# TYPE`` / samples, histogram ``_bucket{le=...}`` series
ending in ``+Inf``). :func:`parse_exposition` is the inverse used by tests
and ``tools/check_metrics.py`` to validate that output strictly — names,
label syntax, bucket monotonicity — without pulling in a real Prometheus
parser.

Histograms additionally carry **trace exemplars**: when an observation is
made inside an active trace (:func:`repro.obs.trace.current_record`), the
trace id is retained against the bucket the observation landed in —
bounded (one exemplar per bucket per label set), latest-wins — and emitted
in OpenMetrics exemplar syntax (``... 42 # {trace_id="r000007"} 0.0031
<unix ts>``) so a latency bucket on ``/metrics`` names a concrete retained
trace to open in Perfetto. ``/slo`` surfaces the same exemplars for the
buckets that breach an objective (:mod:`repro.obs.slo`).

:func:`chunk_observer` is the context hook the engine uses to record
per-chunk kernel timings (``repro_chunk_seconds``) directly at the runner
call sites, so those families populate even with tracing disabled.

Registries are cheap; the engine and server each bind one (usually shared)
rather than mutating process-global state, so tests that build dozens of
engines in one process never cross-contaminate.
"""

from __future__ import annotations

import bisect
import contextvars
import math
import re
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Mapping

from .trace import current_record

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "CHUNK_BUCKETS",
    "parse_exposition",
    "chunk_observer",
    "current_chunk_observer",
]

#: request/phase latency buckets (seconds) — spans ~0.1 ms to 10 s, the
#: range warm cache hits through cold sharded plans actually occupy
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: per-chunk kernel timing buckets (seconds) — chunks are sized to cache
#: budgets, so they cluster well under the request-level range
CHUNK_BUCKETS = (0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                 0.01, 0.025, 0.05, 0.1, 0.25)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus expects (no exponent-less
    float noise: integers print bare, everything else via repr)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labelstr(names: tuple[str, ...], values: tuple[str, ...],
              extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*zip(names, values), *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_exemplar(slot: tuple | None) -> str:
    """OpenMetrics exemplar suffix for a ``_bucket`` sample line:
    `` # {trace_id="r000007"} 0.0031 1700000000.123`` (empty when the
    bucket has never retained one)."""
    if slot is None:
        return ""
    trace_id, value, ts = slot
    return f' # {{trace_id="{_escape(trace_id)}"}} {_fmt(value)} {ts:.3f}'


class _Metric:
    """Shared label-family plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Iterable[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labels = tuple(labels)
        for ln in self.labels:
            if not _LABEL_RE.match(ln) or ln == "le":
                raise ValueError(f"invalid label name: {ln!r}")
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], object] = {}

    def _key(self, labelvalues: Mapping[str, object]) -> tuple[str, ...]:
        if set(labelvalues) != set(self.labels):
            raise ValueError(
                f"{self.name}: expected labels {self.labels}, "
                f"got {tuple(labelvalues)}")
        return tuple(str(labelvalues[ln]) for ln in self.labels)


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labelvalues: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labelvalues)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labelvalues: object) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labelvalues), 0.0))

    def total(self) -> float:
        """Sum across every label combination (handy for derived stats)."""
        with self._lock:
            return float(sum(self._samples.values()))

    def collect(self) -> list[str]:
        with self._lock:
            items = sorted(self._samples.items())
        return [f"{self.name}{_labelstr(self.labels, key)} {_fmt(v)}"
                for key, v in items]


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Iterable[str] = (),
                 callback: Callable[[], float] | None = None):
        super().__init__(name, help, labels)
        if callback is not None and self.labels:
            raise ValueError("callback gauges cannot be labelled")
        self._callback = callback

    def set(self, value: float, **labelvalues: object) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labelvalues: object) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labelvalues: object) -> None:
        self.inc(-amount, **labelvalues)

    def value(self, **labelvalues: object) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return float(self._samples.get(self._key(labelvalues), 0.0))

    def collect(self) -> list[str]:
        if self._callback is not None:
            try:
                v = float(self._callback())
            except Exception:  # a dead callback must not break /metrics
                return []
            return [f"{self.name} {_fmt(v)}"]
        with self._lock:
            items = sorted(self._samples.items())
        return [f"{self.name}{_labelstr(self.labels, key)} {_fmt(v)}"
                for key, v in items]


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help: str, labels: Iterable[str] = (),
                 buckets: Iterable[float] = LATENCY_BUCKETS):
        super().__init__(name, help, labels)
        bs = tuple(float(b) for b in buckets)
        if not bs or any(b2 <= b1 for b1, b2 in zip(bs, bs[1:])):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.buckets = bs

    def observe(self, value: float, **labelvalues: object) -> None:
        rec = current_record()
        self.observe_traced(value, rec.trace_id if rec is not None else None,
                            **labelvalues)

    def observe_traced(self, value: float, trace_id: str | None,
                       **labelvalues: object) -> None:
        """Observe with an explicit exemplar trace id (or ``None``). Call
        sites that run outside the trace context — executor pool threads,
        the coordinator's chunk-timing feed — pass the id they captured on
        the submitting thread; :meth:`observe` resolves it implicitly."""
        key = self._key(labelvalues)
        # bucket index the observation lands in; len(buckets) means +Inf
        idx = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                # sum, count, per-bucket (non-cumulative; cumulated on
                # render), one exemplar slot per bucket + one for +Inf
                state = [0.0, 0, [0] * len(self.buckets),
                         [None] * (len(self.buckets) + 1)]
                self._samples[key] = state
            state[0] += float(value)
            state[1] += 1
            if idx < len(self.buckets):
                state[2][idx] += 1
            # values above the top bucket only land in +Inf (the count)
            if trace_id:
                state[3][idx] = (str(trace_id), float(value), time.time())

    def count(self, **labelvalues: object) -> int:
        with self._lock:
            state = self._samples.get(self._key(labelvalues))
            return int(state[1]) if state else 0

    def sum(self, **labelvalues: object) -> float:
        with self._lock:
            state = self._samples.get(self._key(labelvalues))
            return float(state[0]) if state else 0.0

    def total_sum(self) -> float:
        with self._lock:
            return float(sum(s[0] for s in self._samples.values()))

    def total_count(self) -> int:
        with self._lock:
            return int(sum(s[1] for s in self._samples.values()))

    def bucket_counts(self, **labelvalues: object) -> list[int]:
        """Cumulative counts per bucket boundary, ending with +Inf == count."""
        with self._lock:
            state = self._samples.get(self._key(labelvalues))
            if state is None:
                return [0] * (len(self.buckets) + 1)
            out, acc = [], 0
            for c in state[2]:
                acc += c
                out.append(acc)
            out.append(int(state[1]))
            return out

    # -- objective/exemplar views (repro.obs.slo) ----------------------- #
    def le_bound(self, value: float) -> float:
        """The bucket bound a ≤-threshold snaps to: the smallest bound
        ≥ ``value``, or ``+Inf`` when ``value`` exceeds the top bucket."""
        idx = bisect.bisect_left(self.buckets, float(value))
        return self.buckets[idx] if idx < len(self.buckets) else math.inf

    def count_le(self, value: float) -> int:
        """Observations ≤ :meth:`le_bound`, summed across every label set
        (the "good event" count for a latency objective)."""
        idx = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            if idx >= len(self.buckets):
                return int(sum(s[1] for s in self._samples.values()))
            return int(sum(sum(s[2][:idx + 1])
                           for s in self._samples.values()))

    def exemplars(self, **labelvalues: object) -> dict[float, tuple]:
        """Retained exemplars for one label set, keyed by bucket bound
        (``math.inf`` for +Inf): ``{bound: (trace_id, value, unix_ts)}``."""
        with self._lock:
            state = self._samples.get(self._key(labelvalues))
            slots = list(state[3]) if state is not None else []
        bounds = (*self.buckets, math.inf)
        return {bounds[i]: ex for i, ex in enumerate(slots)
                if ex is not None}

    def exemplars_above(self, value: float) -> list[tuple]:
        """Exemplars from buckets strictly above :meth:`le_bound` — the
        observations that *violated* a ≤-``value`` objective — across all
        label sets, newest first."""
        idx = bisect.bisect_left(self.buckets, float(value))
        out: list[tuple] = []
        with self._lock:
            for state in self._samples.values():
                out.extend(ex for ex in state[3][idx + 1:] if ex is not None)
        out.sort(key=lambda ex: ex[2], reverse=True)
        return out

    def collect(self) -> list[str]:
        with self._lock:
            items = sorted((k, (s[0], s[1], list(s[2]), list(s[3])))
                           for k, s in self._samples.items())
        lines: list[str] = []
        for key, (total, count, per_bucket, slots) in items:
            acc = 0
            for i, (ub, c) in enumerate(zip(self.buckets, per_bucket)):
                acc += c
                lines.append(
                    f"{self.name}_bucket"
                    f"{_labelstr(self.labels, key, (('le', _fmt(ub)),))}"
                    f" {acc}{_fmt_exemplar(slots[i])}")
            lines.append(
                f"{self.name}_bucket"
                f"{_labelstr(self.labels, key, (('le', '+Inf'),))} {count}"
                f"{_fmt_exemplar(slots[-1])}")
            lines.append(
                f"{self.name}_sum{_labelstr(self.labels, key)} {_fmt(total)}")
            lines.append(
                f"{self.name}_count{_labelstr(self.labels, key)} {count}")
        return lines


class MetricsRegistry:
    """Create-or-get instrument families and render them as one exposition.

    ``counter``/``gauge``/``histogram`` are idempotent per name: asking for
    an existing family returns it (with a kind/label check), so wiring code
    in different modules can declare the instruments it uses without a
    central manifest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_make(self, cls, name, help, labels, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.labels != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"kind or label set")
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._get_or_make(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = (),
              callback: Callable[[], float] | None = None) -> Gauge:
        return self._get_or_make(Gauge, name, help, tuple(labels),
                                 callback=callback)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_make(Histogram, name, help, tuple(labels),
                                 buckets=tuple(buckets))

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        out: list[str] = []
        for m in metrics:
            samples = m.collect()
            if not samples:
                continue
            if m.help:
                out.append(f"# HELP {m.name} {_escape(m.help)}")
            out.append(f"# TYPE {m.name} {m.kind}")
            out.extend(samples)
        return "\n".join(out) + "\n" if out else ""


# --------------------------------------------------------------------- #
# exposition parsing (tests + tools/check_metrics.py)
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+#\s+\{(?P<exlabels>[^}]*)\}"
    r"\s+(?P<exvalue>[^\s]+)(?:\s+(?P<exts>[^\s]+))?)?"
    r"\s*$")
_LABELPAIR_RE = re.compile(
    r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"$')


def parse_exposition(
        text: str, *, return_exemplars: bool = False,
) -> dict[str, dict[tuple, float]] | tuple[dict, dict]:
    """Strictly parse Prometheus text exposition into
    ``{name: {(label pairs sorted): value}}``.

    Raises ``ValueError`` on any malformed line, unknown TYPE, sample for a
    name with no preceding TYPE, or a histogram whose cumulative bucket
    counts decrease — strict enough that passing it is meaningful in CI.

    OpenMetrics exemplar suffixes (`` # {trace_id="..."} value [ts]``) are
    accepted on histogram ``_bucket`` samples only, and validated: the
    exemplar labelset must parse, its value and optional timestamp must be
    floats. With ``return_exemplars=True`` the result is a pair
    ``(samples, exemplars)`` where exemplars maps
    ``{name: {(label pairs sorted): ((exemplar pairs sorted), value, ts)}}``.
    """
    types: dict[str, str] = {}
    samples: dict[str, dict[tuple, float]] = {}
    exemplars: dict[str, dict[tuple, tuple]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        name, rawlabels, rawvalue = (m.group("name"), m.group("labels"),
                                     m.group("value"))
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and base not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        labels = _parse_labelpairs(rawlabels, lineno)
        try:
            value = float(rawvalue.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {rawvalue!r}") from None
        key = tuple(sorted(labels))
        samples.setdefault(name, {})[key] = value
        if m.group("exlabels") is not None:
            if not (name.endswith("_bucket")
                    and types.get(base) == "histogram"):
                raise ValueError(
                    f"line {lineno}: exemplar on non-bucket sample {name!r}")
            expairs = _parse_labelpairs(m.group("exlabels"), lineno)
            try:
                exvalue = float(m.group("exvalue"))
                exts = (float(m.group("exts"))
                        if m.group("exts") is not None else None)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad exemplar value/timestamp: "
                    f"{line!r}") from None
            exemplars.setdefault(name, {})[key] = (
                tuple(sorted(expairs)), exvalue, exts)
    _check_bucket_monotonicity(types, samples)
    return (samples, exemplars) if return_exemplars else samples


def _parse_labelpairs(rawlabels: str | None,
                      lineno: int) -> list[tuple[str, str]]:
    labels: list[tuple[str, str]] = []
    if rawlabels:
        for pair in _split_labelpairs(rawlabels, lineno):
            pm = _LABELPAIR_RE.match(pair)
            if not pm:
                raise ValueError(f"line {lineno}: bad label pair {pair!r}")
            labels.append((pm.group("k"), pm.group("v")))
    return labels


def _split_labelpairs(raw: str, lineno: int) -> list[str]:
    """Split ``k1="v1",k2="v2"`` respecting escaped quotes inside values."""
    pairs, buf, in_str, esc = [], [], False, False
    for ch in raw:
        if esc:
            buf.append(ch)
            esc = False
        elif ch == "\\" and in_str:
            buf.append(ch)
            esc = True
        elif ch == '"':
            buf.append(ch)
            in_str = not in_str
        elif ch == "," and not in_str:
            pairs.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if in_str:
        raise ValueError(f"line {lineno}: unterminated label value")
    if buf:
        pairs.append("".join(buf))
    return pairs


# --------------------------------------------------------------------- #
# chunk-timing observer (call-site recording for repro_chunk_seconds)
# --------------------------------------------------------------------- #
_CHUNK_OBSERVER: contextvars.ContextVar[Callable | None] = \
    contextvars.ContextVar("repro_chunk_observer", default=None)


def current_chunk_observer() -> Callable | None:
    """The chunk-timing sink installed by the engine for the current
    request: ``fn(seconds, kernel, phase)``. Like the trace record, pool
    threads do not inherit it — runner call sites capture it on the
    submitting thread before fanning out."""
    return _CHUNK_OBSERVER.get()


@contextmanager
def chunk_observer(fn: Callable | None) -> Iterator[None]:
    """Install ``fn`` as the chunk-timing sink for the calling context.
    The engine wraps each request in this so ``repro_chunk_seconds`` is
    recorded where the chunk runs, tracing on or off."""
    token = _CHUNK_OBSERVER.set(fn)
    try:
        yield
    finally:
        _CHUNK_OBSERVER.reset(token)


def _check_bucket_monotonicity(types: dict[str, str],
                               samples: dict[str, dict[tuple, float]]) -> None:
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{name}_bucket", {})
        series: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in buckets.items():
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"{name}_bucket sample missing le label")
            rest = tuple(p for p in labels if p[0] != "le")
            series.setdefault(rest, []).append((float(le), value))
        for rest, pts in series.items():
            pts.sort()
            counts = [v for _, v in pts]
            if any(b < a for a, b in zip(counts, counts[1:])):
                raise ValueError(
                    f"{name}_bucket{dict(rest)}: cumulative counts decrease")
