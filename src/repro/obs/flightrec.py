"""Failure flight recorder: request ring + debug bundles on resilience edges.

When a shard worker dies or the breaker trips, the interesting state is
what the process looked like *right then* — by the time someone greps the
metrics the evidence has been averaged away. :class:`FlightRecorder` keeps
two things:

* a bounded **ring of per-request summaries** (serving tier, kernel tier,
  phase timings, outcome — the dicts from
  :meth:`repro.service.requests.RequestStats.as_summary`), cheap enough to
  feed on every request;
* **debug bundles**: whenever a resilience edge fires — retry exhaustion,
  tier degrade, breaker trip, deadline shed — :meth:`capture` spools one
  JSON document holding the offending (possibly still-open) trace, a full
  metrics snapshot, whatever live state the owner's ``context`` callable
  reports (breaker state, shard-pool stats, cache sizes), and the process
  environment (python/platform/pid, ``REPRO_*`` vars, git revision).

Bundles land in a spool directory (a per-recorder temp dir by default, so
they survive the engine that wrote them), are downloadable at
``/debug/bundle/<id>`` on the sidecar, and can be captured on demand with
``repro bundle``. Capture is rate-limited per reason (first one always
wins) so a fault storm records the interesting first edge instead of
filling the disk, and the bundle index is bounded — evicted bundles are
deleted from the spool.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Callable

from .metrics import MetricsRegistry
from .trace import TraceRecord, Tracer, current_record

__all__ = ["FlightRecorder"]

_GIT_REV: str | None = None


def _git_rev() -> str:
    """Best-effort repo revision for bundle provenance (cached; "unknown"
    outside a git checkout or without a git binary)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=5.0,
            ).stdout.strip() or "unknown"
        except Exception:
            _GIT_REV = "unknown"
    return _GIT_REV


class FlightRecorder:
    """Bounded request ring + spooled debug bundles.

    ``context`` is a zero-argument callable returning a JSON-able dict of
    live owner state (the engine wires breaker/pool/cache views in);
    ``registry`` and ``tracer`` are snapshotted into each bundle when
    given. All methods are thread-safe and never raise into the caller's
    hot path — a failing capture returns ``None``.
    """

    def __init__(self, *, capacity: int = 256, max_bundles: int = 32,
                 spool_dir: str | os.PathLike | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 context: Callable[[], dict] | None = None,
                 min_interval: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        self.capacity = int(capacity)
        self.max_bundles = int(max_bundles)
        self.registry = registry
        self.tracer = tracer
        self.context = context
        self.min_interval = float(min_interval)
        self._clock = clock
        self._spool = Path(spool_dir) if spool_dir is not None else None
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._bundles: OrderedDict[str, Path] = OrderedDict()
        self._last_capture: dict[str, float] = {}
        self._seq = 0
        self._c_bundles = registry.counter(
            "repro_flightrec_bundles_total",
            "debug bundles captured, by triggering edge",
            labels=("reason",)) if registry is not None else None

    # -- request ring --------------------------------------------------- #
    def note_request(self, summary: dict[str, Any]) -> None:
        """Append one per-request summary dict to the ring."""
        with self._lock:
            self._ring.append(dict(summary))

    def ring(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._ring]

    # -- spool ---------------------------------------------------------- #
    @property
    def spool_dir(self) -> Path:
        """The bundle directory (created lazily on first use)."""
        with self._lock:
            if self._spool is None:
                self._spool = Path(tempfile.mkdtemp(prefix="repro-debug-"))
            else:
                self._spool.mkdir(parents=True, exist_ok=True)
            return self._spool

    def bundle_ids(self) -> list[str]:
        with self._lock:
            return list(self._bundles)

    def bundle_path(self, bundle_id: str) -> Path | None:
        with self._lock:
            return self._bundles.get(bundle_id)

    def bundle(self, bundle_id: str) -> dict[str, Any] | None:
        """Load one spooled bundle (``None`` if unknown or unreadable)."""
        path = self.bundle_path(bundle_id)
        if path is None:
            return None
        try:
            return json.loads(path.read_text())
        except Exception:
            return None

    # -- capture -------------------------------------------------------- #
    def capture(self, reason: str, *, detail: str = "",
                record: TraceRecord | None = None,
                extra: dict[str, Any] | None = None,
                force: bool = False) -> str | None:
        """Spool a debug bundle for ``reason``; returns its id, or ``None``
        when rate-limited (per reason) or the write failed. The offending
        trace defaults to the caller's active record — resilience edges
        fire mid-request, so the bundle holds the flame view *up to the
        moment the edge fired*."""
        now = self._clock()
        with self._lock:
            last = self._last_capture.get(reason)
            if not force and last is not None and \
                    now - last < self.min_interval:
                return None
            self._last_capture[reason] = now
            self._seq += 1
            bundle_id = f"b{self._seq:04d}-{reason.replace('_', '-')}"
        if record is None:
            record = current_record()
        try:
            path = self._write(bundle_id, reason, detail, record, extra)
        except Exception:
            return None
        with self._lock:
            self._bundles[bundle_id] = path
            while len(self._bundles) > self.max_bundles:
                _, old = self._bundles.popitem(last=False)
                try:
                    old.unlink()
                except OSError:
                    pass
        if self._c_bundles is not None:
            self._c_bundles.inc(reason=reason)
        return bundle_id

    def _write(self, bundle_id: str, reason: str, detail: str,
               record: TraceRecord | None,
               extra: dict[str, Any] | None) -> Path:
        doc: dict[str, Any] = {
            "bundle_id": bundle_id,
            "reason": reason,
            "detail": detail,
            "unix_time": time.time(),
            "trace_id": record.trace_id if record is not None else None,
            "trace": record.chrome() if record is not None else None,
            "ring": self.ring(),
            "metrics": (self.registry.render()
                        if self.registry is not None else ""),
            "context": self._context_state(),
            "env": {
                "python": sys.version.split()[0],
                "platform": platform.platform(),
                "pid": os.getpid(),
                "git_rev": _git_rev(),
                "repro_env": {k: v for k, v in os.environ.items()
                              if k.startswith("REPRO_")},
            },
        }
        if extra:
            doc["extra"] = extra
        path = self.spool_dir / f"{bundle_id}.json"
        path.write_text(json.dumps(doc, indent=1, default=str))
        return path

    def _context_state(self) -> dict[str, Any]:
        if self.context is None:
            return {}
        try:
            return dict(self.context())
        except Exception as exc:  # a dying probe must not kill the capture
            return {"error": f"{type(exc).__name__}: {exc}"}
