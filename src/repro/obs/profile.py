"""Wall-clock sampling profiler under the spans — stdlib only.

Spans bound *phases* (``numeric``, ``symbolic.cold``, one ``chunk``); what
they cannot show is where the time goes *inside* a chunk — which kernel
helper, which numpy call. :class:`SamplingProfiler` fills that floor: a
daemon thread wakes every ``interval`` seconds, snapshots every thread's
Python stack via ``sys._current_frames()``, and accumulates them as
collapsed stacks (``module:function;module:function... count``) — the
input format of ``flamegraph.pl`` and the "collapsed stack" importer at
https://speedscope.app.

Scoping: with ``spans={"numeric", ...}`` the sampler only attributes
threads that currently have a matching span open (the tracer maintains an
open-span table *only while a profiler is attached* — the per-span cost
otherwise is a single global None check), and roots each stack under
``span:<name>`` so the flame graph separates phases. Without ``spans`` it
profiles every thread.

Off by default everywhere; sampled on demand via ``repro profile
workload.json -o prof.txt`` or ``GET /profile?seconds=N`` on the sidecar.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Iterable

from . import trace as _trace

__all__ = ["SamplingProfiler", "sample_for"]

#: stacks deeper than this are truncated from the outermost frames
MAX_DEPTH = 64


def _frame_stack(frame) -> list[str]:
    """Innermost-first walk rendered ``module:function``, returned
    outermost-first (the collapsed-stack convention)."""
    out: list[str] = []
    while frame is not None and len(out) < MAX_DEPTH:
        out.append(f"{frame.f_globals.get('__name__', '?')}:"
                   f"{frame.f_code.co_name}")
        frame = frame.f_back
    out.reverse()
    return out


class SamplingProfiler:
    """Sample all (or span-scoped) thread stacks on a fixed interval."""

    def __init__(self, *, interval: float = 0.005,
                 spans: Iterable[str] | None = None):
        self.interval = float(interval)
        self.spans = frozenset(spans) if spans else None
        self._counts: Counter = Counter()
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.spans is not None:
            _trace._profile_attach()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self.spans is not None:
            _trace._profile_detach()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling loop -------------------------------------------------- #
    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._tick(me)

    def _tick(self, me: int) -> None:
        frames = sys._current_frames()
        open_spans = (_trace._profile_snapshot()
                      if self.spans is not None else {})
        batch: list[str] = []
        for tid, frame in frames.items():
            if tid == me:
                continue
            prefix = ""
            if self.spans is not None:
                names = open_spans.get(tid)
                anchor = next((n for n in reversed(names or ())
                               if n in self.spans), None)
                if anchor is None:
                    continue
                prefix = f"span:{anchor};"
            batch.append(prefix + ";".join(_frame_stack(frame)))
        with self._lock:
            self._samples += 1
            self._counts.update(batch)

    # -- export --------------------------------------------------------- #
    @property
    def samples(self) -> int:
        """Sampler wake-ups so far (each may attribute several threads)."""
        with self._lock:
            return self._samples

    def stack_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text, hottest first — pipe straight into
        ``flamegraph.pl`` or import into speedscope."""
        with self._lock:
            items = self._counts.most_common()
        return "".join(f"{stack} {count}\n" for stack, count in items)


def sample_for(seconds: float, *, interval: float = 0.005,
               spans: Iterable[str] | None = None) -> str:
    """Profile the process for ``seconds`` and return collapsed stacks —
    the one-shot face behind ``GET /profile?seconds=N``."""
    prof = SamplingProfiler(interval=interval, spans=spans)
    with prof:
        time.sleep(max(0.0, float(seconds)))
    return prof.collapsed()
