"""Context-var span tracer with bounded retention and Chrome-trace export.

One served request crosses many layers — admission, queue, plan lookup,
cold symbolic build, chunked numeric, shard scatter, cache writeback — and
the question the paper keeps asking ("where does the time go?") needs those
layers stitched into *one* timeline. This module provides:

* :func:`span` — the single instrumentation primitive. Inside an active
  trace, ``with span("numeric", kernel="hash", rows=512):`` records a
  nested interval on the monotonic clock; outside any trace it is a no-op
  costing one contextvar read, which is what keeps always-on
  instrumentation cheap enough to leave compiled in everywhere.
* :class:`Tracer` — owns a bounded ring of finished :class:`TraceRecord`\\ s
  (oldest evicted first) and activates one record per request via
  :meth:`Tracer.trace`. Nesting is tracked through a ``contextvars``
  context, so spans opened anywhere down the call stack attach to the
  right parent — but note that ``ThreadPoolExecutor`` workers do *not*
  inherit the submitting context; executor call-sites capture the active
  record explicitly (see :func:`repro.parallel.runner.direct_write_numeric`)
  and attach chunk spans with :meth:`TraceRecord.add_span`.
* :func:`capture` — a standalone activation used inside shard worker
  processes: workers collect spans locally, return them with the task
  result as a plain list-of-dicts payload, and the coordinator merges them
  into the request's record (:meth:`TraceRecord.merge`). ``perf_counter``
  is CLOCK_MONOTONIC on Linux and shared across forked children, so worker
  timestamps land on the same axis as the parent's.
* :meth:`TraceRecord.chrome` — export as Chrome ``traceEvents`` JSON
  (complete ``ph: "X"`` events, microsecond timestamps relative to the
  trace start, one ``pid``/``tid`` row per worker), loadable directly in
  Perfetto or ``chrome://tracing``.

Exception safety: a span body that raises still closes the span (with an
``error`` attribute naming the exception type) and re-raises.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "TraceRecord", "Tracer", "span", "capture",
           "current_record"]


@dataclass
class Span:
    span_id: int
    parent_id: int | None
    name: str
    t0: float
    t1: float = 0.0
    pid: int = 0
    tid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def as_dict(self) -> dict[str, Any]:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "t0": self.t0, "t1": self.t1,
                "pid": self.pid, "tid": self.tid, "attrs": dict(self.attrs)}


class TraceRecord:
    """All spans of one request. Append-only, span-count bounded."""

    def __init__(self, trace_id: str, *, max_spans: int = 4096,
                 attrs: dict[str, Any] | None = None):
        self.trace_id = trace_id
        self.max_spans = max_spans
        self.attrs = dict(attrs or {})
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._next_id = 0

    # -- recording ----------------------------------------------------- #
    def _new_span(self, name: str, parent_id: int | None, t0: float,
                  attrs: dict[str, Any]) -> Span | None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return None
            sp = Span(self._next_id, parent_id, name, t0,
                      pid=os.getpid(), tid=threading.get_ident(),
                      attrs=attrs)
            self._next_id += 1
            self.spans.append(sp)
            return sp

    def add_span(self, name: str, t0: float, t1: float, *,
                 parent_id: int | None = None,
                 **attrs: Any) -> Span | None:
        """Attach an already-timed interval (post-hoc spans: queue wait
        measured at completion, executor chunks timed in pool threads)."""
        sp = self._new_span(name, parent_id, t0, attrs)
        if sp is not None:
            sp.t1 = t1
        return sp

    def merge(self, payload: list[dict[str, Any]], *,
              parent_id: int | None = None) -> None:
        """Fold spans captured in another process (list of
        :meth:`Span.as_dict` dicts) into this record, remapping ids to stay
        unique. Roots of the merged payload are re-parented under
        ``parent_id`` (e.g. the scatter span that dispatched the work), so
        worker spans nest inside the request's flame view."""
        with self._lock:
            idmap: dict[int, int] = {}
            for raw in payload:
                if len(self.spans) >= self.max_spans:
                    self.dropped += len(payload) - len(idmap)
                    break
                new_id = self._next_id
                self._next_id += 1
                idmap[int(raw["span_id"])] = new_id
                parent = raw.get("parent_id")
                self.spans.append(Span(
                    new_id,
                    idmap.get(int(parent), parent_id)
                    if parent is not None else parent_id,
                    str(raw["name"]), float(raw["t0"]), float(raw["t1"]),
                    pid=int(raw.get("pid", 0)), tid=int(raw.get("tid", 0)),
                    attrs=dict(raw.get("attrs", {}))))

    # -- export -------------------------------------------------------- #
    def payload(self) -> list[dict[str, Any]]:
        """Picklable span list for shipping across a process boundary."""
        with self._lock:
            return [sp.as_dict() for sp in self.spans]

    def t_start(self) -> float | None:
        """Earliest span start (perf_counter axis), ``None`` if span-less."""
        with self._lock:
            return min((sp.t0 for sp in self.spans), default=None)

    def duration(self) -> float:
        """Wall seconds from the earliest span start to the latest end."""
        with self._lock:
            if not self.spans:
                return 0.0
            return max(0.0, (max(sp.t1 for sp in self.spans)
                             - min(sp.t0 for sp in self.spans)))

    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [sp for sp in self.spans if sp.name == name]

    def seconds(self, name: str) -> float:
        """Total seconds spent in spans of ``name`` (derived-stats hook)."""
        return sum(sp.seconds for sp in self.find(name))

    def chrome(self) -> dict[str, Any]:
        """Chrome ``traceEvents`` JSON (open in Perfetto/chrome://tracing)."""
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return {"traceEvents": [], "displayTimeUnit": "ms",
                    "otherData": {"trace_id": self.trace_id, **self.attrs}}
        origin = min(sp.t0 for sp in spans)
        # stable small tids per (pid, native tid) for readable rows
        tids: dict[tuple[int, int], int] = {}
        events = []
        for sp in spans:
            tid = tids.setdefault((sp.pid, sp.tid), len(tids))
            events.append({
                "name": sp.name, "ph": "X", "cat": "repro",
                "ts": round((sp.t0 - origin) * 1e6, 3),
                "dur": round(sp.seconds * 1e6, 3),
                "pid": sp.pid, "tid": tid,
                "args": {**sp.attrs, "span_id": sp.span_id,
                         "parent_id": sp.parent_id},
            })
        meta = [{"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": f"pid {pid} / thread {tid}"}}
                for (pid, _), tid in tids.items()]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id, **self.attrs}}


@dataclass
class _Ctx:
    record: TraceRecord
    parent_id: int | None


_CURRENT: contextvars.ContextVar[_Ctx | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None)


def current_record() -> TraceRecord | None:
    """The record the calling context is tracing into, if any. Executor
    call-sites capture this *before* fanning out to pool threads (which do
    not inherit the context) and attach chunk spans via ``add_span``."""
    ctx = _CURRENT.get()
    return ctx.record if ctx is not None else None


# --------------------------------------------------------------------- #
# open-span table for the sampling profiler (repro.obs.profile)
#
# ``None`` whenever no profiler is attached, so the per-span cost in normal
# operation is one global load and a None check. While a span-scoped
# profiler runs, the table maps thread ident -> stack of open span names;
# the sampler thread snapshots it to decide which threads' stacks to
# attribute (and to which span).
# --------------------------------------------------------------------- #
_OPEN_SPANS: dict[int, list[str]] | None = None
_OPEN_SPANS_LOCK = threading.Lock()


def _profile_attach() -> None:
    global _OPEN_SPANS
    with _OPEN_SPANS_LOCK:
        _OPEN_SPANS = {}


def _profile_detach() -> None:
    global _OPEN_SPANS
    with _OPEN_SPANS_LOCK:
        _OPEN_SPANS = None


def _profile_snapshot() -> dict[int, tuple[str, ...]]:
    with _OPEN_SPANS_LOCK:
        table = _OPEN_SPANS
        return ({tid: tuple(names) for tid, names in table.items()}
                if table is not None else {})


def _profile_push(name: str) -> None:
    table = _OPEN_SPANS
    if table is None:
        return
    with _OPEN_SPANS_LOCK:
        if _OPEN_SPANS is not None:
            _OPEN_SPANS.setdefault(threading.get_ident(), []).append(name)


def _profile_pop() -> None:
    table = _OPEN_SPANS
    if table is None:
        return
    with _OPEN_SPANS_LOCK:
        if _OPEN_SPANS is not None:
            stack = _OPEN_SPANS.get(threading.get_ident())
            if stack:
                stack.pop()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Record a nested interval in the active trace; no-op outside one."""
    ctx = _CURRENT.get()
    if ctx is None:
        yield None
        return
    sp = ctx.record._new_span(name, ctx.parent_id, time.perf_counter(),
                              dict(attrs))
    if sp is None:  # record full — still run the body
        yield None
        return
    token = _CURRENT.set(_Ctx(ctx.record, sp.span_id))
    if _OPEN_SPANS is not None:
        _profile_push(name)
        popped = True
    else:
        popped = False
    try:
        yield sp
    except BaseException as exc:
        sp.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        sp.t1 = time.perf_counter()
        _CURRENT.reset(token)
        if popped:
            _profile_pop()


@contextmanager
def capture(trace_id: str = "local", *,
            max_spans: int = 4096) -> Iterator[TraceRecord]:
    """Activate a standalone record (shard workers, offline captures)."""
    rec = TraceRecord(trace_id, max_spans=max_spans)
    token = _CURRENT.set(_Ctx(rec, None))
    try:
        yield rec
    finally:
        _CURRENT.reset(token)


class Tracer:
    """Bounded ring of per-request trace records.

    ``capacity`` bounds retention (oldest trace evicted first) and
    ``max_spans`` bounds each record, so a long-lived server's tracer
    memory is O(capacity × max_spans) regardless of traffic. Disabled
    tracers (``enabled=False``) activate nothing: every ``span()`` under
    them is the no-op path, which is what the overhead bench compares.
    """

    def __init__(self, *, capacity: int = 256, max_spans: int = 4096,
                 enabled: bool = True):
        self.capacity = capacity
        self.max_spans = max_spans
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: OrderedDict[str, TraceRecord] = OrderedDict()

    @contextmanager
    def trace(self, trace_id: str, **attrs: Any) -> Iterator[TraceRecord | None]:
        """Open (and retain) a record for ``trace_id``; spans opened in the
        body — at any call depth — nest into it."""
        if not self.enabled:
            yield None
            return
        rec = TraceRecord(trace_id, max_spans=self.max_spans, attrs=attrs)
        with self._lock:
            self._records[trace_id] = rec
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
        token = _CURRENT.set(_Ctx(rec, None))
        try:
            yield rec
        finally:
            _CURRENT.reset(token)

    def get(self, trace_id: str) -> TraceRecord | None:
        with self._lock:
            return self._records.get(trace_id)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def summaries(self) -> list[dict[str, Any]]:
        """One scannable dict per retained record, in retention order:
        trace id, duration, start offset (seconds after the oldest retained
        record began), and whatever outcome attrs the engine stamped
        (``tier``, ``outcome``, ``kernel_tier``, ...) — the ``/traces``
        listing, readable without fetching every flame view."""
        with self._lock:
            records = list(self._records.values())
        starts = [rec.t_start() for rec in records]
        origin = min((t for t in starts if t is not None), default=0.0)
        out = []
        for rec, t0 in zip(records, starts):
            entry: dict[str, Any] = {
                "id": rec.trace_id,
                "seconds": round(rec.duration(), 6),
                "start_offset": (round(t0 - origin, 6)
                                 if t0 is not None else None),
                "spans": len(rec.spans),
            }
            for k in ("tier", "kernel_tier", "outcome", "tag", "algorithm"):
                if k in rec.attrs:
                    entry[k] = rec.attrs[k]
            out.append(entry)
        return out

    def export(self, trace_id: str) -> dict[str, Any] | None:
        rec = self.get(trace_id)
        return rec.chrome() if rec is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
