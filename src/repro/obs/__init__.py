"""repro.obs — tracing, metrics, and diagnosis for the serving stack.

Six pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a :class:`MetricsRegistry` with Prometheus text exposition and
  OpenMetrics trace exemplars on histogram buckets;
* :mod:`repro.obs.trace` — context-var :func:`span` tracer with a bounded
  per-request ring (:class:`Tracer`) and Chrome ``traceEvents`` export;
* :mod:`repro.obs.slo` — declarative latency/availability objectives
  evaluated with multi-window burn rates (:class:`SLOEvaluator`),
  exported as ``repro_slo_*`` families and the ``/slo`` endpoint;
* :mod:`repro.obs.flightrec` — :class:`FlightRecorder`: per-request ring
  + spooled debug bundles captured when a resilience edge fires;
* :mod:`repro.obs.profile` — :class:`SamplingProfiler`, a wall-clock
  stack sampler (collapsed-stack export) scoped to spans on demand;
* :mod:`repro.obs.http` — :class:`ObsHTTPServer`, the ``/metrics`` +
  ``/slo`` + ``/trace/<id>.json`` + ``/debug/bundle/<id>`` +
  ``/profile`` sidecar behind ``repro serve --metrics-port``.

See ``docs/OBSERVABILITY.md`` for the metric catalog, span taxonomy, and
the diagnosis workflow.
"""

from .metrics import (CHUNK_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, chunk_observer,
                      current_chunk_observer, parse_exposition)
from .trace import Span, TraceRecord, Tracer, capture, current_record, span
from .slo import SLObjective, SLOEvaluator, parse_slo
from .flightrec import FlightRecorder
from .profile import SamplingProfiler, sample_for
from .http import ObsHTTPServer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "parse_exposition",
    "chunk_observer", "current_chunk_observer",
    "LATENCY_BUCKETS", "CHUNK_BUCKETS",
    "Span", "TraceRecord", "Tracer", "capture", "current_record", "span",
    "SLObjective", "SLOEvaluator", "parse_slo",
    "FlightRecorder",
    "SamplingProfiler", "sample_for",
    "ObsHTTPServer",
]
