"""repro.obs — phase-level tracing and metrics for the serving stack.

Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a :class:`MetricsRegistry` with Prometheus text exposition;
* :mod:`repro.obs.trace` — context-var :func:`span` tracer with a bounded
  per-request ring (:class:`Tracer`) and Chrome ``traceEvents`` export;
* :mod:`repro.obs.http` — :class:`ObsHTTPServer`, the ``/metrics`` +
  ``/trace/<id>.json`` sidecar behind ``repro serve --metrics-port``.

See ``docs/OBSERVABILITY.md`` for the metric catalog and span taxonomy.
"""

from .metrics import (CHUNK_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, parse_exposition)
from .trace import Span, TraceRecord, Tracer, capture, current_record, span
from .http import ObsHTTPServer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "parse_exposition",
    "LATENCY_BUCKETS", "CHUNK_BUCKETS",
    "Span", "TraceRecord", "Tracer", "capture", "current_record", "span",
    "ObsHTTPServer",
]
