"""A tiny stdlib HTTP thread serving metrics, traces, and diagnosis.

``repro serve --metrics-port N`` starts one of these next to the async
server: a daemon ``ThreadingHTTPServer`` whose handler only reads from the
registry/tracer/recorder (all internally locked), so it never contends with
the serving hot path. Port ``0`` binds an ephemeral port — the smoke legs
use that and read :attr:`ObsHTTPServer.port` back.

Routes:

* ``GET /metrics`` — Prometheus text exposition with OpenMetrics trace
  exemplars on histogram buckets (an attached ``SLOEvaluator`` is
  re-evaluated first, so scraped burn rates are current);
* ``GET /slo`` — SLO burn-rate evaluation as JSON: per-objective window
  burn rates, alert state, and the exemplar traces that burned budget;
* ``GET /traces`` — scannable JSON listing of retained requests (id,
  duration, tier, outcome, start offset);
* ``GET /trace/<request_id>.json`` — Chrome-trace JSON for one retained
  request (404 once it ages out of the tracer ring);
* ``GET /debug/bundles`` / ``GET /debug/bundle/<id>`` — flight-recorder
  bundle index / one spooled debug bundle;
* ``GET /profile?seconds=N[&interval=S]`` — run the sampling profiler for
  N seconds (capped at 60) and return collapsed stacks as text;
* ``GET /healthz`` — liveness: 200 as long as this sidecar thread runs;
* ``GET /readyz`` — readiness: 200 when the optional ``ready`` callable
  says the service can take traffic (503 otherwise) — ``repro serve``
  wires it to ``Engine.ready``, so a closed engine drains out of rotation
  while a merely *degraded* one (tripped breaker, dead shard pool) keeps
  serving bit-identically from the in-process tiers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable
from urllib.parse import parse_qs

from .metrics import MetricsRegistry
from .profile import sample_for
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .flightrec import FlightRecorder
    from .slo import SLOEvaluator

__all__ = ["ObsHTTPServer"]

#: longest profiling run the sidecar will perform per request
MAX_PROFILE_SECONDS = 60.0


class ObsHTTPServer:
    """Observability sidecar: registry + tracer + diagnosis over HTTP."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer | None = None,
                 *, host: str = "127.0.0.1", port: int = 0,
                 ready: Callable[[], bool] | None = None,
                 slo: "SLOEvaluator | None" = None,
                 flight: "FlightRecorder | None" = None):
        self.registry = registry
        self.tracer = tracer
        self.ready = ready
        self.slo = slo
        self.flight = flight
        obs = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # keep stdout clean
                pass

            def _send(self, status: int, body: bytes,
                      ctype: str = "text/plain; charset=utf-8") -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, doc) -> None:
                self._send(200, json.dumps(doc).encode(), "application/json")

            def do_GET(self):
                path, _, query = self.path.partition("?")
                if path == "/metrics":
                    if obs.slo is not None:
                        try:
                            obs.slo.evaluate()
                        except Exception:  # never break the scrape
                            pass
                    body = obs.registry.render().encode()
                    self._send(200, body,
                               "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/slo":
                    if obs.slo is None:
                        self._send(404, b"no SLOs configured "
                                        b"(serve --slo name=50ms:0.99)\n")
                    else:
                        self._send_json({"slos": obs.slo.evaluate()})
                elif path == "/traces":
                    entries = (obs.tracer.summaries() if obs.tracer else [])
                    self._send_json({"traces": entries})
                elif path.startswith("/trace/") and path.endswith(".json"):
                    trace_id = path[len("/trace/"):-len(".json")]
                    doc = (obs.tracer.export(trace_id)
                           if obs.tracer else None)
                    if doc is None:
                        self._send(404, b"unknown trace\n")
                    else:
                        self._send_json(doc)
                elif path == "/debug/bundles":
                    ids = (obs.flight.bundle_ids()
                           if obs.flight is not None else [])
                    self._send_json({"bundles": ids})
                elif path.startswith("/debug/bundle/"):
                    bundle_id = path[len("/debug/bundle/"):]
                    doc = (obs.flight.bundle(bundle_id)
                           if obs.flight is not None else None)
                    if doc is None:
                        self._send(404, b"unknown bundle\n")
                    else:
                        self._send_json(doc)
                elif path == "/profile":
                    params = parse_qs(query)
                    try:
                        seconds = float(params.get("seconds", ["5"])[0])
                        interval = float(params.get("interval",
                                                    ["0.005"])[0])
                    except ValueError:
                        self._send(400, b"seconds/interval must be numbers\n")
                        return
                    seconds = min(max(seconds, 0.0), MAX_PROFILE_SECONDS)
                    interval = min(max(interval, 0.0005), 1.0)
                    text = sample_for(seconds, interval=interval)
                    self._send(200, text.encode())
                elif path == "/healthz":
                    self._send(200, b"ok\n")
                elif path == "/readyz":
                    try:
                        up = obs.ready is None or bool(obs.ready())
                    except Exception:  # a dying probe means "not ready"
                        up = False
                    if up:
                        self._send(200, b"ready\n")
                    else:
                        self._send(503, b"not ready\n")
                else:
                    self._send(404, b"try /metrics, /slo, /traces, "
                                    b"/trace/<id>.json, /debug/bundles, "
                                    b"/debug/bundle/<id>, /profile, "
                                    b"/healthz, /readyz\n")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-http", daemon=True)

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsHTTPServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():  # pragma: no branch
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
