"""A tiny stdlib HTTP thread serving ``/metrics`` and trace exports.

``repro serve --metrics-port N`` starts one of these next to the async
server: a daemon ``ThreadingHTTPServer`` whose handler only reads from the
registry/tracer (both are internally locked), so it never contends with
the serving hot path. Port ``0`` binds an ephemeral port — the smoke legs
use that and read :attr:`ObsHTTPServer.port` back.

Routes:

* ``GET /metrics`` — Prometheus text exposition
  (:meth:`~repro.obs.metrics.MetricsRegistry.render`);
* ``GET /trace/<request_id>.json`` — Chrome-trace JSON for one retained
  request (404 once it ages out of the tracer ring);
* ``GET /traces`` — JSON list of currently retained trace ids;
* ``GET /healthz`` — liveness: 200 as long as this sidecar thread runs;
* ``GET /readyz`` — readiness: 200 when the optional ``ready`` callable
  says the service can take traffic (503 otherwise) — ``repro serve``
  wires it to ``Engine.ready``, so a closed engine drains out of rotation
  while a merely *degraded* one (tripped breaker, dead shard pool) keeps
  serving bit-identically from the in-process tiers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["ObsHTTPServer"]


class ObsHTTPServer:
    """Observability sidecar: serve one registry + tracer over HTTP."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer | None = None,
                 *, host: str = "127.0.0.1", port: int = 0,
                 ready: Callable[[], bool] | None = None):
        self.registry = registry
        self.tracer = tracer
        self.ready = ready
        obs = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # keep stdout clean
                pass

            def _send(self, status: int, body: bytes,
                      ctype: str = "text/plain; charset=utf-8") -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = obs.registry.render().encode()
                    self._send(200, body,
                               "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/traces":
                    ids = obs.tracer.ids() if obs.tracer else []
                    self._send(200, json.dumps({"traces": ids}).encode(),
                               "application/json")
                elif path.startswith("/trace/") and path.endswith(".json"):
                    trace_id = path[len("/trace/"):-len(".json")]
                    doc = (obs.tracer.export(trace_id)
                           if obs.tracer else None)
                    if doc is None:
                        self._send(404, b"unknown trace\n")
                    else:
                        self._send(200, json.dumps(doc).encode(),
                                   "application/json")
                elif path == "/healthz":
                    self._send(200, b"ok\n")
                elif path == "/readyz":
                    try:
                        up = obs.ready is None or bool(obs.ready())
                    except Exception:  # a dying probe means "not ready"
                        up = False
                    if up:
                        self._send(200, b"ready\n")
                    else:
                        self._send(503, b"not ready\n")
                else:
                    self._send(404, b"try /metrics, /traces, "
                                    b"/trace/<id>.json, /healthz, /readyz\n")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-http", daemon=True)

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsHTTPServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():  # pragma: no branch
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
