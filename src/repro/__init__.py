"""repro — Masked sparse matrix-matrix products (Masked SpGEMM).

A production-quality Python reproduction of

    Milaković, Selvitopi, Nisa, Budimlić, Buluç.
    "Parallel Algorithms for Masked Sparse Matrix-Matrix Products."
    PPoPP 2022 (arXiv:2111.09947).

Quickstart::

    import numpy as np
    from repro import CSRMatrix, Mask, masked_spgemm, csr_random

    A = csr_random(1000, 1000, density=0.01, rng=0)
    B = csr_random(1000, 1000, density=0.01, rng=1)
    M = csr_random(1000, 1000, density=0.02, rng=2)
    C = masked_spgemm(A, B, Mask.from_matrix(M), algorithm="msa")

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.sparse` — CSR/CSC/COO formats and structural ops (from scratch)
* :mod:`repro.semiring` — GraphBLAS-style semirings
* :mod:`repro.mask` — structural masks (plain and complemented)
* :mod:`repro.accumulators` — the paper's §5 data structures (reference tier)
* :mod:`repro.core` — Masked SpGEMM kernels, 1P/2P, baselines, dispatcher
* :mod:`repro.parallel` — row partitioning and executors
* :mod:`repro.service` — serving layer: engine, plan cache, batch execution
* :mod:`repro.graphs` — generators (ER, Graph500 R-MAT, …) and input suite
* :mod:`repro.algorithms` — triangle counting, k-truss, betweenness, BFS
* :mod:`repro.perfmodel` — §4 traffic model + LRU cache simulator
* :mod:`repro.bench` — metrics, Dolan-Moré profiles, harness, reporting
"""

__version__ = "1.0.0"

from .errors import (
    AccumulatorError,
    AlgorithmError,
    FormatError,
    IOFormatError,
    MaskError,
    ReproError,
    ShapeError,
)
from .sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    SparseVector,
    csr_eye,
    csr_from_dense,
    csr_from_edges,
    csr_random,
    matrix_fingerprint,
    pattern_fingerprint,
    value_fingerprint,
    read_matrix_market,
    write_matrix_market,
)
from .mask import Mask
from .semiring import (
    ARITHMETIC,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_FIRST,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    Monoid,
    Semiring,
)
from .core import (
    SymbolicPlan,
    algorithm_info,
    available_algorithms,
    build_plan,
    display_name,
    masked_spgemm,
    masked_spgevm,
    masked_spmv,
    spgemm,
)
from .parallel import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
)
from .service import (
    BatchExecutor,
    Engine,
    MatrixStore,
    PlanCache,
    Request,
    Response,
)
from .algorithms import (
    average_clustering,
    betweenness_centrality,
    clustering_coefficients,
    direction_optimized_bfs,
    ktruss,
    markov_clustering,
    multi_source_bfs,
    triangle_count,
)

__all__ = [
    "__version__",
    # errors
    "ReproError", "ShapeError", "FormatError", "MaskError",
    "AlgorithmError", "AccumulatorError", "IOFormatError",
    # sparse
    "COOMatrix", "CSRMatrix", "CSCMatrix", "SparseVector",
    "csr_eye", "csr_from_dense", "csr_from_edges", "csr_random",
    "read_matrix_market", "write_matrix_market",
    # mask & semirings
    "Mask", "Monoid", "Semiring",
    "PLUS_TIMES", "ARITHMETIC", "PLUS_PAIR", "PLUS_FIRST", "PLUS_SECOND",
    "MIN_PLUS", "MAX_TIMES", "OR_AND",
    # core
    "masked_spgemm", "masked_spgevm", "masked_spmv", "spgemm",
    "SymbolicPlan", "build_plan",
    "available_algorithms", "algorithm_info", "display_name",
    "matrix_fingerprint", "pattern_fingerprint", "value_fingerprint",
    # parallel
    "SerialExecutor", "ThreadExecutor", "ProcessExecutor", "SimulatedExecutor",
    # service
    "Engine", "MatrixStore", "PlanCache", "BatchExecutor",
    "Request", "Response",
    # applications
    "triangle_count", "ktruss", "betweenness_centrality", "multi_source_bfs",
    "clustering_coefficients", "average_clustering", "direction_optimized_bfs",
    "markov_clustering",
]
