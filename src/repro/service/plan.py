"""Plan cache + plan store: memoization and persistence of symbolic plans.

The cache key is the full structural identity of a request:

    (A-pattern fp, B-pattern fp, mask fp, complemented,
     requested algorithm, phases, semiring name)

keyed on the *requested* algorithm (so ``"auto"`` requests hit other
``"auto"`` requests — the resolved kernel lives inside the cached
:class:`~repro.core.plan.SymbolicPlan`), and on the semiring by name because
the symbolic pattern is semiring-independent but the plan's validity contract
is simplest when a key maps to exactly one execution configuration.

Entries are LRU-evicted past ``capacity``. Hit/miss/eviction accounting
lives on :mod:`repro.obs` registry counters
(``repro_cache_requests_total{cache="plan",outcome=...}``); the ``hits`` /
``misses`` / ``evictions`` attributes are read-only views over those
counters, kept for compatibility. A standalone cache owns a private
registry; the engine re-homes it onto the shared one via
:meth:`PlanCache.bind_metrics`.

:class:`PlanStore` is the persistence side: it serializes a plan cache's
``(key, SymbolicPlan)`` pairs — fingerprints and row-size arrays — into one
``.npz`` file, so an engine restart restores its warm plans instead of
re-running every symbolic pass (``Engine.save_plans`` / ``Engine.load_plans``,
wired into ``python -m repro serve --plans``). Keys are content fingerprints,
never object identities, which is what makes the file valid across processes
and hosts: any engine whose operands hash the same can reuse it.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
import zlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..bench.metrics import hit_rate
from ..core.plan import SymbolicPlan
from ..errors import ReproError

#: cache key tuple — see module docstring for field order
PlanKey = tuple


def plan_key(a_fp: str, b_fp: str, mask_fp: str, complemented: bool,
             algorithm: str, phases: int, semiring: str) -> PlanKey:
    return (a_fp, b_fp, mask_fp, bool(complemented),
            algorithm.lower(), int(phases), semiring)


class PlanCache:
    """LRU map from :func:`plan_key` tuples to :class:`SymbolicPlan`."""

    #: value of the ``cache`` label on this cache's registry counters
    METRICS_LABEL = "plan"

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[PlanKey, SymbolicPlan] = OrderedDict()
        from ..obs.metrics import MetricsRegistry

        self._bind_counters(MetricsRegistry())

    def _bind_counters(self, registry) -> None:
        self.metrics = registry
        self._requests = registry.counter(
            "repro_cache_requests_total",
            "cache lookups/admissions by cache tier and outcome",
            labels=("cache", "outcome"))
        self._evict_counter = registry.counter(
            "repro_cache_evictions_total", "cache entries evicted",
            labels=("cache",))

    def bind_metrics(self, registry) -> None:
        """Re-home this cache's counters onto a shared registry (the
        engine's), carrying any standalone-accumulated counts forward."""
        hits, misses, evictions = self.hits, self.misses, self.evictions
        self._bind_counters(registry)
        lbl = self.METRICS_LABEL
        if hits:
            self._requests.inc(hits, cache=lbl, outcome="hit")
        if misses:
            self._requests.inc(misses, cache=lbl, outcome="miss")
        if evictions:
            self._evict_counter.inc(evictions, cache=lbl)

    def get(self, key: PlanKey) -> SymbolicPlan | None:
        plan = self._plans.get(key)
        if plan is None:
            self._requests.inc(cache=self.METRICS_LABEL, outcome="miss")
            return None
        self._plans.move_to_end(key)
        self._requests.inc(cache=self.METRICS_LABEL, outcome="hit")
        return plan

    def put(self, key: PlanKey, plan: SymbolicPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self._evict_counter.inc(cache=self.METRICS_LABEL)

    # -- registry-derived counters (deprecated fields, kept as views) ---- #
    @property
    def hits(self) -> int:
        return int(self._requests.value(cache=self.METRICS_LABEL,
                                        outcome="hit"))

    @property
    def misses(self) -> int:
        return int(self._requests.value(cache=self.METRICS_LABEL,
                                        outcome="miss"))

    @property
    def evictions(self) -> int:
        return int(self._evict_counter.value(cache=self.METRICS_LABEL))

    def invalidate(self, key: PlanKey) -> bool:
        return self._plans.pop(key, None) is not None

    def clear(self) -> None:
        self._plans.clear()

    def items(self) -> list[tuple[PlanKey, SymbolicPlan]]:
        """Snapshot of (key, plan) pairs, least-recently-used first — so
        replaying the list through :meth:`put` reproduces the LRU order."""
        return list(self._plans.items())

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def hit_rate(self) -> float:
        return hit_rate(self.hits, self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PlanCache {len(self._plans)}/{self.capacity} plans, "
                f"{self.hits} hits / {self.misses} misses>")


# ---------------------------------------------------------------------- #
# persistence
# ---------------------------------------------------------------------- #
class PlanStoreError(ReproError):
    """A plan file is missing, malformed, or from an unknown schema."""


#: on-disk schema tag; bump when the record layout changes
PLAN_STORE_SCHEMA = "repro-plan-store-v1"

#: plan_key arity + per-field coercers (see module docstring for field order)
_KEY_FIELDS = (str, str, str, bool, str, int, str)


class PlanStore:
    """``.npz``-backed persistence for ``(plan key, SymbolicPlan)`` pairs.

    Layout: one ``manifest`` array (UTF-8 JSON bytes: schema tag + per-plan
    key fields and metadata) plus one ``rows_<i>`` int array per two-phase
    plan. Everything is plain numpy — ``allow_pickle`` stays False on load,
    so a plan file can never execute code.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def save(self, plans: list[tuple[PlanKey, SymbolicPlan]]) -> int:
        """Write the pairs; returns how many were persisted."""
        manifest = []
        arrays: dict[str, np.ndarray] = {}
        for i, (key, plan) in enumerate(plans):
            meta, row_sizes = plan.to_record()
            manifest.append({"key": list(key), **meta})
            if row_sizes is not None:
                arrays[f"rows_{i}"] = row_sizes
        doc = {"schema": PLAN_STORE_SCHEMA, "plans": manifest}
        arrays["manifest"] = np.frombuffer(
            json.dumps(doc).encode("utf-8"), dtype=np.uint8)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # atomic replace: a crash mid-write must not destroy the previous
        # good store (and savez appends ".npz" to bare paths, so write the
        # exact name via a file object)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "wb") as f:
                np.savez_compressed(f, **arrays)
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
        return len(manifest)

    def load(self) -> list[tuple[PlanKey, SymbolicPlan]]:
        """Read back the pairs (LRU order preserved from :meth:`save`).

        Tolerant per entry: a record that cannot be restored — malformed
        key, truncated or undecompressable row-size array — is skipped
        with a :class:`RuntimeWarning` and the rest of the store still
        loads, so one bad entry costs one cold plan instead of the whole
        warm start. Whole-file damage (unreadable zip, missing/garbled
        manifest, unknown schema) still raises :class:`PlanStoreError`:
        there is nothing partial worth salvaging then.
        """
        if not self.path.exists():
            raise PlanStoreError(f"no plan store at {self.path}")
        try:
            with np.load(self.path, allow_pickle=False) as z:
                doc = json.loads(bytes(z["manifest"]))
                if doc.get("schema") != PLAN_STORE_SCHEMA:
                    raise PlanStoreError(
                        f"{self.path}: unknown plan-store schema "
                        f"{doc.get('schema')!r} (expected {PLAN_STORE_SCHEMA})"
                    )
                out = []
                for i, m in enumerate(doc["plans"]):
                    try:
                        raw = m.get("key", [])
                        if len(raw) != len(_KEY_FIELDS):
                            raise ValueError(
                                f"key has {len(raw)} fields, "
                                f"expected {len(_KEY_FIELDS)}")
                        key = tuple(coerce(v) for coerce, v
                                    in zip(_KEY_FIELDS, raw))
                        rows = (z[f"rows_{i}"]
                                if f"rows_{i}" in z.files else None)
                        out.append((key, SymbolicPlan.from_record(m, rows)))
                    except (KeyError, ValueError, TypeError, OSError,
                            zipfile.BadZipFile, zlib.error,
                            ReproError) as e:
                        warnings.warn(
                            f"{self.path}: skipping corrupt plan entry "
                            f"{i}: {e}", RuntimeWarning, stacklevel=2)
                return out
        except PlanStoreError:
            raise
        except (OSError, KeyError, ValueError, json.JSONDecodeError,
                zipfile.BadZipFile, zlib.error) as e:
            # BadZipFile: a save killed mid-write before atomic replace
            # existed, or outside tampering — either way a cold start, not
            # a crash
            raise PlanStoreError(f"corrupt plan store {self.path}: {e}") from e
