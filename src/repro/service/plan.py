"""Plan cache: fingerprint-keyed memoization of symbolic plans.

The cache key is the full structural identity of a request:

    (A-pattern fp, B-pattern fp, mask fp, complemented,
     requested algorithm, phases, semiring name)

keyed on the *requested* algorithm (so ``"auto"`` requests hit other
``"auto"`` requests — the resolved kernel lives inside the cached
:class:`~repro.core.plan.SymbolicPlan`), and on the semiring by name because
the symbolic pattern is semiring-independent but the plan's validity contract
is simplest when a key maps to exactly one execution configuration.

Entries are LRU-evicted past ``capacity``. Hit/miss/eviction counters feed
:class:`repro.service.engine.EngineStats`.
"""

from __future__ import annotations

from collections import OrderedDict

from ..bench.metrics import hit_rate
from ..core.plan import SymbolicPlan

#: cache key tuple — see module docstring for field order
PlanKey = tuple


def plan_key(a_fp: str, b_fp: str, mask_fp: str, complemented: bool,
             algorithm: str, phases: int, semiring: str) -> PlanKey:
    return (a_fp, b_fp, mask_fp, bool(complemented),
            algorithm.lower(), int(phases), semiring)


class PlanCache:
    """LRU map from :func:`plan_key` tuples to :class:`SymbolicPlan`."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[PlanKey, SymbolicPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: PlanKey) -> SymbolicPlan | None:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: PlanKey, plan: SymbolicPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: PlanKey) -> bool:
        return self._plans.pop(key, None) is not None

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def hit_rate(self) -> float:
        return hit_rate(self.hits, self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PlanCache {len(self._plans)}/{self.capacity} plans, "
                f"{self.hits} hits / {self.misses} misses>")
